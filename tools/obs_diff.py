#!/usr/bin/env python3
"""Cross-run attribution diff over telemetry / explain / flight corpora.

Usage: obs_diff.py BASELINE CURRENT [options]

Compares two observability artifacts from the CAC pipeline and attributes
any drift per-medium, per-tier, and per-reject-reason. Accepted inputs
(auto-detected per file; both sides must be the same kind):

  * telemetry JSON  — admissiond telemetry_out=...  telemetry_format=json
                      or cac_microbench --metrics-out (write_metrics_json)
  * explain summary — explain_report.py --format=json
  * flight dump     — admissiond flight_dump=... NDJSON (aggregated here)

What is compared (decision-derived, machine-independent):
  * counters (telemetry mode), minus --ignore'd names; latency histograms
    and wall-clock sections are never compared;
  * admission probability;
  * reject-reason shares, decision-tier shares, per-medium delay shares /
    binding counts (explain mode) or per-medium event shares (flight mode).

A share drift beyond --tolerance, an admission-probability drop beyond
--tolerance, or (with --exact) any counter inequality is a REGRESSION:
the tool prints every finding and exits 1. Exit 0 means no drift beyond
tolerance; exit 2 means unusable input. Stdlib only.
"""

import argparse
import json
import re
import sys
from collections import Counter

# Counters whose values depend on wall-clock timing rather than the
# decision stream: SLO epochs close on latency thresholds, so their
# tallies differ run to run even when every decision is bit-identical.
DEFAULT_IGNORE = (r"^admissiond\.slo\.",)


def fail(msg):
    print(f"obs_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def load_artifact(path):
    """Returns (kind, payload): kind in {"telemetry", "explain", "flight"}."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail(str(e))
    stripped = text.strip()
    if not stripped:
        fail(f"{path}: empty file")
    # Whole-file JSON object?
    try:
        doc = json.loads(stripped)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if "counters" in doc:
            return "telemetry", doc
        if "records" in doc:
            return "explain", doc
        fail(f"{path}: JSON object is neither a telemetry exposition "
             f"(no 'counters') nor an explain summary (no 'records')")
    # NDJSON flight dump.
    events = []
    for line_no, line in enumerate(stripped.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{line_no}: bad JSON: {e}")
        if not isinstance(event, dict):
            fail(f"{path}:{line_no}: flight event is not a JSON object")
        events.append(event)
    return "flight", events


def aggregate_flight(events):
    """Reduce a flight dump to the explain-summary shape (shares over the
    retained event window)."""
    setups = [e for e in events if e.get("event") == "setup"]
    admitted = [e for e in setups if e.get("admitted")]
    media = Counter()
    for e in setups:
        for key in ("src_medium", "dst_medium"):
            if e.get(key):
                media[e[key]] += 1
    return {
        "records": len(setups),
        "admitted": len(admitted),
        "admission_probability":
            len(admitted) / len(setups) if setups else 0.0,
        "reject_reasons": dict(
            Counter(e.get("reason", "unknown") for e in setups
                    if not e.get("admitted"))),
        "tiers": dict(Counter(e.get("tier", "unknown") for e in setups)),
        "media": {
            medium: {"stages": n, "delay_share": 0.0, "binds": 0,
                     "event_share": n / sum(media.values())}
            for medium, n in media.most_common()
        } if media else {},
    }


def shares(counts):
    total = sum(counts.values())
    if total == 0:
        return {}
    return {k: v / total for k, v in counts.items()}


class Diff:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.findings = []  # (is_regression, text)

    def note(self, regression, text):
        self.findings.append((regression, text))

    def compare_shares(self, dimension, base, cur):
        """Any share shift beyond tolerance in either direction is a
        regression: a reject reason vanishing is as suspicious as one
        appearing."""
        for key in sorted(set(base) | set(cur)):
            b = base.get(key, 0.0)
            c = cur.get(key, 0.0)
            delta = c - b
            if abs(delta) > self.tolerance:
                self.note(True, f"[{dimension}] {key} share "
                                f"{b:.3f} -> {c:.3f} ({delta:+.3f}, "
                                f"tol {self.tolerance})")

    def compare_summary(self, base, cur):
        bp = base.get("admission_probability", 0.0)
        cp = cur.get("admission_probability", 0.0)
        if abs(cp - bp) > self.tolerance:
            self.note(True, f"[admission] probability {bp:.3f} -> {cp:.3f} "
                            f"({cp - bp:+.3f}, tol {self.tolerance})")
        self.compare_shares(
            "reject-reason",
            shares(base.get("reject_reasons", {})),
            shares(cur.get("reject_reasons", {})))
        self.compare_shares(
            "tier", shares(base.get("tiers", {})),
            shares(cur.get("tiers", {})))
        base_media = base.get("media", {})
        cur_media = cur.get("media", {})
        for field, label in (("delay_share", "delay share"),
                             ("event_share", "event share")):
            b = {m: v.get(field, 0.0) for m, v in base_media.items()}
            c = {m: v.get(field, 0.0) for m, v in cur_media.items()}
            if any(b.values()) or any(c.values()):
                self.compare_shares(f"medium {label}", b, c)
        b_binds = shares({m: v.get("binds", 0) for m, v in base_media.items()})
        c_binds = shares({m: v.get("binds", 0) for m, v in cur_media.items()})
        self.compare_shares("medium binds", b_binds, c_binds)

    def compare_counters(self, base, cur, ignore_patterns, exact):
        ignored = [re.compile(p) for p in ignore_patterns]
        names = sorted(set(base) | set(cur))
        for name in names:
            if any(p.search(name) for p in ignored):
                continue
            b = base.get(name)
            c = cur.get(name)
            if b is None or c is None:
                side = "baseline" if b is None else "current"
                self.note(True, f"[counter] {name} missing from {side}")
                continue
            if b == c:
                continue
            if exact:
                self.note(True, f"[counter] {name} {b} -> {c} (exact mode)")
                continue
            denom = max(abs(b), 1)
            rel = (c - b) / denom
            if abs(rel) > self.tolerance:
                self.note(True, f"[counter] {name} {b} -> {c} "
                                f"({rel:+.1%}, tol {self.tolerance:.1%})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="max share / relative drift (default: "
                             "%(default)s)")
    parser.add_argument("--exact", action="store_true",
                        help="telemetry counters must match exactly "
                             "(CI gate against a pinned deterministic run)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="REGEX",
                        help="additional counter-name patterns to skip "
                             f"(always skipped: {', '.join(DEFAULT_IGNORE)})")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    args = parser.parse_args()

    base_kind, base = load_artifact(args.baseline)
    cur_kind, cur = load_artifact(args.current)
    if base_kind != cur_kind:
        fail(f"artifact kinds differ: {args.baseline} is {base_kind}, "
             f"{args.current} is {cur_kind}")

    diff = Diff(args.tolerance)
    if base_kind == "telemetry":
        diff.compare_counters(base.get("counters", {}),
                              cur.get("counters", {}),
                              list(DEFAULT_IGNORE) + args.ignore,
                              args.exact)
    elif base_kind == "explain":
        diff.compare_summary(base, cur)
    else:  # flight
        diff.compare_summary(aggregate_flight(base), aggregate_flight(cur))

    regressions = [text for bad, text in diff.findings if bad]
    if args.json:
        json.dump({"kind": base_kind, "regressions": regressions},
                  sys.stdout, indent=2)
        print()
    else:
        for text in regressions:
            print(text)
        if regressions:
            print(f"obs_diff: {len(regressions)} regression(s) "
                  f"({base_kind} mode)")
        else:
            print(f"obs_diff: no drift beyond tolerance ({base_kind} mode)")
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
