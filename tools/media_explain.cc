// media_explain — per-medium decision-explain NDJSON producer.
//
//   media_explain --medium NAME --out FILE [--requests N] [--u U]
//
// Runs the golden admission workload (seeded Poisson arrivals, Section-6
// dual-periodic sources) against the paper topology with its hop sequence
// resolved to the named media mix, collecting every controller decision's
// explain record, and writes them as NDJSON to FILE. The CI media-matrix
// step archives one file per mix so a regression's stage-level breakdown
// (binding server, per-hop delay and buffer bounds) is inspectable without
// re-running anything; tools/explain_report.py aggregates them by medium.
//
// Media mixes:
//   fddi-atm   the default FDDI / ID / ATM chain (80 ms deadlines)
//   tdma-atm   TDMA-Ethernet access segments, terrestrial ATM backbone
//   fddi-sat   FDDI access, 250 ms GEO satellite-ATM backbone (1 s
//              deadlines — the propagation floor alone is ≈ 782 ms)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/obs/explain.h"
#include "src/servers/registry.h"
#include "src/sim/trace.h"
#include "src/sim/workload.h"
#include "src/util/units.h"

namespace {

struct MediaMix {
  const char* name;
  hetnet::net::TopologyParams (*params)();
  hetnet::Seconds deadline;
};

hetnet::net::TopologyParams default_params() {
  return hetnet::net::paper_topology_params();
}

hetnet::net::TopologyParams tdma_params() {
  hetnet::net::TopologyParams p = hetnet::net::paper_topology_params();
  p.access_hops = {hetnet::servers::HopSpec{"tdma-ethernet"}};
  return p;
}

hetnet::net::TopologyParams satellite_params() {
  hetnet::net::TopologyParams p = hetnet::net::paper_topology_params();
  p.backbone_hop = hetnet::servers::HopSpec{"satellite-atm"};
  return p;
}

constexpr MediaMix kMixes[] = {
    {"fddi-atm", default_params, hetnet::units::ms(80)},
    {"tdma-atm", tdma_params, hetnet::units::ms(80)},
    {"fddi-sat", satellite_params, hetnet::units::sec(1)},
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --medium NAME --out FILE [--requests N] [--u U]\n"
               "media mixes: fddi-atm, tdma-atm, fddi-sat\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string medium;
  std::string out_path;
  int requests = 80;
  double u = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--medium" && has_next) {
      medium = argv[++i];
    } else if (arg == "--out" && has_next) {
      out_path = argv[++i];
    } else if (arg == "--requests" && has_next) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--u" && has_next) {
      u = std::atof(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (medium.empty() || out_path.empty() || requests <= 0) {
    return usage(argv[0]);
  }

  const MediaMix* mix = nullptr;
  for (const MediaMix& m : kMixes) {
    if (medium == m.name) mix = &m;
  }
  if (mix == nullptr) {
    std::fprintf(stderr, "unknown media mix: %s\n", medium.c_str());
    return usage(argv[0]);
  }

  const hetnet::net::AbhnTopology topo(mix->params());

  hetnet::sim::WorkloadParams w;
  w.num_requests = requests;
  w.warmup_requests = 10;
  w.seed = 7;
  w.deadline = mix->deadline;
  w.lambda = hetnet::sim::lambda_for_utilization(u, w, topo);

  hetnet::obs::ExplainSink sink;
  hetnet::core::CacConfig cfg;
  cfg.beta = 0.3;
  cfg.explain = &sink;

  const auto trace = hetnet::sim::synthesize_trace(w, topo);
  const hetnet::sim::SimulationResult r = hetnet::sim::run_trace_simulation(
      topo, cfg, trace, w.warmup_requests);

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  sink.write_ndjson(out);
  if (!out.good()) {
    std::fprintf(stderr, "failed writing %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s: %zu records (%zu admitted of %zu measured) -> %s\n",
              mix->name, sink.size(), r.admitted, r.total_requests,
              out_path.c_str());
  return 0;
}
