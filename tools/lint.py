#!/usr/bin/env python3
"""Compatibility shim: tools/lint.py now delegates to tools/hetlint/.

The original single-file linter grew into the hetlint framework (real C++
token stream, per-check plugins, inline suppressions, --json, baseline).
This shim keeps `python3 tools/lint.py [paths...]` working for existing CI
invocations and muscle memory; new flags live on the real entry point:

    python3 tools/hetlint --help
"""

from __future__ import annotations

import sys
from pathlib import Path

_HETLINT_DIR = str(Path(__file__).resolve().parent / "hetlint")
if _HETLINT_DIR not in sys.path:
    sys.path.insert(0, _HETLINT_DIR)

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv[1:]))
