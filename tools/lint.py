#!/usr/bin/env python3
"""Repo-specific lint checks (no third-party dependencies).

Checks enforced:
  1. include-root   — every quoted project include is rooted at the repo top
                      ("src/...", "tests/...", "bench/..."), never relative
                      ("../util/units.h") or bare ("units.h").
  2. raw-double     — public headers under src/ must not declare function
                      parameters as raw `double` when the name denotes a
                      physical quantity (time, data, or bandwidth); those
                      must use Seconds / Bits / BitsPerSecond from
                      src/util/units.h. Dimensionless doubles (beta, ratios,
                      utilization, ...) stay doubles.
  3. check-message  — every HETNET_CHECK carries a human-readable message
                      (second macro argument).
  4. raw-stream     — library code under src/ must not write to std::cout
                      or std::cerr: the library reports through return
                      values, exceptions, and the src/obs/ surfaces, and
                      callers own the terminal. Benches, tools, examples,
                      and tests are exempt (they ARE the callers).

Usage: tools/lint.py [paths...]      (defaults to src/ tests/ bench/ examples/)
Exit status 0 when clean, 1 when violations were found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

ALLOWED_INCLUDE_ROOTS = ("src/", "tests/", "bench/", "examples/")

# Parameter names that denote a physical quantity and therefore must be a
# strong unit type in a public (src/) header.
QUANTITY_NAME = re.compile(
    r"""^(?:
        .*_(?:s|ms|us|ns|sec|secs|seconds)   # time suffixes: horizon_s, p_ms
      | .*(?:time|delay|deadline|interval|horizon|period|lifetime|ttrt
           |latency|duration|arrival)\w*
      | .*_(?:bits|bytes|kbits|mbits)        # data suffixes
      | .*(?:burst|backlog|buffer)\w*
      | .*(?:rate|capacity|bandwidth|bps)\w*
    )$""",
    re.VERBOSE,
)

# Names that look physical but are legitimately dimensionless or counts.
QUANTITY_NAME_EXEMPT = re.compile(
    r"^(?:beta|alpha|ratio|fraction|fill|utilization|u|scale|factor"
    r"|num_\w+|n_\w+|count\w*|steps?\w*)$"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
DOUBLE_PARAM_RE = re.compile(r"\bdouble\s+(\w+)\s*[,)=]")
CHECK_RE = re.compile(r"\bHETNET_CHECK\s*\(")
RAW_STREAM_RE = re.compile(r"\bstd\s*::\s*(cout|cerr)\b")


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments (keeps line structure for line numbers)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            seg = text[i : n if j < 0 else j + 2]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif text[i] in "\"'":
            quote = text[i]
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def check_includes(path: Path, lines: list[str]) -> list[str]:
    problems = []
    for lineno, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1)
        if not target.startswith(ALLOWED_INCLUDE_ROOTS):
            problems.append(
                f"{path}:{lineno}: include-root: \"{target}\" must be "
                f"rooted at the repo top (src/..., tests/...)"
            )
    return problems


def balanced_argument_count(text: str, start: int) -> tuple[int, int]:
    """Given index of '(' in text, return (num_top_level_commas, end_index)."""
    depth = 0
    commas = 0
    i = start
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return commas, i
        elif c == "," and depth == 1:
            commas += 1
        elif c in "\"'":
            quote = c
            i += 1
            while i < len(text) and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
        i += 1
    return commas, len(text)


def check_hetnet_check_messages(path: Path, text: str) -> list[str]:
    if path.name == "check.h":  # the macro's own definition
        return []
    problems = []
    for m in CHECK_RE.finditer(text):
        open_paren = text.find("(", m.end() - 1)
        commas, _ = balanced_argument_count(text, open_paren)
        if commas == 0:
            lineno = text.count("\n", 0, m.start()) + 1
            problems.append(
                f"{path}:{lineno}: check-message: HETNET_CHECK must carry "
                f"a message explaining the violated invariant"
            )
    return problems


def check_raw_double_params(path: Path, text: str) -> list[str]:
    problems = []
    for m in DOUBLE_PARAM_RE.finditer(text):
        name = m.group(1)
        if QUANTITY_NAME_EXEMPT.match(name):
            continue
        if QUANTITY_NAME.match(name):
            lineno = text.count("\n", 0, m.start()) + 1
            problems.append(
                f"{path}:{lineno}: raw-double: parameter '{name}' denotes "
                f"a physical quantity; use Seconds/Bits/BitsPerSecond"
            )
    return problems


def check_raw_streams(path: Path, text: str) -> list[str]:
    problems = []
    for m in RAW_STREAM_RE.finditer(text):
        lineno = text.count("\n", 0, m.start()) + 1
        problems.append(
            f"{path}:{lineno}: raw-stream: library code must not write to "
            f"std::{m.group(1)}; return data or take an std::ostream& from "
            f"the caller"
        )
    return problems


def lint_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    stripped = strip_comments(text)
    rel = path.relative_to(REPO_ROOT)
    problems = check_includes(rel, stripped.splitlines())
    problems += check_hetnet_check_messages(rel, stripped)
    # The raw-double rule applies to the public surface: headers under src/.
    if path.suffix in {".h", ".hpp"} and rel.parts[0] == "src":
        problems += check_raw_double_params(rel, stripped)
    # The raw-stream rule applies to all library code under src/; the fuzz
    # harness (src/testing/) drives CLIs through explicit std::ostream*
    # parameters already and stays covered too.
    if rel.parts[0] == "src":
        problems += check_raw_streams(rel, stripped)
    return problems


def main(argv: list[str]) -> int:
    roots = argv[1:] or DEFAULT_PATHS
    files: list[Path] = []
    for root in roots:
        p = (REPO_ROOT / root).resolve()
        if p.is_file():
            files.append(p)
        else:
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
    problems: list[str] = []
    for f in files:
        problems.extend(lint_file(f))
    for problem in problems:
        print(problem)
    print(
        f"lint: {len(files)} files checked, {len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
