#!/usr/bin/env python3
"""Summarize decision-explain NDJSON from the CAC pipeline.

Usage: explain_report.py EXPLAIN.ndjson [--top N]

Reads the per-request decision records produced by run_trace_simulation /
the figure benches (explain_out=FILE), cac_microbench (--explain-out=PATH),
or the fuzzer's repro_seed_*.explain.ndjson, and prints:

  * totals: records, admitted, admission probability, reject reasons
    ranked by frequency;
  * binding-server distribution: which stage of the analyzed server chain
    (e.g. FDDI_S -> ID_S -> ATM -> ID_R -> FDDI_R) carries the worst-case
    delay bound, over all records that ran the joint analysis;
  * per-medium aggregation: stage labels grouped by medium (FDDI / TDMA /
    ID / ATM / SAT), with each medium's share of the end-to-end delay
    bound, its worst per-hop buffer bound, and how often it binds;
  * slack statistics (deadline - granted bound) for admitted requests;
  * mean bisection iterations and probe evaluations per analyzed request;
  * decision-tier distribution (screen_admit / screen_reject / memo /
    exact / ...) with per-tier screen vs exact wall time, for records from
    a tiered controller (CacConfig::tiered).

Stdlib only; unknown keys are ignored so the schema can grow.
"""

import argparse
import json
import sys
from collections import Counter


def fmt_seconds(s):
    if s is None:
        return "n/a"
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.3f} ms"


def medium_of(server):
    """Map a stage label to its medium: the prefix before the first '.',
    with the direction suffix stripped ("FDDI_S.MAC" -> "FDDI",
    "SAT.Port[2]" -> "SAT")."""
    prefix = server.split(".", 1)[0]
    for suffix in ("_S", "_R"):
        if prefix.endswith(suffix):
            prefix = prefix[: -len(suffix)]
    return prefix or "?"


def stage_fields(stage):
    """Normalize a stage entry to (server, delay_s, buffer_bits).

    Current records emit [server, delay_s, buffer_bits]; pre-media files
    emitted [server, delay_s] — treat the missing buffer bound as 0.
    """
    if not isinstance(stage, list) or len(stage) < 2:
        return None
    server, delay = stage[0], stage[1]
    if not isinstance(server, str) or not isinstance(delay, (int, float)):
        return None
    buffer_bits = stage[2] if len(stage) > 2 else 0
    if not isinstance(buffer_bits, (int, float)):
        buffer_bits = 0
    return server, delay, buffer_bits


def load_records(path):
    records = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: bad JSON: {e}")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ndjson", help="explain NDJSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="max rows per ranking (default: %(default)s)")
    args = parser.parse_args()

    records = load_records(args.ndjson)
    if not records:
        sys.exit(f"{args.ndjson}: no records")

    admitted = [r for r in records if r.get("admitted")]
    rejected = [r for r in records if not r.get("admitted")]
    print(f"records:  {len(records)}")
    print(f"admitted: {len(admitted)}  "
          f"(AP = {len(admitted) / len(records):.3f})")

    reasons = Counter(r.get("reason", "unknown") for r in rejected)
    if reasons:
        print("\nreject reasons:")
        for reason, n in reasons.most_common(args.top):
            print(f"  {reason:<22} {n:>7}  ({n / len(records):.1%})")

    # Binding server: the chain stage whose delay bound is largest. Present
    # on every record that ran the joint analysis (admits and infeasible
    # rejects; absent on no-bandwidth/source-busy short-circuits).
    binding = Counter(r["binding_server"] for r in records
                      if r.get("binding_server"))
    if binding:
        total = sum(binding.values())
        print(f"\nbinding-server distribution ({total} analyzed requests):")
        for server, n in binding.most_common(args.top):
            print(f"  {server:<22} {n:>7}  ({n / total:.1%})")

    # Per-medium aggregation over the stage breakdowns ([server, delay_s,
    # buffer_bits] triples; present on records that ran the joint analysis).
    # "delay share" is the medium's fraction of the summed per-stage delay
    # bounds; "max buffer" is the worst per-hop backlog bound any of its
    # stages ever required — the number that matters on satellite hops,
    # where a single port buffers hundreds of milliseconds of cells.
    medium_delay = Counter()
    medium_stages = Counter()
    medium_buffer_max = {}
    binding_medium = Counter()
    for r in records:
        for stage in r.get("stages", []):
            fields = stage_fields(stage)
            if fields is None:
                continue
            server, delay, buffer_bits = fields
            medium = medium_of(server)
            medium_delay[medium] += delay
            medium_stages[medium] += 1
            if buffer_bits > medium_buffer_max.get(medium, 0):
                medium_buffer_max[medium] = buffer_bits
        if r.get("binding_server"):
            binding_medium[medium_of(r["binding_server"])] += 1
    if medium_delay:
        total_delay = sum(medium_delay.values())
        print("\nper-medium aggregation (over stage breakdowns):")
        print(f"  {'medium':<8} {'stages':>7} {'delay share':>12} "
              f"{'max buffer':>12} {'binds':>7}")
        for medium, delay in medium_delay.most_common():
            share = delay / total_delay if total_delay > 0 else 0.0
            buf = medium_buffer_max.get(medium, 0)
            buf_str = f"{buf / 1e3:.1f} kb" if buf else "-"
            print(f"  {medium:<8} {medium_stages[medium]:>7} {share:>11.1%} "
                  f"{buf_str:>12} {binding_medium.get(medium, 0):>7}")

    slacks = [r["slack_s"] for r in admitted
              if isinstance(r.get("slack_s"), (int, float))]
    if slacks:
        slacks.sort()
        mean = sum(slacks) / len(slacks)
        median = slacks[len(slacks) // 2]
        print("\nadmitted slack (deadline - granted bound):")
        print(f"  min    {fmt_seconds(slacks[0])}")
        print(f"  median {fmt_seconds(median)}")
        print(f"  mean   {fmt_seconds(mean)}")
        print(f"  max    {fmt_seconds(slacks[-1])}")

    analyzed = [r for r in records if r.get("probe_evals", 0) > 0]
    if analyzed:
        evals = [r["probe_evals"] for r in analyzed]
        iters = [len(r.get("bisection", [])) for r in analyzed]
        print(f"\nsearch effort ({len(analyzed)} analyzed requests):")
        print(f"  mean probe evaluations  {sum(evals) / len(evals):.1f}")
        print(f"  mean bisection steps    {sum(iters) / len(iters):.1f}")

    # Tier accounting (tiered controllers only — records from an untiered
    # run carry no decision_tier and the section is skipped). screen_ns /
    # exact_ns are per-request wall-clock in the Tier-A kUp screen vs the
    # exact joint analysis; the split shows where the admission pipeline
    # actually spent its time, per resolving tier.
    tiers = Counter(r["decision_tier"] for r in records
                    if r.get("decision_tier"))
    if tiers:
        total = sum(tiers.values())
        print(f"\ndecision tiers ({total} records):")
        for tier, n in tiers.most_common(args.top):
            in_tier = [r for r in records if r.get("decision_tier") == tier]
            screen_ms = sum(r.get("screen_ns", 0) for r in in_tier) / 1e6
            exact_ms = sum(r.get("exact_ns", 0) for r in in_tier) / 1e6
            print(f"  {tier:<14} {n:>7}  ({n / total:.1%})  "
                  f"screen {screen_ms:8.3f} ms   exact {exact_ms:8.3f} ms")
        screen_total = sum(r.get("screen_ns", 0) for r in records) / 1e6
        exact_total = sum(r.get("exact_ns", 0) for r in records) / 1e6
        spent = screen_total + exact_total
        if spent > 0:
            print(f"  screen share of analysis time: "
                  f"{screen_total / spent:.1%} "
                  f"({screen_total:.3f} of {spent:.3f} ms)")


if __name__ == "__main__":
    main()
