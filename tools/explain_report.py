#!/usr/bin/env python3
"""Summarize decision-explain NDJSON from the CAC pipeline.

Usage: explain_report.py EXPLAIN.ndjson [--top N]

Reads the per-request decision records produced by run_trace_simulation /
the figure benches (explain_out=FILE), cac_microbench (--explain-out=PATH),
or the fuzzer's repro_seed_*.explain.ndjson, and prints:

  * totals: records, admitted, admission probability, reject reasons
    ranked by frequency;
  * binding-server distribution: which stage of the
    FDDI_S -> ID_S -> ATM -> ID_R -> FDDI_R chain carries the worst-case
    delay bound, over all records that ran the joint analysis;
  * slack statistics (deadline - granted bound) for admitted requests;
  * mean bisection iterations and probe evaluations per analyzed request;
  * decision-tier distribution (screen_admit / screen_reject / memo /
    exact / ...) with per-tier screen vs exact wall time, for records from
    a tiered controller (CacConfig::tiered).

Stdlib only; unknown keys are ignored so the schema can grow.
"""

import argparse
import json
import sys
from collections import Counter


def fmt_seconds(s):
    if s is None:
        return "n/a"
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.3f} ms"


def load_records(path):
    records = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: bad JSON: {e}")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ndjson", help="explain NDJSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="max rows per ranking (default: %(default)s)")
    args = parser.parse_args()

    records = load_records(args.ndjson)
    if not records:
        sys.exit(f"{args.ndjson}: no records")

    admitted = [r for r in records if r.get("admitted")]
    rejected = [r for r in records if not r.get("admitted")]
    print(f"records:  {len(records)}")
    print(f"admitted: {len(admitted)}  "
          f"(AP = {len(admitted) / len(records):.3f})")

    reasons = Counter(r.get("reason", "unknown") for r in rejected)
    if reasons:
        print("\nreject reasons:")
        for reason, n in reasons.most_common(args.top):
            print(f"  {reason:<22} {n:>7}  ({n / len(records):.1%})")

    # Binding server: the chain stage whose delay bound is largest. Present
    # on every record that ran the joint analysis (admits and infeasible
    # rejects; absent on no-bandwidth/source-busy short-circuits).
    binding = Counter(r["binding_server"] for r in records
                      if r.get("binding_server"))
    if binding:
        total = sum(binding.values())
        print(f"\nbinding-server distribution ({total} analyzed requests):")
        for server, n in binding.most_common(args.top):
            print(f"  {server:<22} {n:>7}  ({n / total:.1%})")

    slacks = [r["slack_s"] for r in admitted
              if isinstance(r.get("slack_s"), (int, float))]
    if slacks:
        slacks.sort()
        mean = sum(slacks) / len(slacks)
        median = slacks[len(slacks) // 2]
        print("\nadmitted slack (deadline - granted bound):")
        print(f"  min    {fmt_seconds(slacks[0])}")
        print(f"  median {fmt_seconds(median)}")
        print(f"  mean   {fmt_seconds(mean)}")
        print(f"  max    {fmt_seconds(slacks[-1])}")

    analyzed = [r for r in records if r.get("probe_evals", 0) > 0]
    if analyzed:
        evals = [r["probe_evals"] for r in analyzed]
        iters = [len(r.get("bisection", [])) for r in analyzed]
        print(f"\nsearch effort ({len(analyzed)} analyzed requests):")
        print(f"  mean probe evaluations  {sum(evals) / len(evals):.1f}")
        print(f"  mean bisection steps    {sum(iters) / len(iters):.1f}")

    # Tier accounting (tiered controllers only — records from an untiered
    # run carry no decision_tier and the section is skipped). screen_ns /
    # exact_ns are per-request wall-clock in the Tier-A kUp screen vs the
    # exact joint analysis; the split shows where the admission pipeline
    # actually spent its time, per resolving tier.
    tiers = Counter(r["decision_tier"] for r in records
                    if r.get("decision_tier"))
    if tiers:
        total = sum(tiers.values())
        print(f"\ndecision tiers ({total} records):")
        for tier, n in tiers.most_common(args.top):
            in_tier = [r for r in records if r.get("decision_tier") == tier]
            screen_ms = sum(r.get("screen_ns", 0) for r in in_tier) / 1e6
            exact_ms = sum(r.get("exact_ns", 0) for r in in_tier) / 1e6
            print(f"  {tier:<14} {n:>7}  ({n / total:.1%})  "
                  f"screen {screen_ms:8.3f} ms   exact {exact_ms:8.3f} ms")
        screen_total = sum(r.get("screen_ns", 0) for r in records) / 1e6
        exact_total = sum(r.get("exact_ns", 0) for r in records) / 1e6
        spent = screen_total + exact_total
        if spent > 0:
            print(f"  screen share of analysis time: "
                  f"{screen_total / spent:.1%} "
                  f"({screen_total:.3f} of {spent:.3f} ms)")


if __name__ == "__main__":
    main()
