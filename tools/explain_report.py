#!/usr/bin/env python3
"""Summarize decision-explain NDJSON from the CAC pipeline.

Usage: explain_report.py EXPLAIN.ndjson [--top N] [--format text|json]

Reads the per-request decision records produced by run_trace_simulation /
the figure benches (explain_out=FILE), cac_microbench (--explain-out=PATH),
or the fuzzer's repro_seed_*.explain.ndjson, and prints:

  * totals: records, admitted, admission probability, reject reasons
    ranked by frequency;
  * binding-server distribution: which stage of the analyzed server chain
    (e.g. FDDI_S -> ID_S -> ATM -> ID_R -> FDDI_R) carries the worst-case
    delay bound, over all records that ran the joint analysis;
  * per-medium aggregation: stage labels grouped by medium (FDDI / TDMA /
    ID / ATM / SAT), with each medium's share of the end-to-end delay
    bound, its worst per-hop buffer bound, and how often it binds;
  * slack statistics (deadline - granted bound) for admitted requests;
  * mean bisection iterations and probe evaluations per analyzed request;
  * decision-tier distribution (screen_admit / screen_reject / memo /
    exact / ...) with per-tier screen vs exact wall time, for records from
    a tiered controller (CacConfig::tiered).

--format=json emits the same aggregation as one machine-readable object
(decision-derived fields in deterministic sections; wall-clock numbers
confined to "timing" so tools/obs_diff.py can diff runs while ignoring
machine speed). Malformed input — an unparsable line or a non-object
record — exits nonzero: a corrupt corpus silently shrinking a summary is
exactly the failure mode an attribution tool must refuse.

Stdlib only; unknown keys are ignored so the schema can grow.
"""

import argparse
import json
import sys
from collections import Counter


def fmt_seconds(s):
    if s is None:
        return "n/a"
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.3f} ms"


def medium_of(server):
    """Map a stage label to its medium: the prefix before the first '.',
    with the direction suffix stripped ("FDDI_S.MAC" -> "FDDI",
    "SAT.Port[2]" -> "SAT")."""
    prefix = server.split(".", 1)[0]
    for suffix in ("_S", "_R"):
        if prefix.endswith(suffix):
            prefix = prefix[: -len(suffix)]
    return prefix or "?"


def stage_fields(stage):
    """Normalize a stage entry to (server, delay_s, buffer_bits).

    Current records emit [server, delay_s, buffer_bits]; pre-media files
    emitted [server, delay_s] — treat the missing buffer bound as 0.
    """
    if not isinstance(stage, list) or len(stage) < 2:
        return None
    server, delay = stage[0], stage[1]
    if not isinstance(server, str) or not isinstance(delay, (int, float)):
        return None
    buffer_bits = stage[2] if len(stage) > 2 else 0
    if not isinstance(buffer_bits, (int, float)):
        buffer_bits = 0
    return server, delay, buffer_bits


def load_records(path):
    records = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: bad JSON: {e}")
            if not isinstance(record, dict):
                sys.exit(f"{path}:{line_no}: record is not a JSON object "
                         f"({type(record).__name__})")
            records.append(record)
    return records


def summarize(records):
    """Aggregate a record list into one plain dict (the --format=json
    payload; the text printer renders the same dict)."""
    admitted = [r for r in records if r.get("admitted")]
    rejected = [r for r in records if not r.get("admitted")]
    summary = {
        "records": len(records),
        "admitted": len(admitted),
        "admission_probability": len(admitted) / len(records),
        "reject_reasons": dict(
            Counter(r.get("reason", "unknown") for r in rejected)),
        "binding_servers": dict(
            Counter(r["binding_server"] for r in records
                    if r.get("binding_server"))),
        "tiers": dict(
            Counter(r["decision_tier"] for r in records
                    if r.get("decision_tier"))),
    }

    medium_delay = Counter()
    medium_stages = Counter()
    medium_buffer_max = {}
    binding_medium = Counter()
    for r in records:
        for stage in r.get("stages", []):
            fields = stage_fields(stage)
            if fields is None:
                continue
            server, delay, buffer_bits = fields
            medium = medium_of(server)
            medium_delay[medium] += delay
            medium_stages[medium] += 1
            if buffer_bits > medium_buffer_max.get(medium, 0):
                medium_buffer_max[medium] = buffer_bits
        if r.get("binding_server"):
            binding_medium[medium_of(r["binding_server"])] += 1
    total_delay = sum(medium_delay.values())
    summary["media"] = {
        medium: {
            "stages": medium_stages[medium],
            "delay_share": delay / total_delay if total_delay > 0 else 0.0,
            "max_buffer_bits": medium_buffer_max.get(medium, 0),
            "binds": binding_medium.get(medium, 0),
        }
        for medium, delay in medium_delay.most_common()
    }

    slacks = sorted(r["slack_s"] for r in admitted
                    if isinstance(r.get("slack_s"), (int, float)))
    if slacks:
        summary["slack_s"] = {
            "min": slacks[0],
            "median": slacks[len(slacks) // 2],
            "mean": sum(slacks) / len(slacks),
            "max": slacks[-1],
        }

    analyzed = [r for r in records if r.get("probe_evals", 0) > 0]
    if analyzed:
        evals = [r["probe_evals"] for r in analyzed]
        iters = [len(r.get("bisection", [])) for r in analyzed]
        summary["search"] = {
            "analyzed": len(analyzed),
            "mean_probe_evals": sum(evals) / len(evals),
            "mean_bisection_steps": sum(iters) / len(iters),
        }

    # Wall-clock lives in its own section: obs_diff ignores it by default
    # (machine speed is not a regression in decision behavior).
    summary["timing"] = {
        "screen_ms": sum(r.get("screen_ns", 0) for r in records) / 1e6,
        "exact_ms": sum(r.get("exact_ns", 0) for r in records) / 1e6,
        "per_tier_ms": {
            tier: {
                "screen": sum(r.get("screen_ns", 0) for r in records
                              if r.get("decision_tier") == tier) / 1e6,
                "exact": sum(r.get("exact_ns", 0) for r in records
                             if r.get("decision_tier") == tier) / 1e6,
            }
            for tier in summary["tiers"]
        },
    }
    return summary


def print_text(summary, top):
    print(f"records:  {summary['records']}")
    print(f"admitted: {summary['admitted']}  "
          f"(AP = {summary['admission_probability']:.3f})")

    reasons = Counter(summary["reject_reasons"])
    if reasons:
        print("\nreject reasons:")
        for reason, n in reasons.most_common(top):
            print(f"  {reason:<22} {n:>7}  ({n / summary['records']:.1%})")

    binding = Counter(summary["binding_servers"])
    if binding:
        total = sum(binding.values())
        print(f"\nbinding-server distribution ({total} analyzed requests):")
        for server, n in binding.most_common(top):
            print(f"  {server:<22} {n:>7}  ({n / total:.1%})")

    if summary["media"]:
        print("\nper-medium aggregation (over stage breakdowns):")
        print(f"  {'medium':<8} {'stages':>7} {'delay share':>12} "
              f"{'max buffer':>12} {'binds':>7}")
        for medium, m in summary["media"].items():
            buf = m["max_buffer_bits"]
            buf_str = f"{buf / 1e3:.1f} kb" if buf else "-"
            print(f"  {medium:<8} {m['stages']:>7} {m['delay_share']:>11.1%} "
                  f"{buf_str:>12} {m['binds']:>7}")

    if "slack_s" in summary:
        s = summary["slack_s"]
        print("\nadmitted slack (deadline - granted bound):")
        print(f"  min    {fmt_seconds(s['min'])}")
        print(f"  median {fmt_seconds(s['median'])}")
        print(f"  mean   {fmt_seconds(s['mean'])}")
        print(f"  max    {fmt_seconds(s['max'])}")

    if "search" in summary:
        s = summary["search"]
        print(f"\nsearch effort ({s['analyzed']} analyzed requests):")
        print(f"  mean probe evaluations  {s['mean_probe_evals']:.1f}")
        print(f"  mean bisection steps    {s['mean_bisection_steps']:.1f}")

    tiers = Counter(summary["tiers"])
    if tiers:
        total = sum(tiers.values())
        print(f"\ndecision tiers ({total} records):")
        for tier, n in tiers.most_common(top):
            per = summary["timing"]["per_tier_ms"][tier]
            print(f"  {tier:<14} {n:>7}  ({n / total:.1%})  "
                  f"screen {per['screen']:8.3f} ms   "
                  f"exact {per['exact']:8.3f} ms")
        screen_total = summary["timing"]["screen_ms"]
        exact_total = summary["timing"]["exact_ms"]
        spent = screen_total + exact_total
        if spent > 0:
            print(f"  screen share of analysis time: "
                  f"{screen_total / spent:.1%} "
                  f"({screen_total:.3f} of {spent:.3f} ms)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ndjson", help="explain NDJSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="max rows per ranking (default: %(default)s)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: %(default)s)")
    args = parser.parse_args()

    records = load_records(args.ndjson)
    if not records:
        sys.exit(f"{args.ndjson}: no records")

    summary = summarize(records)
    if args.format == "json":
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print_text(summary, args.top)


if __name__ == "__main__":
    main()
