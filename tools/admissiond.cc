// admissiond soak driver: run the long-lived admission service against a
// seeded open-loop SETUP/RELEASE stream and emit its throughput/latency SLO
// report (see src/server/admissiond.h and EXPERIMENTS.md).
//
// Flags (key=value):
//   setups=500000        SETUPs to generate (total requests ~= 2x: every
//                        setup schedules a verdict-blind release)
//   lambda=2000          Poisson SETUP rate per virtual second
//   lifetime_ms=500      mean connection lifetime
//   batch=32             requests per admission round
//   threads=<hw>         analysis threads (1 = serial engine)
//   prewarm=1            speculative batch cache warming
//   seed=1               stream seed
//   session_cap=65536    AnalysisSession capacity (small values force
//                        generational eviction; decisions are unchanged)
//   variants=4           distinct source shapes in the mix
//   beta=0.5             allocation-line interpolation
//   verify_serial=0      replay the identical stream serially (batch=1,
//                        prewarm=0, threads=1) and require bit-identical
//                        decision digests; exits 1 on divergence
//   report=<path>        write the SLO report JSON here (default: stdout)
//   trace_out=<path>     record obs spans and drain a Chrome trace here
//   trace_cap=1048576    per-thread trace event cap (overflow is counted,
//                        not stored)
//
// Telemetry plane (DESIGN.md §15; everything observation-only):
//   telemetry=1          master switch for the flight recorder
//   flight_cap=1024      flight-recorder ring capacity (events retained)
//   flight_dump=<path>   dump the flight recorder NDJSON at shutdown
//   flight_dump_on_breach=<path>
//                        (re)dump the recorder whenever an SLO epoch
//                        closes in breach; the matching window report
//                        lands at <path>.window.json
//   slo_p50_us=0         windowed SLO targets (0 = disabled); the
//   slo_p99_us=0         monitor only runs when a target is set
//   slo_min_admit=0      minimum per-epoch admission probability
//   slo_window=8         epochs per sliding window
//   slo_budget=0.25      fraction of window epochs allowed to breach
//   epoch_rounds=16      admission rounds per SLO epoch
//   slo_report=<path>    write the final window report JSON here
//   telemetry_out=<path> metric exposition, rewritten every
//                        telemetry_every rounds and at exit
//   telemetry_every=4096 rounds between exposition rewrites
//   telemetry_format=prom|json
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/obs/exposition.h"
#include "src/obs/span.h"
#include "src/server/admissiond.h"
#include "src/server/request_stream.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace {

using namespace hetnet;  // NOLINT: tool binary

struct TelemetryOut {
  std::string path;
  std::string format;  // "prom" or "json"
  std::uint64_t every_rounds = 4096;

  void emit(const server::AdmissionService& service) const {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    if (format == "json") {
      obs::write_metrics_json(service.cac().metrics(), out);
    } else {
      obs::write_prometheus(service.cac().metrics(), out);
    }
  }
};

// Feeds the whole stream through the service: submit until one round's
// worth is pending, run the round, repeat, then drain. Rewrites the
// telemetry exposition every `every_rounds` rounds (textfile-collector
// shape: the newest scrape wins).
void run_service(server::AdmissionService& service,
                 server::RequestStream& stream, const TelemetryOut& telemetry) {
  server::Request req;
  const std::size_t high_water = 4 * 32;  // a few rounds of headroom
  std::uint64_t rounds = 0;
  const auto after_round = [&](std::size_t committed) {
    if (committed == 0 || telemetry.path.empty()) return;
    if (++rounds % telemetry.every_rounds == 0) telemetry.emit(service);
  };
  while (stream.next(&req)) {
    service.submit(req);
    if (service.pending() >= high_water) after_round(service.run_round());
  }
  while (true) {
    const std::size_t committed = service.run_round();
    if (committed == 0) break;
    after_round(committed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  server::StreamConfig stream_config;
  stream_config.num_setups =
      static_cast<std::uint64_t>(flags.get("setups", 500000));
  stream_config.lambda = flags.get("lambda", 2000.0);
  stream_config.mean_lifetime = units::ms(flags.get("lifetime_ms", 500.0));
  stream_config.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  stream_config.source_variants = static_cast<int>(flags.get("variants", 4));
  stream_config.c1 = units::kbits(flags.get("c1_kbits", 50.0));
  stream_config.p1 = units::ms(flags.get("p1_ms", 100.0));
  stream_config.c2 = units::kbits(flags.get("c2_kbits", 5.0));
  stream_config.p2 = units::ms(flags.get("p2_ms", 10.0));
  stream_config.deadline = units::ms(flags.get("deadline_ms", 150.0));
  stream_config.intra_ring_fraction = flags.get("intra_frac", 0.125);

  server::AdmissiondConfig config;
  config.batch_size = static_cast<std::size_t>(flags.get("batch", 32));
  config.prewarm = flags.get("prewarm", 1) != 0.0;
  config.cac.beta = flags.get("beta", 0.5);
  config.cac.session_max_entries = static_cast<std::size_t>(flags.get(
      "session_cap", double(core::AnalysisSession::kDefaultMaxEntries)));
  config.cac.analysis.threads = static_cast<int>(
      flags.get("threads", double(util::hardware_threads())));

  const bool telemetry = flags.get("telemetry", 1) != 0.0;
  config.flight_capacity =
      telemetry ? static_cast<std::size_t>(flags.get(
                      "flight_cap",
                      double(obs::FlightRecorder::kDefaultCapacityPerShard)))
                : 0;
  config.slo.p50_ns =
      static_cast<std::int64_t>(flags.get("slo_p50_us", 0) * 1000.0);
  config.slo.p99_ns =
      static_cast<std::int64_t>(flags.get("slo_p99_us", 0) * 1000.0);
  config.slo.min_admission_probability = flags.get("slo_min_admit", 0);
  config.slo.window_epochs = static_cast<int>(flags.get("slo_window", 8));
  config.slo.epoch_budget_fraction = flags.get("slo_budget", 0.25);
  config.rounds_per_epoch =
      static_cast<std::size_t>(flags.get("epoch_rounds", 16));

  const bool dump_stats = flags.get("stats", 0) != 0.0;
  const bool verify_serial = flags.get("verify_serial", 0) != 0.0;
  const std::string report_path = flags.get_string("report", "");
  const std::string trace_path = flags.get_string("trace_out", "");
  const std::size_t trace_cap = static_cast<std::size_t>(flags.get(
      "trace_cap", double(obs::TraceRecorder::kDefaultMaxEventsPerThread)));
  const std::string flight_dump_path = flags.get_string("flight_dump", "");
  const std::string breach_dump_path =
      flags.get_string("flight_dump_on_breach", "");
  const std::string slo_report_path = flags.get_string("slo_report", "");
  TelemetryOut telemetry_out;
  telemetry_out.path = flags.get_string("telemetry_out", "");
  telemetry_out.format = flags.get_string("telemetry_format", "prom");
  telemetry_out.every_rounds =
      static_cast<std::uint64_t>(flags.get("telemetry_every", 4096));

  // The breach hook needs the service, which is constructed after the
  // config; bind through a late-set pointer.
  server::AdmissionService* live_service = nullptr;
  std::uint64_t breach_dumps = 0;
  if (!breach_dump_path.empty()) {
    config.on_slo_breach = [&](const obs::SloWindowReport& window) {
      if (live_service == nullptr) return;
      ++breach_dumps;
      // Latest breach wins: the recorder holds the freshest context.
      std::ofstream dump(breach_dump_path, std::ios::trunc);
      live_service->dump_flight(dump);
      std::ofstream rep(breach_dump_path + ".window.json", std::ios::trunc);
      window.write_json(rep);
    };
  }
  flags.check_unknown();

  const net::AbhnTopology topology(net::paper_topology_params());

  obs::ScopedRecording recording(!trace_path.empty(), trace_cap);
  server::AdmissionService service(&topology, config);
  live_service = &service;
  {
    server::RequestStream stream(&topology, stream_config);
    run_service(service, stream, telemetry_out);
  }
  const server::SloReport report = service.report();
  const server::ServiceStats& stats = service.stats();

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    recording.recorder().drain_chrome_trace(out);
  }
  if (report_path.empty()) {
    report.write_json(std::cout);
  } else {
    std::ofstream out(report_path);
    report.write_json(out);
  }
  if (!slo_report_path.empty()) {
    std::ofstream out(slo_report_path);
    service.slo_window().write_json(out);
  }
  if (!flight_dump_path.empty()) {
    std::ofstream out(flight_dump_path);
    service.dump_flight(out);
  }
  telemetry_out.emit(service);

  std::cout << "admissiond: " << report.requests << " requests ("
            << stats.setups << " setups, " << stats.admitted
            << " admitted, " << stats.unmatched_releases
            << " unmatched releases) in " << double(report.wall_ns) * 1e-9
            << " s; " << report.sustained_throughput << " req/s\n";
  std::cout << "admissiond: setup p50 " << report.setup_p50_ns
            << " ns, p99 " << report.setup_p99_ns << " ns; evictions "
            << report.evictions << ", cliff ratio "
            << report.eviction_cliff_ratio() << "\n";
  if (service.slo().enabled()) {
    const obs::SloWindowReport window = service.slo_window();
    std::cout << "admissiond: slo epochs " << service.slo().epochs()
              << ", breaches " << service.slo().breaches()
              << ", window burn rate " << window.burn_rate
              << ", breach dumps " << breach_dumps << "\n";
  }
  if (service.flight() != nullptr) {
    std::cout << "admissiond: flight events recorded "
              << service.flight()->recorded_count() << ", dropped by cap "
              << service.flight()->dropped_count() << "\n";
  }
  if (!trace_path.empty()) {
    std::cout << "admissiond: trace events dropped by cap: "
              << recording.recorder().dropped_count() << "\n";
  }

  if (dump_stats) {
    for (const auto& [name, value] : service.cac().metrics().counter_snapshot()) {
      std::cout << "  " << name << " = " << value << "\n";
    }
  }

  if (verify_serial) {
    server::AdmissiondConfig serial = config;
    serial.batch_size = 1;
    serial.prewarm = false;
    serial.cac.analysis.threads = 1;
    serial.on_slo_breach = nullptr;  // reference run must not overwrite dumps
    server::AdmissionService reference(&topology, serial);
    server::RequestStream stream(&topology, stream_config);
    TelemetryOut no_telemetry;
    run_service(reference, stream, no_telemetry);
    if (reference.decision_digest() != service.decision_digest()) {
      std::cerr << "admissiond: FAIL: decision digest diverges from serial "
                   "replay\n";
      return 1;
    }
    std::cout << "admissiond: serial replay digest matches ("
              << reference.decision_digest() << ")\n";
  }
  return 0;
}
