// Differential soundness fuzzer CLI.
//
//   fuzz_soundness [--seeds N] [--first-seed S] [--out DIR]
//                  [--sim-scale X] [--no-sim] [--no-shrink]
//                  [--trace-out FILE]
//       Sweeps N consecutive seeds through the seven oracles
//       (src/testing/fuzz/oracles.h). Exit code 0 when every seed passes,
//       1 when any oracle violation survives. With --out, each failure's
//       shrunk repro is written to DIR as repro_seed_<seed>.json together
//       with the controller's decision-explain records as
//       repro_seed_<seed>.explain.ndjson. With --trace-out, the sweep is
//       traced (per-oracle spans plus the analyzer/pool/CAC spans beneath
//       them) and written as Chrome trace-event JSON for
//       chrome://tracing / Perfetto.
//
//   fuzz_soundness --replay FILE [--sim-scale X] [--no-sim]
//       Re-runs the oracles on FILE's scenario and compares the fresh
//       verdicts against the recorded ones. Exit code 0 iff they match.
//
//   fuzz_soundness --record SEED --out-file FILE [--sim-scale X] [--no-sim]
//       Generates the scenario for SEED, runs the oracles, and writes the
//       repro JSON (whatever the verdict) — used to snapshot the
//       checked-in replay fixtures under tests/fuzz/repros/.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/span.h"
#include "src/testing/fuzz/fuzzer.h"

namespace {

using hetnet::fuzz::FuzzFailure;
using hetnet::fuzz::FuzzOptions;
using hetnet::fuzz::FuzzReport;
using hetnet::fuzz::OracleResult;
using hetnet::fuzz::ReplayOutcome;

[[noreturn]] void usage(const std::string& error) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: fuzz_soundness [--seeds N] [--first-seed S] "
               "[--out DIR] [--sim-scale X] [--no-sim] [--no-shrink] "
               "[--trace-out FILE]\n"
               "       fuzz_soundness --replay FILE [--sim-scale X] "
               "[--no-sim]\n"
               "       fuzz_soundness --record SEED --out-file FILE "
               "[--sim-scale X] [--no-sim]\n",
               error.c_str());
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) usage("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_verdicts(const std::vector<OracleResult>& verdicts) {
  for (const OracleResult& v : verdicts) {
    std::printf("  %-24s %s%s%s\n", v.oracle.c_str(), v.ok ? "ok" : "FAIL",
                v.detail.empty() ? "" : " — ", v.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string replay_path;
  std::string record_seed;
  std::string out_file;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.num_seeds = std::atoi(value("--seeds").c_str());
    } else if (arg == "--first-seed") {
      options.first_seed = std::strtoull(
          value("--first-seed").c_str(), nullptr, 10);
    } else if (arg == "--out") {
      options.repro_dir = value("--out");
    } else if (arg == "--sim-scale") {
      options.oracle.sim_scale = std::atof(value("--sim-scale").c_str());
    } else if (arg == "--no-sim") {
      options.oracle.run_packet_sim = false;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--trace-out") {
      trace_out = value("--trace-out");
    } else if (arg == "--replay") {
      replay_path = value("--replay");
    } else if (arg == "--record") {
      record_seed = value("--record");
    } else if (arg == "--out-file") {
      out_file = value("--out-file");
    } else {
      usage("unknown argument '" + arg + "'");
    }
  }

  try {
    if (!replay_path.empty()) {
      const auto repro =
          hetnet::fuzz::json::Value::parse(read_file(replay_path));
      const ReplayOutcome outcome =
          hetnet::fuzz::replay_repro(repro, options.oracle);
      std::printf("recorded verdicts:\n");
      print_verdicts(outcome.recorded);
      std::printf("fresh verdicts:\n");
      print_verdicts(outcome.fresh);
      std::printf("replay %s\n", outcome.matches_recorded
                                     ? "MATCHES the recorded verdict"
                                     : "DIVERGED from the recorded verdict");
      return outcome.matches_recorded ? 0 : 1;
    }

    if (!record_seed.empty()) {
      if (out_file.empty()) usage("--record needs --out-file");
      FuzzFailure snapshot;
      snapshot.seed = std::strtoull(record_seed.c_str(), nullptr, 10);
      snapshot.scenario = hetnet::fuzz::generate_scenario(snapshot.seed);
      snapshot.verdicts =
          hetnet::fuzz::run_all_oracles(snapshot.scenario, options.oracle);
      std::ofstream out(out_file);
      if (!out.good()) usage("cannot write " + out_file);
      out << hetnet::fuzz::failure_to_json(snapshot).dump();
      std::printf("recorded seed %s (%s) to %s\n", record_seed.c_str(),
                  hetnet::fuzz::describe_scenario(snapshot.scenario).c_str(),
                  out_file.c_str());
      print_verdicts(snapshot.verdicts);
      return 0;
    }

    if (options.num_seeds <= 0) usage("--seeds must be positive");
    hetnet::obs::ScopedRecording recording(!trace_out.empty());
    const FuzzReport report = hetnet::fuzz::run_fuzz(options, &std::cout);
    if (!trace_out.empty()) {
      std::ofstream trace(trace_out);
      if (!trace.good()) usage("cannot write " + trace_out);
      recording.recorder().write_chrome_trace(trace);
      std::printf("trace: %s (%zu events)\n", trace_out.c_str(),
                  recording.recorder().event_count());
    }
    return report.failures.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
