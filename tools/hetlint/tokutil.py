"""Token-stream structure helpers shared by check plugins."""

from __future__ import annotations

from dataclasses import dataclass, field

from lexer import Token

OPENERS = {"(": ")", "[": "]", "{": "}"}
CLOSERS = {v: k for k, v in OPENERS.items()}


def find_matching(tokens: list[Token], i: int) -> int:
    """Index of the closer matching the opener at `i` (len(tokens) if none)."""
    opener = tokens[i].value
    closer = OPENERS[opener]
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.value == opener:
            depth += 1
        elif t.value == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def find_matching_backward(tokens: list[Token], i: int) -> int:
    """Index of the opener matching the closer at `i` (-1 if none)."""
    closer = tokens[i].value
    opener = CLOSERS[closer]
    depth = 0
    for j in range(i, -1, -1):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.value == closer:
            depth += 1
        elif t.value == opener:
            depth -= 1
            if depth == 0:
                return j
    return -1


def skip_template_args(tokens: list[Token], i: int) -> int:
    """Given index of a `<`, index just past the matching `>`.

    The lexer never emits `>>`, so a plain depth counter is exact for
    well-formed template argument lists.  Comparison operators inside
    template arguments (non-type bool arguments) are rare enough to ignore.
    """
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.value == "<":
            depth += 1
        elif t.value == ">":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(tokens)


def top_level_commas(tokens: list[Token], open_idx: int) -> int:
    """Number of depth-1 commas inside the group opened at `open_idx`."""
    depth = 0
    commas = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.value in OPENERS:
            depth += 1
        elif t.value in CLOSERS:
            depth -= 1
            if depth == 0:
                return commas
        elif t.value == "," and depth == 1:
            commas += 1
    return commas


@dataclass
class ParallelLambda:
    """A lambda literal passed to util::parallel_for / parallel_map."""

    call_name: str  # parallel_for | parallel_map
    call_line: int
    index_param: str  # name of the lambda's index parameter ('' if none)
    body_start: int  # token index of the body '{'
    body_end: int  # token index of the matching '}'
    locals: set[str] = field(default_factory=set)


ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Tokens that may directly precede an identifier in a declaration
# (`PortTask& t`, `auto it`, `std::vector<X> v`, `Seconds* p`).
_DECL_PREV = {">", "&", "*", "&&"}
# Tokens that may directly follow a declared identifier.
_DECL_NEXT = {"=", "{", ";", "(", ":", ","}
# Identifier-kind previous tokens that are *not* type names.
_NON_TYPE_IDS = {
    "return", "co_return", "co_yield", "throw", "new", "delete", "case",
    "goto", "else", "do", "in", "not", "and", "or",
}


def collect_locals(tokens: list[Token], start: int, end: int) -> set[str]:
    """Heuristic set of identifiers declared inside tokens[start:end].

    Recognizes `Type name`, `Type& name`, `auto name`, template-closers
    (`vector<T> name`), and structured bindings (`auto [a, b]`).  Precision
    over recall is the wrong tradeoff here: a missed local produces a false
    positive the author can suppress with a reason, while treating a
    captured variable as local would silently hide a real hazard — so the
    follower-token set is kept tight.
    """
    out: set[str] = set()
    j = start
    while j < end:
        t = tokens[j]
        if t.kind == "id" and 0 < j:
            prev = tokens[j - 1]
            nxt = tokens[j + 1] if j + 1 < end else None
            prev_ok = (
                prev.kind == "id" and prev.value not in _NON_TYPE_IDS
            ) or (prev.kind == "punct" and prev.value in _DECL_PREV)
            if (
                prev_ok
                and nxt is not None
                and nxt.kind == "punct"
                and nxt.value in _DECL_NEXT
            ):
                out.add(t.value)
            # Structured bindings: auto [a, b] = ...; auto& [k, v] : map
            if t.value == "auto":
                k = j + 1
                while (
                    k < end
                    and tokens[k].kind == "punct"
                    and tokens[k].value in ("&", "&&", "*", "const")
                ):
                    k += 1
                if k < end and tokens[k].value == "[":
                    close = find_matching(tokens, k)
                    for b in range(k + 1, min(close, end)):
                        if tokens[b].kind == "id":
                            out.add(tokens[b].value)
        j += 1
    return out


def lambda_param_names(tokens: list[Token], open_paren: int) -> list[str]:
    """Parameter names of a lambda whose parameter list opens at `open_paren`.

    The name of each parameter is the last identifier before a depth-1
    comma or the closing paren.
    """
    close = find_matching(tokens, open_paren)
    names: list[str] = []
    depth = 0
    last_id: str | None = None
    for j in range(open_paren, close + 1):
        t = tokens[j]
        if t.kind == "punct" and t.value in OPENERS:
            depth += 1
        elif t.kind == "punct" and t.value in CLOSERS:
            depth -= 1
            if depth == 0 and last_id is not None:
                names.append(last_id)
        elif depth == 1:
            if t.kind == "id":
                last_id = t.value
            elif t.kind == "punct" and t.value == ",":
                if last_id is not None:
                    names.append(last_id)
                last_id = None
    return names


def find_parallel_lambdas(tokens: list[Token]) -> list[ParallelLambda]:
    """Lambda literals lexically inside parallel_for / parallel_map calls."""
    out: list[ParallelLambda] = []
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value not in ("parallel_for", "parallel_map"):
            continue
        open_idx = i + 1
        if open_idx < len(tokens) and tokens[open_idx].value == "<":
            open_idx = skip_template_args(tokens, open_idx)
        if open_idx >= len(tokens) or tokens[open_idx].value != "(":
            continue
        call_close = find_matching(tokens, open_idx)
        j = open_idx + 1
        while j < call_close:
            if tokens[j].kind == "punct" and tokens[j].value == "[":
                # Candidate lambda introducer: `[` ... `]` then `(` or `{`.
                intro_close = find_matching(tokens, j)
                k = intro_close + 1
                if k >= call_close:
                    break
                params: list[str] = []
                if tokens[k].value == "(":
                    params = lambda_param_names(tokens, k)
                    k = find_matching(tokens, k) + 1
                while k < call_close and tokens[k].kind == "id":
                    k += 1  # mutable / noexcept / -> trailing return
                    # (trailing return types with punctuation are not
                    # handled; parallel bodies in this codebase do not
                    # use them)
                if k < call_close and tokens[k].value == "{":
                    body_end = find_matching(tokens, k)
                    lam = ParallelLambda(
                        call_name=t.value,
                        call_line=t.line,
                        index_param=params[-1] if params else "",
                        body_start=k,
                        body_end=body_end,
                    )
                    lam.locals = collect_locals(tokens, k + 1, body_end)
                    lam.locals.update(params)
                    out.append(lam)
                    j = body_end
            j += 1
    return out


@dataclass(frozen=True)
class LhsPath:
    """Resolved left-hand side of an assignment: root id + slot info."""

    root: str  # leftmost identifier of the access path
    root_index: int  # token index of the root identifier
    slot_indexed: bool  # True when the path is root[<index_param>]...


def resolve_lhs(tokens: list[Token], op_idx: int, index_param: str) -> LhsPath | None:
    """Walk backwards from an assignment operator to the access-path root.

    Handles `a = `, `a.b = `, `a->b = `, `a[k].b = `, `a.back() = `,
    `(*a)[k] = `.  Returns None when the LHS is not an identifier path
    (e.g. `*fn() = `), which the caller treats as unanalyzable (no report).
    """
    j = op_idx - 1
    root: str | None = None
    root_index = -1
    while j >= 0:
        t = tokens[j]
        if t.kind == "punct" and t.value in (")", "]"):
            j = find_matching_backward(tokens, j)
            if j < 0:
                return None
            j -= 1
            continue
        if t.kind == "id":
            root = t.value
            root_index = j
            prev = tokens[j - 1] if j > 0 else None
            if prev is not None and prev.kind == "punct" and prev.value in (
                ".", "->", "::",
            ):
                j -= 2
                continue
            break
        if t.kind == "punct" and t.value in ("*", "&"):
            j -= 1  # dereference of the path
            continue
        return None
    if root is None:
        return None
    slot = False
    if (
        index_param
        and root_index + 3 < len(tokens)
        and tokens[root_index + 1].value == "["
        and tokens[root_index + 2].kind == "id"
        and tokens[root_index + 2].value == index_param
        and tokens[root_index + 3].value == "]"
    ):
        slot = True
    return LhsPath(root=root, root_index=root_index, slot_indexed=slot)
