"""A small C++ lexer for static-analysis checks.

Produces a flat token stream that is *comment-, string-, raw-string-, and
char-literal-aware*: the single property every downstream check depends on
is that an identifier token named `rand` really is code, never a word
inside a comment or a string literal.

This is intentionally not a full C++ front end.  There is no preprocessing,
no template disambiguation, and `>>` is split into two `>` tokens so that
template-argument matching with a depth counter works (`vector<vector<T>>`).
Checks that need structure (balanced parentheses, template argument lists)
build it locally from this stream.

Token kinds:
  id       identifiers and keywords
  num      numeric literals (including 1e-9, 0x1f, 1'000, 1.5f)
  str      string literals, including raw strings; value keeps the quotes
  char     character literals
  punct    operators and punctuation (multi-char operators kept whole,
           except `>>` which is emitted as two `>` tokens)
  comment  // and /* */ comments; value keeps the comment markers
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize"]


@dataclass(frozen=True)
class Token:
    kind: str  # id | num | str | char | punct | comment
    value: str
    line: int  # 1-based line of the token's first character
    col: int  # 0-based column of the token's first character

    def __repr__(self) -> str:  # compact for test failure output
        return f"{self.kind}:{self.value!r}@{self.line}"


_ID_START = re.compile(r"[A-Za-z_]")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# pp-number: digits, digit separators, hex, exponents with signs.
_NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_'.]|[eEpP][+-])*")
_RAW_OPEN_RE = re.compile(r'R"([^\s()\\]{0,16})\(')

# Multi-character operators, longest first.  `>>` is deliberately absent so
# nested template closers tokenize as two `>`.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "++", "--", "<<", "&&", "||", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
]


def _scan_string(text: str, i: int, quote: str) -> int:
    """Index one past the closing quote of the literal starting at i."""
    n = len(text)
    j = i + 1
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote or c == "\n":  # unterminated literal: stop at newline
            return j + (1 if c == quote else 0)
        j += 1
    return n


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def advance_lines(segment: str, start: int) -> None:
        nonlocal line, line_start
        newlines = segment.count("\n")
        if newlines:
            line += newlines
            line_start = start + segment.rindex("\n") + 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        col = i - line_start
        # Comments.
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            tokens.append(Token("comment", text[i:j], line, col))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            tokens.append(Token("comment", text[i:j], line, col))
            advance_lines(text[i:j], i)
            i = j
            continue
        # Raw strings: R"delim( ... )delim"  (with optional encoding prefix).
        m = None
        for prefix in ("", "u8", "u", "U", "L"):
            if text.startswith(prefix + "R", i):
                m = _RAW_OPEN_RE.match(text, i + len(prefix))
                if m is not None:
                    break
        if m is not None:
            close = ")" + m.group(1) + '"'
            j = text.find(close, m.end())
            j = n if j < 0 else j + len(close)
            tokens.append(Token("str", text[i:j], line, col))
            advance_lines(text[i:j], i)
            i = j
            continue
        # Identifiers (and string prefixes directly attached to a quote).
        if _ID_START.match(c):
            m = _ID_RE.match(text, i)
            assert m is not None
            end = m.end()
            if end < n and text[end] in "\"'" and m.group(0) in (
                "u8", "u", "U", "L",
            ):
                j = _scan_string(text, end, text[end])
                kind = "str" if text[end] == '"' else "char"
                tokens.append(Token(kind, text[i:j], line, col))
                i = j
                continue
            tokens.append(Token("id", m.group(0), line, col))
            i = end
            continue
        # Numbers.
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            assert m is not None
            tokens.append(Token("num", m.group(0), line, col))
            i = m.end()
            continue
        # Strings and chars.
        if c == '"' or c == "'":
            j = _scan_string(text, i, c)
            tokens.append(
                Token("str" if c == '"' else "char", text[i:j], line, col)
            )
            advance_lines(text[i:j], i)
            i = j
            continue
        # Punctuation.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line, col))
            i += 1
    return tokens
