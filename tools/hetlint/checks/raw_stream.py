"""raw-stream: library code must not write to std::cout / std::cerr.

The library reports through return values, exceptions, and the src/obs/
surfaces; callers own the terminal.  Benches, tools, examples, and tests
are exempt — they ARE the callers.
"""

from __future__ import annotations

import core


@core.register
class RawStreamCheck(core.Check):
    name = "raw-stream"
    description = "src/ code must not write to std::cout or std::cerr"

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/"):
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value not in ("cout", "cerr"):
                continue
            if i < 2 or toks[i - 1].value != "::" or toks[i - 2].value != "std":
                continue
            out.append(
                self.violation(
                    src, t.line,
                    f"library code must not write to std::{t.value}; return "
                    f"data or take an std::ostream& from the caller",
                )
            )
        return out
