"""nondeterminism-source: ambient entropy is banned in library code.

Admission decisions must be bit-identical across runs and thread counts
(DESIGN.md §8), so the library may not consult any source whose value
varies between runs: the C PRNG family, std::random_device, wall/steady
clocks, thread ids, or time().  All stochastic behaviour flows from the
seeded util::Rng; all timing flows through src/obs (which is observation,
never decision input).
"""

from __future__ import annotations

import core

# src/ subtrees allowed to touch entropy/clocks: the seeded RNG's own
# implementation, and the observability layer (timing spans are outputs,
# not decision inputs).
EXEMPT_PREFIXES = ("src/util/rng.", "src/obs/")

# Functions that read ambient entropy when called unqualified or via std::.
_BANNED_CALLS = {
    "rand": "use the seeded util::Rng instead of rand()",
    "srand": "seed util::Rng explicitly instead of srand()",
    "rand_r": "use the seeded util::Rng instead of rand_r()",
    "drand48": "use Rng::uniform() instead of drand48()",
    "lrand48": "use Rng::next_u64() instead of lrand48()",
    "time": "wall-clock time is run-dependent; thread timing through "
            "src/obs or take it as an input",
}

_BANNED_TYPES = {
    "random_device": "std::random_device is nondeterministic by design; "
                     "seed util::Rng from an explicit input",
}

_CLOCKS = ("steady_clock", "system_clock", "high_resolution_clock")


@core.register
class NondeterminismSourceCheck(core.Check):
    name = "nondeterminism-source"
    description = (
        "src/ code must not read ambient entropy (rand, random_device, "
        "clocks, thread ids) outside src/util/rng and src/obs"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/") or src.in_dir(*EXEMPT_PREFIXES):
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            # Member access (obj.rand(), obj->time()) is somebody else's
            # API; `::`-qualified is flagged only for std::.
            qualified_member = prev is not None and prev.value in (".", "->")
            std_qualified = (
                prev is not None
                and prev.value == "::"
                and i >= 2
                and toks[i - 2].value == "std"
            )
            other_qualified = (
                prev is not None and prev.value == "::" and not std_qualified
            )
            if t.value in _BANNED_CALLS:
                if qualified_member or other_qualified:
                    continue
                if nxt is None or nxt.value != "(":
                    continue
                # `long time(int zone)` declares a member/function named
                # like the banned one — a preceding type identifier means
                # declaration, not call.
                if (
                    prev is not None
                    and prev.kind == "id"
                    and prev.value not in (
                        "return", "co_return", "co_yield", "throw",
                    )
                    and not std_qualified
                ):
                    continue
                out.append(
                    self.violation(
                        src, t.line,
                        f"call to {t.value}() is a nondeterminism source; "
                        f"{_BANNED_CALLS[t.value]}",
                    )
                )
            elif t.value in _BANNED_TYPES:
                if qualified_member or other_qualified:
                    continue
                out.append(
                    self.violation(src, t.line, _BANNED_TYPES[t.value])
                )
            elif t.value in _CLOCKS:
                if (
                    nxt is not None
                    and nxt.value == "::"
                    and i + 2 < len(toks)
                    and toks[i + 2].value == "now"
                ):
                    out.append(
                        self.violation(
                            src, t.line,
                            f"{t.value}::now() varies between runs; "
                            f"decision code must not read clocks (timing "
                            f"belongs in src/obs)",
                        )
                    )
            elif t.value == "this_thread":
                if (
                    nxt is not None
                    and nxt.value == "::"
                    and i + 2 < len(toks)
                    and toks[i + 2].value == "get_id"
                ):
                    out.append(
                        self.violation(
                            src, t.line,
                            "this_thread::get_id() is schedule-dependent; "
                            "use the loop index / slot id the parallel "
                            "engine hands out",
                        )
                    )
        return out
