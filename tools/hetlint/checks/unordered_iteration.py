"""unordered-iteration: loops over hash containers are order-hazards.

Iteration order of std::unordered_map/set depends on the hash seed, the
libstdc++/libc++ bucket implementation, and the insertion history — any
loop whose body can reach a decision output makes the decision
implementation-defined.  Use an ordered container, iterate a sorted
snapshot of the keys, or — when the loop provably folds into an
order-insensitive result — suppress with a reason.

Heuristic scope: the check sees one file at a time.  It flags range-for
loops (and explicit .begin()/.cbegin() iteration) over names *declared as
unordered containers in the same file*.  Cross-file member iteration is
out of reach; keeping hash containers private to a file (as src/ does) is
what makes the heuristic sound in practice.
"""

from __future__ import annotations

import core
import tokutil

_UNORDERED = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
    "flat_hash_map",  # common vocabulary types, same hazard
    "flat_hash_set",
}

_NAME_TERMINATORS = {";", "=", "{", ",", ")", ":"}


def _declared_unordered_names(toks) -> set[str]:
    names: set[str] = set()
    for i, t in enumerate(toks):
        if t.kind != "id" or t.value not in _UNORDERED:
            continue
        if i + 1 >= len(toks) or toks[i + 1].value != "<":
            continue
        j = tokutil.skip_template_args(toks, i + 1)
        # Past refs/pointers to the declared name, if any.
        last_id = None
        while j < len(toks):
            tok = toks[j]
            if tok.kind == "id":
                last_id = tok.value
            elif tok.kind == "punct" and tok.value in ("&", "*", "&&"):
                pass
            elif tok.kind == "punct" and tok.value in _NAME_TERMINATORS:
                break
            else:
                break
            j += 1
        if last_id is not None:
            names.add(last_id)
    return names


@core.register
class UnorderedIterationCheck(core.Check):
    name = "unordered-iteration"
    description = (
        "iterating an unordered container has hash-seed-dependent order; "
        "use an ordered container or a sorted snapshot"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/"):
            return []
        toks = src.code_tokens
        names = _declared_unordered_names(toks)
        if not names:
            return []
        out = []
        for i, t in enumerate(toks):
            # Range-for: for ( decl : RANGE-EXPR )
            if t.kind == "id" and t.value == "for":
                if i + 1 >= len(toks) or toks[i + 1].value != "(":
                    continue
                close = tokutil.find_matching(toks, i + 1)
                depth = 0
                colon = -1
                for j in range(i + 1, close):
                    v = toks[j]
                    if v.kind != "punct":
                        continue
                    if v.value in tokutil.OPENERS:
                        depth += 1
                    elif v.value in tokutil.CLOSERS:
                        depth -= 1
                    elif v.value == ":" and depth == 1:
                        colon = j
                        break
                if colon < 0:
                    continue
                for j in range(colon + 1, close):
                    v = toks[j]
                    if v.kind == "id" and v.value in names:
                        out.append(
                            self.violation(
                                src, t.line,
                                f"range-for over unordered container "
                                f"'{v.value}': iteration order is "
                                f"hash-seed-dependent; iterate a sorted "
                                f"snapshot or use an ordered container",
                            )
                        )
                        break
            # Explicit iterators: NAME.begin() / NAME.cbegin() / rbegin.
            elif (
                t.kind == "id"
                and t.value in ("begin", "cbegin", "rbegin", "crbegin")
                and i >= 2
                and toks[i - 1].value in (".", "->")
                and toks[i - 2].kind == "id"
                and toks[i - 2].value in names
                and i + 1 < len(toks)
                and toks[i + 1].value == "("
            ):
                out.append(
                    self.violation(
                        src, t.line,
                        f"iterator walk over unordered container "
                        f"'{toks[i - 2].value}': iteration order is "
                        f"hash-seed-dependent",
                    )
                )
        return out
