"""pointer-keyed-ordering: ordered containers keyed by raw pointers.

A std::map/std::set keyed (or a std::sort ordered) by a raw pointer value
iterates in *address* order, and allocation addresses differ run to run —
ASLR alone breaks bit-identical reproduction.  Key by a stable id (the
connection id, the fingerprint, the slot index) instead.

Flags:
  * std::map/set/multimap/multiset whose first template argument contains
    a raw pointer type;
  * std::less<T*> / std::greater<T*> used as an explicit comparator.
Smart pointers (shared_ptr, unique_ptr) as keys are flagged too: their
ordering is the same raw address.
"""

from __future__ import annotations

import core
import tokutil

_ORDERED = {"map", "set", "multimap", "multiset"}
_COMPARATORS = {"less", "greater"}
_SMART = {"shared_ptr", "unique_ptr", "weak_ptr"}


def _first_template_arg(toks, open_idx):
    """Token slice of the first depth-1 template argument after `<`."""
    depth = 0
    start = open_idx + 1
    for j in range(open_idx, len(toks)):
        v = toks[j]
        if v.kind != "punct":
            continue
        if v.value in ("<", "(", "[", "{"):
            depth += 1
        elif v.value in (">", ")", "]", "}"):
            depth -= 1
            if depth == 0:
                return toks[start:j]
        elif v.value == "," and depth == 1:
            return toks[start:j]
    return toks[start:]


def _is_pointerish(arg_toks) -> str | None:
    """Why this key type is address-ordered, or None if it is not."""
    for v in arg_toks:
        if v.kind == "punct" and v.value == "*":
            return "raw pointer key"
        if v.kind == "id" and v.value in _SMART:
            return f"{v.value} key (orders by the held address)"
    return None


@core.register
class PointerKeyedOrderingCheck(core.Check):
    name = "pointer-keyed-ordering"
    description = (
        "ordered containers and comparators keyed by pointer values "
        "iterate in address order, which varies run to run"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/"):
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            std_qualified = (
                i >= 2
                and toks[i - 1].value == "::"
                and toks[i - 2].value == "std"
            )
            if t.value in _ORDERED and std_qualified:
                if i + 1 >= len(toks) or toks[i + 1].value != "<":
                    continue
                reason = _is_pointerish(_first_template_arg(toks, i + 1))
                if reason is not None:
                    out.append(
                        self.violation(
                            src, t.line,
                            f"std::{t.value} with {reason}: iteration is "
                            f"in address order, which differs between "
                            f"runs; key by a stable id instead",
                        )
                    )
            elif t.value in _COMPARATORS and std_qualified:
                if i + 1 >= len(toks) or toks[i + 1].value != "<":
                    continue
                close = tokutil.skip_template_args(toks, i + 1)
                arg = toks[i + 2 : close - 1]
                if any(v.kind == "punct" and v.value == "*" for v in arg):
                    out.append(
                        self.violation(
                            src, t.line,
                            f"std::{t.value}<T*> compares addresses, "
                            f"which differ between runs; compare a "
                            f"stable id instead",
                        )
                    )
        return out
