"""Check plugins. Importing this package registers every check.

Adding a check: create a module here, subclass core.Check, decorate with
@core.register, and import the module below.  The check's `name` is its
stable public identity — it is what suppression annotations and baseline
entries refer to — so renaming one is a breaking change.
"""

from checks import (  # noqa: F401
    check_message,
    flat_envelope_bypass,
    float_reduction_order,
    include_root,
    medium_registry_bypass,
    metric_name_literal,
    nondeterminism_source,
    parallel_body_write,
    pointer_keyed_ordering,
    raw_double,
    raw_stream,
    unordered_iteration,
)
