"""parallel-body-write: the PR 4 slot discipline, statically.

Lambdas passed to util::parallel_for / util::parallel_map may write
captured-by-reference state only through *index-subscripted slots*:
`out[i] = ...` (or a reference bound to `out[i]`), where `i` is the
lambda's index parameter.  Every worker then owns a disjoint slot and the
caller performs the ordered reduction serially — the property that makes
any schedule produce identical bits.  ThreadSanitizer cannot verify this:
two workers writing the same slot through a mutex is race-free but still
schedule-dependent, i.e. a determinism bug, not a data race.

Flagged: assignments (including compound assignment and ++/--) inside a
parallel body whose left-hand side resolves to a captured identifier that
is neither a body-local nor subscripted by the index parameter.

Heuristic limits (by design): writes through member function calls
(`captured.push_back(x)`) and through pointers handed out of the body are
not modeled; those stay the TSan + equivalence suite's job.
"""

from __future__ import annotations

import core
import tokutil

# The primitive's own implementation distributes work and may write shared
# coordination state under its own discipline.
EXEMPT_PREFIXES = ("src/util/thread_pool.",)

_INCDEC = {"++", "--"}


@core.register
class ParallelBodyWriteCheck(core.Check):
    name = "parallel-body-write"
    description = (
        "parallel_for/parallel_map bodies may write captured state only "
        "through slots subscripted by the index parameter"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/") or src.in_dir(*EXEMPT_PREFIXES):
            return []
        out = []
        toks = src.code_tokens
        for lam in tokutil.find_parallel_lambdas(toks):
            for j in range(lam.body_start + 1, lam.body_end):
                t = toks[j]
                if t.kind != "punct":
                    continue
                if t.value in tokutil.ASSIGN_OPS:
                    lhs = tokutil.resolve_lhs(toks, j, lam.index_param)
                    if lhs is None:
                        continue
                    if lhs.root in lam.locals or lhs.root == lam.index_param:
                        continue
                    if lhs.slot_indexed:
                        continue
                    out.append(
                        self.violation(
                            src, t.line,
                            f"write to captured '{lhs.root}' inside a "
                            f"{lam.call_name} body is not through an "
                            f"index-subscripted slot "
                            f"('{lhs.root}[{lam.index_param or 'i'}]'); "
                            f"schedule-dependent writes break the "
                            f"determinism contract (DESIGN.md §8)",
                        )
                    )
                elif t.value in _INCDEC:
                    # Postfix: path ends just before the operator; prefix:
                    # path starts right after it.  resolve_lhs handles the
                    # postfix case; for prefix, the next token must be the
                    # path's first identifier.
                    lhs = tokutil.resolve_lhs(toks, j, lam.index_param)
                    if lhs is None and j + 1 < lam.body_end:
                        nxt = toks[j + 1]
                        if nxt.kind == "id":
                            lhs = tokutil.LhsPath(
                                root=nxt.value,
                                root_index=j + 1,
                                slot_indexed=(
                                    lam.index_param != ""
                                    and j + 4 < len(toks)
                                    and toks[j + 2].value == "["
                                    and toks[j + 3].value == lam.index_param
                                    and toks[j + 4].value == "]"
                                ),
                            )
                    if lhs is None:
                        continue
                    if lhs.root in lam.locals or lhs.root == lam.index_param:
                        continue
                    if lhs.slot_indexed:
                        continue
                    out.append(
                        self.violation(
                            src, t.line,
                            f"increment of captured '{lhs.root}' inside a "
                            f"{lam.call_name} body: cross-worker counters "
                            f"are schedule-dependent; count per-slot and "
                            f"reduce serially after the join",
                        )
                    )
        return out
