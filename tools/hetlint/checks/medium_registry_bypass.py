"""medium-registry-bypass: src/core must not name a concrete medium.

The admission pipeline (DESIGN.md §14) treats a connection's path as a
data-driven sequence of HopSpecs resolved through servers::MediumRegistry;
src/core composes the AccessMedium / BackboneMedium interfaces the
registry hands back.  Naming a concrete medium server class (the FDDI
timed-token MAC, the TDMA schedule, the 802.5 MAC) or a medium-specific
conversion factory inside src/core re-hardwires the FDDI-ATM-FDDI chain
the registry exists to make pluggable — a new medium would then need core
edits instead of a registration.  Generic servers (FifoMuxServer,
ConstantDelayServer) are fine: they carry no medium identity.
"""

from __future__ import annotations

import core

# Concrete medium server classes, their parameter structs, and the
# medium-specific conversion factories.  Generic building blocks
# (FifoMuxServer, ConstantDelayServer, ServerChain) are deliberately
# absent: the check polices medium identity, not server usage.
BANNED = frozenset({
    "FddiMacServer",
    "FddiMacParams",
    "TdmaMacServer",
    "TdmaMacParams",
    "TokenRingMacServer",
    "make_frame_to_cell_server",
    "make_cell_to_frame_server",
})


@core.register
class MediumRegistryBypassCheck(core.Check):
    name = "medium-registry-bypass"
    description = ("src/core must not name concrete medium server classes; "
                   "resolve media through servers::MediumRegistry")

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/core/"):
            return []
        out = []
        for t in src.code_tokens:
            if t.kind != "id" or t.value not in BANNED:
                continue
            out.append(
                self.violation(
                    src, t.line,
                    f"src/core must not name the concrete medium symbol "
                    f"'{t.value}'; go through the AccessMedium / "
                    f"BackboneMedium interfaces resolved by "
                    f"servers::MediumRegistry",
                )
            )
        return out
