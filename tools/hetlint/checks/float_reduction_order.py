"""float-reduction-order: floating-point reductions must have a fixed order.

Floating-point addition is not associative: the same multiset of doubles
summed in two different orders produces different bits, so any reduction
whose order depends on scheduling silently breaks the bit-identical
contract even when it is perfectly race-free.  The approved pattern
(DESIGN.md §8) is slot-per-worker accumulation plus a *serial* caller-side
reduction in index order (util::parallel_map + a plain loop, or
RunningStats::merge in slot order).

Flagged:
  * std::reduce / std::transform_reduce anywhere in src/ — their execution
    order is unspecified even without an execution policy argument in
    spirit, and with one it is explicitly unsequenced;
  * std::accumulate called inside a parallel body — each worker folding a
    shared or partial sequence is one refactor away from a cross-worker
    reduction; hoist it out of the body or reduce serially after the join;
  * `+=` / `-=` on captured (non-slot) state inside a parallel body — the
    classic `total += part` cross-worker sum.
"""

from __future__ import annotations

import core
import tokutil

EXEMPT_PREFIXES = (
    "src/util/stats.",  # RunningStats: the approved merge-in-slot-order home
    "src/util/thread_pool.",  # the primitive itself
)

_UNSEQUENCED = {
    "reduce": "std::reduce folds in unspecified order",
    "transform_reduce": "std::transform_reduce folds in unspecified order",
}


@core.register
class FloatReductionOrderCheck(core.Check):
    name = "float-reduction-order"
    description = (
        "floating-point reductions must use the approved serial "
        "(index-ordered) reduction pattern, never a schedule-dependent one"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/") or src.in_dir(*EXEMPT_PREFIXES):
            return []
        out = []
        toks = src.code_tokens
        # std::reduce / std::transform_reduce anywhere in library code.
        for i, t in enumerate(toks):
            if (
                t.kind == "id"
                and t.value in _UNSEQUENCED
                and i >= 2
                and toks[i - 1].value == "::"
                and toks[i - 2].value == "std"
                and i + 1 < len(toks)
                and toks[i + 1].value == "("
            ):
                out.append(
                    self.violation(
                        src, t.line,
                        f"{_UNSEQUENCED[t.value]}; float reductions must "
                        f"be serial and index-ordered (accumulate per "
                        f"slot, reduce after the join)",
                    )
                )
        # Reductions lexically inside parallel bodies.
        for lam in tokutil.find_parallel_lambdas(toks):
            for j in range(lam.body_start + 1, lam.body_end):
                t = toks[j]
                if (
                    t.kind == "id"
                    and t.value == "accumulate"
                    and j >= 2
                    and toks[j - 1].value == "::"
                    and toks[j - 2].value == "std"
                ):
                    out.append(
                        self.violation(
                            src, t.line,
                            f"std::accumulate inside a {lam.call_name} "
                            f"body: fold into this worker's slot and "
                            f"reduce serially after the join",
                        )
                    )
                elif t.kind == "punct" and t.value in ("+=", "-="):
                    lhs = tokutil.resolve_lhs(toks, j, lam.index_param)
                    if lhs is None:
                        continue
                    if lhs.root in lam.locals or lhs.root == lam.index_param:
                        continue
                    if lhs.slot_indexed:
                        continue
                    out.append(
                        self.violation(
                            src, t.line,
                            f"'{lhs.root} {t.value} ...' inside a "
                            f"{lam.call_name} body accumulates in "
                            f"schedule order; floating-point sums are "
                            f"order-sensitive — accumulate into "
                            f"'{lhs.root}[{lam.index_param or 'i'}]' and "
                            f"reduce serially after the join",
                        )
                    )
        return out
