"""flat-envelope-bypass: src/core must not evaluate envelope trees itself.

Tier-A admission screening (DESIGN.md §11) is fast because the hot path
works on FlatEnvelope segment arrays and memoized analyzer products, never
on the symbolic expression tree behind `Envelope::bits()`.  A direct
`.bits(` / `->bits(` member call in src/core reintroduces the tree walk
the tiers exist to avoid, and it bypasses the rasterize/flatten layers
whose rounding direction the soundness argument depends on.  Envelope
evaluation belongs in src/traffic (kernels, rasterize, flatten) and
src/servers (the analyzers); src/core composes their products.
"""

from __future__ import annotations

import core


@core.register
class FlatEnvelopeBypassCheck(core.Check):
    name = "flat-envelope-bypass"
    description = ("src/core must not call Envelope::bits() directly; "
                   "evaluate via the flat kernels or the analyzers")

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/core/"):
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value != "bits":
                continue
            if i == 0 or toks[i - 1].value not in (".", "->"):
                continue  # free function / namespace-qualified: not a member
            if i + 1 >= len(toks) or toks[i + 1].value != "(":
                continue  # member access without a call (e.g. a field)
            out.append(
                self.violation(
                    src, t.line,
                    "src/core must not walk envelope expression trees via "
                    "bits(); go through the flat kernels (src/traffic/"
                    "flat.h) or the delay analyzers instead",
                )
            )
        return out
