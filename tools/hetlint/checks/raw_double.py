"""raw-double: physical quantities in public headers use strong unit types.

Function parameters, struct/class fields, and return types declared as raw
`double` in src/ headers must not denote a physical quantity (time, data,
bandwidth); those are Seconds / Bits / BitsPerSecond from src/util/units.h
so the compiler rejects unit mix-ups.  Dimensionless doubles (beta, ratios,
utilization, fill, ...) stay doubles.
"""

from __future__ import annotations

import re

import core

# Names that denote a physical quantity and therefore must be a strong unit
# type in a public (src/) header.  Matched against the declared name with
# any trailing member-underscore stripped and lowercased.
QUANTITY_NAME = re.compile(
    r"""^(?:
        .*_(?:s|ms|us|ns|sec|secs|seconds)   # time suffixes: horizon_s, p_ms
      | .*(?:time|delay|deadline|interval|horizon|period|lifetime|ttrt
           |latency|duration|arrival)\w*
      | .*_(?:bits|bytes|kbits|mbits)        # data suffixes
      | .*(?:burst|backlog|buffer)\w*
      | .*(?:rate|capacity|bandwidth|bps)\w*
    )$""",
    re.VERBOSE,
)

# Names that look physical but are legitimately dimensionless or counts.
# burn_rate is the SLO budget-consumption multiplier (fraction / fraction).
QUANTITY_NAME_EXEMPT = re.compile(
    r"^(?:beta|alpha|ratio|fraction|fill|utilization|u|scale|factor"
    r"|burn_rate|num_\w+|n_\w+|count\w*|steps?\w*)$"
)

# Token immediately after `double NAME` classifying the declaration.
_PARAM_NEXT = {",", ")"}
_FIELD_NEXT = {";", "{"}


@core.register
class RawDoubleCheck(core.Check):
    name = "raw-double"
    description = (
        "quantity-named double parameters, fields, and return types in "
        "src/ headers must use Seconds/Bits/BitsPerSecond"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/") or not src.rel_path.endswith((".h", ".hpp")):
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value != "double":
                continue
            if i + 2 >= len(toks) or toks[i + 1].kind != "id":
                continue
            name_tok = toks[i + 1]
            after = toks[i + 2]
            if after.kind != "punct":
                continue
            normalized = name_tok.value.rstrip("_").lower()
            if QUANTITY_NAME_EXEMPT.match(normalized):
                continue
            if not QUANTITY_NAME.match(normalized):
                continue
            if after.value in _PARAM_NEXT:
                kind = "parameter"
            elif after.value == "=":
                kind = "defaulted declaration"
            elif after.value in _FIELD_NEXT:
                kind = "field"
            elif after.value == "(":
                kind = "function return type"
            else:
                continue
            out.append(
                self.violation(
                    src, name_tok.line,
                    f"{kind} '{name_tok.value}' denotes a physical "
                    f"quantity; use Seconds/Bits/BitsPerSecond",
                )
            )
        return out
