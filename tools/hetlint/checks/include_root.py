"""include-root: quoted project includes must be rooted at the repo top.

`#include "src/util/units.h"` — never relative ("../util/units.h") or bare
("units.h").  Repo-rooted includes make every file's dependencies greppable
and keep the build working from a single -I at the repo root.
"""

from __future__ import annotations

import core

ALLOWED_ROOTS = ("src/", "tests/", "bench/", "examples/")


@core.register
class IncludeRootCheck(core.Check):
    name = "include-root"
    description = (
        "quoted #include paths must start with src/, tests/, bench/, or "
        "examples/"
    )

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value != "include":
                continue
            if i == 0 or toks[i - 1].value != "#":
                continue
            if i + 1 >= len(toks) or toks[i + 1].kind != "str":
                continue  # <system> includes are unconstrained
            target = toks[i + 1].value.strip('"')
            if not target.startswith(ALLOWED_ROOTS):
                out.append(
                    self.violation(
                        src, t.line,
                        f'"{target}" must be rooted at the repo top '
                        f"(src/..., tests/...)",
                    )
                )
        return out
