"""check-message: every HETNET_CHECK carries a human-readable message.

A bare `HETNET_CHECK(cond)` aborts with nothing but a stringified
condition; the second argument is the sentence a future debugger reads
first, so it is mandatory everywhere except the macro's own definition.
"""

from __future__ import annotations

import core
import tokutil


@core.register
class CheckMessageCheck(core.Check):
    name = "check-message"
    description = "HETNET_CHECK must carry a message (second macro argument)"

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if src.rel_path == "src/util/check.h":  # the macro's own definition
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value != "HETNET_CHECK":
                continue
            if i + 1 >= len(toks) or toks[i + 1].value != "(":
                continue
            if tokutil.top_level_commas(toks, i + 1) == 0:
                out.append(
                    self.violation(
                        src, t.line,
                        "HETNET_CHECK must carry a message explaining the "
                        "violated invariant",
                    )
                )
        return out
