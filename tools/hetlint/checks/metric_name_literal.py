"""metric-name-literal: metric names in src/ come from src/obs/names.h.

MetricsRegistry::counter/gauge/histogram/register_callback are
find-or-create: a typo'd name does not error, it silently mints a fresh
dead series while the intended one stays flat — the worst failure mode
an observability plane can have, because it looks like working telemetry.
The guard is a single constant table (src/obs/names.h): call sites in
src/ must pass a named constant (or an expression built from one, e.g.
the epoch-suffix concatenation in admissiond), never a string literal.
Tools, benches, and tests may still use ad-hoc literals — they own their
registries end to end, so a typo is locally visible.
"""

from __future__ import annotations

import core

REGISTRY_CALLS = frozenset({
    "counter",
    "gauge",
    "histogram",
    "register_callback",
})

# The constant table itself, where the canonical spellings live.
NAMES_HEADER = "src/obs/names.h"


@core.register
class MetricNameLiteralCheck(core.Check):
    name = "metric-name-literal"
    description = ("metric/histogram names in src/ must come from the "
                   "src/obs/names.h constant table, not string literals")

    def run(self, src: core.SourceFile) -> list[core.Violation]:
        if not src.in_dir("src/") or src.rel_path == NAMES_HEADER:
            return []
        out = []
        toks = src.code_tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.value not in REGISTRY_CALLS:
                continue
            if i + 2 >= len(toks):
                continue
            # Match `counter ( "literal"` — a literal-first argument. A
            # constant (identifier) or any computed expression as the
            # first argument is fine; concatenations that START with a
            # literal ("base" + suffix) are still violations, which is
            # intended: the base spelling belongs in names.h.
            if toks[i + 1].value != "(" or toks[i + 2].kind != "str":
                continue
            out.append(
                self.violation(
                    src, t.line,
                    f"metric name passed to {t.value}() as a string "
                    f"literal; use a constant from {NAMES_HEADER} (typo'd "
                    f"literals silently create dead series)",
                )
            )
        return out
