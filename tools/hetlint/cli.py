"""hetlint command-line driver.

Usage:
  tools/hetlint [paths...]            lint (defaults: src tests bench examples)
  tools/hetlint --json [paths...]     machine-readable output
  tools/hetlint --update-baseline     rewrite the baseline from current state
  tools/hetlint --list-checks         show the check catalog

Exit status: 0 when clean (all violations suppressed or baselined),
1 when actionable violations remain, 2 on usage/configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import core

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

# Directories skipped during directory expansion (never when a file is
# named explicitly): lint-test fixtures are deliberate violations.
EXCLUDED_DIR_PARTS = ("tests/lint/fixtures",)


def discover(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        p = Path(root)
        if not p.is_absolute():
            p = (REPO_ROOT / root).resolve()
        if p.is_file():
            files.append(p)  # explicit files are always linted
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for f in sorted(p.rglob("*")):
            if f.suffix not in SOURCE_SUFFIXES:
                continue
            rel = f.as_posix()
            if any(part in rel for part in EXCLUDED_DIR_PARTS):
                continue
            files.append(f)
    return files


def rel_path(path: Path, root: Path = REPO_ROOT) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_files(
    files: list[Path],
    checks: dict[str, core.Check],
    root: Path = REPO_ROOT,
) -> tuple[list[core.Violation], int]:
    """Runs checks, applies suppressions. Returns (violations, files_seen)."""
    all_violations: list[core.Violation] = []
    full_check_set = set(checks) == set(core.all_checks())
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as err:
            all_violations.append(
                core.Violation(
                    "suppression", rel_path(path, root), 0,
                    f"unreadable: {err}",
                )
            )
            continue
        src = core.SourceFile(rel_path(path, root), text)
        all_violations.extend(src.bad_annotations)
        file_violations: list[core.Violation] = []
        for check in checks.values():
            file_violations.extend(check.run(src))
        for v in file_violations:
            s = src.find_suppression(v.check, v.line)
            if s is not None:
                s.used = True
                v = core.Violation(
                    v.check, v.file, v.line, v.message, v.content,
                    suppressed=True,
                )
            all_violations.append(v)
        # A suppression that matches nothing is stale — it documents a
        # hazard that no longer exists (or a typoed line). Only meaningful
        # when every check ran.
        if full_check_set:
            for s in src.suppressions:
                if not s.used:
                    all_violations.append(
                        core.Violation(
                            "suppression", src.rel_path, s.line,
                            f"HETLINT-OK({s.check}) matches no violation "
                            f"on this or the next line; remove the stale "
                            f"annotation",
                            src.line_content(s.line),
                        )
                    )
    all_violations.sort(key=lambda v: (v.file, v.line, v.check))
    return all_violations, len(files)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hetlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as a JSON document on stdout")
    parser.add_argument("--checks", default="",
                        help="comma-separated subset of checks to run")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalog and exit")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file (default: tools/hetlint/"
                             "baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--path-root", default="",
                        help="compute check-scoping paths relative to this "
                             "directory instead of the repo root (used by "
                             "the fixture self-test to emulate src/ paths)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to cover current "
                             "unsuppressed violations (outside protected "
                             "directories) and exit")
    args = parser.parse_args(argv)

    checks = core.all_checks()
    if args.list_checks:
        width = max(len(name) for name in checks)
        for name, check in sorted(checks.items()):
            print(f"{name:<{width}}  {check.description}")
        return 0
    if args.checks:
        wanted = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in wanted if c not in checks]
        if unknown:
            print(f"hetlint: unknown check(s): {', '.join(unknown)}; "
                  f"see --list-checks", file=sys.stderr)
            return 2
        checks = {name: checks[name] for name in wanted}

    try:
        files = discover(args.paths or DEFAULT_PATHS)
    except FileNotFoundError as err:
        print(f"hetlint: {err}", file=sys.stderr)
        return 2

    root = Path(args.path_root).resolve() if args.path_root else REPO_ROOT
    violations, files_seen = lint_files(files, checks, root)

    if args.update_baseline:
        count = core.Baseline.dump(violations, Path(args.baseline))
        protected = [
            v for v in violations
            if not v.suppressed
            and v.file.startswith(core.PROTECTED_PREFIXES)
        ]
        print(f"hetlint: baseline written with {count} entr"
              f"{'y' if count == 1 else 'ies'} to {args.baseline}",
              file=sys.stderr)
        for v in protected:
            print(f"hetlint: NOT baselined (protected dir): {v.format()}",
                  file=sys.stderr)
        return 1 if protected else 0

    baseline = core.Baseline()
    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = core.Baseline.load(baseline_path)
        except core.BaselineError as err:
            print(f"hetlint: {err}", file=sys.stderr)
            return 2

    final: list[core.Violation] = []
    for v in violations:
        if not v.suppressed and v.check != "suppression" and baseline.consume(v):
            v = core.Violation(
                v.check, v.file, v.line, v.message, v.content, baselined=True
            )
        final.append(v)
    actionable = [v for v in final if not v.suppressed and not v.baselined]
    stale = baseline.unconsumed()

    if args.as_json:
        print(json.dumps(
            {
                "files_checked": files_seen,
                "violations": [v.to_json() for v in final],
                "actionable": len(actionable),
                "stale_baseline_entries": [
                    {"check": c, "file": f, "content": t}
                    for (c, f, t) in stale
                ],
            },
            indent=2,
        ))
    else:
        for v in final:
            print(v.format())
    for (c, f, t) in stale:
        print(f"hetlint: stale baseline entry ({f}: {c}: {t!r}) — the "
              f"violation is fixed; run --update-baseline to shrink the "
              f"baseline", file=sys.stderr)
    print(
        f"hetlint: {files_seen} files checked, "
        f"{len(actionable)} actionable violation(s), "
        f"{sum(1 for v in final if v.baselined)} baselined, "
        f"{sum(1 for v in final if v.suppressed)} suppressed",
        file=sys.stderr,
    )
    return 1 if actionable else 0


if __name__ == "__main__":
    sys.exit(main())
