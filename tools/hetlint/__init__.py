"""hetlint: dependency-free C++ static analysis for the hetnet-rt repo.

See DESIGN.md §10 for the check catalog and the suppression/baseline
policy.  Entry points: `python3 tools/hetlint` or the `tools/lint.py`
compatibility shim.
"""

__version__ = "1.0.0"
