"""hetlint framework: violations, check plugins, suppressions, baseline.

A check is a subclass of `Check` registered via `@register`.  Each check
receives a `SourceFile` (raw text + lexed token stream + parsed suppression
annotations) and yields `Violation`s.  The driver (cli.py) handles
suppression filtering, baseline matching, and output formatting, so checks
only ever report what they see.

Suppressions
------------
A violation is suppressed by an inline annotation on the same line or the
line directly above it:

    // HETLINT-OK(check-name): reason why this is sound

The reason is mandatory; an annotation without one (or naming an unknown
check) is itself reported under the `suppression` pseudo-check and cannot
be suppressed or baselined.

Baseline
--------
The baseline file (tools/hetlint/baseline.json) grandfathers pre-existing
violations: a violation matching an entry's (check, file, content) triple is
reported as baselined and does not fail the run.  Matching is by the
stripped source-line text, not the line number, so unrelated edits do not
invalidate entries.  Determinism-critical directories (src/core,
src/traffic) are *protected*: baseline entries pointing there are rejected
at load time — hazards in decision-making code must be fixed, not
grandfathered.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from lexer import Token, tokenize

# Directories whose violations may never be baselined: the determinism
# contract lives here, so every finding must be fixed or explicitly
# suppressed (with a reviewable reason) in the source itself.
PROTECTED_PREFIXES = ("src/core/", "src/traffic/")

SUPPRESS_RE = re.compile(
    r"HETLINT-OK\(\s*(?P<check>[a-z0-9-]*)\s*\)\s*(?::\s*(?P<reason>\S.*?))?\s*(?:\*/)?\s*$"
)
# The open paren is part of the marker so prose mentioning the annotation
# by name does not parse as one.
SUPPRESS_MARK = "HETLINT-OK("


@dataclass(frozen=True)
class Violation:
    check: str
    file: str  # repo-relative, '/'-separated
    line: int
    message: str
    content: str = ""  # stripped text of the offending line (baseline key)
    baselined: bool = False
    suppressed: bool = False

    def format(self) -> str:
        tags = []
        if self.baselined:
            tags.append("baselined")
        if self.suppressed:
            tags.append("suppressed")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        return f"{self.file}:{self.line}: {self.check}: {self.message}{suffix}"

    def to_json(self) -> dict:
        out = {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "content": self.content,
        }
        if self.baselined:
            out["baselined"] = True
        if self.suppressed:
            out["suppressed"] = True
        return out


@dataclass
class Suppression:
    line: int
    check: str
    reason: str
    used: bool = False


class SourceFile:
    """One lexed translation unit plus its suppression annotations."""

    def __init__(self, rel_path: str, text: str):
        self.rel_path = rel_path  # repo-relative, '/'-separated
        self.text = text
        self.lines = text.splitlines()
        self.tokens: list[Token] = tokenize(text)
        # Token stream with comments removed — what most checks scan.
        self.code_tokens: list[Token] = [
            t for t in self.tokens if t.kind != "comment"
        ]
        self.suppressions: list[Suppression] = []
        self.bad_annotations: list[Violation] = []
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for tok in self.tokens:
            if tok.kind != "comment" or SUPPRESS_MARK not in tok.value:
                continue
            m = SUPPRESS_RE.search(tok.value)
            check = m.group("check") if m else ""
            reason = (m.group("reason") or "") if m else ""
            if not m or not check:
                self.bad_annotations.append(
                    Violation(
                        "suppression", self.rel_path, tok.line,
                        "malformed HETLINT-OK annotation; use "
                        "// HETLINT-OK(check-name): reason",
                        self.line_content(tok.line),
                    )
                )
                continue
            if not reason:
                self.bad_annotations.append(
                    Violation(
                        "suppression", self.rel_path, tok.line,
                        f"HETLINT-OK({check}) must carry a reason after "
                        f"a colon — unexplained suppressions are "
                        f"unreviewable",
                        self.line_content(tok.line),
                    )
                )
                continue
            self.suppressions.append(Suppression(tok.line, check, reason))

    def line_content(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def in_dir(self, *prefixes: str) -> bool:
        return self.rel_path.startswith(prefixes)

    def find_suppression(self, check: str, line: int) -> Suppression | None:
        """Annotation covering `line`: same line or the line directly above."""
        for s in self.suppressions:
            if s.check == check and s.line in (line, line - 1):
                return s
        return None


class Check:
    """Base class for check plugins.

    Subclasses set `name` (kebab-case, stable — it is the suppression and
    baseline key) and `description`, and implement `run`.
    """

    name: str = ""
    description: str = ""

    def run(self, src: SourceFile) -> list[Violation]:
        raise NotImplementedError

    def violation(self, src: SourceFile, line: int, message: str) -> Violation:
        return Violation(
            self.name, src.rel_path, line, message, src.line_content(line)
        )


_REGISTRY: dict[str, Check] = {}


def register(cls: type[Check]) -> type[Check]:
    check = cls()
    if not check.name or check.name in _REGISTRY:
        raise ValueError(f"bad or duplicate check name: {check.name!r}")
    _REGISTRY[check.name] = check
    return cls


def all_checks() -> dict[str, Check]:
    # Import for registration side effects; idempotent after the first call.
    import checks  # noqa: F401

    return dict(_REGISTRY)


class BaselineError(ValueError):
    pass


class Baseline:
    """Multiset of grandfathered (check, file, content) violation triples."""

    def __init__(self, entries: list[dict] | None = None):
        self._counts: dict[tuple[str, str, str], int] = {}
        for e in entries or []:
            self.add(e["check"], e["file"], e.get("content", ""))

    @staticmethod
    def load(path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            raise BaselineError(f"{path}: not valid JSON: {err}") from err
        if not isinstance(data, dict) or not isinstance(
            data.get("entries"), list
        ):
            raise BaselineError(
                f"{path}: expected an object with an 'entries' list"
            )
        for e in data["entries"]:
            if not isinstance(e, dict) or "check" not in e or "file" not in e:
                raise BaselineError(
                    f"{path}: every entry needs 'check' and 'file' keys: {e}"
                )
            if e["file"].startswith(PROTECTED_PREFIXES):
                raise BaselineError(
                    f"{path}: entry for {e['file']} rejected — "
                    f"determinism-critical directories "
                    f"({', '.join(PROTECTED_PREFIXES)}) cannot be "
                    f"baselined; fix the violation or suppress it in "
                    f"the source with a reason"
                )
        return Baseline(data["entries"])

    def add(self, check: str, file: str, content: str) -> None:
        key = (check, file, content)
        self._counts[key] = self._counts.get(key, 0) + 1

    def consume(self, v: Violation) -> bool:
        """True (and decrements the entry) if `v` is grandfathered."""
        key = (v.check, v.file, v.content)
        left = self._counts.get(key, 0)
        if left <= 0:
            return False
        self._counts[key] = left - 1
        return True

    def unconsumed(self) -> list[tuple[str, str, str]]:
        """Stale entries: baselined violations that no longer occur."""
        return sorted(k for k, c in self._counts.items() if c > 0)

    @staticmethod
    def dump(violations: list[Violation], path: Path) -> int:
        """Writes a fresh baseline covering `violations`; returns the count.

        Violations in protected directories are *not* written (they must be
        fixed), and suppressed violations need no baseline entry.
        """
        entries = [
            {
                "check": v.check,
                "file": v.file,
                "content": v.content,
            }
            for v in violations
            if not v.suppressed
            and v.check != "suppression"
            and not v.file.startswith(PROTECTED_PREFIXES)
        ]
        entries.sort(key=lambda e: (e["file"], e["check"], e["content"]))
        payload = {
            "comment": (
                "hetlint baseline: grandfathered violations tracked until "
                "fixed. Regenerate with tools/hetlint --update-baseline. "
                "Entries under src/core/ or src/traffic/ are rejected at "
                "load time."
            ),
            "entries": entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return len(entries)
