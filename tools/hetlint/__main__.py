"""Entry point for `python3 tools/hetlint`.

Running a directory puts it at sys.path[0], so the flat modules (cli, core,
lexer, tokutil, checks/) import as top-level names.  The explicit insert
below also covers `python3 tools/hetlint/__main__.py`.
"""

import sys
from pathlib import Path

_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
