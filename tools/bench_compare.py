#!/usr/bin/env python3
"""Gate cac_microbench perf results against a committed baseline.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--min-speedup-64 X]

Both files are produced by `cac_microbench --json=...`. The gate compares
the incremental-vs-cold SPEEDUP RATIO, not absolute nanoseconds: the ratio
is a property of the algorithm (how much recomputation the memo layer
avoids), so it transfers across machines and CI runners where raw timings
do not.

Failure conditions:
  * any candidate point has decisions_match == false (the incremental
    engine diverged from the cold recompute — a correctness bug, and a
    fast wrong answer must never pass a perf gate);
  * the speedup at 64 active connections fell below --min-speedup-64
    (default 3.0, the acceptance floor for the incremental engine);
  * any point's speedup regressed to below 80% of the baseline's.

When the candidate was run with `--threads N` (N >= 2, recorded in its
"threads" field) the parallel engine is gated too:
  * any candidate point has parallel_decisions_match == false (the
    parallel engine must be bit-identical to serial);
  * the parallel speedup at 64 active fell below
    min(--min-parallel-speedup-64, 0.6 * N) — the floor scales with the
    worker count actually available, so a 2-core runner is not held to the
    8-core target. Candidates recorded at threads < 2 skip the parallel
    gate entirely (there is nothing to measure; such candidates record
    parallel_cold_ns / parallel_speedup as JSON null); the parallel floor
    is absolute, not baseline-relative, so baselines recorded on any
    machine stay valid.

Candidates that carry the tiered-CAC fields (PR 7 onward) are gated on the
tiered engine as well:
  * any candidate point has tiered_decisions_match == false (the tiered
    path must be decision-bit-identical to tiered=false);
  * the in-run tiered speedup (untiered_ns / incremental_ns, both measured
    in the same process, so the ratio transfers across machines) at 64
    active fell below --min-tiered-speedup-64 (default 5.0, the PR 7
    acceptance floor). Candidates without the fields (older bench builds)
    skip the tiered gate.
"""

import argparse
import json
import sys

REGRESSION_FRACTION = 0.8  # candidate speedup must be >= 80% of baseline


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "cac_microbench":
        sys.exit(f"{path}: not a cac_microbench result file")
    return {r["active"]: r for r in doc["results"]}, doc.get("threads", 1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--min-speedup-64", type=float, default=3.0,
                        help="absolute speedup floor at 64 active "
                             "connections (default: %(default)s)")
    parser.add_argument("--min-parallel-speedup-64", type=float, default=2.0,
                        help="parallel-engine speedup floor at 64 active, "
                             "capped at 0.6 * candidate threads "
                             "(default: %(default)s)")
    parser.add_argument("--min-tiered-speedup-64", type=float, default=5.0,
                        help="tiered-vs-untiered in-run speedup floor at 64 "
                             "active connections (default: %(default)s)")
    args = parser.parse_args()

    baseline, _ = load(args.baseline)
    candidate, cand_threads = load(args.candidate)

    failures = []
    print(f"{'active':>6} {'base speedup':>13} {'cand speedup':>13} "
          f"{'cand inc (ms)':>14} {'cand cold (ms)':>15} {'status':>8}")
    for active in sorted(baseline):
        base = baseline[active]
        cand = candidate.get(active)
        if cand is None:
            failures.append(f"candidate is missing the {active}-active point")
            continue
        status = "ok"
        if not cand.get("decisions_match", False):
            status = "DIVERGED"
            failures.append(
                f"at {active} active: incremental and cold decisions differ")
        floor = base["speedup"] * REGRESSION_FRACTION
        if cand["speedup"] < floor:
            status = "REGRESSED"
            failures.append(
                f"at {active} active: speedup {cand['speedup']:.2f}x is below "
                f"{REGRESSION_FRACTION:.0%} of baseline "
                f"{base['speedup']:.2f}x")
        if active == 64 and cand["speedup"] < args.min_speedup_64:
            status = "REGRESSED"
            failures.append(
                f"at 64 active: speedup {cand['speedup']:.2f}x is below the "
                f"absolute floor {args.min_speedup_64:.2f}x")
        if cand_threads >= 2:
            if not cand.get("parallel_decisions_match", False):
                status = "DIVERGED"
                failures.append(
                    f"at {active} active: parallel and serial decisions "
                    f"differ")
            par_floor = min(args.min_parallel_speedup_64, 0.6 * cand_threads)
            # Single-thread candidates record null; treat as absent.
            par = cand.get("parallel_speedup") or 0.0
            if active == 64 and par < par_floor:
                status = "REGRESSED"
                failures.append(
                    f"at 64 active: parallel speedup {par:.2f}x "
                    f"({cand_threads} threads) is below the floor "
                    f"{par_floor:.2f}x")
        tiered = cand.get("tiered_speedup")
        if tiered is not None:
            if not cand.get("tiered_decisions_match", False):
                status = "DIVERGED"
                failures.append(
                    f"at {active} active: tiered and untiered decisions "
                    f"differ")
            if active == 64 and tiered < args.min_tiered_speedup_64:
                status = "REGRESSED"
                failures.append(
                    f"at 64 active: tiered speedup {tiered:.2f}x is below "
                    f"the absolute floor {args.min_tiered_speedup_64:.2f}x")
        print(f"{active:>6} {base['speedup']:>12.2f}x {cand['speedup']:>12.2f}x "
              f"{cand['incremental_ns'] / 1e6:>14.2f} "
              f"{cand['cold_ns'] / 1e6:>15.2f} {status:>8}")
        if cand_threads >= 2:
            print(f"       parallel({cand_threads} threads): "
                  f"{cand.get('parallel_speedup') or 0.0:.2f}x vs serial "
                  f"cold, {(cand.get('parallel_cold_ns') or 0) / 1e6:.2f} ms")
        if tiered is not None:
            tiers = (f"screen_admit={cand.get('screen_admit', 0)} "
                     f"screen_reject={cand.get('screen_reject', 0)} "
                     f"fallback={cand.get('fallback', 0)}")
            print(f"       tiered: {tiered:.2f}x vs untiered in-run, {tiers}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\nOK: incremental-engine speedups hold against the baseline")


if __name__ == "__main__":
    main()
