#!/usr/bin/env python3
"""Gate bench JSON results against a committed baseline.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [options]

Both files must be produced by the same bench binary; the "bench" field
dispatches the gate. Gates prefer IN-RUN RATIOS over absolute nanoseconds:
a ratio (speedup, cliff) is a property of the algorithm, so it transfers
across machines and CI runners where raw timings do not. The few absolute
floors are set conservatively low for the same reason.

cac_microbench (`cac_microbench --json=...`) fails when:
  * any candidate point has decisions_match == false (the incremental
    engine diverged from the cold recompute — a correctness bug, and a
    fast wrong answer must never pass a perf gate);
  * the speedup at 64 active connections fell below --min-speedup-64
    (default 3.0, the acceptance floor for the incremental engine);
  * any point's speedup regressed to below 80% of the baseline's.

When the cac_microbench candidate was run with `--threads N` (N >= 2,
recorded in its "threads" field) the parallel engine is gated too:
  * any candidate point has parallel_decisions_match == false (the
    parallel engine must be bit-identical to serial);
  * the parallel speedup at 64 active fell below
    min(--min-parallel-speedup-64, 0.6 * N) — the floor scales with the
    worker count actually available, so a 2-core runner is not held to the
    8-core target. Candidates recorded at threads < 2 skip the parallel
    gate entirely (there is nothing to measure; such candidates record
    parallel_cold_ns / parallel_speedup as JSON null); the parallel floor
    is absolute, not baseline-relative, so baselines recorded on any
    machine stay valid.

cac_microbench candidates that carry the tiered-CAC fields (PR 7 onward)
are gated on the tiered engine as well:
  * any candidate point has tiered_decisions_match == false (the tiered
    path must be decision-bit-identical to tiered=false);
  * the in-run tiered speedup (untiered_ns / incremental_ns, both measured
    in the same process, so the ratio transfers across machines) at 64
    active fell below --min-tiered-speedup-64 (default 5.0, the PR 7
    acceptance floor). Candidates without the fields (older bench builds)
    skip the tiered gate.

admissiond_bench (`admissiond_bench json=...`) fails when:
  * decisions_match == false (the batched/parallel service diverged from
    its own serial replay — the admissiond determinism contract);
  * evictions == 0 (the run never rotated a cache generation, so the
    cliff metric measured nothing and the scenario has silently drifted);
  * eviction_cliff_ratio (post-eviction p99 / steady p50, in-run) exceeds
    --max-cliff-ratio (default 3.0, the PR 8 acceptance bar: generational
    eviction must keep post-eviction latency at steady state);
  * sustained_throughput fell below --min-throughput (default 1000 req/s —
    a deliberately loose absolute floor that only catches order-of-
    magnitude collapses, since raw throughput does not transfer across
    machines).

admissiond_bench candidates that carry the telemetry fields (PR 10
onward) are additionally gated on the telemetry plane:
  * telemetry_decisions_match == false (turning the flight recorder and
    SLO monitor on changed a decision — the observation-only contract is
    broken);
  * telemetry_overhead (steady p50 with telemetry on / off, both measured
    in the same process so the ratio transfers across machines) exceeds
    --max-telemetry-overhead (default 1.05: the always-on plane may cost
    at most 5% on the hot digest-hit path). Candidates without the fields
    (older bench builds) skip the telemetry gate.
"""

import argparse
import json
import sys

REGRESSION_FRACTION = 0.8  # candidate speedup must be >= 80% of baseline


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "bench" not in doc:
        sys.exit(f"{path}: no 'bench' field; not a bench result file")
    return doc


def compare_cac_microbench(base_doc, cand_doc, args):
    baseline = {r["active"]: r for r in base_doc["results"]}
    candidate = {r["active"]: r for r in cand_doc["results"]}
    cand_threads = cand_doc.get("threads", 1)

    failures = []
    print(f"{'active':>6} {'base speedup':>13} {'cand speedup':>13} "
          f"{'cand inc (ms)':>14} {'cand cold (ms)':>15} {'status':>8}")
    for active in sorted(baseline):
        base = baseline[active]
        cand = candidate.get(active)
        if cand is None:
            failures.append(f"candidate is missing the {active}-active point")
            continue
        status = "ok"
        if not cand.get("decisions_match", False):
            status = "DIVERGED"
            failures.append(
                f"at {active} active: incremental and cold decisions differ")
        floor = base["speedup"] * REGRESSION_FRACTION
        if cand["speedup"] < floor:
            status = "REGRESSED"
            failures.append(
                f"at {active} active: speedup {cand['speedup']:.2f}x is below "
                f"{REGRESSION_FRACTION:.0%} of baseline "
                f"{base['speedup']:.2f}x")
        if active == 64 and cand["speedup"] < args.min_speedup_64:
            status = "REGRESSED"
            failures.append(
                f"at 64 active: speedup {cand['speedup']:.2f}x is below the "
                f"absolute floor {args.min_speedup_64:.2f}x")
        if cand_threads >= 2:
            if not cand.get("parallel_decisions_match", False):
                status = "DIVERGED"
                failures.append(
                    f"at {active} active: parallel and serial decisions "
                    f"differ")
            par_floor = min(args.min_parallel_speedup_64, 0.6 * cand_threads)
            # Single-thread candidates record null; treat as absent.
            par = cand.get("parallel_speedup") or 0.0
            if active == 64 and par < par_floor:
                status = "REGRESSED"
                failures.append(
                    f"at 64 active: parallel speedup {par:.2f}x "
                    f"({cand_threads} threads) is below the floor "
                    f"{par_floor:.2f}x")
        tiered = cand.get("tiered_speedup")
        if tiered is not None:
            if not cand.get("tiered_decisions_match", False):
                status = "DIVERGED"
                failures.append(
                    f"at {active} active: tiered and untiered decisions "
                    f"differ")
            if active == 64 and tiered < args.min_tiered_speedup_64:
                status = "REGRESSED"
                failures.append(
                    f"at 64 active: tiered speedup {tiered:.2f}x is below "
                    f"the absolute floor {args.min_tiered_speedup_64:.2f}x")
        print(f"{active:>6} {base['speedup']:>12.2f}x {cand['speedup']:>12.2f}x "
              f"{cand['incremental_ns'] / 1e6:>14.2f} "
              f"{cand['cold_ns'] / 1e6:>15.2f} {status:>8}")
        if cand_threads >= 2:
            print(f"       parallel({cand_threads} threads): "
                  f"{cand.get('parallel_speedup') or 0.0:.2f}x vs serial "
                  f"cold, {(cand.get('parallel_cold_ns') or 0) / 1e6:.2f} ms")
        if tiered is not None:
            tiers = (f"screen_admit={cand.get('screen_admit', 0)} "
                     f"screen_reject={cand.get('screen_reject', 0)} "
                     f"fallback={cand.get('fallback', 0)}")
            print(f"       tiered: {tiered:.2f}x vs untiered in-run, {tiers}")

    return failures, "incremental-engine speedups hold against the baseline"


def compare_admissiond(base_doc, cand_doc, args):
    failures = []
    cliff = cand_doc.get("eviction_cliff_ratio", 0.0)
    evictions = cand_doc.get("evictions", 0)
    throughput = cand_doc.get("sustained_throughput", 0.0)
    if not cand_doc.get("decisions_match", False):
        failures.append(
            "admissiond decisions diverge from the serial replay — the "
            "determinism contract is broken")
    if evictions == 0:
        failures.append(
            "the run recorded zero evictions; the cliff metric measured "
            "nothing (scenario drift?)")
    if cliff > args.max_cliff_ratio:
        failures.append(
            f"eviction cliff ratio {cliff:.2f} (post-eviction p99 "
            f"{cand_doc.get('post_eviction_p99_ns', 0)} ns / steady p50 "
            f"{cand_doc.get('steady_p50_ns', 0)} ns) exceeds the bar "
            f"{args.max_cliff_ratio:.2f}")
    if throughput < args.min_throughput:
        failures.append(
            f"sustained throughput {throughput:.0f} req/s fell below the "
            f"collapse floor {args.min_throughput:.0f} req/s")
    overhead = cand_doc.get("telemetry_overhead")
    if overhead is not None:
        if not cand_doc.get("telemetry_decisions_match", False):
            failures.append(
                "decisions changed when telemetry was enabled — the "
                "observation-only contract is broken")
        if overhead > args.max_telemetry_overhead:
            failures.append(
                f"telemetry-on steady p50 is {overhead:.3f}x the "
                f"telemetry-off p50, above the ceiling "
                f"{args.max_telemetry_overhead:.2f}x")
    base_cliff = base_doc.get("eviction_cliff_ratio", 0.0)
    print(f"{'':>12} {'baseline':>12} {'candidate':>12}")
    print(f"{'cliff':>12} {base_cliff:>12.2f} {cliff:>12.2f}")
    print(f"{'evictions':>12} {base_doc.get('evictions', 0):>12} "
          f"{evictions:>12}")
    print(f"{'req/s':>12} {base_doc.get('sustained_throughput', 0):>12.0f} "
          f"{throughput:>12.0f}")
    print(f"{'steady p50':>12} {base_doc.get('steady_p50_ns', 0):>10} ns "
          f"{cand_doc.get('steady_p50_ns', 0):>10} ns")
    print(f"{'post p99':>12} "
          f"{base_doc.get('post_eviction_p99_ns', 0):>10} ns "
          f"{cand_doc.get('post_eviction_p99_ns', 0):>10} ns")
    if overhead is not None:
        print(f"{'telemetry':>12} "
              f"{base_doc.get('telemetry_overhead', 0.0):>11.3f}x "
              f"{overhead:>11.3f}x")
    return failures, ("admissiond SLO holds: decisions deterministic, no "
                      "post-eviction latency cliff, telemetry within "
                      "budget")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--min-speedup-64", type=float, default=3.0,
                        help="cac_microbench: absolute speedup floor at 64 "
                             "active connections (default: %(default)s)")
    parser.add_argument("--min-parallel-speedup-64", type=float, default=2.0,
                        help="cac_microbench: parallel-engine speedup floor "
                             "at 64 active, capped at 0.6 * candidate "
                             "threads (default: %(default)s)")
    parser.add_argument("--min-tiered-speedup-64", type=float, default=5.0,
                        help="cac_microbench: tiered-vs-untiered in-run "
                             "speedup floor at 64 active connections "
                             "(default: %(default)s)")
    parser.add_argument("--max-cliff-ratio", type=float, default=3.0,
                        help="admissiond_bench: ceiling on post-eviction "
                             "p99 / steady p50 (default: %(default)s)")
    parser.add_argument("--max-telemetry-overhead", type=float, default=1.05,
                        help="admissiond_bench: ceiling on the in-run "
                             "telemetry-on / telemetry-off steady-p50 ratio "
                             "(default: %(default)s)")
    parser.add_argument("--min-throughput", type=float, default=1000.0,
                        help="admissiond_bench: absolute sustained-"
                             "throughput collapse floor in req/s "
                             "(default: %(default)s)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    if base_doc["bench"] != cand_doc["bench"]:
        sys.exit(f"bench mismatch: baseline is {base_doc['bench']!r}, "
                 f"candidate is {cand_doc['bench']!r}")

    gates = {
        "cac_microbench": compare_cac_microbench,
        "admissiond_bench": compare_admissiond,
    }
    gate = gates.get(cand_doc["bench"])
    if gate is None:
        sys.exit(f"no gate registered for bench {cand_doc['bench']!r}")
    failures, ok_message = gate(base_doc, cand_doc, args)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {ok_message}")


if __name__ == "__main__":
    main()
