// Factory-floor control: hard real-time periodic traffic — the other
// workload family timed-token rings were built for. Sensor readings and
// actuator commands are small, strictly periodic, and miss-intolerant.
//
//   build/examples/factory_control
//
// Demonstrates (a) that many small tight-deadline flows coexist with a bulk
// transfer on the same network, (b) the buffer provisioning report the
// analysis produces (the "no buffer overflow" half of the QoS contract),
// and (c) graceful rejection once the rings' synchronous capacity is spent.
#include <cstdio>
#include <memory>

#include "src/core/cac.h"
#include "src/core/provisioning.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

using namespace hetnet;

int main() {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::CacConfig config;
  config.beta = 0.4;  // conservative-lean inside the paper's robust range
  core::AdmissionController cac(&topo, config);

  // Ring 0: sensor field. Ring 1: controller site. Ring 2: archive.
  net::ConnectionId next_id = 1;
  int admitted = 0;
  int attempted = 0;

  // 1) Control loops: 2-kbit samples every 5 ms (400 kb/s), 40 ms deadline (the 8 ms TTRT makes ~33 ms the physical floor),
  //    one per sensor host.
  for (int host = 0; host < 4; ++host) {
    net::ConnectionSpec loop;
    loop.id = next_id++;
    loop.src = {0, host};
    loop.dst = {1, host};
    loop.source =
        std::make_shared<PeriodicEnvelope>(units::kbits(2), units::ms(5));
    loop.deadline = units::ms(40);
    ++attempted;
    const auto d = cac.request(loop);
    std::printf("control loop from sensor %d: %s", host,
                d.admitted ? "admitted" : "rejected");
    if (d.admitted) {
      ++admitted;
      std::printf(" (bound %.2f ms, H_S %.0f µs)", val(d.worst_case_delay) * 1e3,
                  val(d.alloc.h_s) * 1e6);
    }
    std::printf("\n");
  }

  // 2) A bulk archive transfer sharing the backbone (souped-up deadline —
  //    it only needs throughput, so it declares a loose 200 ms bound).
  net::ConnectionSpec archive;
  archive.id = next_id++;
  archive.src = {1, 3};
  archive.dst = {2, 0};
  archive.source = std::make_shared<DualPeriodicEnvelope>(
      units::mbits(2), units::ms(100), units::kbits(200), units::ms(10));
  archive.deadline = units::ms(200);
  ++attempted;
  const auto bulk = cac.request(archive);
  if (bulk.admitted) ++admitted;
  std::printf("archive transfer (20 Mb/s): %s\n",
              bulk.admitted ? "admitted" : "rejected");

  // 3) Buffer provisioning: what must each element of the sensor path hold?
  std::vector<core::ConnectionInstance> active;
  for (const auto& [id, conn] : cac.active()) {
    active.push_back({conn.spec, conn.alloc});
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i].spec.id != 1) continue;
    const auto breakdown = cac.analyzer().breakdown(active, i);
    if (!breakdown.has_value()) break;
    std::printf("\nbuffer provisioning for control loop 1:\n");
    Bits total;
    for (const auto& stage : breakdown->stages) {
      std::printf("  %-28s %8.0f bits\n", stage.server_name.c_str(),
                  val(stage.analysis.buffer_required));
      total += stage.analysis.buffer_required;
    }
    std::printf("  %-28s %8.0f bits (%.1f kB)\n", "TOTAL PATH", val(total),
                val(total) / 8e3);
  }

  // 4) Saturate: keep adding loops until the CAC says no.
  std::printf("\nsaturating with additional 400 kb/s loops:\n");
  for (int extra = 0; extra < 16; ++extra) {
    net::ConnectionSpec loop;
    loop.id = next_id++;
    loop.src = {2, extra % 4};
    loop.dst = {1, extra % 4};
    loop.source =
        std::make_shared<PeriodicEnvelope>(units::kbits(2), units::ms(5));
    loop.deadline = units::ms(40);
    ++attempted;
    const auto d = cac.request(loop);
    if (d.admitted) {
      ++admitted;
      continue;
    }
    std::printf("  rejection after %d admissions (reason: %s)\n", admitted,
                d.reason == core::RejectReason::kNoSyncBandwidth
                    ? "synchronous bandwidth exhausted"
                    : "deadline infeasible under current load");
    break;
  }
  std::printf("admitted %d of %d requests; every admitted contract is "
              "guaranteed by construction.\n",
              admitted, attempted);

  // 5) The full provisioning report a deployment would dimension from.
  std::printf("\n%s", core::provisioning_report(cac).to_string().c_str());
  return 0;
}
