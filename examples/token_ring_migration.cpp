// Migrating an IEEE 802.5 token-ring site onto the ATM backbone — the
// Section-7 extension exercised as an application.
//
//   build/examples/token_ring_migration
//
// A plant still runs 16 Mb/s 802.5 rings. The same decomposition analysis
// applies: swap the FDDI_MAC server for the 802.5_MAC server and keep every
// other server of the path. This example builds the 802.5 → ATM → 802.5
// chain explicitly with the server vocabulary and prints the end-to-end
// guarantee for a control flow, at several ring populations (the token
// cycle — and hence the bound — degrades as stations join the ring).
#include <cstdio>
#include <memory>

#include "src/servers/chain.h"
#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fifo_mux.h"
#include "src/tokenring/tokenring.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

using namespace hetnet;

int main() {
  const tokenring::TokenRingParams ring;  // 16 Mb/s, 30 µs walk
  const Bits frame = units::bytes(512);   // one 512-byte frame per visit

  // A 400 kb/s control flow: 4-kbit samples every 10 ms, both rings alike.
  auto source = std::make_shared<PeriodicEnvelope>(units::kbits(4),
                                                   units::ms(10));

  FifoMuxParams port;
  port.capacity = units::mbps(155) * 48.0 / 53.0;
  port.non_preemption = units::bytes(53) / units::mbps(155);
  port.cell_bits = units::bytes(48);

  std::printf("802.5(16 Mb/s) → ATM → 802.5 guarantee for a 400 kb/s flow\n");
  std::printf("stations  cycle (ms)  end-to-end bound (ms)\n");
  for (int stations : {2, 4, 8, 16, 32}) {
    const Seconds cycle = tokenring::worst_cycle(
        ring, std::vector<Bits>(static_cast<std::size_t>(stations), frame));

    ServerChain chain;
    chain.append(std::make_shared<tokenring::TokenRingMacServer>(
        "802.5_S.MAC", ring, frame, cycle));
    chain.append(
        std::make_shared<ConstantDelayServer>("Delay_Line", units::us(30)));
    chain.append(make_frame_to_cell_server("ID_S.Frame_Cell", frame,
                                           units::bytes(48), units::bytes(48),
                                           units::us(50)));
    chain.append(std::make_shared<FifoMuxServer>(
        "ATM.Port", port, std::make_shared<ZeroEnvelope>()));
    chain.append(make_cell_to_frame_server("ID_R.Cell_Frame", frame,
                                           units::bytes(48), units::bytes(48),
                                           units::us(50)));
    chain.append(std::make_shared<tokenring::TokenRingMacServer>(
        "802.5_R.MAC", ring, frame, cycle));

    const auto result = chain.analyze(source);
    if (result.has_value()) {
      std::printf("%8d  %10.3f  %21.2f\n", stations, val(cycle) * 1e3,
                  val(result->total_delay) * 1e3);
    } else {
      std::printf("%8d  %10.3f  %21s\n", stations, val(cycle) * 1e3,
                  "unbounded (ring saturated)");
    }
  }
  std::printf("\nthe 802.5 MAC slots into the same chain the paper builds "
              "for FDDI —\nonly the MAC server analysis changed "
              "(Section 7).\n");
  return 0;
}
