// Capacity planning: how many standard flows fit, and which β to deploy?
//
//   build/examples/capacity_planning
//
// An operator sizing an FDDI-ATM-FDDI deployment asks two questions this
// library answers analytically (no measurement runs needed):
//   1. For a standard flow class, how does the admissible count vary with
//      the deadline the applications demand?
//   2. At my expected churn, which β maximizes admissions (the Figure-7
//      trade-off, evaluated on MY workload)?
#include <cstdio>
#include <memory>

#include "src/core/cac.h"
#include "src/sim/workload.h"
#include "src/traffic/sources.h"
#include "src/util/table.h"
#include "src/util/units.h"

using namespace hetnet;

namespace {

net::ConnectionSpec standard_flow(net::ConnectionId id, int index,
                                  Seconds deadline) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = {index % 3, (index / 3) % 4};
  spec.dst = {(index + 1) % 3, (index / 3) % 4};
  spec.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(500), units::ms(100), units::kbits(50), units::ms(10));
  spec.deadline = deadline;
  return spec;
}

}  // namespace

int main() {
  const net::AbhnTopology topo(net::paper_topology_params());

  // --- Question 1: capacity vs deadline (static packing). ---
  std::printf("capacity of the paper topology for 5 Mb/s bursty flows:\n");
  TableWriter capacity({"deadline_ms", "flows admitted", "ring-0 sync used"});
  for (double deadline_ms : {40.0, 50.0, 60.0, 80.0, 120.0}) {
    core::CacConfig config;
    config.beta = 0.5;
    core::AdmissionController cac(&topo, config);
    int admitted = 0;
    for (int i = 0; i < 12; ++i) {
      if (cac.request(standard_flow(static_cast<net::ConnectionId>(i + 1), i,
                                    units::ms(deadline_ms)))
              .admitted) {
        ++admitted;
      }
    }
    char used[32];
    std::snprintf(used, sizeof used, "%.2f / %.2f ms",
                  val(cac.ledger(0).allocated()) * 1e3,
                  val(cac.ledger(0).capacity()) * 1e3);
    capacity.add_row({TableWriter::fmt(deadline_ms, 0),
                      std::to_string(admitted), used});
  }
  std::printf("%s\n", capacity.to_ascii().c_str());

  // --- Question 2: best β under churn (dynamic admission). ---
  std::printf("admission probability under churn (offered U = 0.3):\n");
  TableWriter betas({"beta", "AP", "mean granted H_S (ms)"});
  for (double beta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::CacConfig config;
    config.beta = beta;
    sim::WorkloadParams w;
    w.num_requests = 250;
    w.warmup_requests = 40;
    w.lambda = sim::lambda_for_utilization(0.3, w, topo);
    const auto result = sim::run_admission_simulation(topo, config, w);
    betas.add_row({TableWriter::fmt(beta, 1),
                   TableWriter::fmt(result.admission.proportion(), 3),
                   TableWriter::fmt(result.granted_h_s.mean() * 1e3, 3)});
  }
  std::printf("%s", betas.to_ascii().c_str());
  std::printf("\npick the β row with the highest AP; the granted-H column "
              "shows the bandwidth cost of robustness.\n");
  return 0;
}
