// Quickstart: admit two real-time connections across an FDDI-ATM-FDDI
// network and inspect the worst-case delay budget the math guarantees.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface: build the paper's topology,
// describe traffic with a dual-periodic envelope, run connection admission
// control, and print the per-server breakdown of the end-to-end bound.
#include <cstdio>
#include <memory>

#include "src/core/cac.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

using namespace hetnet;

int main() {
  // The evaluation topology of the paper: 3 FDDI rings (100 Mb/s, TTRT
  // 8 ms) × 4 hosts, bridged by interface devices over a 155 Mb/s ATM mesh.
  const net::AbhnTopology topo(net::paper_topology_params());

  // β = 0.5: allocate halfway between the minimum the deadline needs and
  // the point where extra bandwidth stops helping (Section 5.3).
  core::CacConfig config;
  config.beta = 0.5;
  core::AdmissionController cac(&topo, config);

  // A 5 Mb/s video-like flow: 500 kbit per 100 ms delivered as 50-kbit
  // bursts every 10 ms, from host (0,0) to host (1,2), deadline 80 ms.
  net::ConnectionSpec video;
  video.id = 1;
  video.src = {0, 0};
  video.dst = {1, 2};
  video.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(500), units::ms(100), units::kbits(50), units::ms(10));
  video.deadline = units::ms(80);

  // A small periodic control flow with a tighter deadline.
  net::ConnectionSpec control;
  control.id = 2;
  control.src = {2, 1};
  control.dst = {0, 3};
  control.source =
      std::make_shared<PeriodicEnvelope>(units::kbits(8), units::ms(20));
  control.deadline = units::ms(50);

  for (const auto& spec : {video, control}) {
    const core::AdmissionDecision d = cac.request(spec);
    std::printf("connection %llu (%d,%d)->(%d,%d): %s\n",
                static_cast<unsigned long long>(spec.id), spec.src.ring,
                spec.src.index, spec.dst.ring, spec.dst.index,
                d.admitted ? "ADMITTED" : "REJECTED");
    if (!d.admitted) continue;
    std::printf("  granted H_S = %.3f ms, H_R = %.3f ms "
                "(line anchors: min %.3f, max-useful %.3f, available %.3f)\n",
                val(d.alloc.h_s) * 1e3, val(d.alloc.h_r) * 1e3,
                val(d.min_need.h_s) * 1e3, val(d.max_need.h_s) * 1e3,
                val(d.max_avail.h_s) * 1e3);
    std::printf("  worst-case end-to-end delay %.2f ms (deadline %.0f ms)\n",
                val(d.worst_case_delay) * 1e3, val(spec.deadline) * 1e3);
  }

  // Per-server delay budget of the video connection under the final state.
  std::vector<core::ConnectionInstance> active;
  for (const auto& [id, conn] : cac.active()) {
    active.push_back({conn.spec, conn.alloc});
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i].spec.id != 1) continue;
    const auto breakdown = cac.analyzer().breakdown(active, i);
    if (!breakdown.has_value()) break;
    std::printf("\ndelay budget of connection 1 (eq. 7 decomposition):\n");
    for (const auto& stage : breakdown->stages) {
      std::printf("  %-28s %8.3f ms   buffer %8.0f bits\n",
                  stage.server_name.c_str(),
                  val(stage.analysis.worst_case_delay) * 1e3,
                  val(stage.analysis.buffer_required));
    }
    std::printf("  %-28s %8.3f ms\n", "TOTAL",
                val(breakdown->total_delay) * 1e3);
  }
  return 0;
}
