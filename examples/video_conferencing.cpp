// Video conferencing across sites: the workload class the paper's
// introduction motivates — bursty multimedia flows that need hard delay
// guarantees end-to-end across legacy rings and the ATM backbone.
//
//   build/examples/video_conferencing
//
// Sets up bidirectional conference flows between three sites (one FDDI ring
// each), admits as many as the network can guarantee, then REPLAYS the
// admitted set in the packet-level simulator to show that observed delays
// stay far inside the contracts even under adversarial token rotations.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/cac.h"
#include "src/sim/packet_sim.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

using namespace hetnet;

namespace {

// One conference leg: 4 Mb/s of video (25 fps, ~20 kbit mean frames
// delivered in 40 ms frame intervals) plus its burstiness inside the frame
// interval.
net::ConnectionSpec conference_leg(net::ConnectionId id, net::HostId from,
                                   net::HostId to) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = from;
  spec.dst = to;
  spec.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(160), units::ms(40),   // 160 kbit per frame interval
      units::kbits(40), units::ms(10));   // in 40-kbit slices
  spec.deadline = units::ms(100);         // one-way video budget
  return spec;
}

}  // namespace

int main() {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::CacConfig config;
  config.beta = 0.5;
  core::AdmissionController cac(&topo, config);

  // Pairwise conferences between sites 0, 1, 2; two hosts per site join,
  // each with a send leg (the return leg originates at the remote host).
  std::vector<net::ConnectionSpec> legs;
  net::ConnectionId next_id = 1;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      for (int seat = 0; seat < 2; ++seat) {
        legs.push_back(
            conference_leg(next_id++, {a, seat}, {b, seat + 2}));
      }
    }
  }

  int admitted = 0;
  for (const auto& leg : legs) {
    const auto d = cac.request(leg);
    std::printf("leg %2llu  site %d → site %d : %-8s",
                static_cast<unsigned long long>(leg.id), leg.src.ring,
                leg.dst.ring, d.admitted ? "admitted" : "rejected");
    if (d.admitted) {
      ++admitted;
      std::printf("  H=(%.2f, %.2f) ms  bound %.1f ms", val(d.alloc.h_s) * 1e3,
                  val(d.alloc.h_r) * 1e3, val(d.worst_case_delay) * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\n%d of %zu conference legs admitted; ring allocations: ",
              admitted, legs.size());
  for (int r = 0; r < topo.num_rings(); ++r) {
    std::printf("ring%d %.2f/%.2f ms  ", r,
                val(cac.ledger(r).allocated()) * 1e3,
                val(cac.ledger(r).capacity()) * 1e3);
  }
  std::printf("\n");

  // Replay the admitted conference in the packet-level simulator with
  // aligned bursts and token rotations stretched by asynchronous traffic.
  std::vector<core::ConnectionInstance> active;
  for (const auto& [id, conn] : cac.active()) {
    active.push_back({conn.spec, conn.alloc});
  }
  const auto bounds = cac.analyzer().analyze(active);

  sim::PacketSimConfig sim_config;
  sim_config.duration = Seconds{3.0};
  sim_config.randomize_phases = false;
  sim_config.async_fill = 0.85;
  const auto replay = sim::run_packet_simulation(topo, active, sim_config);

  std::printf("\npacket-level replay (3 s, adversarial settings):\n");
  for (std::size_t i = 0; i < active.size(); ++i) {
    const auto& trace = replay.connections[i];
    std::printf(
        "  leg %2llu: %4zu frames, mean %6.2f ms, max %6.2f ms  "
        "(bound %6.2f ms — %s)\n",
        static_cast<unsigned long long>(trace.id), trace.messages_delivered,
        trace.delay.mean() * 1e3, trace.delay.max() * 1e3,
        val(bounds[i]) * 1e3,
        trace.delay.max() <= bounds[i] ? "respected" : "VIOLATED");
  }
  return 0;
}
