// Trace-driven what-if analysis: replay an exact request sequence against
// different CAC configurations.
//
//   build/examples/trace_replay [trace=/path/to/trace.csv] [beta=0.5]
//
// Without a trace file the example synthesizes one from the Section-6
// stochastic model, writes it next to the binary, and replays it — showing
// the full loop an operator would use: capture a day's requests once,
// then evaluate candidate β settings offline against the identical load.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/sim/trace.h"
#include "src/util/flags.h"

using namespace hetnet;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string path = flags.get_string("trace", "");
  const double beta_focus = flags.get("beta", 0.5);
  flags.check_unknown();

  const net::AbhnTopology topo(net::paper_topology_params());

  std::vector<sim::TraceRequest> trace;
  if (path.empty()) {
    sim::WorkloadParams w;
    w.num_requests = 250;
    w.warmup_requests = 0;
    w.lambda = sim::lambda_for_utilization(0.4, w, topo);
    trace = sim::synthesize_trace(w, topo);
    std::ofstream out("trace_replay_sample.csv");
    sim::write_trace(out, trace);
    std::printf("synthesized %zu requests (U = 0.4) → "
                "trace_replay_sample.csv\n",
                trace.size());
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    trace = sim::parse_trace(in);
    std::printf("loaded %zu requests from %s\n", trace.size(), path.c_str());
  }

  std::printf("\nreplaying the identical sequence under each policy:\n");
  std::printf("%-10s %-8s %-12s %-14s %s\n", "beta", "AP", "admitted",
              "infeasible", "no-bandwidth");
  for (double beta : {0.0, 0.25, beta_focus, 0.75, 1.0}) {
    core::CacConfig cfg;
    cfg.beta = beta;
    const auto result = sim::run_trace_simulation(topo, cfg, trace);
    std::printf("%-10.2f %-8.3f %-12zu %-14zu %zu\n", beta,
                result.admission.proportion(), result.admitted,
                result.rejected_infeasible, result.rejected_no_bandwidth);
  }
  std::printf("\nevery row saw the same arrivals, endpoints, and lifetimes — "
              "the differences are pure policy.\n");
  return 0;
}
