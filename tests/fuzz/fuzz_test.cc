// Tests for the differential soundness fuzzer itself: JSON round trips,
// deterministic generation, scenario normalization, the oracles on known
// seeds, shrinking, and repro replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/testing/fuzz/fuzzer.h"
#include "src/testing/fuzz/json.h"
#include "src/testing/fuzz/oracles.h"
#include "src/testing/fuzz/scenario.h"
#include "src/testing/fuzz/shrink.h"

namespace hetnet::fuzz {
namespace {

TEST(FuzzJsonTest, DumpParseRoundTrip) {
  json::Value v = json::Value::object();
  v.set("name", json::Value::string("line \"quoted\"\n\ttabbed"));
  v.set("count", json::Value::number(42));
  v.set("exact", json::Value::number(0.1));
  v.set("flag", json::Value::boolean(true));
  json::Value arr = json::Value::array();
  arr.push(json::Value::number(1));
  arr.push(json::Value());
  arr.push(json::Value::object());
  v.set("items", std::move(arr));

  const json::Value back = json::Value::parse(v.dump());
  EXPECT_EQ(back.str_at("name"), "line \"quoted\"\n\ttabbed");
  EXPECT_EQ(back.num_at("count"), 42);
  EXPECT_EQ(back.num_at("exact"), 0.1);  // %.17g survives the round trip
  EXPECT_TRUE(back.bool_at("flag"));
  EXPECT_EQ(back.at("items").size(), 3u);
  EXPECT_EQ(back.dump(), v.dump());
}

TEST(FuzzJsonTest, MalformedInputIsRejected) {
  EXPECT_THROW(json::Value::parse("{\"a\": }"), std::logic_error);
  EXPECT_THROW(json::Value::parse("[1, 2"), std::logic_error);
  EXPECT_THROW(json::Value::parse("{} trailing"), std::logic_error);
  EXPECT_THROW(json::Value::parse(""), std::logic_error);
}

TEST(FuzzScenarioTest, GenerationIsDeterministic) {
  for (const std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    const FuzzScenario a = generate_scenario(seed);
    const FuzzScenario b = generate_scenario(seed);
    EXPECT_EQ(scenario_to_json(a).dump(), scenario_to_json(b).dump());
  }
  EXPECT_NE(scenario_to_json(generate_scenario(1)).dump(),
            scenario_to_json(generate_scenario(2)).dump());
}

TEST(FuzzScenarioTest, GeneratedScenariosAreNormalFixpoints) {
  // The generator must only emit scenarios already inside the validity
  // envelope — normalize() may not change them.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    FuzzScenario s = generate_scenario(seed);
    const std::string before = scenario_to_json(s).dump();
    normalize_scenario(&s);
    EXPECT_EQ(before, scenario_to_json(s).dump()) << "seed " << seed;
  }
}

TEST(FuzzScenarioTest, JsonRoundTripIsLossless) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzScenario s = generate_scenario(seed);
    const FuzzScenario back = scenario_from_json(scenario_to_json(s));
    EXPECT_EQ(scenario_to_json(s).dump(), scenario_to_json(back).dump());
  }
}

TEST(FuzzScenarioTest, NormalizeRepairsInvalidScenarios) {
  FuzzScenario s = generate_scenario(3);
  s.connections.resize(1);
  s.connections[0].c2 = s.connections[0].c1 * 2.0;  // C2 > C1
  s.connections[0].p2 = s.connections[0].p1 * 3.0;  // P2 > P1
  s.connections[0].src_ring = 99;
  s.ops = {{false, 0}, {true, 5}, {true, 0}, {true, 0}, {false, 0}};
  normalize_scenario(&s);
  const FuzzConnection& c = s.connections[0];
  EXPECT_LE(val(c.c2), val(c.c1));
  EXPECT_LE(val(c.p2), val(c.p1));
  EXPECT_LT(c.src_ring, s.num_rings);
  // admit, release survive; the out-of-range and duplicate releases and the
  // re-admit are dropped.
  ASSERT_EQ(s.ops.size(), 2u);
  EXPECT_FALSE(s.ops[0].release);
  EXPECT_TRUE(s.ops[1].release);
}

TEST(FuzzOracleTest, KnownSeedsPassAllOracles) {
  // A miniature version of the fuzz_smoke ctest entry, with the packet
  // simulation scaled down: every oracle must hold on these seeds.
  OracleOptions options;
  options.sim_scale = 0.1;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const FuzzScenario s = generate_scenario(seed);
    for (const OracleResult& v : run_all_oracles(s, options)) {
      EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.oracle << ": "
                        << v.detail;
    }
  }
}

TEST(FuzzOracleTest, UnknownOracleNameIsAFailingResult) {
  const OracleResult r = run_oracle("no_such_oracle", generate_scenario(1));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("unknown oracle"), std::string::npos);
}

TEST(FuzzShrinkTest, ShrinksToMinimalFailingScenario) {
  const FuzzScenario original = generate_scenario(11);
  ASSERT_GE(original.connections.size(), 1u);
  // Artificial failure: "fails" whenever any connection has deadline below
  // one second. Minimal scenarios under the shrinker's moves keep exactly
  // one connection and one op (its admission).
  const auto still_fails = [](const FuzzScenario& s) {
    for (const FuzzConnection& c : s.connections) {
      if (c.deadline < 1.0) return true;
    }
    return false;
  };
  ASSERT_TRUE(still_fails(original));
  const ShrinkResult r = shrink_scenario(original, still_fails, 500);
  EXPECT_TRUE(still_fails(r.scenario));
  EXPECT_EQ(r.scenario.connections.size(), 1u);
  EXPECT_LE(r.scenario.ops.size(), 1u);
  EXPECT_EQ(r.scenario.num_rings, 1);
  EXPECT_EQ(r.scenario.hosts_per_ring, 1);
  EXPECT_GT(r.steps, 0);
}

TEST(FuzzShrinkTest, RobustFailureShrinksNotAtAll) {
  const FuzzScenario original = generate_scenario(4);
  const auto never_fails = [](const FuzzScenario&) { return false; };
  const ShrinkResult r = shrink_scenario(original, never_fails, 100);
  EXPECT_EQ(r.steps, 0);
  EXPECT_EQ(scenario_to_json(r.scenario).dump(),
            scenario_to_json(original).dump());
}

TEST(FuzzReplayTest, ReproRoundTripsAndReplaysDeterministically) {
  OracleOptions options;
  options.sim_scale = 0.1;
  FuzzFailure snapshot;
  snapshot.seed = 2;
  snapshot.scenario = generate_scenario(2);
  snapshot.verdicts = run_all_oracles(snapshot.scenario, options);
  ASSERT_EQ(snapshot.verdicts.size(), 7u);

  const json::Value repro = failure_to_json(snapshot);
  const json::Value reparsed = json::Value::parse(repro.dump());
  const ReplayOutcome outcome = replay_repro(reparsed, options);
  EXPECT_TRUE(outcome.matches_recorded);
  ASSERT_EQ(outcome.fresh.size(), outcome.recorded.size());
  for (std::size_t i = 0; i < outcome.fresh.size(); ++i) {
    EXPECT_EQ(outcome.fresh[i].oracle, outcome.recorded[i].oracle);
    EXPECT_EQ(outcome.fresh[i].ok, outcome.recorded[i].ok);
  }
}

TEST(FuzzReplayTest, TamperedVerdictIsDetected) {
  OracleOptions options;
  options.sim_scale = 0.1;
  options.run_packet_sim = false;
  FuzzFailure snapshot;
  snapshot.seed = 3;
  snapshot.scenario = generate_scenario(3);
  snapshot.verdicts = run_all_oracles(snapshot.scenario, options);
  snapshot.verdicts[0].ok = false;  // claim a violation that is not there
  const ReplayOutcome outcome =
      replay_repro(failure_to_json(snapshot), options);
  EXPECT_FALSE(outcome.matches_recorded);
}

}  // namespace
}  // namespace hetnet::fuzz
