// Shared scenario builders for tests: the paper's 3-ring topology and
// representative real-time connections.
#pragma once

#include <memory>

#include "src/net/connection.h"
#include "src/net/topology.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::testing {

inline net::AbhnTopology paper_topology() {
  return net::AbhnTopology(net::paper_topology_params());
}

// A moderately bursty dual-periodic source: ρ = 3 Mb/s, 100-kbit sub-bursts
// every 20 ms (the evaluation workload's shape from Section 6).
inline EnvelopePtr video_source() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(300), units::ms(100), units::kbits(100), units::ms(20));
}

// A small strictly periodic source: ρ = 0.5 Mb/s.
inline EnvelopePtr sensor_source() {
  return std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
}

inline net::ConnectionSpec make_spec(net::ConnectionId id, net::HostId src,
                                     net::HostId dst, EnvelopePtr source,
                                     Seconds deadline) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.source = std::move(source);
  spec.deadline = deadline;
  return spec;
}

}  // namespace hetnet::testing
