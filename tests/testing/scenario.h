// Shared scenario builders for tests: the paper's 3-ring topology and
// representative real-time connections.
#pragma once

#include <memory>

#include "src/net/connection.h"
#include "src/net/topology.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::testing {

inline net::AbhnTopology paper_topology() {
  return net::AbhnTopology(net::paper_topology_params());
}

// The paper's topology with every access segment replaced by a TDMA
// Ethernet MAC (RTmac-style slot schedule, 64 µs slots on 100 Mb/s).
inline net::TopologyParams tdma_topology_params() {
  net::TopologyParams p = net::paper_topology_params();
  p.access_hops = {servers::HopSpec{"tdma-ethernet"}};
  return p;
}

inline net::AbhnTopology tdma_topology() {
  return net::AbhnTopology(tdma_topology_params());
}

// The paper's topology with the terrestrial ATM backbone replaced by a
// long-delay satellite-ATM backbone (GEO bent-pipe, 250 ms propagation).
// Deadlines must sit well above the propagation floor to be feasible.
inline net::TopologyParams satellite_topology_params() {
  net::TopologyParams p = net::paper_topology_params();
  p.backbone_hop = servers::HopSpec{"satellite-atm"};
  return p;
}

inline net::AbhnTopology satellite_topology() {
  return net::AbhnTopology(satellite_topology_params());
}

// A moderately bursty dual-periodic source: ρ = 3 Mb/s, 100-kbit sub-bursts
// every 20 ms (the evaluation workload's shape from Section 6).
inline EnvelopePtr video_source() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(300), units::ms(100), units::kbits(100), units::ms(20));
}

// A small strictly periodic source: ρ = 0.5 Mb/s.
inline EnvelopePtr sensor_source() {
  return std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
}

inline net::ConnectionSpec make_spec(net::ConnectionId id, net::HostId src,
                                     net::HostId dst, EnvelopePtr source,
                                     Seconds deadline) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.source = std::move(source);
  spec.deadline = deadline;
  return spec;
}

}  // namespace hetnet::testing
