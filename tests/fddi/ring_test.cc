#include "src/fddi/ring.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace hetnet::fddi {
namespace {

TEST(RingTest, EffectivePayloadRateDiscountsOverhead) {
  RingParams ring;
  // 4472-byte payload + 28-byte overhead: efficiency = 4472/4500.
  const BitsPerSecond rate = effective_payload_rate(ring, units::bytes(4472));
  EXPECT_NEAR(val(rate), val(units::mbps(100) * 4472.0 / 4500.0), 1.0);
  EXPECT_LT(rate, ring.raw_rate);
}

TEST(RingTest, SmallFramesAreLessEfficient) {
  RingParams ring;
  EXPECT_LT(effective_payload_rate(ring, units::bytes(100)),
            effective_payload_rate(ring, units::bytes(4000)));
}

TEST(RingTest, FramePayloadTracksAllocationUntilCap) {
  RingParams ring;
  // H = 100 µs at 100 Mb/s: 10 kbit, below the 4472-byte cap.
  EXPECT_DOUBLE_EQ(val(frame_payload_for_allocation(ring, units::us(100))),
                   10000.0);
  // H = 1 ms: 100 kbit exceeds the cap → clamped to the max frame payload.
  EXPECT_DOUBLE_EQ(val(frame_payload_for_allocation(ring, units::ms(1))),
                   val(ring.max_frame_payload));
}

TEST(RingTest, EffectiveRateForAllocationComposes) {
  RingParams ring;
  const Seconds h = units::us(200);
  EXPECT_DOUBLE_EQ(
      val(effective_rate_for_allocation(ring, h)),
      val(effective_payload_rate(ring, frame_payload_for_allocation(ring, h))));
}

TEST(RingTest, RejectsNonPositiveInputs) {
  RingParams ring;
  EXPECT_THROW(effective_payload_rate(ring, Bits{0.0}), std::logic_error);
  EXPECT_THROW(frame_payload_for_allocation(ring, Seconds{0.0}), std::logic_error);
}

}  // namespace
}  // namespace hetnet::fddi
