#include "src/fddi/ledger.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace hetnet::fddi {
namespace {

RingParams ring() { return RingParams{}; }  // TTRT 8 ms, Δ 1 ms

TEST(LedgerTest, CapacityIsTtrtMinusOverhead) {
  SyncBandwidthLedger ledger(ring());
  EXPECT_DOUBLE_EQ(val(ledger.capacity()), val(units::ms(7)));
  EXPECT_DOUBLE_EQ(val(ledger.available()), val(units::ms(7)));
  EXPECT_DOUBLE_EQ(val(ledger.allocated()), 0.0);
}

TEST(LedgerTest, ReserveAndRelease) {
  SyncBandwidthLedger ledger(ring());
  ASSERT_TRUE(ledger.reserve(1, units::ms(2)));
  EXPECT_DOUBLE_EQ(val(ledger.allocated()), val(units::ms(2)));
  EXPECT_DOUBLE_EQ(val(ledger.available()), val(units::ms(5)));
  EXPECT_TRUE(ledger.holds(1));
  EXPECT_DOUBLE_EQ(val(ledger.held(1)), val(units::ms(2)));
  ledger.release(1);
  EXPECT_DOUBLE_EQ(val(ledger.available()), val(units::ms(7)));
  EXPECT_FALSE(ledger.holds(1));
}

TEST(LedgerTest, ProtocolConstraintEnforced) {
  // ΣH + Δ <= TTRT: cannot hand out more than 7 ms total.
  SyncBandwidthLedger ledger(ring());
  ASSERT_TRUE(ledger.reserve(1, units::ms(4)));
  EXPECT_FALSE(ledger.reserve(2, units::ms(4)));  // would exceed capacity
  ASSERT_TRUE(ledger.reserve(2, units::ms(3)));   // exactly fills it
  EXPECT_DOUBLE_EQ(val(ledger.available()), 0.0);
}

TEST(LedgerTest, ExactFillViaApproxTolerance) {
  SyncBandwidthLedger ledger(ring());
  // Many small grants summing to capacity with FP noise must still fit.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(ledger.reserve(static_cast<std::uint64_t>(i), units::ms(1)))
        << i;
  }
  EXPECT_NEAR(val(ledger.available()), 0.0, 1e-12);
}

TEST(LedgerTest, DuplicateKeyRejected) {
  SyncBandwidthLedger ledger(ring());
  ASSERT_TRUE(ledger.reserve(7, units::ms(1)));
  EXPECT_FALSE(ledger.reserve(7, units::ms(1)));
  // The failed attempt must not change the books.
  EXPECT_DOUBLE_EQ(val(ledger.allocated()), val(units::ms(1)));
}

TEST(LedgerTest, NonPositiveReservationRejected) {
  SyncBandwidthLedger ledger(ring());
  EXPECT_FALSE(ledger.reserve(1, Seconds{0.0}));
  EXPECT_FALSE(ledger.reserve(1, -units::ms(1)));
}

TEST(LedgerTest, ReleaseUnknownKeyThrows) {
  SyncBandwidthLedger ledger(ring());
  EXPECT_THROW(ledger.release(99), std::logic_error);
  EXPECT_THROW(ledger.held(99), std::logic_error);
}

TEST(LedgerTest, ReservationCountTracked) {
  SyncBandwidthLedger ledger(ring());
  EXPECT_EQ(ledger.reservations(), 0u);
  ledger.reserve(1, units::ms(1));
  ledger.reserve(2, units::ms(1));
  EXPECT_EQ(ledger.reservations(), 2u);
  ledger.release(1);
  EXPECT_EQ(ledger.reservations(), 1u);
}

TEST(LedgerTest, InvalidRingRejected) {
  RingParams bad;
  bad.ttrt = units::ms(1);
  bad.protocol_overhead = units::ms(2);
  EXPECT_THROW(SyncBandwidthLedger{bad}, std::logic_error);
}

}  // namespace
}  // namespace hetnet::fddi
