#include "src/servers/priority_mux.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

FifoMuxParams port() {
  FifoMuxParams p;
  p.capacity = units::mbps(155) * 48.0 / 53.0;
  p.non_preemption = units::bytes(53) / units::mbps(155);
  p.cell_bits = units::bytes(48);
  return p;
}

TEST(PriorityMuxTest, MatchesFifoWithoutBestEffort) {
  // With no lower-priority traffic the disciplines coincide.
  auto rt = std::make_shared<LeakyBucketEnvelope>(Bits{40000.0}, units::mbps(10));
  auto cross = std::make_shared<LeakyBucketEnvelope>(Bits{20000.0}, units::mbps(5));
  const FifoMuxServer fifo("f", port(), cross);
  const PriorityMuxServer prio("p", port(), cross);
  const auto df = fifo.queueing_delay(rt);
  const auto dp = prio.queueing_delay(rt);
  ASSERT_TRUE(df.has_value() && dp.has_value());
  EXPECT_DOUBLE_EQ(val(*df), val(*dp));
}

TEST(PriorityMuxTest, RealTimeBoundIndependentOfBestEffort) {
  // The priority port's real-time bound never references the best-effort
  // envelope: only real-time cross traffic enters the analysis.
  auto rt = std::make_shared<LeakyBucketEnvelope>(Bits{40000.0}, units::mbps(10));
  auto rt_cross =
      std::make_shared<LeakyBucketEnvelope>(Bits{20000.0}, units::mbps(5));
  const PriorityMuxServer prio("p", port(), rt_cross);
  const auto d1 = prio.queueing_delay(rt);
  ASSERT_TRUE(d1.has_value());
  // A FIFO port with a massive best-effort flow added has a larger bound.
  const FifoMuxServer fifo(
      "f", port(),
      sum_envelopes({rt_cross, std::make_shared<LeakyBucketEnvelope>(
                                   units::mbits(1), units::mbps(60))}));
  const auto d2 = fifo.queueing_delay(rt);
  ASSERT_TRUE(d2.has_value());
  EXPECT_LT(*d1, *d2);
}

TEST(PriorityMuxTest, AnalyzeProducesOutputEnvelope) {
  auto rt = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(20));
  const PriorityMuxServer prio("p", port(),
                               std::make_shared<ZeroEnvelope>());
  const auto result = prio.analyze(rt);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->worst_case_delay, 0.0);
  // Output conforms to the shifted-input bound.
  for (Seconds i; i < 0.05; i += Seconds{0.0007}) {
    EXPECT_LE(result->output->bits(i),
              rt->bits(i + result->worst_case_delay) + Bits{1e-6});
  }
}

TEST(PriorityMuxTest, OverbookedRealTimeClassRejected) {
  const PriorityMuxServer prio(
      "p", port(),
      std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(100)));
  auto rt = std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(60));
  EXPECT_FALSE(prio.analyze(rt).has_value());
}

}  // namespace
}  // namespace hetnet
