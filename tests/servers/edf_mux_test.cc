#include "src/servers/edf_mux.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/servers/fifo_mux.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

constexpr BitsPerSecond kCapacity = BitsPerSecond{140e6};
constexpr Seconds kCellTime{424.0 / 155e6};
constexpr Bits kCell = Bits{384.0};

EdfFlow flow(Bits burst, BitsPerSecond rate, Seconds deadline) {
  return {std::make_shared<LeakyBucketEnvelope>(burst, rate), deadline};
}

TEST(EdfMuxTest, GenerousDeadlinesAreSchedulable) {
  EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                   flow(Bits{50000.0}, units::mbps(10), units::ms(5)),
                   {flow(Bits{50000.0}, units::mbps(10), units::ms(5))});
  EXPECT_TRUE(edf.schedulable());
  const auto result =
      edf.analyze(std::make_shared<LeakyBucketEnvelope>(Bits{50000.0},
                                                        units::mbps(10)));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(val(result->worst_case_delay), val(units::ms(5)));
}

TEST(EdfMuxTest, ImpossibleDeadlineRejected) {
  // The burst alone needs 50k/140M ≈ 0.36 ms of link time; a 0.1 ms local
  // deadline cannot be met.
  EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                   flow(Bits{50000.0}, units::mbps(10), units::us(100)), {});
  EXPECT_FALSE(edf.schedulable());
}

TEST(EdfMuxTest, OverbookedPortRejected) {
  EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                   flow(Bits{1000.0}, units::mbps(80), units::ms(50)),
                   {flow(Bits{1000.0}, units::mbps(80), units::ms(50))});
  EXPECT_FALSE(edf.schedulable());
}

TEST(EdfMuxTest, HeterogeneousDeadlinesBeatFifo) {
  // FIFO gives every flow the same aggregate bound; EDF can promise the
  // control flow far less while the video flow absorbs the slack.
  const auto control =
      std::make_shared<LeakyBucketEnvelope>(Bits{5000.0}, units::mbps(1));
  const auto video =
      std::make_shared<LeakyBucketEnvelope>(Bits{400000.0}, units::mbps(40));

  FifoMuxParams fifo_params;
  fifo_params.capacity = kCapacity;
  fifo_params.non_preemption = kCellTime;
  fifo_params.cell_bits = kCell;
  const FifoMuxServer fifo("fifo", fifo_params, video);
  const auto fifo_bound = fifo.analyze(control);
  ASSERT_TRUE(fifo_bound.has_value());
  // FIFO: both flows wait behind the 400-kbit video burst (~2.9 ms).
  EXPECT_GT(fifo_bound->worst_case_delay, units::ms(2));

  // EDF: promise the control flow 0.5 ms and the video flow 5 ms.
  EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                   {control, units::us(500)}, {{video, units::ms(5)}});
  const auto edf_bound = edf.analyze(control);
  ASSERT_TRUE(edf_bound.has_value());
  EXPECT_DOUBLE_EQ(val(edf_bound->worst_case_delay), val(units::us(500)));
  EXPECT_LT(edf_bound->worst_case_delay, fifo_bound->worst_case_delay);
}

TEST(EdfMuxTest, TighteningOneDeadlineEventuallyFails) {
  const auto video =
      std::make_shared<LeakyBucketEnvelope>(Bits{400000.0}, units::mbps(40));
  bool seen_schedulable = false;
  bool seen_unschedulable = false;
  for (double d_us : {3000.0, 1000.0, 300.0, 100.0, 30.0, 10.0}) {
    EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                     flow(Bits{50000.0}, units::mbps(10), units::us(d_us)),
                     {{video, units::ms(5)}});
    if (edf.schedulable()) {
      EXPECT_FALSE(seen_unschedulable)
          << "schedulability must be monotone in the deadline";
      seen_schedulable = true;
    } else {
      seen_unschedulable = true;
    }
  }
  EXPECT_TRUE(seen_schedulable);
  EXPECT_TRUE(seen_unschedulable);
}

TEST(EdfMuxTest, PeriodicFlowsExactKinksHandled) {
  // Bursty periodic flows: the demand curve jumps at d_i + k·P; the exact
  // kink walk must catch a violation hidden between coarse times.
  EdfFlow own{std::make_shared<PeriodicEnvelope>(Bits{200000.0}, units::ms(10)),
              units::ms(2)};
  EdfFlow other{std::make_shared<PeriodicEnvelope>(Bits{200000.0}, units::ms(10)),
                units::ms(2)};
  // Demand at t = 2ms⁺ is 400 kbit; C·t = 280 kbit → unschedulable.
  EdfMuxServer tight("edf", kCapacity, kCellTime, kCell, own, {other});
  EXPECT_FALSE(tight.schedulable());
  // Relax one deadline: demand at 2 ms is 200k <= 280k, at 4 ms 400k <=
  // 560k → schedulable.
  other.local_deadline = units::ms(4);
  EdfMuxServer relaxed("edf", kCapacity, kCellTime, kCell, own, {other});
  EXPECT_TRUE(relaxed.schedulable());
}

TEST(EdfMuxTest, OutputShiftedByLocalDeadline) {
  const auto env =
      std::make_shared<LeakyBucketEnvelope>(Bits{10000.0}, units::mbps(5));
  EdfMuxServer edf("edf", kCapacity, kCellTime, kCell,
                   {env, units::ms(2)}, {});
  const auto result = edf.analyze(env);
  ASSERT_TRUE(result.has_value());
  for (Seconds i; i < 0.02; i += Seconds{0.00031}) {
    EXPECT_LE(result->output->bits(i), env->bits(i + units::ms(2)) + Bits{1e-6});
  }
}

TEST(EdfMuxTest, Validation) {
  EXPECT_THROW(
      EdfMuxServer("e", BitsPerSecond{}, Seconds{}, Bits{},
                   flow(Bits{1.0}, BitsPerSecond{1.0}, Seconds{1.0}), {}),
      std::logic_error);
  EXPECT_THROW(EdfMuxServer("e", BitsPerSecond{1e6}, Seconds{}, Bits{},
                            {nullptr, Seconds{1.0}}, {}),
               std::logic_error);
  EXPECT_THROW(
      EdfMuxServer("e", BitsPerSecond{1e6}, Seconds{}, Bits{},
                   flow(Bits{1.0}, BitsPerSecond{1.0}, Seconds{}), {}),
      std::logic_error);
}

}  // namespace
}  // namespace hetnet
