// Reference-implementation cross-checks for the worst-case scans.
//
// The production analyses locate extrema exactly (rotation boundaries,
// breakpoint segments, level crossings). These tests recompute the same
// quantities with a deliberately dumb dense-grid evaluation of the defining
// formulas; the dense grid can only UNDERestimate a supremum, so the
// production bound must always dominate it — and should match it closely
// when the grid is fine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "src/traffic/algebra.h"

#include "src/servers/fddi_mac.h"
#include "src/servers/fifo_mux.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

struct MacCase {
  std::string name;
  Seconds ttrt;
  Seconds h;
  std::function<EnvelopePtr()> source;
};

const MacCase kMacCases[] = {
    {"small_periodic", units::ms(8), units::ms(1),
     [] { return std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(50)); }},
    {"multi_visit_burst", units::ms(8), units::ms(1),
     [] {
       return std::make_shared<PeriodicEnvelope>(Bits{250000.0}, units::ms(80));
     }},
    {"dual_periodic", units::ms(8), units::ms(2),
     [] {
       return std::make_shared<DualPeriodicEnvelope>(
           Bits{500000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
     }},
    {"peak_limited", units::ms(8), units::ms(1),
     [] {
       return std::make_shared<DualPeriodicEnvelope>(
           Bits{300000.0}, units::ms(100), Bits{50000.0}, units::ms(10),
           units::mbps(100));
     }},
    {"leaky_bucket", units::ms(4), units::ms(1),
     [] {
       return std::make_shared<LeakyBucketEnvelope>(Bits{80000.0}, units::mbps(10));
     }},
    {"tight_ttrt", units::ms(16), units::ms(4),
     [] {
       return std::make_shared<PeriodicEnvelope>(Bits{400000.0}, units::ms(60));
     }},
};

class MacReferenceTest : public ::testing::TestWithParam<MacCase> {};

TEST_P(MacReferenceTest, DelayDominatesDenseGridSupremum) {
  const MacCase& c = GetParam();
  FddiMacParams params;
  params.ttrt = c.ttrt;
  params.sync_allocation = c.h;
  params.ring_rate = units::mbps(100);
  const FddiMacServer server("mac", params);
  const auto env = c.source();
  const auto result = server.analyze(env);
  ASSERT_TRUE(result.has_value());

  // Reference: χ_ref = max over a dense grid of t of
  //   min{ d : avail(t+d) >= A(t) }  with  avail from the same server.
  const Bits per_visit = c.h * params.ring_rate;
  const Seconds t_end = 64 * c.ttrt;
  Seconds chi_ref;
  for (Seconds t{1e-7}; t < t_end; t += c.ttrt / 97.0) {
    const Bits backlog = env->bits(t);
    if (backlog <= 0) continue;
    const double visits_needed = std::ceil(backlog / per_visit - 1e-9);
    const Seconds service_at = (visits_needed + 1.0) * c.ttrt;
    chi_ref = std::max(chi_ref, service_at - t);
  }
  EXPECT_GE(result->worst_case_delay, chi_ref - Seconds{1e-9})
      << "unsound bound";
  // The exact computation should not exceed the reference by more than one
  // rotation (grid quantization slack).
  EXPECT_LE(result->worst_case_delay, chi_ref + c.ttrt + Seconds{1e-9});
}

TEST_P(MacReferenceTest, BufferDominatesDenseGridSupremum) {
  const MacCase& c = GetParam();
  FddiMacParams params;
  params.ttrt = c.ttrt;
  params.sync_allocation = c.h;
  params.ring_rate = units::mbps(100);
  const FddiMacServer server("mac", params);
  const auto env = c.source();
  const auto result = server.analyze(env);
  ASSERT_TRUE(result.has_value());

  Bits f_ref;
  const Seconds t_end = 64 * c.ttrt;
  for (Seconds t{1e-7}; t < t_end; t += c.ttrt / 101.0) {
    f_ref = std::max(f_ref, env->bits(t) - server.avail(t));
  }
  EXPECT_GE(result->buffer_required, f_ref - Bits{1e-6})
      << "unsound buffer bound";
}

TEST_P(MacReferenceTest, OutputDominatesDepartureProcess) {
  // Υ must bound what can leave: in any window the departures are at most
  // the arrivals by the window end minus the service already guaranteed
  // before it started — evaluated here on the dense grid.
  const MacCase& c = GetParam();
  FddiMacParams params;
  params.ttrt = c.ttrt;
  params.sync_allocation = c.h;
  params.ring_rate = units::mbps(100);
  const FddiMacServer server("mac", params);
  const auto env = c.source();
  const auto result = server.analyze(env);
  ASSERT_TRUE(result.has_value());

  for (Seconds interval :
       {Seconds{}, Seconds{0.001}, Seconds{0.004}, Seconds{0.016},
        Seconds{0.05}}) {
    Bits ref = env->bits(interval);  // t = 0 term
    const Seconds t_end = 32 * c.ttrt;
    for (Seconds t = c.ttrt; t < t_end; t += c.ttrt) {
      ref = std::max(ref, env->bits(t + interval) - server.avail_left(t));
    }
    ref = std::max(Bits{}, std::min(ref, params.ring_rate * interval));
    EXPECT_GE(result->output->bits(interval), ref - Bits{1e-6})
        << "I=" << interval;
  }
}

INSTANTIATE_TEST_SUITE_P(Theorem1, MacReferenceTest,
                         ::testing::ValuesIn(kMacCases),
                         [](const auto& info) { return info.param.name; });

struct MuxCase {
  std::string name;
  BitsPerSecond capacity;
  std::function<std::vector<EnvelopePtr>()> flows;
};

const MuxCase kMuxCases[] = {
    {"two_buckets", units::mbps(100),
     [] {
       return std::vector<EnvelopePtr>{
           std::make_shared<LeakyBucketEnvelope>(Bits{50000.0}, units::mbps(20)),
           std::make_shared<LeakyBucketEnvelope>(Bits{30000.0}, units::mbps(30))};
     }},
    {"periodic_pair", units::mbps(140),
     [] {
       return std::vector<EnvelopePtr>{
           std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::ms(20)),
           std::make_shared<PeriodicEnvelope>(Bits{80000.0}, units::ms(15))};
     }},
    {"mixed_three", units::mbps(140),
     [] {
       return std::vector<EnvelopePtr>{
           std::make_shared<DualPeriodicEnvelope>(
               Bits{300000.0}, units::ms(100), Bits{60000.0}, units::ms(10)),
           std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(25)),
           std::make_shared<LeakyBucketEnvelope>(Bits{20000.0}, units::mbps(5))};
     }},
};

class MuxReferenceTest : public ::testing::TestWithParam<MuxCase> {};

TEST_P(MuxReferenceTest, DelayDominatesDenseGridSupremum) {
  const MuxCase& c = GetParam();
  FifoMuxParams params;
  params.capacity = c.capacity;
  auto flows = c.flows();
  EnvelopePtr total = sum_envelopes(flows);
  const FifoMuxServer server("port", params,
                             std::make_shared<ZeroEnvelope>());
  const auto d = server.queueing_delay(total);
  ASSERT_TRUE(d.has_value());

  Seconds ref;
  for (Seconds t{1e-7}; t < 0.2; t += Seconds{3.1e-5}) {
    ref = std::max(ref, total->bits(t) / c.capacity - t);
  }
  EXPECT_GE(*d, ref - Seconds{1e-9}) << "unsound mux bound";
  EXPECT_LE(*d, ref + Seconds{1e-3}) << "mux bound far above the reference";
}

TEST_P(MuxReferenceTest, BacklogDominatesDenseGridSupremum) {
  const MuxCase& c = GetParam();
  FifoMuxParams params;
  params.capacity = c.capacity;
  auto flows = c.flows();
  EnvelopePtr total = sum_envelopes(flows);
  const FifoMuxServer server("port", params,
                             std::make_shared<ZeroEnvelope>());
  const auto result = server.analyze(total);
  ASSERT_TRUE(result.has_value());

  Bits ref;
  for (Seconds t{1e-7}; t < 0.2; t += Seconds{2.9e-5}) {
    ref = std::max(ref, total->bits(t) - c.capacity * t);
  }
  EXPECT_GE(result->buffer_required, ref - Bits{1e-6});
}

INSTANTIATE_TEST_SUITE_P(FifoPorts, MuxReferenceTest,
                         ::testing::ValuesIn(kMuxCases),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace hetnet
