#include "src/servers/conversion.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(ConversionServerTest, FrameToCellUnits) {
  // F_S = 4000-bit frames, 384-bit cell payloads: F_C = ⌈4000/384⌉ = 11
  // cells per frame, accounted at the 424-bit wire size.
  auto s = make_frame_to_cell_server("F2C", Bits{4000.0}, Bits{384.0}, Bits{424.0}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(val(s->in_unit()), 4000.0);
  EXPECT_DOUBLE_EQ(val(s->out_unit()), val(11.0 * 424.0));
}

TEST(ConversionServerTest, CellToFrameUnits) {
  auto s = make_cell_to_frame_server("C2F", Bits{4000.0}, Bits{384.0}, Bits{424.0}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(val(s->in_unit()), val(11.0 * 424.0));
  EXPECT_DOUBLE_EQ(val(s->out_unit()), 4000.0);
}

TEST(ConversionServerTest, Theorem2EnvelopeTransform) {
  // A'(I) = ⌈A(I)/F_S⌉ · F_C·C_S (eq. 21), payload accounting.
  auto s = make_frame_to_cell_server("F2C", Bits{1000.0}, Bits{384.0}, Bits{384.0},
                                     units::us(10));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{}, BitsPerSecond{1000.0});
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  const double f_c_cs = 3.0 * 384.0;  // ⌈1000/384⌉ = 3 cells
  EXPECT_DOUBLE_EQ(val(result->output->bits(Seconds{0.5})), val(1.0 * f_c_cs));
  EXPECT_DOUBLE_EQ(val(result->output->bits(Seconds{1.0})), val(1.0 * f_c_cs));
  EXPECT_DOUBLE_EQ(val(result->output->bits(Seconds{2.5})), val(3.0 * f_c_cs));
}

TEST(ConversionServerTest, ProcessingDelayReported) {
  auto s = make_frame_to_cell_server("F2C", Bits{1000.0}, Bits{384.0}, Bits{424.0},
                                     units::us(25));
  auto input = std::make_shared<ZeroEnvelope>();
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->worst_case_delay.value(), val(units::us(25)));
}

TEST(ConversionServerTest, RoundTripPreservesRateUpToPadding) {
  // frame → cells → frame keeps the long-term rate within the cell-padding
  // inflation factor.
  auto f2c = make_frame_to_cell_server("F2C", Bits{4000.0}, Bits{384.0}, Bits{424.0}, Seconds{0.0});
  auto c2f = make_cell_to_frame_server("C2F", Bits{4000.0}, Bits{384.0}, Bits{424.0}, Seconds{0.0});
  auto input = std::make_shared<PeriodicEnvelope>(Bits{4000.0}, units::ms(10));
  const auto mid = f2c->analyze(input);
  ASSERT_TRUE(mid.has_value());
  const auto out = c2f->analyze(mid->output);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(val(out->output->long_term_rate()), val(input->long_term_rate()));
}

TEST(ConversionServerTest, BufferHoldsOneUnitPlusInflight) {
  auto s = make_frame_to_cell_server("F2C", Bits{1000.0}, Bits{384.0}, Bits{424.0}, Seconds{1.0});
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{100.0}, BitsPerSecond{50.0});
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->buffer_required.value(), 1000.0 + 150.0);
}

TEST(ConversionServerTest, RejectsBadParameters) {
  EXPECT_THROW(ConversionServer("x", Bits{}, Bits{1.0}, Seconds{}), std::logic_error);
  EXPECT_THROW(ConversionServer("x", Bits{1.0}, Bits{}, Seconds{}), std::logic_error);
  EXPECT_THROW(ConversionServer("x", Bits{1.0}, Bits{1.0}, Seconds{-1.0}), std::logic_error);
  // Accounting smaller than payload.
  EXPECT_THROW(make_frame_to_cell_server("x", Bits{1000.0}, Bits{384.0}, Bits{100.0}, Seconds{0.0}),
               std::logic_error);
}

}  // namespace
}  // namespace hetnet
