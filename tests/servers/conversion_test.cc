#include "src/servers/conversion.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(ConversionServerTest, FrameToCellUnits) {
  // F_S = 4000-bit frames, 384-bit cell payloads: F_C = ⌈4000/384⌉ = 11
  // cells per frame, accounted at the 424-bit wire size.
  auto s = make_frame_to_cell_server("F2C", 4000.0, 384.0, 424.0, 0.0);
  EXPECT_DOUBLE_EQ(s->in_unit(), 4000.0);
  EXPECT_DOUBLE_EQ(s->out_unit(), 11.0 * 424.0);
}

TEST(ConversionServerTest, CellToFrameUnits) {
  auto s = make_cell_to_frame_server("C2F", 4000.0, 384.0, 424.0, 0.0);
  EXPECT_DOUBLE_EQ(s->in_unit(), 11.0 * 424.0);
  EXPECT_DOUBLE_EQ(s->out_unit(), 4000.0);
}

TEST(ConversionServerTest, Theorem2EnvelopeTransform) {
  // A'(I) = ⌈A(I)/F_S⌉ · F_C·C_S (eq. 21), payload accounting.
  auto s = make_frame_to_cell_server("F2C", 1000.0, 384.0, 384.0,
                                     units::us(10));
  auto input = std::make_shared<LeakyBucketEnvelope>(0.0, 1000.0);
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  const double f_c_cs = 3.0 * 384.0;  // ⌈1000/384⌉ = 3 cells
  EXPECT_DOUBLE_EQ(result->output->bits(0.5), 1.0 * f_c_cs);
  EXPECT_DOUBLE_EQ(result->output->bits(1.0), 1.0 * f_c_cs);
  EXPECT_DOUBLE_EQ(result->output->bits(2.5), 3.0 * f_c_cs);
}

TEST(ConversionServerTest, ProcessingDelayReported) {
  auto s = make_frame_to_cell_server("F2C", 1000.0, 384.0, 424.0,
                                     units::us(25));
  auto input = std::make_shared<ZeroEnvelope>();
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->worst_case_delay, units::us(25));
}

TEST(ConversionServerTest, RoundTripPreservesRateUpToPadding) {
  // frame → cells → frame keeps the long-term rate within the cell-padding
  // inflation factor.
  auto f2c = make_frame_to_cell_server("F2C", 4000.0, 384.0, 424.0, 0.0);
  auto c2f = make_cell_to_frame_server("C2F", 4000.0, 384.0, 424.0, 0.0);
  auto input = std::make_shared<PeriodicEnvelope>(4000.0, units::ms(10));
  const auto mid = f2c->analyze(input);
  ASSERT_TRUE(mid.has_value());
  const auto out = c2f->analyze(mid->output);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->output->long_term_rate(), input->long_term_rate());
}

TEST(ConversionServerTest, BufferHoldsOneUnitPlusInflight) {
  auto s = make_frame_to_cell_server("F2C", 1000.0, 384.0, 424.0, 1.0);
  auto input = std::make_shared<LeakyBucketEnvelope>(100.0, 50.0);
  const auto result = s->analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->buffer_required, 1000.0 + 150.0);
}

TEST(ConversionServerTest, RejectsBadParameters) {
  EXPECT_THROW(ConversionServer("x", 0.0, 1.0, 0.0), std::logic_error);
  EXPECT_THROW(ConversionServer("x", 1.0, 0.0, 0.0), std::logic_error);
  EXPECT_THROW(ConversionServer("x", 1.0, 1.0, -1.0), std::logic_error);
  // Accounting smaller than payload.
  EXPECT_THROW(make_frame_to_cell_server("x", 1000.0, 384.0, 100.0, 0.0),
               std::logic_error);
}

}  // namespace
}  // namespace hetnet
