#include "src/servers/regulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/servers/fifo_mux.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(RegulatorTest, ConformingTrafficPassesUndelayed) {
  // Input already inside the bucket: zero worst-case delay.
  RegulatorParams p{.sigma = Bits{2000.0}, .rho = units::mbps(10)};
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{1000.0}, units::mbps(5));
  const auto result = reg.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->worst_case_delay.value(), 0.0);
  EXPECT_DOUBLE_EQ(result->buffer_required.value(), 0.0);
}

TEST(RegulatorTest, BurstShapedWithKnownDelay) {
  // A 100-kbit instantaneous burst through a (10 kbit, 10 Mb/s) bucket: the
  // last bit waits (100k − 10k)/10M = 9 ms.
  RegulatorParams p{.sigma = Bits{10000.0}, .rho = units::mbps(10)};
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::sec(1));
  const auto result = reg.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->worst_case_delay), val(units::ms(9)), 1e-9);
  EXPECT_NEAR(result->buffer_required.value(), 90000.0, 1e-6);
}

TEST(RegulatorTest, OutputConformsToBucket) {
  RegulatorParams p{.sigma = Bits{10000.0}, .rho = units::mbps(10)};
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<DualPeriodicEnvelope>(
      Bits{300000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
  const auto result = reg.analyze(input);
  ASSERT_TRUE(result.has_value());
  for (Seconds i; i < 0.3; i += Seconds{0.0011}) {
    EXPECT_LE(result->output->bits(i), p.sigma + p.rho * i + Bits{1e-6})
        << "I=" << i;
  }
}

TEST(RegulatorTest, OutputBoundedByShiftedInput) {
  RegulatorParams p{.sigma = Bits{10000.0}, .rho = units::mbps(10)};
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(50));
  const auto result = reg.analyze(input);
  ASSERT_TRUE(result.has_value());
  for (Seconds i; i < 0.2; i += Seconds{0.0013}) {
    EXPECT_LE(result->output->bits(i),
              input->bits(i + result->worst_case_delay) + Bits{1e-6});
  }
}

TEST(RegulatorTest, OverRateFlowRejected) {
  RegulatorParams p{.sigma = Bits{10000.0}, .rho = units::mbps(1)};
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(2));
  EXPECT_FALSE(reg.analyze(input).has_value());
}

TEST(RegulatorTest, BufferLimitEnforced) {
  RegulatorParams p{.sigma = Bits{10000.0}, .rho = units::mbps(10)};
  p.buffer_limit = Bits{50000.0};  // the 100-kbit burst needs 90 kbit of buffer
  RegulatorServer reg("shaper", p);
  auto input = std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::sec(1));
  EXPECT_FALSE(reg.analyze(input).has_value());
}

TEST(RegulatorTest, TighterBucketMeansMoreDelayLessDownstream) {
  // The [15] trade-off in one picture: shrinking σ raises the shaping delay
  // but lowers the delay a downstream FIFO port adds.
  auto input = std::make_shared<DualPeriodicEnvelope>(
      Bits{300000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
  FifoMuxParams port;
  port.capacity = units::mbps(20);
  const FifoMuxServer mux("port", port, std::make_shared<ZeroEnvelope>());

  Seconds prev_shaping{-1.0};
  Seconds prev_port{1e9};
  for (Bits sigma :
       {Bits{100000.0}, Bits{50000.0}, Bits{20000.0}, Bits{5000.0}}) {
    RegulatorParams p{.sigma = sigma, .rho = units::mbps(4)};
    RegulatorServer reg("shaper", p);
    const auto shaped = reg.analyze(input);
    ASSERT_TRUE(shaped.has_value()) << sigma;
    const auto port_delay = mux.queueing_delay(shaped->output);
    ASSERT_TRUE(port_delay.has_value()) << sigma;
    EXPECT_GE(shaped->worst_case_delay, prev_shaping - Seconds{1e-12}) << sigma;
    EXPECT_LE(*port_delay, prev_port + Seconds{1e-12}) << sigma;
    prev_shaping = shaped->worst_case_delay;
    prev_port = *port_delay;
  }
}

TEST(RegulatorTest, ParameterValidation) {
  EXPECT_THROW(RegulatorServer("r", {.sigma = Bits{-1.0}, .rho = BitsPerSecond{1.0}}),
               std::logic_error);
  EXPECT_THROW(RegulatorServer("r", {.sigma = Bits{}, .rho = BitsPerSecond{}}),
               std::logic_error);
}

}  // namespace
}  // namespace hetnet
