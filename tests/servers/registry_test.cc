// Property tests for the medium/server-model registry
// (src/servers/registry.h): every registered medium's stage servers must
// satisfy the server-curve sanity invariants the analysis relies on, and
// registration/resolution must be deterministic and order-independent.
#include "src/servers/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/net/topology.h"
#include "src/servers/chain.h"
#include "src/servers/tdma_mac.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::servers {
namespace {

MediumDefaults paper_defaults() {
  const net::TopologyParams p = net::paper_topology_params();
  MediumDefaults d;
  d.ring = p.ring;
  d.link = p.link;
  d.cell_payload = p.cells.payload;
  d.input_port_delay = p.interface_device.input_port_delay;
  d.frame_switch_delay = p.interface_device.frame_switch_delay;
  d.frame_cell_conversion = p.interface_device.frame_cell_conversion;
  d.cell_frame_conversion = p.interface_device.cell_frame_conversion;
  d.id_mac_buffer = p.interface_device.mac_buffer;
  d.host_mac_buffer = p.host_mac_buffer;
  return d;
}

// A probe envelope modest enough that every stock medium bounds it at the
// allocations the tests sweep.
EnvelopePtr probe_source() {
  return std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
}

// Allocation sweep: from one TDMA slot up to a sizable share of the cycle.
std::vector<Seconds> allocation_sweep() {
  return {units::us(64), units::us(200), units::ms(1), units::ms(2),
          units::ms(4)};
}

TEST(MediumRegistryTest, BuiltinCarriesTheStockMedia) {
  const MediumRegistry& reg = MediumRegistry::builtin();
  EXPECT_EQ(reg.access_names(),
            (std::vector<std::string>{"fddi", "tdma-ethernet"}));
  EXPECT_EQ(reg.backbone_names(),
            (std::vector<std::string>{"atm", "satellite-atm"}));
}

// Invariant 1: every access medium's stage servers report non-negative
// latency and buffer on every stage, for every allocation in the sweep,
// and the chain yields a finite bound with a non-null output descriptor.
TEST(MediumRegistryTest, StageServersHaveNonNegativeLatency) {
  const MediumRegistry& reg = MediumRegistry::builtin();
  const MediumDefaults defaults = paper_defaults();
  for (const std::string& name : reg.access_names()) {
    const AccessMediumPtr medium =
        reg.resolve_access(HopSpec{name}, defaults);
    for (const Seconds h : allocation_sweep()) {
      if (!(medium->usable_budget(h) > 0)) continue;
      for (const bool intra : {true, false}) {
        ServerChain chain(medium->send_stages(h, intra, AnalysisConfig{}));
        const auto analysis = chain.analyze(probe_source());
        ASSERT_TRUE(analysis.has_value())
            << name << " h=" << val(h) << " intra=" << intra;
        EXPECT_GE(val(analysis->total_delay), 0.0) << name;
        EXPECT_NE(analysis->final_output, nullptr) << name;
        for (const ChainStage& stage : analysis->stages) {
          EXPECT_GE(val(stage.analysis.worst_case_delay), 0.0)
              << name << " stage " << stage.server_name;
          EXPECT_GE(val(stage.analysis.buffer_required), 0.0)
              << name << " stage " << stage.server_name;
        }
      }
    }
  }
}

// Invariant 2: the per-allocation quantities driving the service curve are
// monotone non-decreasing and self-consistent: usable_budget is monotone
// in h and never exceeds h (ledger soundness), frame payload is positive,
// and the effective payload rate never exceeds the raw signalling rate
// (conversion-server rate consistency).
TEST(MediumRegistryTest, ServiceCurvesAreMonotoneAndRateConsistent) {
  const MediumRegistry& reg = MediumRegistry::builtin();
  const MediumDefaults defaults = paper_defaults();
  for (const std::string& name : reg.access_names()) {
    const AccessMediumPtr medium =
        reg.resolve_access(HopSpec{name}, defaults);
    Seconds prev_budget{};
    for (const Seconds h : allocation_sweep()) {
      const Seconds budget = medium->usable_budget(h);
      EXPECT_GE(val(budget), val(prev_budget)) << name << " h=" << val(h);
      EXPECT_LE(val(budget), val(h) * (1.0 + 1e-12)) << name;
      prev_budget = budget;
      if (!(budget > 0)) continue;
      const Bits frame = medium->frame_payload(h);
      EXPECT_GT(val(frame), 0.0) << name;
      const BitsPerSecond rate = medium->payload_rate(frame);
      EXPECT_GT(val(rate), 0.0) << name;
      EXPECT_LE(val(rate), val(medium->cycle().raw_rate)) << name;
    }
    EXPECT_GT(val(medium->max_allocation()), 0.0) << name;
    EXPECT_GE(val(medium->propagation()), 0.0) << name;
  }
}

// Invariant 3: the TDMA MAC's service curve is monotone non-decreasing in
// t (a service curve must be) and matches its rate-latency summary: for
// t >= latency, avail(t) >= rate · (t − latency) never over-promises.
TEST(MediumRegistryTest, TdmaServiceCurveIsMonotone) {
  TdmaMacParams p;
  p.cycle = units::ms(8);
  p.slot_time = units::us(64);
  p.allocation = units::ms(1);
  p.payload_rate = units::mbps(100);
  const TdmaMacServer mac("TDMA.MAC", p);
  double prev = 0.0;
  for (int k = 0; k <= 200; ++k) {
    const Seconds t = units::us(200) * double(k);
    const double a = val(mac.avail(t));
    EXPECT_GE(a, prev) << "t=" << val(t);
    prev = a;
    // The rate-latency pair is a conservative summary of the step curve.
    const double rl =
        val(mac.rate()) * std::max(0.0, val(t) - val(mac.latency()));
    EXPECT_LE(rl, a + 1e-6) << "t=" << val(t);
  }
  // Whole-slot quantization: 1 ms at 64 µs slots is 15 slots, not 15.625.
  EXPECT_DOUBLE_EQ(val(mac.quantized_budget()), 15 * 64e-6);
}

// Registration is deterministic and order-independent: registries built by
// permuted registration orders resolve identical media (equal sorted name
// lists, equal config digests for equal hops).
TEST(MediumRegistryTest, RegistrationIsOrderIndependent) {
  const MediumDefaults defaults = paper_defaults();
  const MediumRegistry& builtin = MediumRegistry::builtin();
  auto forward_factory = [&](const std::string& name) {
    return [&builtin, name](const HopSpec& hop, const MediumDefaults& d) {
      HopSpec named = hop;
      named.medium = name;
      return builtin.resolve_access(named, d);
    };
  };
  MediumRegistry ab;
  ab.register_access("fddi", forward_factory("fddi"));
  ab.register_access("tdma-ethernet", forward_factory("tdma-ethernet"));
  MediumRegistry ba;
  ba.register_access("tdma-ethernet", forward_factory("tdma-ethernet"));
  ba.register_access("fddi", forward_factory("fddi"));
  EXPECT_EQ(ab.access_names(), ba.access_names());
  for (const std::string& name : ab.access_names()) {
    const HopSpec hop{name};
    EXPECT_EQ(ab.resolve_access(hop, defaults)->config_digest(),
              ba.resolve_access(hop, defaults)->config_digest());
  }
  // Resolution itself is deterministic: same hop, same digest, every time.
  const HopSpec hop{"tdma-ethernet"};
  EXPECT_EQ(builtin.resolve_access(hop, defaults)->config_digest(),
            builtin.resolve_access(hop, defaults)->config_digest());
}

// Different media — and the same medium with different per-hop knobs —
// never collide on config_digest (the fingerprint contract's "equal key ⇒
// identical analysis" depends on unequal configurations hashing apart).
TEST(MediumRegistryTest, ConfigDigestsSeparateMedia) {
  const MediumRegistry& reg = MediumRegistry::builtin();
  const MediumDefaults defaults = paper_defaults();
  const auto fddi = reg.resolve_access(HopSpec{"fddi"}, defaults);
  const auto tdma = reg.resolve_access(HopSpec{"tdma-ethernet"}, defaults);
  EXPECT_NE(fddi->config_digest(), tdma->config_digest());
  HopSpec slow{"fddi"};
  slow.propagation = units::us(80);
  EXPECT_NE(reg.resolve_access(slow, defaults)->config_digest(),
            fddi->config_digest());
  const auto atm = reg.resolve_backbone(HopSpec{"atm"}, defaults);
  const auto sat = reg.resolve_backbone(HopSpec{"satellite-atm"}, defaults);
  EXPECT_NE(atm->config_digest(), sat->config_digest());
  EXPECT_DOUBLE_EQ(val(sat->link().wire_rate), val(atm->link().wire_rate));
  EXPECT_DOUBLE_EQ(val(sat->link().propagation), 0.25);
  EXPECT_EQ(sat->port_label(atm::PortId{3}), "SAT.Port[3]");
  EXPECT_EQ(atm->port_label(atm::PortId{3}), "ATM.Port[3]");
}

TEST(MediumRegistryTest, UnknownMediumNameIsRejected) {
  const MediumDefaults defaults = paper_defaults();
  const MediumRegistry& reg = MediumRegistry::builtin();
  EXPECT_FALSE(reg.has_access("token-bus"));
  try {
    reg.resolve_access(HopSpec{"token-bus"}, defaults);
    FAIL() << "unknown access medium must be rejected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown access medium: token-bus"),
              std::string::npos);
  }
  try {
    reg.resolve_backbone(HopSpec{"carrier-pigeon"}, defaults);
    FAIL() << "unknown backbone medium must be rejected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("unknown backbone medium: carrier-pigeon"),
        std::string::npos);
  }
}

TEST(MediumRegistryTest, DuplicateAndEmptyRegistrationsAreRejected) {
  MediumRegistry reg;
  auto factory = [](const HopSpec& hop, const MediumDefaults& d) {
    HopSpec named = hop;
    named.medium = "fddi";
    return MediumRegistry::builtin().resolve_access(named, d);
  };
  reg.register_access("fddi", factory);
  EXPECT_THROW(reg.register_access("fddi", factory), std::logic_error);
  EXPECT_THROW(reg.register_access("", factory), std::logic_error);
}

TEST(MediumRegistryTest, EmptyHopSequenceIsRejected) {
  net::TopologyParams p = net::paper_topology_params();
  p.access_hops.clear();
  try {
    net::AbhnTopology topo(p);
    FAIL() << "empty hop sequence must be rejected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty hop sequence"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace hetnet::servers
