#include "src/servers/fifo_mux.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

EnvelopePtr zero() { return std::make_shared<ZeroEnvelope>(); }

FifoMuxParams ref_params() {
  FifoMuxParams p;
  p.capacity = units::mbps(155) * 48.0 / 53.0;  // payload-accounted ATM link
  p.non_preemption = Bits{424.0} / units::mbps(155);  // one wire cell time
  p.cell_bits = Bits{384.0};
  return p;
}

TEST(FifoMuxServerTest, LoneLeakyBucketDelay) {
  // Classic Cruz result: a (σ, ρ) flow through capacity C sees worst-case
  // queueing delay σ/C.
  FifoMuxParams p = ref_params();
  FifoMuxServer s("port", p, zero());
  const Bits sigma{42400.0};
  auto input = std::make_shared<LeakyBucketEnvelope>(sigma, units::mbps(10));
  const auto d = s.queueing_delay(input);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(val(*d), val(sigma / p.capacity), 1e-12);
  const auto full = s.analyze(input);
  ASSERT_TRUE(full.has_value());
  EXPECT_NEAR(val(full->worst_case_delay),
              val(sigma / p.capacity + p.non_preemption), 1e-12);
}

TEST(FifoMuxServerTest, BacklogEqualsBurst) {
  FifoMuxServer s("port", ref_params(), zero());
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{5000.0}, units::mbps(1));
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->buffer_required.value(), 5000.0, 1e-6);
}

TEST(FifoMuxServerTest, OverbookedPortRejected) {
  FifoMuxParams p = ref_params();
  FifoMuxServer s("port", p,
                  std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(100)));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(60));
  // 100 + 60 > 140.4 Mb/s payload capacity.
  EXPECT_FALSE(s.analyze(input).has_value());
}

TEST(FifoMuxServerTest, CrossTrafficIncreasesDelay) {
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{10000.0}, units::mbps(5));
  FifoMuxServer lone("port", ref_params(), zero());
  FifoMuxServer shared(
      "port", ref_params(),
      std::make_shared<LeakyBucketEnvelope>(Bits{50000.0}, units::mbps(40)));
  const auto d_lone = lone.queueing_delay(input);
  const auto d_shared = shared.queueing_delay(input);
  ASSERT_TRUE(d_lone.has_value());
  ASSERT_TRUE(d_shared.has_value());
  EXPECT_GT(*d_shared, *d_lone);
  // FIFO: σ_total/C.
  EXPECT_NEAR(val(*d_shared), val(Bits{60000.0} / ref_params().capacity), 1e-12);
}

TEST(FifoMuxServerTest, PeriodicAggregateDelayMatchesHandComputation) {
  // Two synchronized periodic flows, 100 kbit each at t=0 (instant bursts):
  // the 2nd flow's burst waits for the 1st: delay = 200k/C.
  FifoMuxParams p = ref_params();
  auto a = std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::ms(50));
  auto b = std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::ms(50));
  FifoMuxServer s("port", p, a);
  const auto d = s.queueing_delay(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(val(*d), val(Bits{200000.0} / p.capacity), 1e-12);
}

TEST(FifoMuxServerTest, BufferLimitEnforced) {
  FifoMuxParams p = ref_params();
  p.buffer_limit = Bits{4000.0};
  FifoMuxServer s("port", p, zero());
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{5000.0}, units::mbps(1));
  EXPECT_FALSE(s.analyze(input).has_value());
}

TEST(FifoMuxServerTest, OutputIsShiftedAndCapped) {
  FifoMuxParams p = ref_params();
  FifoMuxServer s("port", p, zero());
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{42400.0}, units::mbps(10));
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  const Seconds d = result->worst_case_delay;
  for (Seconds i; i < 0.01; i += Seconds{0.00013}) {
    const Bits expected =
        std::min(input->bits(i + d), p.cell_bits + p.capacity * i);
    EXPECT_NEAR(val(result->output->bits(i)), val(expected), 1e-6) << "I=" << i;
  }
}

TEST(FifoMuxServerTest, DelayIsSharedAcrossFlows) {
  // FIFO property: the port-wide bound does not depend on which flow asks.
  auto f1 = std::make_shared<LeakyBucketEnvelope>(Bits{10000.0}, units::mbps(5));
  auto f2 = std::make_shared<LeakyBucketEnvelope>(Bits{30000.0}, units::mbps(20));
  FifoMuxServer from_f1("port", ref_params(), f2);
  FifoMuxServer from_f2("port", ref_params(), f1);
  const auto d1 = from_f1.queueing_delay(f1);
  const auto d2 = from_f2.queueing_delay(f2);
  ASSERT_TRUE(d1.has_value());
  ASSERT_TRUE(d2.has_value());
  EXPECT_NEAR(val(*d1), val(*d2), 1e-12);
}

TEST(FifoMuxServerTest, ZeroTrafficZeroDelay) {
  FifoMuxServer s("port", ref_params(), zero());
  const auto d = s.queueing_delay(zero());
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(val(*d), 0.0);
}

TEST(FifoMuxServerTest, HorizonBudgetExceededRejects) {
  FifoMuxParams p = ref_params();
  p.max_busy_period = units::ms(1);
  FifoMuxServer s("port", p, zero());
  // Huge burst: needs ~σ/C = 7 ms of horizon > 1 ms cap.
  auto input =
      std::make_shared<LeakyBucketEnvelope>(units::mbits(1), units::mbps(10));
  EXPECT_FALSE(s.analyze(input).has_value());
}

TEST(FifoMuxServerTest, ConstructorValidatesParams) {
  FifoMuxParams p = ref_params();
  p.capacity = BitsPerSecond{};
  EXPECT_THROW(FifoMuxServer("m", p, zero()), std::logic_error);
  p = ref_params();
  p.non_preemption = Seconds{-1.0};
  EXPECT_THROW(FifoMuxServer("m", p, zero()), std::logic_error);
  p = ref_params();
  EXPECT_THROW(FifoMuxServer("m", p, nullptr), std::logic_error);
}

}  // namespace
}  // namespace hetnet
