#include "src/servers/chain.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fddi_mac.h"
#include "src/servers/fifo_mux.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(ServerChainTest, SumsDelays) {
  ServerChain chain;
  chain.append(std::make_shared<ConstantDelayServer>("a", units::us(10)));
  chain.append(std::make_shared<ConstantDelayServer>("b", units::us(20)));
  chain.append(std::make_shared<ConstantDelayServer>("c", units::us(30)));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{100.0}, BitsPerSecond{1000.0});
  const auto result = chain.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->total_delay.value(), val(units::us(60)));
  EXPECT_EQ(result->stages.size(), 3u);
  EXPECT_EQ(result->stages[1].server_name, "b");
}

TEST(ServerChainTest, PropagatesEnvelopesThroughStages) {
  ServerChain chain;
  chain.append(make_frame_to_cell_server("F2C", Bits{1000.0}, Bits{384.0}, Bits{424.0}, Seconds{0.0}));
  chain.append(std::make_shared<ConstantDelayServer>("line", units::us(5)));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{}, BitsPerSecond{1000.0});
  const auto result = chain.analyze(input);
  ASSERT_TRUE(result.has_value());
  // Final envelope reflects the conversion (3 cells × 424 per 1000-bit frame).
  EXPECT_DOUBLE_EQ(val(result->final_output->bits(Seconds{1.0})), val(3.0 * 424.0));
}

TEST(ServerChainTest, NulloptPropagates) {
  ServerChain chain;
  chain.append(std::make_shared<ConstantDelayServer>("ok", units::us(10)));
  // Overbooked mux in the middle.
  FifoMuxParams p;
  p.capacity = units::mbps(1);
  chain.append(std::make_shared<FifoMuxServer>(
      "port", p, std::make_shared<ZeroEnvelope>()));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(2));
  EXPECT_FALSE(chain.analyze(input).has_value());
}

TEST(ServerChainTest, EmptyChainIsIdentity) {
  ServerChain chain;
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{100.0}, BitsPerSecond{1000.0});
  const auto result = chain.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->total_delay.value(), 0.0);
  EXPECT_EQ(result->final_output.get(), input.get());
}

TEST(ServerChainTest, RejectsNullServer) {
  ServerChain chain;
  EXPECT_THROW(chain.append(nullptr), std::logic_error);
  EXPECT_THROW(ServerChain({nullptr}), std::logic_error);
}

// An end-to-end FDDI→conversion→mux chain: the miniature of the paper's
// FDDI_S + ID_S decomposition, checked for finiteness and sane ordering.
TEST(ServerChainTest, MiniatureSendSideDecomposition) {
  FddiMacParams mac;
  mac.ttrt = units::ms(8);
  mac.sync_allocation = units::ms(1);
  mac.ring_rate = units::mbps(100);

  FifoMuxParams port;
  port.capacity = units::mbps(155) * 48.0 / 53.0;
  port.non_preemption = Bits{424.0} / units::mbps(155);
  port.cell_bits = Bits{384.0};

  ServerChain chain;
  chain.append(std::make_shared<FddiMacServer>("FDDI_MAC", mac));
  chain.append(std::make_shared<ConstantDelayServer>("Delay_Line",
                                                     units::us(40)));
  chain.append(std::make_shared<ConstantDelayServer>("Input_Port",
                                                     units::us(10)));
  chain.append(std::make_shared<ConstantDelayServer>("Frame_Switch",
                                                     units::us(10)));
  chain.append(make_frame_to_cell_server("Frame_Cell", Bits{36000.0}, Bits{384.0}, Bits{384.0},
                                         units::us(50)));
  chain.append(std::make_shared<FifoMuxServer>(
      "Output_Port", port, std::make_shared<ZeroEnvelope>()));

  auto source = std::make_shared<DualPeriodicEnvelope>(
      Bits{300000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
  const auto result = chain.analyze(source);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stages.size(), 6u);
  // The MAC dominates the budget (queueing against 8 ms rotations).
  EXPECT_GT(result->stages[0].analysis.worst_case_delay, units::ms(10));
  EXPECT_LT(result->total_delay, units::sec(1));
  // Every stage contributes a nonnegative delay summing to the total.
  Seconds sum;
  for (const auto& stage : result->stages) {
    EXPECT_GE(stage.analysis.worst_case_delay, 0.0);
    sum += stage.analysis.worst_case_delay;
  }
  EXPECT_DOUBLE_EQ(val(sum), val(result->total_delay));
}

}  // namespace
}  // namespace hetnet
