// Unit tests for the TDMA Ethernet MAC server (src/servers/tdma_mac.h):
// slot-schedule quantization, the step service curve shared with the
// timed-token analysis, and the rate-latency summary.
#include "src/servers/tdma_mac.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

// Reference schedule: 8 ms cycle, 64 µs slots, H = 1 ms requested →
// ⌊1 ms / 64 µs⌋ = 15 slots = 960 µs honored per cycle.
TdmaMacParams ref_params() {
  TdmaMacParams p;
  p.cycle = units::ms(8);
  p.slot_time = units::us(64);
  p.allocation = units::ms(1);
  p.payload_rate = units::mbps(100);
  return p;
}

TEST(TdmaQuantizeBudgetTest, RoundsDownToWholeSlots) {
  const Seconds slot = units::us(64);
  EXPECT_DOUBLE_EQ(val(tdma_quantize_budget(units::ms(1), slot)), 15 * 64e-6);
  // Exact slot multiples keep every slot (the epsilon guard makes the
  // float-exact boundary inclusive).
  EXPECT_DOUBLE_EQ(val(tdma_quantize_budget(slot * 4.0, slot)), 4 * 64e-6);
  // Sub-slot allocations are unusable.
  EXPECT_DOUBLE_EQ(val(tdma_quantize_budget(units::us(63), slot)), 0.0);
  EXPECT_DOUBLE_EQ(val(tdma_quantize_budget(Seconds{}, slot)), 0.0);
}

TEST(TdmaMacServerTest, AvailStepsAtCycles) {
  const TdmaMacServer s("TDMA.MAC", ref_params());
  const Bits per_cycle = Seconds{15 * 64e-6} * units::mbps(100);
  EXPECT_DOUBLE_EQ(val(s.avail(Seconds{})), 0.0);
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(8))), 0.0);  // (⌊1⌋−1)·pv = 0
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(16))), val(per_cycle));
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(24))), val(2 * per_cycle));
}

TEST(TdmaMacServerTest, RateLatencySummary) {
  const TdmaMacServer s("TDMA.MAC", ref_params());
  EXPECT_DOUBLE_EQ(val(s.quantized_budget()), 15 * 64e-6);
  // rate = budget·BW_eff / cycle; latency = two full cycles (worst-case
  // arrival just after this cycle's slots plus one empty first cycle —
  // the same shift Theorem 1's step curve encodes).
  EXPECT_DOUBLE_EQ(val(s.rate()), 100e6 * (15 * 64e-6) / 8e-3);
  EXPECT_DOUBLE_EQ(val(s.latency()), 16e-3);
}

TEST(TdmaMacServerTest, BoundsAPeriodicSourceLikeTheStepCurve) {
  const TdmaMacServer s("TDMA.MAC", ref_params());
  // One 50-kbit message per second fits into one cycle's 96-kbit budget:
  // the classic small-message worst case of two cycles plus transmission.
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::sec(1));
  const auto analysis = s.analyze(msg);
  ASSERT_TRUE(analysis.has_value());
  EXPECT_GT(val(analysis->worst_case_delay), 0.0);
  EXPECT_LE(val(analysis->worst_case_delay), 3.0 * 8e-3);
  EXPECT_GE(val(analysis->buffer_required), 50000.0);
}

TEST(TdmaMacServerTest, InvalidParamsAreRejected) {
  TdmaMacParams p = ref_params();
  p.slot_time = units::ms(9);  // slot longer than the cycle
  EXPECT_THROW(TdmaMacServer("TDMA.MAC", p), std::logic_error);
  p = ref_params();
  p.allocation = units::us(10);  // below one slot — no usable budget
  EXPECT_THROW(TdmaMacServer("TDMA.MAC", p), std::logic_error);
  p = ref_params();
  p.cycle = Seconds{};
  EXPECT_THROW(TdmaMacServer("TDMA.MAC", p), std::logic_error);
}

}  // namespace
}  // namespace hetnet
