#include "src/servers/fddi_mac.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

// Reference configuration: TTRT = 8 ms, 100 Mb/s ring, H = 1 ms per visit
// (per-visit service quantum H·BW = 100 kbit).
FddiMacParams ref_params() {
  FddiMacParams p;
  p.ttrt = units::ms(8);
  p.sync_allocation = units::ms(1);
  p.ring_rate = units::mbps(100);
  return p;
}

TEST(FddiMacServerTest, AvailStepsAtRotations) {
  FddiMacServer s("mac", ref_params());
  const Bits per_visit = units::ms(1) * units::mbps(100);  // 1e5 bits
  EXPECT_DOUBLE_EQ(val(s.avail(Seconds{0.0})), 0.0);
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(4))), 0.0);
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(8))), 0.0);   // (⌊1⌋−1)·pv = 0
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(16))), val(per_visit));
  EXPECT_DOUBLE_EQ(val(s.avail(units::ms(24))), val(2 * per_visit));
  // The left limit lags one rotation at the boundary.
  EXPECT_DOUBLE_EQ(val(s.avail_left(units::ms(16))), 0.0);
  EXPECT_DOUBLE_EQ(val(s.avail_left(units::ms(24))), val(per_visit));
}

TEST(FddiMacServerTest, SmallMessageDelayIsTwoTTRT) {
  // A message that fits in one synchronous window has the classic timed-token
  // worst case of 2·TTRT (wait for the current rotation, send on the next).
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::sec(1));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->worst_case_delay), val(2 * units::ms(8)), 1e-9);
}

TEST(FddiMacServerTest, MultiWindowMessageDelay) {
  // 250 kbit needs ⌈250k/100k⌉ = 3 token visits: delay = (3+1)·TTRT.
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{250000.0}, units::sec(10));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->worst_case_delay), val(4 * units::ms(8)), 1e-9);
}

TEST(FddiMacServerTest, BusyIntervalForSmallBurst) {
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::sec(1));
  const auto busy = s.busy_interval(msg);
  ASSERT_TRUE(busy.has_value());
  // 50 kbit <= avail at the 2nd rotation (1 visit credited).
  EXPECT_DOUBLE_EQ(val(*busy), val(units::ms(16)));
}

TEST(FddiMacServerTest, UnstableSourceHasNoBound) {
  // Long-term rate 50 Mb/s against a guaranteed 100k/8ms = 12.5 Mb/s.
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<LeakyBucketEnvelope>(Bits{}, units::mbps(50));
  EXPECT_FALSE(s.busy_interval(msg).has_value());
  EXPECT_FALSE(s.analyze(msg).has_value());
}

TEST(FddiMacServerTest, BufferBoundEqualsPeakBacklog) {
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::sec(1));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  // The whole burst is buffered before the first credited visit.
  EXPECT_DOUBLE_EQ(result->buffer_required.value(), 50000.0);
}

TEST(FddiMacServerTest, FiniteBufferOverflowRejects) {
  FddiMacParams p = ref_params();
  p.buffer_limit = Bits{40000.0};  // smaller than the 50 kbit burst
  FddiMacServer s("mac", p);
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::sec(1));
  EXPECT_FALSE(s.analyze(msg).has_value());
}

TEST(FddiMacServerTest, DelayDecreasesWithAllocation) {
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{300000.0}, units::ms(100));
  Seconds prev{1e9};
  for (double h_ms : {0.5, 1.0, 2.0, 4.0}) {
    FddiMacParams p = ref_params();
    p.sync_allocation = units::ms(h_ms);
    FddiMacServer s("mac", p);
    const auto result = s.analyze(msg);
    ASSERT_TRUE(result.has_value()) << "H=" << h_ms << "ms";
    EXPECT_LE(result->worst_case_delay, prev + Seconds{1e-12})
        << "H=" << h_ms << "ms";
    prev = result->worst_case_delay;
  }
}

TEST(FddiMacServerTest, OutputCappedByRingRate) {
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(100));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  for (Seconds i{1e-5}; i < 0.05; i += Seconds{0.0013}) {
    EXPECT_LE(result->output->bits(i), units::mbps(100) * i * (1 + 1e-9))
        << "I=" << i;
  }
}

TEST(FddiMacServerTest, OutputPreservesLongTermRate) {
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{50000.0}, units::ms(100));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->output->long_term_rate()), val(msg->long_term_rate()), 1e-6);
}

TEST(FddiMacServerTest, OutputIsMonotone) {
  FddiMacServer s("mac", ref_params());
  auto msg = std::make_shared<DualPeriodicEnvelope>(
      Bits{300000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
  const auto result = s.analyze(msg);
  ASSERT_TRUE(result.has_value());
  Bits prev{-1.0};
  for (Seconds i; i < 0.2; i += Seconds{0.00071}) {
    const Bits v = result->output->bits(i);
    EXPECT_GE(v, prev - Bits{1e-6}) << "I=" << i;
    prev = v;
  }
}

// Υ must upper-bound what can actually leave the MAC: over any window of
// length I the departures cannot exceed arrivals ever admitted... the
// cheapest executable check is against the unrasterized definition at the
// sampled points: rasterization may only raise values.
TEST(FddiMacServerTest, RasterizedOutputDominatesExactOutput) {
  auto msg = std::make_shared<DualPeriodicEnvelope>(
      Bits{300000.0}, units::ms(100), Bits{100000.0}, units::ms(20));
  AnalysisConfig raw_cfg;
  raw_cfg.rasterize_mac_output = false;
  AnalysisConfig ras_cfg;  // default: rasterized
  FddiMacServer raw("mac", ref_params(), raw_cfg);
  FddiMacServer ras("mac", ref_params(), ras_cfg);
  const auto raw_result = raw.analyze(msg);
  const auto ras_result = ras.analyze(msg);
  ASSERT_TRUE(raw_result.has_value());
  ASSERT_TRUE(ras_result.has_value());
  for (Seconds i; i < 0.4; i += Seconds{0.0017}) {
    EXPECT_GE(ras_result->output->bits(i),
              raw_result->output->bits(i) - Bits{1e-6})
        << "I=" << i;
  }
}

TEST(FddiMacServerTest, DelayInfinityViaBudgetExhaustion) {
  // A source at 99.99% of the guaranteed rate with large bursts closes its
  // busy interval far beyond the rotation budget.
  AnalysisConfig cfg;
  cfg.max_busy_rotations = 4;
  FddiMacServer s("mac", ref_params(), cfg);
  auto msg = std::make_shared<LeakyBucketEnvelope>(units::mbits(1),
                                                   units::mbps(12.4));
  EXPECT_FALSE(s.analyze(msg).has_value());
}

TEST(FddiMacServerTest, ConstructorValidatesParams) {
  FddiMacParams p = ref_params();
  p.ttrt = Seconds{};
  EXPECT_THROW(FddiMacServer("m", p), std::logic_error);
  p = ref_params();
  p.sync_allocation = Seconds{};
  EXPECT_THROW(FddiMacServer("m", p), std::logic_error);
  p = ref_params();
  p.sync_allocation = units::ms(9);  // H > TTRT
  EXPECT_THROW(FddiMacServer("m", p), std::logic_error);
  p = ref_params();
  p.ring_rate = BitsPerSecond{};
  EXPECT_THROW(FddiMacServer("m", p), std::logic_error);
}

}  // namespace
}  // namespace hetnet
