#include "src/servers/constant_delay.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(ConstantDelayServerTest, ReportsItsDelay) {
  ConstantDelayServer s("Input_Port", units::us(50));
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{100.0}, BitsPerSecond{1000.0});
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->worst_case_delay.value(), val(units::us(50)));
}

TEST(ConstantDelayServerTest, TrafficPassesThroughUnchanged) {
  // Eqs. (13), (17), (19): a constant-delay server does not alter the
  // traffic descriptor.
  ConstantDelayServer s("Delay_Line", units::us(20));
  auto input = std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10));
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->output.get(), input.get());
}

TEST(ConstantDelayServerTest, BufferIsInFlightBits) {
  ConstantDelayServer s("Delay_Line", Seconds{1.0});
  auto input = std::make_shared<LeakyBucketEnvelope>(Bits{100.0}, BitsPerSecond{1000.0});
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->buffer_required.value(), 1100.0);
}

TEST(ConstantDelayServerTest, ZeroDelayAllowed) {
  ConstantDelayServer s("noop", Seconds{});
  auto input = std::make_shared<ZeroEnvelope>();
  const auto result = s.analyze(input);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->worst_case_delay.value(), 0.0);
  EXPECT_DOUBLE_EQ(result->buffer_required.value(), 0.0);
}

TEST(ConstantDelayServerTest, NegativeDelayRejected) {
  EXPECT_THROW(ConstantDelayServer("bad", Seconds{-1.0}), std::logic_error);
}

TEST(ConstantDelayServerTest, NameIsReported) {
  ConstantDelayServer s("Frame_Switch", Seconds{0.001});
  EXPECT_EQ(s.name(), "Frame_Switch");
}

}  // namespace
}  // namespace hetnet
