#include "src/signaling/manager.h"

#include <gtest/gtest.h>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::signaling {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

TEST(ConnectionManagerTest, SetupEstablishesAndRecordsLatency) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  manager.request_setup(spec, Seconds{0.0});
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].admitted);
  EXPECT_TRUE(manager.known(1));
  EXPECT_EQ(manager.state(1), ConnectionState::kEstablished);
  // Latency = 2 × path + CAC processing; with the defaults this sits in the
  // low milliseconds and must exceed the pure CAC term.
  EXPECT_GT(records[0].setup_latency, units::ms(2));
  EXPECT_LT(records[0].setup_latency, units::ms(10));
}

TEST(ConnectionManagerTest, RejectedSetupLeavesNoState) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(1));
  manager.request_setup(spec, Seconds{0.0});
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].admitted);
  EXPECT_EQ(records[0].reason, core::RejectReason::kInfeasible);
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
}

TEST(ConnectionManagerTest, ReleaseReturnsBandwidthAfterPropagation) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  manager.request_setup(spec, Seconds{0.0});
  manager.request_release(1, Seconds{1.0});
  manager.run();
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
  EXPECT_DOUBLE_EQ(val(manager.cac().ledger(0).allocated()), 0.0);
}

TEST(ConnectionManagerTest, BandwidthChargedBeforeConnectArrives) {
  // The CAC reserves at decision time; a second setup racing the CONNECT of
  // the first must already see the reduced availability.
  const auto topo = hetnet::testing::paper_topology();
  SignalingParams params;
  params.cac_processing = units::ms(1);
  ConnectionManager manager(&topo, core::CacConfig{}, params);
  const auto a = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  const auto b = make_spec(2, {0, 1}, {1, 1}, video_source(), units::ms(150));
  manager.request_setup(a, Seconds{0.0});
  // b's SETUP leaves while a's CONNECT is still in flight.
  manager.request_setup(b, units::ms(3.5));
  std::vector<SetupRecord> records = manager.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].admitted);
  EXPECT_TRUE(records[1].admitted);
  // Both grants coexist in the ledgers — no double-sold bandwidth.
  EXPECT_NEAR(val(manager.cac().ledger(0).allocated()),
              val(records[0].granted.h_s + records[1].granted.h_s), 1e-12);
}

TEST(ConnectionManagerTest, CompletionCallbackFires) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {2, 0}, {0, 2}, sensor_source(), units::ms(100));
  int callbacks = 0;
  manager.request_setup(spec, Seconds{0.5}, [&](const SetupRecord& record) {
    ++callbacks;
    EXPECT_EQ(record.id, 1u);
    EXPECT_TRUE(record.admitted);
    EXPECT_DOUBLE_EQ(record.requested_at.value(), 0.5);
  });
  manager.run();
  EXPECT_EQ(callbacks, 1);
}

TEST(ConnectionManagerTest, IntraRingSetupHasShorterPath) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto local =
      make_spec(1, {0, 0}, {0, 1}, sensor_source(), units::ms(100));
  const auto remote =
      make_spec(2, {1, 0}, {2, 1}, sensor_source(), units::ms(100));
  manager.request_setup(local, Seconds{0.0});
  manager.request_setup(remote, Seconds{0.0});
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].admitted && records[1].admitted);
  EXPECT_LT(records[0].setup_latency, records[1].setup_latency);
}

TEST(ConnectionManagerTest, SetupDuringReleaseIsRefusedNotCrashed) {
  // Regression: a SETUP reusing an id whose previous instance is still
  // kReleasing used to abort the event loop with a CHECK failure. It must
  // be a recorded refusal instead.
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  manager.request_setup(spec, Seconds{0.0});
  manager.request_release(1, Seconds{1.0});
  // The RELEASE takes a path latency (~hundreds of µs) to reach the
  // controller; this SETUP fires while the id is still kReleasing.
  manager.request_setup(spec, Seconds{1.0} + units::us(10));
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].admitted);
  EXPECT_FALSE(records[1].admitted);
  EXPECT_EQ(records[1].reason, core::RejectReason::kSignalingCollision);
  EXPECT_EQ(manager.stats().setup_collisions, 1u);
  // The collision refusal must not disturb the original teardown.
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
}

TEST(ConnectionManagerTest, ReleaseRacingSetupIsDeferred) {
  // Regression: a RELEASE reaching a connection still kSetupInProgress used
  // to abort the event loop. It must wait for the verdict and then apply.
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  manager.request_setup(spec, Seconds{0.0});
  // The SETUP round-trip takes >2 ms (CAC processing alone); this RELEASE
  // fires long before the CONNECT lands.
  manager.request_release(1, units::us(100));
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].admitted);
  EXPECT_EQ(manager.stats().deferred_releases, 1u);
  // After the CONNECT the deferred RELEASE ran to completion.
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
  EXPECT_DOUBLE_EQ(val(manager.cac().ledger(0).allocated()), 0.0);
}

TEST(ConnectionManagerTest, DeferredReleaseOfRejectedSetupIsDropped) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  // An infeasible deadline guarantees a REJECT.
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(1));
  manager.request_setup(spec, Seconds{0.0});
  manager.request_release(1, units::us(100));
  const auto records = manager.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].admitted);
  EXPECT_EQ(manager.stats().deferred_releases, 1u);
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
}

TEST(ConnectionManagerTest, DuplicateReleaseDuringTeardownIsCountedNoOp) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  manager.request_setup(spec, Seconds{0.0});
  manager.request_release(1, Seconds{1.0});
  manager.request_release(1, Seconds{1.0} + units::us(10));
  manager.run();
  EXPECT_EQ(manager.stats().duplicate_releases, 1u);
  EXPECT_FALSE(manager.known(1));
  EXPECT_EQ(manager.cac().active_count(), 0u);
}

TEST(ConnectionManagerTest, UnknownReleaseIsCountedNotFatal) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  // RELEASE of an id with no live instance is legitimate under open-loop
  // churn (the previous instance tore down, or its SETUP was rejected,
  // before this RELEASE fired) — it must be a counted no-op, never a crash.
  manager.request_release(99, Seconds{0.0});
  manager.run();
  EXPECT_EQ(manager.stats().unmatched_releases, 1u);
  EXPECT_EQ(manager.cac().active_count(), 0u);
  // Asking for the STATE of an unknown connection is still a caller bug.
  EXPECT_THROW(manager.state(99), std::logic_error);
}

TEST(ConnectionManagerTest, ChurnSequenceKeepsLedgersExact) {
  const auto topo = hetnet::testing::paper_topology();
  ConnectionManager manager(&topo, core::CacConfig{});
  for (int i = 0; i < 6; ++i) {
    const auto spec = make_spec(static_cast<net::ConnectionId>(i + 1),
                                {i % 3, i % 4}, {(i + 1) % 3, i % 4},
                                sensor_source(), units::ms(100));
    manager.request_setup(spec, Seconds{0.1 * i});
    manager.request_release(static_cast<net::ConnectionId>(i + 1),
                            Seconds{2.0 + 0.1 * i});
  }
  const auto records = manager.run();
  EXPECT_EQ(records.size(), 6u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(val(manager.cac().ledger(r).allocated()), 0.0);
  }
}

}  // namespace
}  // namespace hetnet::signaling
