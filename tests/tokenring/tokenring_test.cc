#include "src/tokenring/tokenring.h"

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "src/servers/chain.h"
#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fifo_mux.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::tokenring {
namespace {

TokenRingParams ring16() { return TokenRingParams{}; }  // 16 Mb/s

TEST(TokenRingTest, WorstCycleSumsFrameTimes) {
  const TokenRingParams ring = ring16();
  // Two stations with 4000-bit frames: walk + 2·(4000+168)/16e6.
  const Seconds cycle = worst_cycle(ring, {Bits{4000.0}, Bits{4000.0}});
  EXPECT_NEAR(val(cycle), val(units::us(30)) + 2 * 4168.0 / 16e6, 1e-12);
}

TEST(TokenRingTest, EffectiveRateDiscountsOverhead) {
  const TokenRingParams ring = ring16();
  const BitsPerSecond rate = effective_payload_rate(ring, Bits{4000.0});
  EXPECT_NEAR(val(rate), 16e6 * 4000.0 / 4168.0, 1.0);
  EXPECT_LT(rate, ring.ring_rate);
}

TEST(TokenRingTest, SmallMessageDelayIsTwoCycles) {
  // One frame per visit, message fits in one frame: the 2·T_cycle classic.
  const TokenRingParams ring = ring16();
  const Seconds cycle =
      worst_cycle(ring, {Bits{4000.0}, Bits{4000.0}, Bits{4000.0}});
  TokenRingMacServer mac("802.5_MAC", ring, Bits{4000.0}, cycle);
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{4000.0}, units::sec(1));
  const auto result = mac.analyze(msg);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->worst_case_delay), val(2 * cycle), 1e-9);
}

TEST(TokenRingTest, MultiFrameMessageDelay) {
  const TokenRingParams ring = ring16();
  const Seconds cycle = worst_cycle(ring, {Bits{4000.0}, Bits{4000.0}});
  TokenRingMacServer mac("802.5_MAC", ring, Bits{4000.0}, cycle);
  // Three frames' worth: (3 + 1)·cycle.
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{12000.0}, units::sec(1));
  const auto result = mac.analyze(msg);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(val(result->worst_case_delay), val(4 * cycle), 1e-9);
}

TEST(TokenRingTest, GuaranteedRateIsFramePerCycle) {
  const TokenRingParams ring = ring16();
  const Seconds cycle = worst_cycle(ring, {Bits{4000.0}, Bits{4000.0}});
  TokenRingMacServer mac("802.5_MAC", ring, Bits{4000.0}, cycle);
  EXPECT_NEAR(val(mac.guaranteed_rate()), val(Bits{4000.0} / cycle), 1e-6);
}

TEST(TokenRingTest, OverloadedStationUnbounded) {
  const TokenRingParams ring = ring16();
  const Seconds cycle = worst_cycle(ring, {Bits{4000.0}, Bits{4000.0}});
  TokenRingMacServer mac("802.5_MAC", ring, Bits{4000.0}, cycle);
  // Arrival rate above one frame per cycle.
  auto msg = std::make_shared<LeakyBucketEnvelope>(
      Bits{}, 2.0 * Bits{4000.0} / cycle);
  EXPECT_FALSE(mac.analyze(msg).has_value());
}

TEST(TokenRingTest, FrameMustFitCycle) {
  const TokenRingParams ring = ring16();
  EXPECT_THROW(TokenRingMacServer("m", ring, Bits{4000.0}, units::us(1)),
               std::logic_error);
  EXPECT_THROW(worst_cycle(ring, {Bits{}}), std::logic_error);
}

// The promised heterogeneous extension: an 802.5 → ATM → 802.5 path built
// from the same server vocabulary, analyzed end to end.
TEST(TokenRingTest, TokenRingAtmTokenRingChain) {
  const TokenRingParams ring = ring16();
  const Bits frame{4000.0};
  const Seconds cycle = worst_cycle(ring, {frame, frame, frame, frame});

  FifoMuxParams port;
  port.capacity = units::mbps(155) * 48.0 / 53.0;
  port.non_preemption = Bits{424.0} / units::mbps(155);
  port.cell_bits = Bits{384.0};

  ServerChain chain;
  chain.append(std::make_shared<TokenRingMacServer>("802.5_S.MAC", ring,
                                                    frame, cycle));
  chain.append(std::make_shared<ConstantDelayServer>("Delay_Line",
                                                     units::us(30)));
  chain.append(make_frame_to_cell_server("ID_S.Frame_Cell", frame, Bits{384.0},
                                         Bits{384.0}, units::us(50)));
  chain.append(std::make_shared<FifoMuxServer>(
      "ATM.Port", port, std::make_shared<ZeroEnvelope>()));
  chain.append(make_cell_to_frame_server("ID_R.Cell_Frame", frame, Bits{384.0},
                                         Bits{384.0}, units::us(50)));
  chain.append(std::make_shared<TokenRingMacServer>("802.5_R.MAC", ring,
                                                    frame, cycle));

  // A 200 kb/s periodic source: one ~2 kbit sample per 10 ms.
  auto src = std::make_shared<PeriodicEnvelope>(Bits{2000.0}, units::ms(10));
  const auto result = chain.analyze(src);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->total_delay, 4 * cycle - Seconds{1e-9});  // 2 MACs × 2 cycles
  EXPECT_LT(result->total_delay, units::ms(50));
  EXPECT_EQ(result->stages.size(), 6u);
}

TEST(TokenRingTest, SparseMessageDelayMatchesClosedForm) {
  // For a message rare enough that its busy period is its own service, the
  // bound is the classic (⌈message/frame⌉ + 1) · T_cycle — note larger
  // frames do NOT always help, because every station's reservation also
  // stretches the cycle.
  const TokenRingParams ring = ring16();
  auto msg = std::make_shared<PeriodicEnvelope>(Bits{16000.0}, units::ms(100));
  for (Bits frame : {Bits{2000.0}, Bits{4000.0}, Bits{8000.0}, Bits{16000.0}}) {
    const Seconds cycle = worst_cycle(ring, {frame, frame});
    TokenRingMacServer mac("m", ring, frame, cycle);
    const auto result = mac.analyze(msg);
    ASSERT_TRUE(result.has_value()) << frame;
    const double frames_needed = std::ceil(val(Bits{16000.0} / frame));
    EXPECT_NEAR(val(result->worst_case_delay), val((frames_needed + 1) * cycle),
                1e-9)
        << frame;
  }
}

}  // namespace
}  // namespace hetnet::tokenring
