#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/testing/scenario.h"

namespace hetnet::sim {
namespace {

TEST(TraceTest, ParseRoundTrip) {
  std::vector<TraceRequest> trace;
  for (int i = 0; i < 5; ++i) {
    TraceRequest r;
    r.arrival = Seconds{0.5 * i};
    r.src_host = i % 12;
    r.dst_host = (i + 4) % 12;
    r.c1 = Bits{500000.0};
    r.p1 = Seconds{0.1};
    r.c2 = Bits{50000.0};
    r.p2 = Seconds{0.01};
    r.deadline = Seconds{0.08};
    r.lifetime = Seconds{10.0 + i};
    trace.push_back(r);
  }
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto parsed = parse_trace(buffer);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(val(parsed[i].arrival), val(trace[i].arrival));
    EXPECT_EQ(parsed[i].src_host, trace[i].src_host);
    EXPECT_EQ(parsed[i].dst_host, trace[i].dst_host);
    EXPECT_DOUBLE_EQ(val(parsed[i].lifetime), val(trace[i].lifetime));
  }
}

TEST(TraceTest, ParserSkipsCommentsAndHeader) {
  std::istringstream in(
      "# a comment\n"
      "arrival_s,src_host,dst_host,c1_bits,p1_s,c2_bits,p2_s,deadline_s,"
      "lifetime_s\n"
      "\n"
      "1.0,0,4,500000,0.1,50000,0.01,0.08,12.5\n");
  const auto trace = parse_trace(in);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0].arrival.value(), 1.0);
  EXPECT_EQ(trace[0].dst_host, 4);
}

TEST(TraceTest, ParserRejectsMalformedRows) {
  std::istringstream missing("1.0,0,4,500000,0.1\n");
  EXPECT_THROW(parse_trace(missing), std::invalid_argument);
  std::istringstream junk("1.0,zero,4,5,0.1,5,0.01,0.08,12\n");
  EXPECT_THROW(parse_trace(junk), std::invalid_argument);
  std::istringstream unordered(
      "2.0,0,4,500000,0.1,50000,0.01,0.08,12\n"
      "1.0,1,5,500000,0.1,50000,0.01,0.08,12\n");
  EXPECT_THROW(parse_trace(unordered), std::invalid_argument);
}

// The error text must name the offending line and field — it is the only
// diagnostic a user gets for a hand-edited trace file.
TEST(TraceTest, MalformedRowMessagesNameLineAndField) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::istringstream in(text);
    try {
      parse_trace(in);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_EQ(message_of("# ok\n1.0,zero,4,5,0.1,5,0.01,0.08,12\n"),
            "trace line 2: bad field 'zero'");
  EXPECT_EQ(message_of("1.0,0,4,500000,0.1\n"),
            "trace line 1: expected 9 fields, got 5");
  EXPECT_EQ(message_of("2.0,0,4,500000,0.1,50000,0.01,0.08,12\n"
                       "1.0,1,5,500000,0.1,50000,0.01,0.08,12\n"),
            "trace line 2: arrivals must be nondecreasing");
}

// write_trace emits 17 significant digits, so write → parse reproduces
// every field BIT-exactly — including the exponential lifetimes and
// arrival times whose doubles have no short decimal form. This is what
// lets a serialized trace replay to identical admission decisions.
TEST(TraceTest, WriteParseRoundTripIsBitExact) {
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w;
  w.num_requests = 50;
  w.warmup_requests = 0;
  w.lambda = 3.7;  // irregular inter-arrival doubles
  const auto trace = synthesize_trace(w, topo);
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto parsed = parse_trace(buffer);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(val(parsed[i].arrival), val(trace[i].arrival)) << "row " << i;
    EXPECT_EQ(parsed[i].src_host, trace[i].src_host);
    EXPECT_EQ(parsed[i].dst_host, trace[i].dst_host);
    EXPECT_EQ(val(parsed[i].c1), val(trace[i].c1));
    EXPECT_EQ(val(parsed[i].p1), val(trace[i].p1));
    EXPECT_EQ(val(parsed[i].c2), val(trace[i].c2));
    EXPECT_EQ(val(parsed[i].p2), val(trace[i].p2));
    EXPECT_EQ(val(parsed[i].deadline), val(trace[i].deadline));
    EXPECT_EQ(val(parsed[i].lifetime), val(trace[i].lifetime)) << "row " << i;
  }
}

// write_trace must leave the stream's formatting state as it found it.
TEST(TraceTest, WriteTraceRestoresStreamPrecision) {
  std::stringstream buffer;
  buffer.precision(4);
  write_trace(buffer, {});
  EXPECT_EQ(buffer.precision(), 4);
}

TEST(TraceTest, SynthesizedTraceMatchesWorkloadShape) {
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w;
  w.num_requests = 100;
  w.warmup_requests = 10;
  w.lambda = 2.0;
  const auto trace = synthesize_trace(w, topo);
  ASSERT_EQ(trace.size(), 110u);
  Seconds prev;
  RunningStats gaps;
  for (const auto& r : trace) {
    EXPECT_GE(r.arrival, prev);
    gaps.add(val(r.arrival - prev));
    prev = r.arrival;
    EXPECT_GE(r.src_host, 0);
    EXPECT_LT(r.src_host, 12);
    // Destinations are always on another ring.
    EXPECT_NE(topo.host_at(r.src_host).ring,
              topo.host_at(r.dst_host).ring);
    EXPECT_GT(r.lifetime, 0.0);
  }
  EXPECT_NEAR(gaps.mean(), 0.5, 0.15);  // Exp(1/λ) inter-arrivals
}

TEST(TraceTest, ReplayIsDeterministic) {
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w;
  w.num_requests = 60;
  w.warmup_requests = 10;
  w.lambda = lambda_for_utilization(0.4, w, topo);
  const auto trace = synthesize_trace(w, topo);
  core::CacConfig cfg;
  const auto a = run_trace_simulation(topo, cfg, trace, 10);
  const auto b = run_trace_simulation(topo, cfg, trace, 10);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_DOUBLE_EQ(a.granted_h_s.mean(), b.granted_h_s.mean());
}

TEST(TraceTest, ReplayBookkeepingConsistent) {
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w;
  w.num_requests = 80;
  w.warmup_requests = 0;
  w.lambda = lambda_for_utilization(0.5, w, topo);
  const auto trace = synthesize_trace(w, topo);
  core::CacConfig cfg;
  const auto r = run_trace_simulation(topo, cfg, trace, 0);
  EXPECT_EQ(r.total_requests, trace.size());
  EXPECT_EQ(r.admitted + r.rejected_infeasible + r.rejected_no_bandwidth +
                r.skipped_no_source,
            r.total_requests);
}

TEST(TraceTest, RoundTripThroughTextPreservesReplay) {
  // Synthesize → serialize → parse → replay must equal replaying the
  // original. write_trace prints 17 significant digits, so the parsed
  // trace is bit-identical (WriteParseRoundTripIsBitExact) and the replay
  // trivially agrees — this test pins the end-to-end composition.
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w;
  w.num_requests = 40;
  w.warmup_requests = 0;
  w.lambda = lambda_for_utilization(0.3, w, topo);
  const auto trace = synthesize_trace(w, topo);
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto reparsed = parse_trace(buffer);
  core::CacConfig cfg;
  const auto direct = run_trace_simulation(topo, cfg, trace, 0);
  const auto via_text = run_trace_simulation(topo, cfg, reparsed, 0);
  EXPECT_EQ(direct.admitted, via_text.admitted);
  EXPECT_EQ(direct.skipped_no_source, via_text.skipped_no_source);
}

TEST(TraceTest, OutOfRangeHostRejected) {
  const auto topo = hetnet::testing::paper_topology();
  TraceRequest r;
  r.arrival = Seconds{};
  r.src_host = 99;
  r.dst_host = 0;
  r.c1 = Bits{1000.0};
  r.p1 = Seconds{0.1};
  r.c2 = Bits{1000.0};
  r.p2 = Seconds{0.1};
  r.deadline = Seconds{0.1};
  r.lifetime = Seconds{1.0};
  core::CacConfig cfg;
  EXPECT_THROW(run_trace_simulation(topo, cfg, {r}), std::logic_error);
}

}  // namespace
}  // namespace hetnet::sim
