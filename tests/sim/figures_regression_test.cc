// Regression locks on the paper's headline results, at reduced fidelity so
// the suite stays fast. These assert ORDERINGS (who wins), not absolute AP
// values, so they are robust to small numeric changes but catch anything
// that breaks the β trade-off or the load response.
#include <gtest/gtest.h>

#include "src/sim/workload.h"
#include "tests/testing/scenario.h"

namespace hetnet::sim {
namespace {

WorkloadParams regression_workload() {
  WorkloadParams w;
  w.num_requests = 150;
  w.warmup_requests = 30;
  w.seed = 42;
  return w;
}

double ap_at(const net::AbhnTopology& topo, double u, double beta) {
  WorkloadParams w = regression_workload();
  w.lambda = lambda_for_utilization(u, w, topo);
  core::CacConfig cfg;
  cfg.beta = beta;
  cfg.equality_tolerance = 0.05;
  ProportionStats ap;
  for (std::uint64_t seed : {42u, 1042u}) {
    w.seed = seed;
    ap.merge(run_admission_simulation(topo, cfg, w).admission);
  }
  return ap.proportion();
}

TEST(FiguresRegressionTest, Figure7MidBetaBeatsExtremesUnderHeavyLoad) {
  const auto topo = hetnet::testing::paper_topology();
  const double ap0 = ap_at(topo, 0.9, 0.0);
  const double ap_mid = ap_at(topo, 0.9, 0.3);
  const double ap1 = ap_at(topo, 0.9, 1.0);
  EXPECT_GT(ap_mid, ap0) << "β=0 should underperform the middle";
  EXPECT_GT(ap_mid, ap1) << "β=1 should underperform the middle";
}

TEST(FiguresRegressionTest, Figure8ApDeclinesWithLoad) {
  const auto topo = hetnet::testing::paper_topology();
  const double light = ap_at(topo, 0.1, 0.5);
  const double medium = ap_at(topo, 0.5, 0.5);
  const double heavy = ap_at(topo, 0.9, 0.5);
  EXPECT_GT(light, medium);
  EXPECT_GT(medium, heavy);
}

TEST(FiguresRegressionTest, Figure8MidBetaDominatesAcrossLoads) {
  const auto topo = hetnet::testing::paper_topology();
  for (double u : {0.3, 0.9}) {
    const double mid = ap_at(topo, u, 0.5);
    EXPECT_GT(mid, ap_at(topo, u, 0.0)) << "U=" << u;
    EXPECT_GE(mid, ap_at(topo, u, 1.0) * 0.95) << "U=" << u;
  }
}

}  // namespace
}  // namespace hetnet::sim
