#include "src/sim/workload.h"

#include <gtest/gtest.h>

#include "tests/testing/scenario.h"

namespace hetnet::sim {
namespace {

WorkloadParams quick_workload() {
  WorkloadParams w;
  w.num_requests = 60;
  w.warmup_requests = 10;
  return w;
}

TEST(WorkloadTest, UtilizationConversionsRoundTrip) {
  const auto topo = hetnet::testing::paper_topology();
  WorkloadParams w = quick_workload();
  for (double u : {0.1, 0.5, 0.9}) {
    w.lambda = lambda_for_utilization(u, w, topo);
    EXPECT_NEAR(offered_utilization(w, topo), u, 1e-12);
  }
}

TEST(WorkloadTest, LambdaRoundTripsThroughUtilization) {
  // lambda_for_utilization(offered_utilization(w)) ≈ w.lambda, on both the
  // mesh and the line backbone (different link counts).
  for (const auto shape :
       {net::BackboneShape::kMesh, net::BackboneShape::kLine}) {
    auto params = net::paper_topology_params();
    params.backbone_shape = shape;
    const net::AbhnTopology topo(params);
    WorkloadParams w = quick_workload();
    w.lambda = 3.7;
    const double u = offered_utilization(w, topo);
    EXPECT_NEAR(lambda_for_utilization(u, w, topo), w.lambda, 1e-12);
  }
}

TEST(WorkloadTest, UtilizationLinkCountComesFromTopology) {
  // The Section-6 divisor is the number of backbone links, not the number
  // of rings: the 3-ring mesh (triangle) has 3 links, the 3-ring line only
  // 2, so the same λ loads each line link 3/2 as much.
  auto params = net::paper_topology_params();
  const net::AbhnTopology mesh(params);
  params.backbone_shape = net::BackboneShape::kLine;
  const net::AbhnTopology line(params);
  EXPECT_EQ(mesh.num_backbone_links(), 3);
  EXPECT_EQ(line.num_backbone_links(), 2);
  const WorkloadParams w = quick_workload();
  EXPECT_NEAR(offered_utilization(w, line),
              offered_utilization(w, mesh) * 3.0 / 2.0, 1e-12);
}

TEST(WorkloadTest, SingleRingTopologyRefusesInsteadOfCrashing) {
  // Regression: with every host on one ring there is no backbone-crossing
  // destination; each arrival must become a counted refusal, not an
  // out-of-bounds pick from an empty candidate list.
  auto params = net::paper_topology_params();
  params.num_rings = 1;
  const net::AbhnTopology topo(params);
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = 5.0;  // lambda_for_utilization needs a backbone; set λ directly
  const auto r = run_admission_simulation(topo, cfg, w);
  EXPECT_EQ(r.total_requests, static_cast<std::size_t>(w.num_requests));
  EXPECT_EQ(r.skipped_no_destination, r.total_requests);
  EXPECT_EQ(r.admitted, 0u);
  EXPECT_DOUBLE_EQ(r.admission.proportion(), 0.0);
  EXPECT_THROW(offered_utilization(w, topo), std::logic_error);
}

TEST(WorkloadTest, SourceRateIsC1OverP1) {
  WorkloadParams w = quick_workload();
  EXPECT_DOUBLE_EQ(val(source_rate(w)), val(w.c1 / w.p1));
}

TEST(WorkloadTest, SimulationIsReproducible) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = lambda_for_utilization(0.3, w, topo);
  const auto a = run_admission_simulation(topo, cfg, w);
  const auto b = run_admission_simulation(topo, cfg, w);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_DOUBLE_EQ(a.admission.proportion(), b.admission.proportion());
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = lambda_for_utilization(0.5, w, topo);
  const auto a = run_admission_simulation(topo, cfg, w);
  w.seed = 999;
  const auto b = run_admission_simulation(topo, cfg, w);
  // Either the admitted counts differ or (rarely) the mean allocations do.
  EXPECT_TRUE(a.admitted != b.admitted ||
              a.granted_h_s.mean() != b.granted_h_s.mean());
}

TEST(WorkloadTest, BookkeepingIsConsistent) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = lambda_for_utilization(0.6, w, topo);
  const auto r = run_admission_simulation(topo, cfg, w);
  EXPECT_EQ(r.total_requests,
            static_cast<std::size_t>(w.num_requests));
  EXPECT_EQ(r.admission.trials(), r.total_requests);
  EXPECT_EQ(r.admitted + r.rejected_no_bandwidth + r.rejected_infeasible +
                r.skipped_no_source + r.skipped_no_destination,
            r.total_requests);
  EXPECT_EQ(r.admission.successes(), r.admitted);
}

TEST(WorkloadTest, LightLoadAdmitsMost) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = lambda_for_utilization(0.02, w, topo);
  const auto r = run_admission_simulation(topo, cfg, w);
  EXPECT_GT(r.admission.proportion(), 0.8);
}

TEST(WorkloadTest, OverloadAdmitsFewerThanLightLoad) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.num_requests = 120;
  w.lambda = lambda_for_utilization(0.05, w, topo);
  const auto light = run_admission_simulation(topo, cfg, w);
  w.lambda = lambda_for_utilization(0.9, w, topo);
  const auto heavy = run_admission_simulation(topo, cfg, w);
  EXPECT_GT(light.admission.proportion(), heavy.admission.proportion());
}

TEST(WorkloadTest, AdmittedDelaysRespectDeadline) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = lambda_for_utilization(0.4, w, topo);
  const auto r = run_admission_simulation(topo, cfg, w);
  ASSERT_GT(r.admitted, 0u);
  EXPECT_LE(r.admitted_delay.max(), w.deadline * (1 + 1e-9));
}

TEST(WorkloadTest, InvalidParametersRejected) {
  const auto topo = hetnet::testing::paper_topology();
  core::CacConfig cfg;
  WorkloadParams w = quick_workload();
  w.lambda = 0.0;
  EXPECT_THROW(run_admission_simulation(topo, cfg, w), std::logic_error);
  w = quick_workload();
  w.lambda = 1.0;
  w.num_requests = 0;
  EXPECT_THROW(run_admission_simulation(topo, cfg, w), std::logic_error);
  EXPECT_THROW(lambda_for_utilization(0.0, w, topo), std::logic_error);
}

}  // namespace
}  // namespace hetnet::sim
