#include "src/sim/packet_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "src/core/cac.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::sim {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;

std::vector<core::ConnectionInstance> one_video_connection() {
  const auto spec = make_spec(1, {0, 0}, {1, 0},
                              hetnet::testing::video_source(),
                              units::ms(150));
  return {{spec, {units::ms(2), units::ms(2)}}};
}

TEST(PacketSimTest, DeliversAllMessages) {
  const auto topo = paper_topology();
  PacketSimConfig cfg;
  cfg.duration = Seconds{1.0};
  const auto result = run_packet_simulation(topo, one_video_connection(), cfg);
  ASSERT_EQ(result.connections.size(), 1u);
  const auto& trace = result.connections[0];
  EXPECT_GT(trace.messages_generated, 0u);
  EXPECT_EQ(trace.messages_delivered, trace.messages_generated);
}

TEST(PacketSimTest, DelaysAreBoundedByAnalysis) {
  const auto topo = paper_topology();
  const auto set = one_video_connection();
  const core::DelayAnalyzer analyzer(&topo);
  const Seconds bound = analyzer.analyze(set)[0];
  ASSERT_TRUE(isfinite(bound));

  PacketSimConfig cfg;
  cfg.duration = Seconds{2.0};
  cfg.randomize_phases = false;
  cfg.async_fill = 0.9;  // adversarial rotations
  const auto result = run_packet_simulation(topo, set, cfg);
  const auto& trace = result.connections[0];
  ASSERT_GT(trace.messages_delivered, 0u);
  EXPECT_LE(trace.delay.max(), bound);
  EXPECT_GT(trace.delay.max(), 0.0);
}

TEST(PacketSimTest, AdmittedSetRespectsBoundsUnderAdversarialSettings) {
  // End-to-end soundness: admit through the CAC, then simulate with aligned
  // phases and stretched rotations; every connection's simulated max delay
  // must stay under its analytic bound (and hence its deadline).
  const auto topo = paper_topology();
  core::CacConfig cac_cfg;
  core::AdmissionController cac(&topo, cac_cfg);
  for (int i = 0; i < 5; ++i) {
    auto spec = make_spec(static_cast<net::ConnectionId>(i + 1),
                          {i % 3, i / 3}, {(i + 1) % 3, i / 3},
                          hetnet::testing::video_source(), units::ms(150));
    cac.request(spec);
  }
  ASSERT_GT(cac.active_count(), 2u);
  std::vector<core::ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  const auto bounds = cac.analyzer().analyze(set);

  PacketSimConfig cfg;
  cfg.duration = Seconds{2.0};
  cfg.randomize_phases = false;
  cfg.async_fill = 0.9;
  const auto result = run_packet_simulation(topo, set, cfg);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& trace = result.connections[i];
    ASSERT_GT(trace.messages_delivered, 0u) << "connection " << i;
    EXPECT_LE(trace.delay.max(), bounds[i]) << "connection " << i;
    EXPECT_LE(trace.delay.max(), set[i].spec.deadline) << "connection " << i;
  }
}

TEST(PacketSimTest, AsyncFillSlowsDelivery) {
  const auto topo = paper_topology();
  const auto set = one_video_connection();
  PacketSimConfig fast;
  fast.duration = Seconds{1.0};
  PacketSimConfig slow = fast;
  slow.async_fill = 0.9;
  const auto r_fast = run_packet_simulation(topo, set, fast);
  const auto r_slow = run_packet_simulation(topo, set, slow);
  EXPECT_GT(r_slow.connections[0].delay.mean(),
            r_fast.connections[0].delay.mean());
}

TEST(PacketSimTest, DeterministicForFixedSeed) {
  const auto topo = paper_topology();
  const auto set = one_video_connection();
  PacketSimConfig cfg;
  cfg.duration = Seconds{0.7};
  const auto a = run_packet_simulation(topo, set, cfg);
  const auto b = run_packet_simulation(topo, set, cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.connections[0].delay.mean(),
                   b.connections[0].delay.mean());
}

TEST(PacketSimTest, ConvergingFlowsBuildPortBacklog) {
  // Flows from the same ring are serialized by the token, so contention
  // appears where flows from DIFFERENT rings converge on one downlink:
  // (0,*)→ring 2 and (1,*)→ring 2 share the switch→ID_2 port.
  const auto topo = paper_topology();
  const net::Allocation alloc{units::ms(2), units::ms(2)};
  std::vector<core::ConnectionInstance> one = {
      {make_spec(1, {0, 0}, {2, 0}, hetnet::testing::video_source(),
                 units::ms(150)),
       alloc}};
  std::vector<core::ConnectionInstance> converging = one;
  converging.push_back({make_spec(2, {1, 0}, {2, 1},
                                  hetnet::testing::video_source(),
                                  units::ms(150)),
                        alloc});
  converging.push_back({make_spec(3, {1, 1}, {2, 2},
                                  hetnet::testing::video_source(),
                                  units::ms(150)),
                        alloc});
  PacketSimConfig cfg;
  cfg.duration = Seconds{1.0};
  cfg.randomize_phases = false;  // aligned bursts collide at the downlink
  const auto r1 = run_packet_simulation(topo, one, cfg);
  const auto r3 = run_packet_simulation(topo, converging, cfg);
  EXPECT_GT(r3.max_port_backlog, r1.max_port_backlog);
}

TEST(PacketSimTest, TokenRotationNeverExceedsTtrt) {
  // The timed-token protocol property the analysis rests on: with
  // ΣH + Δ <= TTRT (guaranteed by the ledger/CAC), no rotation exceeds
  // TTRT — even with asynchronous fill and every window fully used.
  const auto topo = paper_topology();
  core::CacConfig cac_cfg;
  core::AdmissionController cac(&topo, cac_cfg);
  for (int i = 0; i < 8; ++i) {
    auto spec = make_spec(static_cast<net::ConnectionId>(i + 1),
                          {i % 3, i % 4}, {(i + 1) % 3, i % 4},
                          hetnet::testing::video_source(), units::ms(150));
    cac.request(spec);
  }
  std::vector<core::ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  ASSERT_FALSE(set.empty());
  PacketSimConfig cfg;
  cfg.duration = Seconds{2.0};
  cfg.randomize_phases = false;
  cfg.async_fill = 0.9;
  const auto result = run_packet_simulation(topo, set, cfg);
  EXPECT_GT(result.max_token_rotation, 0.0);
  EXPECT_LE(result.max_token_rotation,
            topo.params().ring.ttrt * (1 + 1e-9));
}

TEST(PacketSimTest, RejectsNonGeneratorSources) {
  const auto topo = paper_topology();
  auto spec = make_spec(1, {0, 0}, {1, 0},
                        std::make_shared<LeakyBucketEnvelope>(Bits{1000.0}, BitsPerSecond{1e6}),
                        units::ms(150));
  std::vector<core::ConnectionInstance> set = {
      {spec, {units::ms(2), units::ms(2)}}};
  PacketSimConfig cfg;
  EXPECT_THROW(run_packet_simulation(topo, set, cfg), std::logic_error);
}

TEST(PacketSimTest, RejectsUnallocatedConnections) {
  const auto topo = paper_topology();
  auto set = one_video_connection();
  set[0].alloc.h_s = Seconds{};
  PacketSimConfig cfg;
  EXPECT_THROW(run_packet_simulation(topo, set, cfg), std::logic_error);
}

}  // namespace
}  // namespace hetnet::sim
