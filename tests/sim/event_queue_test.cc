#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetnet::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds{3.0}, [&] { order.push_back(3); });
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule_at(Seconds{2.0}, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(val(q.now()), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(2); });
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(Seconds{1.0}, chain);
  };
  q.schedule_at(Seconds{0.0}, chain);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(val(q.now()), 4.0);
}

TEST(EventQueueTest, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(Seconds{1.0}, [&] { ++fired; });
  q.schedule_at(Seconds{5.0}, [&] { ++fired; });
  EXPECT_EQ(q.run(Seconds{2.0}), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(val(q.now()), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingInPastRejected) {
  EventQueue q;
  q.schedule_at(Seconds{2.0}, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(Seconds{1.0}, [] {}), std::logic_error);
  EXPECT_THROW(q.schedule_in(Seconds{-1.0}, [] {}), std::logic_error);
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  Seconds seen{-1.0};
  q.schedule_at(Seconds{2.0}, [&] {
    q.schedule_in(Seconds{3.0}, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(val(seen), 5.0);
}

TEST(EventQueueTest, EmptyAccessors) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
  q.schedule_at(Seconds{1.0}, [] {});
  EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(Seconds{1.0}, nullptr), std::logic_error);
}

}  // namespace
}  // namespace hetnet::sim
