// Golden-figure locks: exact pinned numbers for small seeded versions of
// the paper's evaluation artifacts (Fig. 7 β-sensitivity, Fig. 8
// load-sensitivity, the Fig. 6 feasible region). Unlike
// tests/sim/figures_regression_test.cc, which asserts orderings, these pin
// EXACT admitted counts, region-cell counts, and allocation doubles, so
// any numeric drift anywhere in the admission pipeline — envelope algebra,
// Theorem 1/2 bounds, bisection, ledger arithmetic, or the parallel
// engine's merge order — fails loudly instead of hiding inside a tolerance.
//
// The pins are properties of the code, not the machine: every quantity is
// either an integer tally or a double produced by a deterministic
// computation, and the parallel engine is contractually bit-identical to
// serial. If a deliberate numeric change (new bound, different staircase
// resolution) moves them, re-pin from the failure output and say why in
// the commit.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "src/core/region.h"
#include "src/sim/workload.h"
#include "tests/testing/scenario.h"

namespace hetnet::sim {
namespace {

// A deliberately small workload (one seed, short run) so the golden suite
// stays in tier-1 time budgets while still crossing warm-up, churn, and
// both reject paths.
WorkloadParams golden_workload() {
  WorkloadParams w;
  w.num_requests = 80;
  w.warmup_requests = 10;
  w.seed = 7;
  return w;
}

core::CacConfig golden_config(double beta, int threads = 1) {
  core::CacConfig cfg;
  cfg.beta = beta;
  cfg.equality_tolerance = 0.05;
  cfg.analysis.threads = threads;
  return cfg;
}

SimulationResult run_golden(double u, double beta, int threads = 1) {
  const net::AbhnTopology topo = hetnet::testing::paper_topology();
  WorkloadParams w = golden_workload();
  w.lambda = lambda_for_utilization(u, w, topo);
  return run_admission_simulation(topo, golden_config(beta, threads), w);
}

struct GoldenPoint {
  double u;
  double beta;
  std::size_t admitted;  // pinned: exact admitted count out of 80 measured
};

// ---- Figure 7: admitted counts across β at heavy load (U = 0.9) ----------

TEST(GoldenFigures, Figure7BetaSweepAdmittedCountsAreExact) {
  const std::vector<GoldenPoint> golden = {
      {0.9, 0.0, 4},
      {0.9, 0.3, 14},
      {0.9, 0.7, 7},
      {0.9, 1.0, 5},
  };
  for (const GoldenPoint& g : golden) {
    const SimulationResult r = run_golden(g.u, g.beta);
    EXPECT_EQ(r.total_requests, 80u) << "beta=" << g.beta;
    EXPECT_EQ(r.admitted, g.admitted) << "beta=" << g.beta;
  }
}

// ---- Figure 8: admitted counts across load at the paper's β = 0.5 --------

TEST(GoldenFigures, Figure8LoadSweepAdmittedCountsAreExact) {
  const std::vector<GoldenPoint> golden = {
      {0.1, 0.5, 60},
      {0.5, 0.5, 14},
      {0.9, 0.5, 11},
  };
  for (const GoldenPoint& g : golden) {
    const SimulationResult r = run_golden(g.u, g.beta);
    EXPECT_EQ(r.total_requests, 80u) << "U=" << g.u;
    EXPECT_EQ(r.admitted, g.admitted) << "U=" << g.u;
  }
}

// The parallel sim driver and CAC engine must reproduce the same golden
// tallies — not merely similar AP — at any thread count.
TEST(GoldenFigures, Figure7GoldenPointIsThreadCountInvariant) {
  const SimulationResult serial = run_golden(0.9, 0.3, 1);
  const SimulationResult parallel = run_golden(0.9, 0.3, 8);
  EXPECT_EQ(serial.admitted, parallel.admitted);
  EXPECT_EQ(serial.rejected_no_bandwidth, parallel.rejected_no_bandwidth);
  EXPECT_EQ(serial.rejected_infeasible, parallel.rejected_infeasible);
  EXPECT_EQ(serial.admission.proportion(), parallel.admission.proportion());
}

// ---- Figure 6: the feasible region of a request against a loaded set -----

TEST(GoldenFigures, FeasibleRegionCellCountsAreExact) {
  const net::AbhnTopology topo = hetnet::testing::paper_topology();
  core::AdmissionController cac(&topo, golden_config(0.5));
  // Load rings 0 and 1 with two video connections, then probe a third.
  ASSERT_TRUE(cac.request(hetnet::testing::make_spec(
                              1, {0, 0}, {1, 0}, hetnet::testing::video_source(),
                              units::ms(80)))
                  .admitted);
  ASSERT_TRUE(cac.request(hetnet::testing::make_spec(
                              2, {1, 1}, {0, 1}, hetnet::testing::video_source(),
                              units::ms(80)))
                  .admitted);
  const net::ConnectionSpec probe = hetnet::testing::make_spec(
      3, {0, 2}, {1, 2}, hetnet::testing::video_source(), units::ms(80));

  const core::RegionGrid grid = core::sample_feasible_region(cac, probe, 12, 12);
  ASSERT_EQ(grid.samples.size(), 144u);
  std::size_t feasible = 0;
  for (const core::RegionSample& s : grid.samples) feasible += s.feasible;
  EXPECT_EQ(feasible, 131u);  // pinned
  // Theorems 3–4: the sampled region must look convex on the grid.
  EXPECT_EQ(core::count_convexity_violations(grid), 0);
}

// ---- Per-medium golden pins -----------------------------------------------
//
// One pinned admission tally per registered media mix, each asserted across
// thread counts {1, 2, 8} and both engines (tiered and untiered): the
// registry refactor's contract is that a medium decides WHAT is admitted,
// while threading and tiering never change a decision. The default chain's
// pin is the same Figure-7 point pinned above — the registry resolution of
// the default hop sequence must be bit-identical to the pre-registry code.

core::CacConfig media_config(double beta, int threads, bool tiered) {
  core::CacConfig cfg = golden_config(beta, threads);
  cfg.tiered = tiered;
  return cfg;
}

struct MediaGoldenCase {
  const char* name;
  net::TopologyParams params;
  Seconds deadline;
  std::size_t admitted;  // pinned tally out of 80 measured requests
};

void run_media_golden(const MediaGoldenCase& g) {
  const net::AbhnTopology topo(g.params);
  WorkloadParams w = golden_workload();
  w.deadline = g.deadline;
  w.lambda = lambda_for_utilization(0.9, w, topo);
  for (const int threads : {1, 2, 8}) {
    for (const bool tiered : {false, true}) {
      const SimulationResult r = run_admission_simulation(
          topo, media_config(0.3, threads, tiered), w);
      EXPECT_EQ(r.total_requests, 80u) << g.name;
      EXPECT_EQ(r.admitted, g.admitted)
          << g.name << " threads=" << threads << " tiered=" << tiered;
    }
  }
}

TEST(GoldenFigures, DefaultChainMediaTallyIsExact) {
  // Must equal the Figure-7 β = 0.3 pin: the registry's default resolution
  // reproduces the historical FDDI-ATM-FDDI pipeline bit for bit.
  run_media_golden({"fddi-atm", net::paper_topology_params(), units::ms(80),
                    14});
}

TEST(GoldenFigures, TdmaEthernetMediaTallyIsExact) {
  // One fewer admit than FDDI at the same load: whole-slot quantization
  // wastes the fractional tail of each allocation, so the schedule packs
  // slightly fewer connections.
  run_media_golden({"tdma-atm", hetnet::testing::tdma_topology_params(),
                    units::ms(80), 13});
}

TEST(GoldenFigures, SatelliteAtmMediaTallyIsExact) {
  // An inter-ring route traverses three backbone links (uplink, inter-
  // switch, downlink), each at the 250 ms GEO propagation — the end-to-end
  // floor at maximal allocation is ≈ 782 ms. A 1 s deadline leaves the CAC
  // the same allocation-vs-disturbance headroom the terrestrial scenarios
  // have.
  run_media_golden({"fddi-sat", hetnet::testing::satellite_topology_params(),
                    units::sec(1), 18});
}

TEST(GoldenFigures, AdmissionAllocationDoublesAreExact) {
  const net::AbhnTopology topo = hetnet::testing::paper_topology();
  core::AdmissionController cac(&topo, golden_config(0.5));
  const core::AdmissionDecision first = cac.request(hetnet::testing::make_spec(
      1, {0, 0}, {2, 3}, hetnet::testing::video_source(), units::ms(80)));
  ASSERT_TRUE(first.admitted);
  // Exact doubles (17 significant digits round-trip): the full pipeline —
  // Theorem-1 MAC bound, frame→cell conversion, both bisections, the β
  // interpolation — condensed into four numbers.
  EXPECT_EQ(val(first.alloc.h_s), 0.0013205623245239259) << "h_s";
  EXPECT_EQ(val(first.alloc.h_r), 0.0013205623245239259) << "h_r";
  EXPECT_EQ(val(first.worst_case_delay), 0.038961792515313537) << "delay";
  EXPECT_EQ(val(first.max_avail.h_s), 0.0070000000000000001) << "max_avail.h_s";
}

}  // namespace
}  // namespace hetnet::sim
