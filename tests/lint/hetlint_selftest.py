#!/usr/bin/env python3
"""Fixture-backed self-test for tools/hetlint.

Every fixture line carrying an `EXPECT(check-name)` marker must produce
exactly one actionable violation of that check on that line (markers may
repeat when one line trips several checks), and no unmarked line may
produce any.  On top of the marker sweep this drives the suppression
annotations, the baseline workflow (update, clean rerun, new violation,
protected-directory rejection, stale-entry reporting), the --checks subset
mode, and the tools/lint.py compatibility shim.

Runs standalone (`python3 tests/lint/hetlint_selftest.py`) and as the
tier-1 ctest entry `hetlint_selftest`.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from collections import Counter
from pathlib import Path

TESTS_LINT = Path(__file__).resolve().parent
REPO_ROOT = TESTS_LINT.parent.parent
HETLINT = REPO_ROOT / "tools" / "hetlint"
SHIM = REPO_ROOT / "tools" / "lint.py"
FIXTURES = TESTS_LINT / "fixtures"

EXPECT_RE = re.compile(r"EXPECT\(([a-z-]+)\)")

_failures: list[str] = []


def check(cond: bool, message: str) -> None:
    if not cond:
        _failures.append(message)
        print(f"FAIL: {message}")


def run_hetlint(args: list[str], entry: Path = HETLINT):
    return subprocess.run(
        [sys.executable, str(entry), *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def fixture_files() -> list[Path]:
    return sorted(
        f for f in FIXTURES.rglob("*") if f.suffix in (".h", ".hpp", ".cc")
    )


def expected_markers() -> Counter:
    expected: Counter = Counter()
    for f in fixture_files():
        rel = f.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(f.read_text().splitlines(), 1):
            for m in EXPECT_RE.finditer(line):
                expected[(rel, lineno, m.group(1))] += 1
    return expected


def test_marker_sweep() -> None:
    files = [str(f) for f in fixture_files()]
    proc = run_hetlint(
        ["--json", "--no-baseline", "--path-root", str(FIXTURES), *files]
    )
    check(proc.returncode == 1,
          f"marker sweep: expected exit 1, got {proc.returncode}; "
          f"stderr: {proc.stderr}")
    report = json.loads(proc.stdout)
    actual: Counter = Counter()
    for v in report["violations"]:
        if v.get("suppressed") or v.get("baselined"):
            continue
        actual[(v["file"], v["line"], v["check"])] += 1
    expected = expected_markers()
    for key in sorted(expected.keys() | actual.keys()):
        e, a = expected[key], actual[key]
        check(e == a,
              f"{key[0]}:{key[1]}: {key[2]}: expected {e} violation(s), "
              f"hetlint reported {a}")
    # Suppressed violations are reported as suppressed, never actionable:
    # two reasoned raw-stream suppressions plus the order-insensitive-fold
    # suppression in the unordered-iteration fixture.
    suppressed = Counter(
        (v["check"], v["file"].rsplit("/", 1)[-1])
        for v in report["violations"] if v.get("suppressed")
    )
    check(suppressed == Counter({
        ("raw-stream", "suppression_cases.cc"): 2,
        ("unordered-iteration", "unordered_iteration_cases.cc"): 1,
    }), f"unexpected suppressed-violation set: {dict(suppressed)}")


def test_checks_subset() -> None:
    target = FIXTURES / "src" / "fix" / "include_root_cases.cc"
    proc = run_hetlint(
        ["--json", "--no-baseline", "--path-root", str(FIXTURES),
         "--checks", "include-root", str(target)]
    )
    report = json.loads(proc.stdout)
    checks_seen = {v["check"] for v in report["violations"]}
    check(checks_seen == {"include-root"},
          f"--checks subset leaked other checks: {checks_seen}")
    proc = run_hetlint(["--checks", "no-such-check", str(target)])
    check(proc.returncode == 2,
          f"unknown check name should exit 2, got {proc.returncode}")


def test_baseline_workflow() -> None:
    clean_violators = [
        str(FIXTURES / "src" / "fix" / "include_root_cases.cc"),
        str(FIXTURES / "src" / "fix" / "raw_stream_cases.cc"),
    ]
    with tempfile.TemporaryDirectory() as td:
        baseline = Path(td) / "baseline.json"
        # 1. Record the current violations as the baseline.
        proc = run_hetlint(
            ["--update-baseline", "--baseline", str(baseline),
             "--path-root", str(FIXTURES), *clean_violators]
        )
        check(proc.returncode == 0,
              f"--update-baseline: expected exit 0, got {proc.returncode}; "
              f"stderr: {proc.stderr}")
        entries = json.loads(baseline.read_text())["entries"]
        check(len(entries) == 4,
              f"baseline should hold 4 entries (2 include-root + "
              f"2 raw-stream), got {len(entries)}")
        # 2. A rerun against the baseline is clean: everything grandfathered.
        proc = run_hetlint(
            ["--json", "--baseline", str(baseline),
             "--path-root", str(FIXTURES), *clean_violators]
        )
        check(proc.returncode == 0,
              f"baselined rerun: expected exit 0, got {proc.returncode}")
        report = json.loads(proc.stdout)
        check(all(v.get("baselined") for v in report["violations"]),
              "baselined rerun: every violation should be marked baselined")
        # 3. A new violation not in the baseline still fails the run.
        extra = FIXTURES / "src" / "fix" / "check_message_cases.cc"
        proc = run_hetlint(
            ["--json", "--baseline", str(baseline),
             "--path-root", str(FIXTURES), *clean_violators, str(extra)]
        )
        check(proc.returncode == 1,
              f"new violation must fail despite baseline, got exit "
              f"{proc.returncode}")
        report = json.loads(proc.stdout)
        fresh = [
            v for v in report["violations"]
            if not v.get("baselined") and not v.get("suppressed")
        ]
        check(fresh and all("check_message" in v["file"] for v in fresh),
              f"only the new file's violations should be actionable: {fresh}")
        # 4. Stale entries (fixed violations) are reported, not fatal.
        proc = run_hetlint(
            ["--baseline", str(baseline), "--path-root", str(FIXTURES),
             str(FIXTURES / "src" / "fix" / "include_root_cases.cc")]
        )
        check(proc.returncode == 0 and "stale baseline entry" in proc.stderr,
              f"stale entries should warn on stderr and exit 0; exit="
              f"{proc.returncode}, stderr: {proc.stderr[:300]}")
        # 5. Protected directories cannot be baselined.
        baseline.write_text(json.dumps({
            "entries": [{
                "check": "raw-stream",
                "file": "src/core/cac.cc",
                "content": "std::cout << x;",
            }]
        }))
        proc = run_hetlint(
            ["--baseline", str(baseline), "--path-root", str(FIXTURES),
             *clean_violators]
        )
        check(proc.returncode == 2 and "rejected" in proc.stderr,
              f"protected-dir baseline entry must be rejected with exit 2; "
              f"exit={proc.returncode}, stderr: {proc.stderr[:300]}")


def test_shim() -> None:
    clean = FIXTURES / "bench" / "scoped_exempt.cc"
    proc = run_hetlint([str(clean)], entry=SHIM)
    check(proc.returncode == 0,
          f"tools/lint.py shim on a clean file: expected exit 0, got "
          f"{proc.returncode}; output: {proc.stdout}{proc.stderr}")
    dirty = FIXTURES / "src" / "fix" / "include_root_cases.cc"
    proc = run_hetlint([str(dirty)], entry=SHIM)
    check(proc.returncode == 1 and "include-root" in proc.stdout,
          f"tools/lint.py shim must surface violations; exit="
          f"{proc.returncode}, stdout: {proc.stdout[:300]}")


def test_repo_is_clean() -> None:
    """The real tree lints clean — the CI gate, exercised as a test."""
    proc = run_hetlint([])
    check(proc.returncode == 0,
          f"hetlint over the repo found actionable violations:\n"
          f"{proc.stdout}\n{proc.stderr}")


def main() -> int:
    for test in (
        test_marker_sweep,
        test_checks_subset,
        test_baseline_workflow,
        test_shim,
        test_repo_is_clean,
    ):
        print(f"-- {test.__name__}")
        test()
    if _failures:
        print(f"\n{len(_failures)} failure(s)")
        return 1
    print("\nall hetlint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
