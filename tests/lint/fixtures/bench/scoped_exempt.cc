// Path-scope negative: the determinism family and raw-stream apply to
// src/ only.  This file sits under bench/, so timing a run with a real
// clock, printing to the terminal, and ad-hoc iteration are all fine —
// benches ARE the callers, and their wall-clock reads are measurement,
// not decision input.
#include <chrono>
#include <iostream>
#include <unordered_map>

int bench_main() {
  const auto t0 = std::chrono::steady_clock::now();
  std::unordered_map<int, double> samples;
  samples[1] = 2.0;
  double total = 0.0;
  for (const auto& [k, v] : samples) {
    total += v;
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "total=" << total << " in "
            << std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                   .count()
            << "us\n";
  return 0;
}
