// medium-registry-bypass fixtures: src/core must not name a concrete
// medium server class or medium-specific conversion factory — media are
// resolved through servers::MediumRegistry into the AccessMedium /
// BackboneMedium interfaces.
#include "src/servers/registry.h"

namespace hetnet::core {

void bypass_cases(const servers::AccessMedium& medium) {
  FddiMacParams params;                                  // EXPECT(medium-registry-bypass)
  const FddiMacServer mac("FDDI_S.MAC", params);         // EXPECT(medium-registry-bypass)
  const TdmaMacServer slots("TDMA_S.MAC", {});           // EXPECT(medium-registry-bypass)
  const TokenRingMacServer ring("TR.MAC", {});           // EXPECT(medium-registry-bypass)
  auto conv = make_frame_to_cell_server("ID_S.FC", {});  // EXPECT(medium-registry-bypass)
  auto back = make_cell_to_frame_server("ID_R.CF", {});  // EXPECT(medium-registry-bypass)
  // Mentioning FddiMacServer in a comment is not a bypass.
  // Generic servers carry no medium identity and are allowed:
  const FifoMuxServer port = medium.port_server();       // ok: generic mux
  const ConstantDelayServer wire = medium.delay_line();  // ok: generic delay
  (void)mac; (void)slots; (void)ring; (void)conv; (void)back;
  (void)port; (void)wire;
}

}  // namespace hetnet::core
