// flat-envelope-bypass fixtures: src/core must not call Envelope::bits()
// directly — envelope evaluation goes through the flat kernels
// (src/traffic/flat.h) or the delay analyzers.
#include "src/traffic/envelope.h"
#include "src/traffic/flat.h"

namespace hetnet::core {

Bits bypass_cases(const EnvelopePtr& env, const Envelope& ref,
                  const FlatEnvelope& flat, Seconds I) {
  Bits total{};
  total = total + env->bits(I);                          // EXPECT(flat-envelope-bypass)
  total = total + ref.bits(I);                           // EXPECT(flat-envelope-bypass)
  // Mentioning bits() in a comment is not a call: env->bits(I).
  const Bits b = flat.bits(I);                           // EXPECT(flat-envelope-bypass)
  // A member named bits that is not called is not an evaluation.
  struct Holder { int bits; };
  Holder h{0};
  h.bits = 1;                                            // ok: field, no call
  // Namespace-qualified free functions are not member evaluations.
  // (fp::bits-style helpers live outside the envelope tree.)
  return total + b;
}

}  // namespace hetnet::core
