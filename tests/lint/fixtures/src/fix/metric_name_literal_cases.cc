// metric-name-literal fixtures: registry call sites in src/ must pass a
// names.h constant, never a string literal — a typo'd literal silently
// creates a dead series.
#include "src/obs/metrics.h"
#include "src/obs/names.h"

namespace hetnet::fix {

void metric_name_cases(obs::MetricsRegistry& registry,
                       const std::string& suffix) {
  registry.counter("cac.requests");                       // EXPECT(metric-name-literal)
  registry.gauge("sim.packet.max_port_backlog_bits");     // EXPECT(metric-name-literal)
  registry.histogram("admissiond.setup_ns");              // EXPECT(metric-name-literal)
  registry.register_callback("cac.session.entries",       // EXPECT(metric-name-literal)
                             [] { return 0ull; });
  // A concatenation that STARTS with a literal still hides a spelling:
  registry.histogram("admissiond.setup_ns" + suffix);     // EXPECT(metric-name-literal)

  // Negative cases: constants and constant-rooted expressions are the
  // sanctioned form.
  registry.counter(obs::names::kCacRequests);
  registry.gauge(obs::names::kSimPacketMaxPortBacklogBits);
  registry.histogram(std::string(obs::names::kAdmissiondSetupNs) + suffix);
  registry.register_callback(obs::names::kCacSessionEntries,
                             [] { return 0ull; });
  // Mentioning counter("literal") in a comment is not a call site, and a
  // literal elsewhere in the argument list is not a metric name:
  registry.histogram(suffix + ".setup_ns");
}

}  // namespace hetnet::fix
