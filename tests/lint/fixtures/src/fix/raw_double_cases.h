// raw-double fixtures: quantity-named doubles in src/ headers must be
// strong unit types — parameters, struct/class fields, and return types.
#pragma once

#include "src/util/units.h"

namespace fix {

// Parameters (the original rule).
void ok_params(hetnet::Seconds deadline, double beta, double ratio);
void bad_param(double deadline_s);                 // EXPECT(raw-double)
void bad_param2(double burst_bits, int n);         // EXPECT(raw-double)

// Dimensionless names stay doubles.
double utilization_for(double u, double fill);

// Struct fields (the PR 6 extension).
struct OkFields {
  hetnet::Seconds ttrt;
  double beta = 0.0;
  int num_hosts = 0;
};
struct BadFields {
  double token_time;                               // EXPECT(raw-double)
  double backlog_ = 0.0;                           // EXPECT(raw-double)
  double horizon_s{1.0};                           // EXPECT(raw-double)
};

// Return types (the PR 6 extension).
class Meter {
 public:
  hetnet::BitsPerSecond peak_rate() const;         // ok: strong type
  double fill_factor() const;                      // ok: dimensionless
  double arrival_rate() const;                     // EXPECT(raw-double)
  double worst_case_delay() const;                 // EXPECT(raw-double)
};

}  // namespace fix
