// check-message fixtures: HETNET_CHECK needs a second (message) argument.
#include "src/util/check.h"

void check_message_cases(int n, double x) {
  HETNET_CHECK(n > 0, "n must be positive");             // ok
  HETNET_CHECK(f(n, x) < g(x, n), "ordered");            // ok: nested commas
  HETNET_CHECK(n > 0);                                   // EXPECT(check-message)
  HETNET_CHECK(f(n, x) < 1.0);                           // EXPECT(check-message)
  // A comma inside a string or char literal is not an argument separator:
  HETNET_CHECK(parse("a,b"));                            // EXPECT(check-message)
}
