// pointer-keyed-ordering fixtures: address order differs run to run.
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

namespace fix {

struct Session {
  std::uint64_t id = 0;
};

void pointer_keyed_cases() {
  std::map<std::uint64_t, Session*> by_id;        // ok: stable key, ptr value
  std::set<std::uint64_t> ids;                    // ok
  std::map<Session*, int> by_addr;                // EXPECT(pointer-keyed-ordering)
  std::set<const Session*> members;               // EXPECT(pointer-keyed-ordering)
  std::multimap<Session*, int> multi;             // EXPECT(pointer-keyed-ordering)
  std::set<std::shared_ptr<Session>> shared;      // EXPECT(pointer-keyed-ordering)
  std::set<Session*, std::less<Session*>> cmp;    // EXPECT(pointer-keyed-ordering) EXPECT(pointer-keyed-ordering)
  (void)by_id;
  (void)ids;
  (void)by_addr;
  (void)members;
  (void)multi;
  (void)shared;
  (void)cmp;
}

}  // namespace fix
