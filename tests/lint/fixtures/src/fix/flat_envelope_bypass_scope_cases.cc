// flat-envelope-bypass is scoped to src/core/: evaluation layers like
// src/traffic and src/servers own Envelope::bits() legitimately, so none
// of these lines may produce a violation.
#include "src/traffic/envelope.h"

namespace hetnet {

Bits scope_cases(const EnvelopePtr& env, const Envelope& ref, Seconds I) {
  return env->bits(I) + ref.bits(I);  // ok: not under src/core/
}

}  // namespace hetnet
