// parallel-body-write fixtures: the PR 4 slot discipline.
#include <cstddef>
#include <vector>

#include "src/util/thread_pool.h"

namespace fix {

struct Task {
  double input = 0.0;
  double output = 0.0;
  bool done = false;
};

void ok_slot_writes(std::vector<Task>& tasks, std::vector<double>& out,
                    int threads) {
  hetnet::util::parallel_for(tasks.size(), threads, [&](std::size_t i) {
    // Direct slot write: fine.
    out[i] = tasks[i].input * 2.0;
    // Reference bound to the worker's own slot: fine.
    Task& t = tasks[i];
    t.output = t.input + 1.0;
    t.done = true;
    // Locals are private to the worker: fine.
    double acc = 0.0;
    for (int j = 0; j < 4; ++j) {
      acc += t.input;
    }
    out[i] = acc;
  });
}

void bad_shared_writes(std::vector<Task>& tasks, int threads) {
  double total = 0.0;
  std::size_t done_count = 0;
  bool any_done = false;
  std::vector<double> out(tasks.size());
  hetnet::util::parallel_for(tasks.size(), threads, [&](std::size_t i) {
    total += tasks[i].input;                 // EXPECT(parallel-body-write) EXPECT(float-reduction-order)
    any_done = true;                         // EXPECT(parallel-body-write)
    ++done_count;                            // EXPECT(parallel-body-write)
    out[i + 1] = tasks[i].input;             // EXPECT(parallel-body-write)
  });
  (void)total;
  (void)any_done;
}

void ok_parallel_map(std::vector<Task>& tasks, int threads) {
  const auto doubled = hetnet::util::parallel_map<double>(
      tasks.size(), threads,
      [&](std::size_t k) { return tasks[k].input * 2.0; });
  // Serial caller-side reduction in index order: the approved pattern.
  double total = 0.0;
  for (double v : doubled) {
    total += v;
  }
  (void)total;
}

}  // namespace fix
