// raw-stream fixtures: src/ code must not write to std::cout / std::cerr.
#include <iostream>
#include <ostream>

void raw_stream_cases(std::ostream& out) {
  out << "callers own the stream";                       // ok
  std::cout << "hello";                                  // EXPECT(raw-stream)
  std::cerr << "oops";                                   // EXPECT(raw-stream)
  // "std::cout" in a string or comment is not a write: std::cout
  const char* doc = "std::cout";
  (void)doc;
}
