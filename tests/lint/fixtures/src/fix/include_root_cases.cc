// include-root fixtures: quoted includes must be repo-rooted.
#include <vector>                      // system include: unconstrained
#include "src/util/units.h"            // ok: repo-rooted
#include "tests/lint/helpers.h"        // ok: repo-rooted
#include "../util/units.h"             // EXPECT(include-root)
#include "units.h"                     // EXPECT(include-root)

int include_root_cases() { return 0; }
