// medium-registry-bypass scope control: outside src/core the concrete
// medium server classes are exactly where they belong — src/servers holds
// the implementations and the registry's factories name them freely.
#include "src/servers/registry.h"

namespace hetnet::servers {

void registry_side_cases() {
  FddiMacParams params;                        // ok: not src/core
  const FddiMacServer mac("FDDI_S.MAC", params);  // ok: not src/core
  const TdmaMacServer slots("TDMA_S.MAC", {});    // ok: not src/core
  auto conv = make_frame_to_cell_server("ID_S.FC", {});  // ok: not src/core
  (void)mac; (void)slots; (void)conv;
}

}  // namespace hetnet::servers
