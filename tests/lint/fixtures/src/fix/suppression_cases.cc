// Suppression-annotation fixtures: HETLINT-OK grammar and hygiene.
#include <iostream>

namespace fix {

void suppressed_ok() {
  // A reasoned suppression on the same line silences the violation:
  std::cout << "banner";  // HETLINT-OK(raw-stream): CLI banner, caller-owned terminal
  // ...and one on the line above works too:
  // HETLINT-OK(raw-stream): progress line explicitly requested by the user
  std::cerr << "progress";
}

void suppressed_bad() {
  std::cout << "x";  // HETLINT-OK(raw-stream)                EXPECT(raw-stream) EXPECT(suppression)
  std::cerr << "y";  // HETLINT-OK(): missing check name      EXPECT(raw-stream) EXPECT(suppression)
}

// A suppression that matches nothing is stale:
// HETLINT-OK(raw-stream): nothing to suppress here            EXPECT(suppression)
void no_violation_here() {}

}  // namespace fix
