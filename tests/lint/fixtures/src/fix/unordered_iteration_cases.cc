// unordered-iteration fixtures: loops over hash containers are
// order-hazards; keyed lookups are fine.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fix {

struct Registry {
  std::unordered_map<std::uint64_t, double> grants_;
  std::unordered_set<std::string> names_;
  std::map<std::uint64_t, double> ordered_;
  std::vector<double> slots_;

  double sum_grants() const {
    double total = 0.0;
    for (const auto& [key, value] : grants_) {    // EXPECT(unordered-iteration)
      total += value;
    }
    return total;
  }

  std::size_t walk_names() const {
    std::size_t n = 0;
    for (auto it = names_.begin(); it != names_.end(); ++it) {  // EXPECT(unordered-iteration)
      n += it->size();
    }
    return n;
  }

  double sum_ordered() const {
    double total = 0.0;
    for (const auto& [key, value] : ordered_) {   // ok: std::map is ordered
      total += value;
    }
    for (double v : slots_) {                     // ok: vector order is fixed
      total += v;
    }
    return total;
  }

  bool keyed_lookup(std::uint64_t key) const {
    // Keyed access has no iteration order — never flagged.
    return grants_.find(key) != grants_.end();
  }

  double fold_commutative() const {
    std::size_t n = 0;
    // A provably order-insensitive fold, suppressed with a reason:
    // HETLINT-OK(unordered-iteration): size_t count is order-insensitive
    for (const auto& [key, value] : grants_) {
      (void)key;
      (void)value;
      ++n;
    }
    return static_cast<double>(n);
  }
};

}  // namespace fix
