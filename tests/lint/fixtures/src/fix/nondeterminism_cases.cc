// nondeterminism-source fixtures: ambient entropy is banned in src/.
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

#include "src/util/rng.h"

namespace fix {

unsigned ok_seeded(hetnet::Rng& rng) {
  // The seeded Rng is the only sanctioned randomness.
  return static_cast<unsigned>(rng.next_u64());
}

int bad_rand() {
  return rand();                                  // EXPECT(nondeterminism-source)
}

int bad_std_rand() {
  std::srand(42);                                 // EXPECT(nondeterminism-source)
  return std::rand();                             // EXPECT(nondeterminism-source)
}

unsigned bad_random_device() {
  std::random_device rd;                          // EXPECT(nondeterminism-source)
  return rd();
}

long bad_clock() {
  auto t0 = std::chrono::steady_clock::now();     // EXPECT(nondeterminism-source)
  auto t1 = std::chrono::system_clock::now();     // EXPECT(nondeterminism-source)
  (void)t1;
  return t0.time_since_epoch().count();
}

long bad_time() {
  return time(nullptr);                           // EXPECT(nondeterminism-source)
}

bool bad_thread_id() {
  return std::this_thread::get_id() ==            // EXPECT(nondeterminism-source)
         std::thread::id{};
}

// Negative cases the token-level matcher must NOT trip on:
struct Timer {
  long time(int zone) const { return zone; }  // member named `time`: a decl,
                                              // not a call of ::time
};
long ok_member_call(const Timer& t) {
  return t.time(0);  // member access — somebody else's API
}
int ok_words() {
  int operand = 1;       // `rand` inside an identifier
  int random_index = 2;  // ditto
  // rand() in a comment is fine; so is "rand()" in a string:
  const char* s = "rand() time() steady_clock::now()";
  const char* raw = R"(std::random_device in a raw string)";
  (void)s;
  (void)raw;
  return operand + random_index;
}

}  // namespace fix
