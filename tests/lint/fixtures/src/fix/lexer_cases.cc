// Lexer-evasion fixtures: comments, strings, raw strings, and char
// literals must hide banned constructs; real code after them must still
// be seen at the correct line number.
#include <iostream>

namespace fix {

const char* lexer_negatives() {
  // std::cout << "in a line comment" — not a write
  /* std::cerr << "in a block comment";
     rand(); std::random_device rd;  — still comment */
  const char* s1 = "std::cout << rand()";
  const char* s2 = "escaped \" quote then std::cerr";
  const char c = '"';
  (void)c;
  const char* raw = R"(std::cout << "unescaped quotes" and */ comment
marks and rand() spanning
multiple lines)";
  const char* raw_delim = R"delim(nested )" closer: std::cerr)delim";
  (void)s1;
  (void)s2;
  (void)raw_delim;
  return raw;
}

void lexer_positive_after_raw_string() {
  const char* raw = R"(three
line
string)";
  (void)raw;
  std::cout << "found me";  // EXPECT(raw-stream)  line number must survive
}

}  // namespace fix
