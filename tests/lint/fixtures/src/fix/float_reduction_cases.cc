// float-reduction-order fixtures: schedule-dependent float folds.
#include <cstddef>
#include <numeric>
#include <vector>

#include "src/util/thread_pool.h"

namespace fix {

double bad_std_reduce(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);  // EXPECT(float-reduction-order)
}

double bad_transform_reduce(const std::vector<double>& xs) {
  return std::transform_reduce(                   // EXPECT(float-reduction-order)
      xs.begin(), xs.end(), 0.0, [](double a, double b) { return a + b; },
      [](double x) { return x * x; });
}

double ok_serial_accumulate(const std::vector<double>& xs) {
  // std::accumulate outside a parallel body folds left-to-right: fine.
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

void bad_accumulate_in_body(const std::vector<std::vector<double>>& rows,
                            std::vector<double>& sums, int threads) {
  hetnet::util::parallel_for(rows.size(), threads, [&](std::size_t i) {
    sums[i] = std::accumulate(                    // EXPECT(float-reduction-order)
        rows[i].begin(), rows[i].end(), 0.0);
  });
}

double ok_slot_then_serial(const std::vector<std::vector<double>>& rows,
                           int threads) {
  std::vector<double> partial(rows.size());
  hetnet::util::parallel_for(rows.size(), threads, [&](std::size_t i) {
    double row_sum = 0.0;  // local accumulator: worker-private, fine
    for (double v : rows[i]) {
      row_sum += v;
    }
    partial[i] = row_sum;
  });
  double total = 0.0;  // serial index-ordered reduction after the join
  for (double v : partial) {
    total += v;
  }
  return total;
}

}  // namespace fix
