#include "src/obs/slo.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/obs/metrics.h"

namespace hetnet::obs {
namespace {

// Drives a monitor the way admissiond does: a histogram accumulates
// latencies, and each epoch close hands over the cumulative snapshot.
struct Driver {
  explicit Driver(const SloSpec& spec) : monitor(spec) {}

  bool close_epoch(std::initializer_list<double> latencies,
                   std::uint64_t setups, std::uint64_t admitted) {
    for (double v : latencies) hist.record(v);
    total_setups += setups;
    total_admitted += admitted;
    return monitor.advance(hist.merged(), total_setups, total_admitted);
  }

  ShardedHistogram hist;
  std::uint64_t total_setups = 0;
  std::uint64_t total_admitted = 0;
  SloMonitor monitor;
};

TEST(SloSpecTest, DisabledUntilATargetIsSet) {
  SloSpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.p99_ns = 1;
  EXPECT_TRUE(spec.enabled());
}

TEST(SloMonitorTest, RejectsDegenerateSpecs) {
  SloSpec spec;
  spec.p99_ns = 1000;
  spec.window_epochs = 0;
  EXPECT_THROW(SloMonitor{spec}, std::logic_error);
  spec.window_epochs = 8;
  spec.epoch_budget_fraction = 0.0;
  EXPECT_THROW(SloMonitor{spec}, std::logic_error);
}

TEST(SloMonitorTest, EpochDeltasNotCumulativeValuesAreJudged) {
  SloSpec spec;
  spec.p99_ns = 1000;
  Driver d(spec);
  // Epoch 1: all fast — no breach.
  EXPECT_FALSE(d.close_epoch({100.0, 200.0, 300.0}, 3, 3));
  // Epoch 2: slow samples. Cumulatively the p99 is dragged up by epoch
  // 1's fast mass; the DELTA is all-slow and must breach.
  EXPECT_TRUE(d.close_epoch({90000.0, 80000.0, 70000.0}, 3, 3));
  // Epoch 3: fast again — the breach does not stick to later epochs.
  EXPECT_FALSE(d.close_epoch({100.0, 200.0, 300.0}, 3, 3));
  EXPECT_EQ(d.monitor.epochs(), 3u);
  EXPECT_EQ(d.monitor.breaches(), 1u);
}

TEST(SloMonitorTest, AdmissionProbabilityTarget) {
  SloSpec spec;
  spec.min_admission_probability = 0.5;
  Driver d(spec);
  EXPECT_FALSE(d.close_epoch({100.0}, 10, 9));
  EXPECT_TRUE(d.close_epoch({100.0}, 10, 2));  // 20% this epoch
  const SloWindowReport w = d.monitor.window();
  EXPECT_EQ(w.setups, 20u);
  EXPECT_EQ(w.admitted, 11u);
  EXPECT_TRUE(w.newest_epoch_breached);
}

TEST(SloMonitorTest, BurnRateIsBreachFractionOverBudget) {
  SloSpec spec;
  spec.p99_ns = 1000;
  spec.window_epochs = 4;
  spec.epoch_budget_fraction = 0.25;
  Driver d(spec);
  d.close_epoch({100.0}, 1, 1);
  d.close_epoch({90000.0}, 1, 1);  // breach
  d.close_epoch({100.0}, 1, 1);
  d.close_epoch({90000.0}, 1, 1);  // breach
  const SloWindowReport w = d.monitor.window();
  EXPECT_EQ(w.epochs, 4u);
  EXPECT_EQ(w.breached_epochs, 2u);
  // 2/4 epochs breached over a 25% budget: burning 2x the budget.
  EXPECT_DOUBLE_EQ(w.burn_rate, 2.0);
}

TEST(SloMonitorTest, WindowSlidesOldEpochsOut) {
  SloSpec spec;
  spec.p99_ns = 1000;
  spec.window_epochs = 2;
  Driver d(spec);
  d.close_epoch({90000.0}, 1, 1);  // breach
  d.close_epoch({100.0}, 1, 1);
  d.close_epoch({100.0}, 1, 1);
  const SloWindowReport w = d.monitor.window();
  // The breach epoch slid out of the 2-epoch window entirely.
  EXPECT_EQ(w.epochs, 2u);
  EXPECT_EQ(w.breached_epochs, 0u);
  EXPECT_EQ(w.setups, 2u);
  // Lifetime tallies still remember it.
  EXPECT_EQ(d.monitor.breaches(), 1u);
}

TEST(SloMonitorTest, ResetRebasesAfterAHistogramSwap) {
  SloSpec spec;
  spec.p99_ns = 1000;
  SloMonitor monitor(spec);
  ShardedHistogram first;
  first.record(90000.0);
  EXPECT_TRUE(monitor.advance(first.merged(), 1, 1));  // breach
  // admissiond's begin_measurement swaps to a fresh epoch-suffixed
  // histogram and zeroes its tallies; reset() re-bases the monitor so the
  // next epoch's delta is the fresh histogram's own content.
  monitor.reset();
  ShardedHistogram second;
  second.record(100.0);
  EXPECT_FALSE(monitor.advance(second.merged(), 1, 1));
  EXPECT_EQ(monitor.window().epochs, 1u);
  EXPECT_FALSE(monitor.window().newest_epoch_breached);
}

TEST(SloWindowReportTest, WriteJsonIsParseableShape) {
  SloSpec spec;
  spec.p99_ns = 1000;
  Driver d(spec);
  d.close_epoch({100.0, 90000.0}, 2, 1);
  std::ostringstream out;
  d.monitor.window().write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"burn_rate\""), std::string::npos);
  EXPECT_NE(text.find("\"breached_epochs\""), std::string::npos);
  EXPECT_EQ(text.front(), '{');
}

}  // namespace
}  // namespace hetnet::obs
