#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

namespace hetnet::obs {
namespace {

TEST(SpanTest, NoRecorderMeansNoEvents) {
  ASSERT_EQ(TraceRecorder::global(), nullptr);
  { HETNET_OBS_SPAN("orphan", "test"); }
  TraceRecorder recorder;  // never installed
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(SpanTest, ScopedRecordingCapturesSpans) {
  ScopedRecording rec;
  {
    HETNET_OBS_SPAN_NAMED(span, "outer", "test");
    span.arg("n", 3);
    { HETNET_OBS_SPAN("inner", "test"); }
  }
#if defined(HETNET_OBS_DISABLED)
  EXPECT_EQ(rec.recorder().event_count(), 0u);
#else
  EXPECT_EQ(rec.recorder().event_count(), 2u);
#endif
}

TEST(SpanTest, DisabledRecordingInstallsNothing) {
  ScopedRecording rec(false);
  { HETNET_OBS_SPAN("unseen", "test"); }
  EXPECT_EQ(TraceRecorder::global(), nullptr);
  EXPECT_EQ(rec.recorder().event_count(), 0u);
}

TEST(SpanTest, ChromeTraceJsonShape) {
  TraceRecorder recorder;
  TraceRecorder::Arg args[1];
  args[0] = {"ports", 12};
  recorder.record_complete("analyzer.wave", "analysis", Seconds{2e-6},
                           Seconds{1e-6}, args, 1);
  recorder.record_complete("cac.request", "cac", Seconds{1e-6},
                           Seconds{5e-6}, nullptr, 0);
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"analyzer.wave\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"ports\":12}"), std::string::npos);
  // Events are sorted by timestamp: cac.request (1 µs) precedes
  // analyzer.wave (2 µs) regardless of record order.
  EXPECT_LT(json.find("\"name\":\"cac.request\""),
            json.find("\"name\":\"analyzer.wave\""));
}

TEST(SpanTest, ThreadsGetDenseDistinctTids) {
  TraceRecorder recorder;
  std::thread other([&recorder] {
    recorder.record_complete("t2", "test", Seconds{}, Seconds{}, nullptr, 0);
  });
  other.join();
  recorder.record_complete("t1", "test", Seconds{}, Seconds{}, nullptr, 0);
  EXPECT_EQ(recorder.event_count(), 2u);
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(SpanTest, ArgsBeyondCapacityAreDropped) {
  ScopedRecording rec;
  {
    HETNET_OBS_SPAN_NAMED(span, "crowded", "test");
    span.arg("a", 1).arg("b", 2).arg("c", 3);  // kMaxArgs == 2
  }
  std::ostringstream out;
  rec.recorder().write_chrome_trace(out);
  const std::string json = out.str();
#if !defined(HETNET_OBS_DISABLED)
  EXPECT_NE(json.find("\"a\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"c\":3"), std::string::npos);
#endif
}

TEST(SpanTest, EventCapCountsDropsInsteadOfGrowing) {
  TraceRecorder recorder(/*max_events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.record_complete("e", "test", Seconds{double(i) * 1e-6},
                             Seconds{1e-6}, nullptr, 0);
  }
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 6u);
}

TEST(SpanTest, DrainReclaimsCapacityAndKeepsDropLedger) {
  TraceRecorder recorder(/*max_events_per_thread=*/4);
  for (int i = 0; i < 6; ++i) {
    recorder.record_complete("pre", "test", Seconds{double(i) * 1e-6},
                             Seconds{1e-6}, nullptr, 0);
  }
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 2u);

  std::ostringstream first;
  recorder.drain_chrome_trace(first);
  EXPECT_NE(first.str().find("\"name\":\"pre\""), std::string::npos);
  EXPECT_EQ(recorder.event_count(), 0u);

  // The drain reclaimed the thread's capacity, so recording resumes...
  recorder.record_complete("post", "test", Seconds{8e-6}, Seconds{1e-6},
                           nullptr, 0);
  EXPECT_EQ(recorder.event_count(), 1u);
  std::ostringstream second;
  recorder.drain_chrome_trace(second);
  EXPECT_NE(second.str().find("\"name\":\"post\""), std::string::npos);
  EXPECT_EQ(second.str().find("\"name\":\"pre\""), std::string::npos);

  // ...while the dropped ledger deliberately survives every drain: it is
  // the soak's cumulative data-loss record.
  EXPECT_EQ(recorder.dropped_count(), 2u);
}

}  // namespace
}  // namespace hetnet::obs
