#include "src/obs/flight.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace hetnet::obs {
namespace {

FlightEvent make_event(std::uint64_t seq, bool admitted = true) {
  FlightEvent ev;
  ev.seq = seq;
  ev.conn = seq + 1000;
  ev.digest = seq * 7919;
  ev.admitted = admitted;
  ev.reason = admitted ? 0 : 2;
  ev.tier = int(seq % 3);
  ev.latency_ns = std::int64_t(seq) * 10;
  ev.src_ring = 0;
  ev.dst_ring = 1;
  ev.h_s = Seconds{1e-3};
  ev.h_r = Seconds{2e-3};
  ev.worst_case_delay = Seconds{0.05};
  return ev;
}

TEST(FlightRecorderTest, RetainsEverythingBelowCapacity) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(make_event(i));
  EXPECT_EQ(rec.recorded_count(), 10u);
  EXPECT_EQ(rec.dropped_count(), 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // seq-ascending
  }
}

TEST(FlightRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) rec.record(make_event(i));
  EXPECT_EQ(rec.recorded_count(), 20u);
  // The ledger: overwritten events are counted, not silently forgotten.
  EXPECT_EQ(rec.dropped_count(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is exactly the newest 8, in order.
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(FlightRecorderTest, PerShardRingsMergeBySeq) {
  FlightRecorder rec(64);
  // Two recording threads, disjoint seq ranges (the service's commit
  // thread owns seq assignment; here we just emulate two epochs' worth).
  std::thread a([&rec] {
    for (std::uint64_t i = 0; i < 32; i += 2) rec.record(make_event(i));
  });
  a.join();
  std::thread b([&rec] {
    for (std::uint64_t i = 1; i < 32; i += 2) rec.record(make_event(i));
  });
  b.join();
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 32u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(rec.dropped_count(), 0u);
}

TEST(FlightRecorderTest, DigestIgnoresLatencyButNotDecisions) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  FlightRecorder c(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    FlightEvent ev = make_event(i);
    a.record(ev);
    ev.latency_ns += 12345;  // timing differs run to run
    b.record(ev);
    FlightEvent changed = make_event(i);
    if (i == 3) changed.admitted = !changed.admitted;  // a decision differs
    c.record(changed);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FlightRecorderTest, NdjsonCarriesMediumLabelsAndReasonNames) {
  FlightRecorder rec(8);
  rec.record(make_event(0, /*admitted=*/false));
  std::ostringstream out;
  rec.dump_ndjson(out, {"FDDI", "ATM"});
  const std::string text = out.str();
  EXPECT_NE(text.find("\"src_medium\": \"FDDI\""), std::string::npos);
  EXPECT_NE(text.find("\"dst_medium\": \"ATM\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"infeasible\""), std::string::npos);
  EXPECT_NE(text.find("\"worst_case_delay_s\": 0.05"), std::string::npos);
  // One line per event, nothing else.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

}  // namespace
}  // namespace hetnet::obs
