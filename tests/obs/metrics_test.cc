#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hetnet::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(ShardedHistogramTest, ExactMomentsAndClampedQuantiles) {
  ShardedHistogram h;
  for (double v : {100.0, 200.0, 400.0, 800.0}) h.record(v);
  const auto m = h.merged();
  EXPECT_EQ(m.count, 4u);
  EXPECT_EQ(m.min, 100.0);
  EXPECT_EQ(m.max, 800.0);
  EXPECT_DOUBLE_EQ(m.sum, 1500.0);
  EXPECT_DOUBLE_EQ(m.mean(), 375.0);
  // Quantiles are conservative (upper bin edge, ~9% relative resolution)
  // but clamped to the exact extremes.
  EXPECT_EQ(m.quantile_upper(0.0), 100.0);
  EXPECT_EQ(m.quantile_upper(1.0), 800.0);
  const double p50 = m.quantile_upper(0.5);
  EXPECT_GE(p50, 200.0);
  EXPECT_LE(p50, 200.0 * std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
}

TEST(ShardedHistogramTest, EmptyMergedIsZero) {
  ShardedHistogram h;
  const auto m = h.merged();
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.quantile_upper(0.5), 0.0);
}

TEST(ShardedHistogramTest, SubUnitValuesLandInBinZero) {
  ShardedHistogram h;
  h.record(0.25);
  h.record(1e-9);
  const auto m = h.merged();
  EXPECT_EQ(m.count, 2u);
  EXPECT_EQ(m.min, 1e-9);
  EXPECT_EQ(m.bins[0], 2u);
}

TEST(ShardedHistogramTest, ConcurrentRecordsAllCounted) {
  ShardedHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(double(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& w : workers) w.join();  // happens-before the serial merge
  const auto m = h.merged();
  EXPECT_EQ(m.count, std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(m.min, 1.0);
  EXPECT_EQ(m.max, double(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  const auto snap = reg.counter_snapshot();
  ASSERT_TRUE(snap.contains("x"));
  EXPECT_EQ(snap.at("x"), 7u);
}

TEST(MetricsRegistryTest, CallbackCountersAppearInSnapshot) {
  MetricsRegistry reg;
  std::uint64_t tally = 5;
  reg.register_callback("engine.tally", [&tally] { return tally; });
  EXPECT_EQ(reg.counter_snapshot().at("engine.tally"), 5u);
  tally = 9;  // pull model: the snapshot reads through to the owner
  EXPECT_EQ(reg.counter_snapshot().at("engine.tally"), 9u);
}

TEST(MetricsRegistryTest, GaugeAndHistogramSnapshots) {
  MetricsRegistry reg;
  reg.gauge("depth").set(4.0);
  reg.histogram("lat").record(10.0);
  EXPECT_EQ(reg.gauge_snapshot().at("depth"), 4.0);
  const auto hists = reg.histogram_snapshot();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "lat");
  EXPECT_EQ(hists[0].second.count, 1u);
}

}  // namespace
}  // namespace hetnet::obs
