#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hetnet::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(ShardedHistogramTest, ExactMomentsAndClampedQuantiles) {
  ShardedHistogram h;
  for (double v : {100.0, 200.0, 400.0, 800.0}) h.record(v);
  const auto m = h.merged();
  EXPECT_EQ(m.count, 4u);
  EXPECT_EQ(m.min, 100.0);
  EXPECT_EQ(m.max, 800.0);
  EXPECT_DOUBLE_EQ(m.sum, 1500.0);
  EXPECT_DOUBLE_EQ(m.mean(), 375.0);
  // Quantiles are conservative (upper bin edge, ~9% relative resolution)
  // but clamped to the exact extremes.
  EXPECT_EQ(m.quantile_upper(0.0), 100.0);
  EXPECT_EQ(m.quantile_upper(1.0), 800.0);
  const double p50 = m.quantile_upper(0.5);
  EXPECT_GE(p50, 200.0);
  EXPECT_LE(p50, 200.0 * std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
}

TEST(ShardedHistogramTest, EmptyMergedThrowsOnQuantiles) {
  ShardedHistogram h;
  const auto m = h.merged();
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.mean(), 0.0);
  // A silent 0 from an empty histogram reads as "zero latency" — the
  // quantiles CHECK-fail instead of minting it.
  EXPECT_THROW(m.quantile_upper(0.5), std::logic_error);
  EXPECT_THROW(m.quantile_lower(0.5), std::logic_error);
  EXPECT_THROW(m.trimmed_mean(0.99), std::logic_error);
}

TEST(ShardedHistogramTest, QuantileBoundsBracketTheTrueQuantile) {
  ShardedHistogram h;
  for (double v : {100.0, 200.0, 400.0, 800.0}) h.record(v);
  const auto m = h.merged();
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_LE(m.quantile_lower(q), m.quantile_upper(q)) << "q=" << q;
  }
  // q=0 is the exact min; q=1's lower bound is the top populated bin's
  // lower edge — within one bin width below the exact max.
  EXPECT_EQ(m.quantile_lower(0.0), 100.0);
  EXPECT_LE(m.quantile_lower(1.0), 800.0);
  EXPECT_GE(m.quantile_lower(1.0),
            800.0 / std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
}

TEST(ShardedHistogramTest, SubtractRecoversTheEpochDelta) {
  ShardedHistogram h;
  h.record(100.0);
  h.record(200.0);
  const auto older = h.merged();
  h.record(400.0);
  h.record(400.0);
  h.record(800.0);
  const auto delta = h.merged().subtract(older);
  EXPECT_EQ(delta.count, 3u);
  // Window extrema are re-derived from delta bin edges: the true values
  // (400, 800) lie within one bin width of the reported ones.
  EXPECT_LE(delta.min, 400.0);
  EXPECT_GE(delta.max, 800.0 / std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
  EXPECT_GE(delta.quantile_upper(1.0), 800.0);
  // Subtracting a default-constructed zero snapshot is the identity.
  const auto same = h.merged().subtract(ShardedHistogram::Merged{});
  EXPECT_EQ(same.count, 5u);
}

TEST(ShardedHistogramTest, TrimmedMeanShedsTheTail) {
  ShardedHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100.0);
  h.record(1e9);  // one scheduler-stall outlier
  const auto m = h.merged();
  EXPECT_GT(m.mean(), 1e6);  // the exact mean is hostage to the tail
  const double trimmed = m.trimmed_mean(0.99);
  EXPECT_GE(trimmed, 100.0 / std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
  EXPECT_LE(trimmed, 100.0 * std::exp2(1.0 / ShardedHistogram::kBinsPerOctave));
}

TEST(ShardedHistogramTest, MergeDuringConcurrentRecordIsTornButValid) {
  // TSan-clean by construction (single-writer relaxed atomics): merged()
  // may tear mid-record but every observed snapshot is internally sane.
  ShardedHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&h, &stop] {
    double v = 1.0;
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(v);
      v = v < 1e6 ? v * 1.001 : 1.0;
    }
  });
  std::uint64_t last_count = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto m = h.merged();
    // Counts are monotone across snapshots of a grow-only histogram.
    EXPECT_GE(m.count, last_count);
    last_count = m.count;
    std::uint64_t binned = 0;
    for (const auto b : m.bins) binned += b;
    // Tearing skews binned-vs-count by at most the records in flight
    // during the 480-bin scan (relaxed ordering: no exact bound).
    const std::uint64_t skew =
        binned > m.count ? binned - m.count : m.count - binned;
    EXPECT_LE(skew, 1000u);
    if (m.count > 0) {
      EXPECT_GT(m.max, 0.0);
      EXPECT_GE(m.max, m.min);
      EXPECT_NO_THROW(m.quantile_upper(0.99));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ShardedHistogramTest, SubUnitValuesLandInBinZero) {
  ShardedHistogram h;
  h.record(0.25);
  h.record(1e-9);
  const auto m = h.merged();
  EXPECT_EQ(m.count, 2u);
  EXPECT_EQ(m.min, 1e-9);
  EXPECT_EQ(m.bins[0], 2u);
}

TEST(ShardedHistogramTest, ConcurrentRecordsAllCounted) {
  ShardedHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(double(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& w : workers) w.join();  // happens-before the serial merge
  const auto m = h.merged();
  EXPECT_EQ(m.count, std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(m.min, 1.0);
  EXPECT_EQ(m.max, double(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  const auto snap = reg.counter_snapshot();
  ASSERT_TRUE(snap.contains("x"));
  EXPECT_EQ(snap.at("x"), 7u);
}

TEST(MetricsRegistryTest, CallbackCountersAppearInSnapshot) {
  MetricsRegistry reg;
  std::uint64_t tally = 5;
  reg.register_callback("engine.tally", [&tally] { return tally; });
  EXPECT_EQ(reg.counter_snapshot().at("engine.tally"), 5u);
  tally = 9;  // pull model: the snapshot reads through to the owner
  EXPECT_EQ(reg.counter_snapshot().at("engine.tally"), 9u);
}

TEST(MetricsRegistryTest, GaugeAndHistogramSnapshots) {
  MetricsRegistry reg;
  reg.gauge("depth").set(4.0);
  reg.histogram("lat").record(10.0);
  EXPECT_EQ(reg.gauge_snapshot().at("depth"), 4.0);
  const auto hists = reg.histogram_snapshot();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "lat");
  EXPECT_EQ(hists[0].second.count, 1u);
}

}  // namespace
}  // namespace hetnet::obs
