#include "src/obs/exposition.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/metrics.h"

namespace hetnet::obs {
namespace {

void fill_registry(MetricsRegistry& reg) {
  reg.counter("cac.requests").add(42);
  reg.gauge("cac.active_connections").set(7.0);
  auto& h = reg.histogram("admissiond.setup_ns");
  h.record(100.0);
  h.record(200.0);
  h.record(400.0);
}

TEST(PrometheusExpositionTest, SanitizesNamesAndEmitsTypes) {
  MetricsRegistry reg;
  fill_registry(reg);
  std::ostringstream out;
  write_prometheus(reg, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE cac_requests counter"), std::string::npos);
  EXPECT_NE(text.find("cac_requests 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cac_active_connections gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE admissiond_setup_ns histogram"),
            std::string::npos);
  // No unsanitized dot survives into a metric name.
  EXPECT_EQ(text.find("cac.requests"), std::string::npos);
}

TEST(PrometheusExpositionTest, BucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry reg;
  fill_registry(reg);
  std::ostringstream out;
  write_prometheus(reg, out);
  const std::string text = out.str();
  // Cumulative counts: populated buckets rise 1 -> 2 -> 3, +Inf == count.
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("admissiond_setup_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("admissiond_setup_ns_sum 700"), std::string::npos);
  // The cumulative sequence never decreases.
  std::uint64_t last = 0;
  std::size_t pos = 0;
  while ((pos = text.find("_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t brace = text.find("} ", pos);
    const std::uint64_t v = std::stoull(text.substr(brace + 2));
    EXPECT_GE(v, last);
    last = v;
    pos = brace;
  }
}

TEST(JsonExpositionTest, SectionsParseAndRoundTripValues) {
  MetricsRegistry reg;
  fill_registry(reg);
  std::ostringstream out;
  write_metrics_json(reg, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"cac.requests\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"min\": 100"), std::string::npos);
}

TEST(JsonExpositionTest, EqualRegistriesSerializeByteIdentically) {
  // obs_diff's CI contract: two runs with identical decision streams must
  // produce identical counter sections. Registry snapshots are sorted
  // maps, so the whole serialization is deterministic.
  MetricsRegistry a;
  MetricsRegistry b;
  fill_registry(a);
  fill_registry(b);
  std::ostringstream oa;
  std::ostringstream ob;
  write_metrics_json(a, oa);
  write_metrics_json(b, ob);
  EXPECT_EQ(oa.str(), ob.str());
}

TEST(JsonExpositionTest, EmptyRegistryIsStillValidJson) {
  MetricsRegistry reg;
  std::ostringstream out;
  write_metrics_json(reg, out);
  EXPECT_EQ(out.str(), "{\n  \"counters\": {},\n  \"gauges\": {},\n"
                       "  \"histograms\": {}\n}\n");
}

}  // namespace
}  // namespace hetnet::obs
