#include "src/obs/explain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/obs/span.h"
#include "src/sim/trace.h"
#include "tests/testing/scenario.h"

namespace hetnet::obs {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::video_source;

core::CacConfig config_with(ExplainSink* sink, int threads = 1) {
  core::CacConfig cfg;
  cfg.analysis.threads = threads;
  cfg.explain = sink;
  return cfg;
}

TEST(ExplainTest, AdmittedRecordCarriesBreakdownAndSlack) {
  const auto topo = paper_topology();
  ExplainSink sink;
  core::AdmissionController cac(&topo, config_with(&sink));
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  const auto decision = cac.request(spec);
  ASSERT_TRUE(decision.admitted);
  ASSERT_EQ(sink.size(), 1u);
  const ExplainRecord rec = sink.records()[0];

  EXPECT_EQ(rec.seq, 0u);
  EXPECT_EQ(rec.conn, 1u);
  EXPECT_TRUE(rec.admitted);
  EXPECT_EQ(rec.reason, "admitted");
  EXPECT_DOUBLE_EQ(val(rec.deadline), val(spec.deadline));
  // The reported bound is the decision's bound, and slack is its margin.
  EXPECT_DOUBLE_EQ(val(rec.bound), val(decision.worst_case_delay));
  EXPECT_DOUBLE_EQ(val(rec.slack),
                   val(spec.deadline) - val(decision.worst_case_delay));
  EXPECT_DOUBLE_EQ(val(rec.granted.h_s), val(decision.alloc.h_s));
  EXPECT_DOUBLE_EQ(val(rec.granted.h_r), val(decision.alloc.h_r));

  // Per-server breakdown along FDDI_S → ID_S → ATM → ID_R → FDDI_R: the
  // stages must sum to the bound, and the binding server is the largest.
  ASSERT_FALSE(rec.stages.empty());
  double sum = 0.0;
  double worst = -1.0;
  std::string worst_server;
  for (const auto& stage : rec.stages) {
    sum += val(stage.delay);
    if (val(stage.delay) > worst) {
      worst = val(stage.delay);
      worst_server = stage.server;
    }
  }
  EXPECT_NEAR(sum, val(rec.bound), 1e-9 * val(rec.bound));
  EXPECT_EQ(rec.binding_server, worst_server);
  EXPECT_DOUBLE_EQ(val(rec.binding_stage_delay), worst);

  // With only the requester live, its own deadline binds.
  EXPECT_EQ(rec.binding_conn, 1u);
  EXPECT_DOUBLE_EQ(val(rec.binding_slack), val(rec.slack));

  EXPECT_GT(rec.probe_evals, 0);
  EXPECT_FALSE(rec.bisection.empty());
  for (const auto& step : rec.bisection) {
    EXPECT_GE(step.lambda, 0.0);
    EXPECT_LE(step.lambda, 1.0);
  }
}

TEST(ExplainTest, RejectedRecordNamesReason) {
  const auto topo = paper_topology();
  ExplainSink sink;
  core::AdmissionController cac(&topo, config_with(&sink));
  // Saturate: keep admitting until one is turned away.
  net::ConnectionId id = 1;
  core::AdmissionDecision rejected;
  for (; id <= 400; ++id) {
    const int host = int(id) % 4;
    rejected = cac.request(make_spec(
        id, {0, host}, {1, host}, video_source(), units::ms(80)));
    if (!rejected.admitted) break;
  }
  ASSERT_FALSE(rejected.admitted) << "workload never saturated";
  ASSERT_EQ(sink.size(), std::size_t(id));
  const ExplainRecord rec = sink.records().back();
  EXPECT_FALSE(rec.admitted);
  const std::string expected =
      rejected.reason == core::RejectReason::kNoSyncBandwidth
          ? "no_sync_bandwidth"
          : "infeasible";
  EXPECT_EQ(rec.reason, expected);
  // A reject grants nothing.
  EXPECT_DOUBLE_EQ(val(rec.granted.h_s), 0.0);
  EXPECT_DOUBLE_EQ(val(rec.granted.h_r), 0.0);
}

TEST(ExplainTest, InfeasibleDeadlineExplained) {
  const auto topo = paper_topology();
  ExplainSink sink;
  core::AdmissionController cac(&topo, config_with(&sink));
  // 1 ms end-to-end across two rings and the backbone is hopeless.
  const auto decision = cac.request(
      make_spec(7, {0, 1}, {2, 1}, video_source(), units::ms(1)));
  ASSERT_FALSE(decision.admitted);
  ASSERT_EQ(decision.reason, core::RejectReason::kInfeasible);
  ASSERT_EQ(sink.size(), 1u);
  const ExplainRecord rec = sink.records()[0];
  EXPECT_EQ(rec.reason, "infeasible");
  // The reference breakdown at max_avail is still reported, so the report
  // can say WHERE the infeasible deadline is being spent.
  EXPECT_FALSE(rec.stages.empty());
  EXPECT_FALSE(rec.binding_server.empty());
  EXPECT_LT(val(rec.slack), 0.0);
}

// The tentpole contract: observability must not perturb decisions. The
// same churn replayed with explain + tracing installed must produce
// bit-identical decisions to a bare controller, at every thread count.
TEST(ExplainTest, ObservationIsDecisionNeutralAcrossThreadCounts) {
  const auto topo = paper_topology();
  std::vector<net::ConnectionSpec> sequence;
  for (net::ConnectionId id = 1; id <= 24; ++id) {
    const int host = int(id) % 4;
    const int src_ring = int(id) % 3;
    const int dst_ring = (src_ring + 1 + int(id) % 2) % 3;
    sequence.push_back(make_spec(id, {src_ring, host}, {dst_ring, host},
                                 video_source(),
                                 units::ms(40 + 5 * (int(id) % 5))));
  }

  std::vector<core::AdmissionDecision> reference;
  {
    core::AdmissionController bare(&topo, config_with(nullptr, 1));
    for (const auto& spec : sequence) {
      reference.push_back(bare.request(spec));
    }
  }

  for (const int threads : {1, 2, 8}) {
    ExplainSink sink;
    ScopedRecording recording;
    core::AdmissionController observed(&topo,
                                       config_with(&sink, threads));
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const auto decision = observed.request(sequence[i]);
      const auto& ref = reference[i];
      ASSERT_EQ(decision.admitted, ref.admitted)
          << "threads=" << threads << " request " << i;
      ASSERT_EQ(decision.reason, ref.reason);
      ASSERT_EQ(val(decision.alloc.h_s), val(ref.alloc.h_s));
      ASSERT_EQ(val(decision.alloc.h_r), val(ref.alloc.h_r));
      ASSERT_EQ(val(decision.worst_case_delay), val(ref.worst_case_delay));
    }
    EXPECT_EQ(sink.size(), sequence.size());
  }
}

TEST(ExplainTest, NdjsonOneLinePerRecordWithNullForNonFinite) {
  ExplainSink sink;
  ExplainRecord unbounded;
  unbounded.conn = 3;
  unbounded.reason = "no_sync_bandwidth";
  unbounded.deadline = units::ms(80);
  unbounded.bound = core::kUnbounded;
  unbounded.slack = unbounded.deadline - core::kUnbounded;
  sink.add(std::move(unbounded));
  ExplainRecord admitted;
  admitted.conn = 4;
  admitted.admitted = true;
  admitted.reason = "admitted";
  admitted.bound = units::ms(20);
  admitted.bisection.push_back(
      {ExplainBisectionStep::Phase::kMinNeed, 0, 0.5, true});
  admitted.stages.push_back({"FDDI_S.MAC", units::ms(9), units::kbits(4)});
  sink.add(std::move(admitted));

  std::ostringstream out;
  sink.write_ndjson(out);
  const std::string text = out.str();
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> parsed;
  while (std::getline(lines, line)) parsed.push_back(line);
  ASSERT_EQ(parsed.size(), 2u);
  // Sequence numbers follow arrival order.
  EXPECT_NE(parsed[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(parsed[1].find("\"seq\":1"), std::string::npos);
  // Non-finite bound/slack become JSON null.
  EXPECT_NE(parsed[0].find("\"bound_s\":null"), std::string::npos);
  EXPECT_NE(parsed[0].find("\"slack_s\":null"), std::string::npos);
  // Compact arrays for bisection steps and stages.
  EXPECT_NE(parsed[1].find("\"bisection\":[[\"min_need\",0,0.5,true]]"),
            std::string::npos);
  EXPECT_NE(parsed[1].find("\"stages\":[[\"FDDI_S.MAC\","),
            std::string::npos);
  // Stage entries carry the per-hop buffer bound as a third element.
  EXPECT_NE(parsed[1].find(",4000]]"), std::string::npos);
  for (const auto& l : parsed) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(ExplainTest, TraceReplayEmitsSourceBusyRecords) {
  const auto topo = paper_topology();
  std::vector<sim::TraceRequest> trace;
  for (int i = 0; i < 2; ++i) {
    sim::TraceRequest r;
    r.arrival = Seconds{double(i) * 0.001};  // second arrives mid-lifetime
    r.src_host = 0;
    r.dst_host = 4;
    r.c1 = units::kbits(300);
    r.p1 = units::ms(100);
    r.c2 = units::kbits(100);
    r.p2 = units::ms(20);
    r.deadline = units::ms(80);
    r.lifetime = units::sec(10);
    trace.push_back(r);
  }
  ExplainSink sink;
  core::CacConfig cfg = config_with(&sink);
  const auto result = sim::run_trace_simulation(topo, cfg, trace, 0);
  EXPECT_EQ(result.skipped_no_source, 1u);
  // Every trace row is accounted for in the NDJSON stream.
  ASSERT_EQ(sink.size(), trace.size());
  EXPECT_EQ(sink.records()[0].reason, "admitted");
  EXPECT_EQ(sink.records()[1].reason, "source_busy");
  EXPECT_FALSE(sink.records()[1].admitted);
}

}  // namespace
}  // namespace hetnet::obs
