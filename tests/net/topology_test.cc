#include "src/net/topology.h"

#include <gtest/gtest.h>

#include "tests/testing/scenario.h"

namespace hetnet::net {
namespace {

TEST(TopologyTest, PaperScenarioShape) {
  const AbhnTopology topo = testing::paper_topology();
  EXPECT_EQ(topo.num_rings(), 3);
  EXPECT_EQ(topo.num_hosts(), 12);
  EXPECT_EQ(topo.backbone().num_switches(), 3);
  EXPECT_EQ(topo.backbone().num_accesses(), 3);
}

TEST(TopologyTest, FlatIndexingRoundTrips) {
  const AbhnTopology topo = testing::paper_topology();
  for (int i = 0; i < topo.num_hosts(); ++i) {
    const HostId h = topo.host_at(i);
    EXPECT_TRUE(topo.valid_host(h));
    EXPECT_EQ(topo.flat_index(h), i);
  }
  EXPECT_THROW(topo.host_at(12), std::logic_error);
  EXPECT_THROW(topo.host_at(-1), std::logic_error);
}

TEST(TopologyTest, ValidHostBounds) {
  const AbhnTopology topo = testing::paper_topology();
  EXPECT_TRUE(topo.valid_host({0, 0}));
  EXPECT_TRUE(topo.valid_host({2, 3}));
  EXPECT_FALSE(topo.valid_host({3, 0}));
  EXPECT_FALSE(topo.valid_host({0, 4}));
  EXPECT_FALSE(topo.valid_host({-1, 0}));
}

TEST(TopologyTest, BackboneRouteCrossesThreePorts) {
  const AbhnTopology topo = testing::paper_topology();
  const auto hops = topo.backbone_route({0, 1}, {2, 3});
  // ID0 → S0 → S2 → ID2.
  EXPECT_EQ(hops.size(), 3u);
}

TEST(TopologyTest, SameRingRouteIsDirect) {
  const AbhnTopology topo = testing::paper_topology();
  EXPECT_TRUE(topo.backbone_route({0, 0}, {0, 1}).empty());
}

TEST(TopologyTest, SameRingPairsShareRoutePorts) {
  const AbhnTopology topo = testing::paper_topology();
  const auto h1 = topo.backbone_route({0, 0}, {1, 0});
  const auto h2 = topo.backbone_route({0, 3}, {1, 2});
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1[i].port, h2[i].port);
  }
}

TEST(TopologyTest, TooFewRingsRejected) {
  TopologyParams p = paper_topology_params();
  p.num_rings = 0;
  EXPECT_THROW(AbhnTopology{p}, std::logic_error);
}

TEST(TopologyTest, SingleRingIsDegenerateButValid) {
  // One ring: all traffic is intra-ring, the backbone has no links.
  TopologyParams p = paper_topology_params();
  p.num_rings = 1;
  const AbhnTopology topo(p);
  EXPECT_EQ(topo.num_hosts(), p.hosts_per_ring);
  EXPECT_EQ(topo.num_backbone_links(), 0);
  EXPECT_TRUE(topo.backbone_route({0, 0}, {0, 1}).empty());
}

TEST(TopologyTest, BackboneLinkCountMatchesShape) {
  TopologyParams p = paper_topology_params();
  for (int rings = 2; rings <= 5; ++rings) {
    p.num_rings = rings;
    p.backbone_shape = BackboneShape::kMesh;
    EXPECT_EQ(AbhnTopology(p).num_backbone_links(), rings * (rings - 1) / 2);
    p.backbone_shape = BackboneShape::kLine;
    EXPECT_EQ(AbhnTopology(p).num_backbone_links(), rings - 1);
  }
}

}  // namespace
}  // namespace hetnet::net
