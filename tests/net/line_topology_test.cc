// The linear-backbone variant: long multi-switch routes exercise deep
// server chains and many coupled ports.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/sim/packet_sim.h"
#include "tests/testing/scenario.h"

namespace hetnet::net {
namespace {

TopologyParams line_params(int rings) {
  TopologyParams p = paper_topology_params();
  p.backbone_shape = BackboneShape::kLine;
  p.num_rings = rings;
  return p;
}

TEST(LineTopologyTest, EndToEndRouteLengthGrowsWithDistance) {
  const AbhnTopology topo(line_params(5));
  // Adjacent rings: ID → S_a → S_b → ID = 3 ports.
  EXPECT_EQ(topo.backbone_route({0, 0}, {1, 0}).size(), 3u);
  // End to end: ID → S0 → S1 → S2 → S3 → S4 → ID = 6 ports.
  EXPECT_EQ(topo.backbone_route({0, 0}, {4, 0}).size(), 6u);
}

TEST(LineTopologyTest, LongChainAnalysisIsFinite) {
  const AbhnTopology topo(line_params(5));
  const core::DelayAnalyzer analyzer(&topo);
  const auto spec = testing::make_spec(1, {0, 0}, {4, 0},
                                       testing::video_source(),
                                       units::ms(200));
  const auto delays =
      analyzer.analyze({{spec, {units::ms(2), units::ms(2)}}});
  ASSERT_TRUE(isfinite(delays[0]));
  // Still dominated by the two MACs, not the extra switch hops.
  EXPECT_LT(delays[0], units::ms(100));
  // The breakdown covers every hop: 2 + 3 + 6 + 3 + 2 stages.
  const auto breakdown =
      analyzer.breakdown({{spec, {units::ms(2), units::ms(2)}}}, 0);
  ASSERT_TRUE(breakdown.has_value());
  EXPECT_EQ(breakdown->stages.size(), 16u);
}

TEST(LineTopologyTest, TransitTrafficCouplesAtMiddleLinks) {
  // A middle link (S1→S2) carries both the 0→4 and the 1→3 connections:
  // the long connection's bound rises when the overlapping one appears.
  const AbhnTopology topo(line_params(5));
  const core::DelayAnalyzer analyzer(&topo);
  const net::Allocation alloc{units::ms(2), units::ms(2)};
  const auto long_conn = testing::make_spec(1, {0, 0}, {4, 0},
                                            testing::video_source(),
                                            units::ms(200));
  const auto overlap = testing::make_spec(2, {1, 0}, {3, 0},
                                          testing::video_source(),
                                          units::ms(200));
  const Seconds alone = analyzer.analyze({{long_conn, alloc}})[0];
  const auto both = analyzer.analyze({{long_conn, alloc}, {overlap, alloc}});
  EXPECT_GT(both[0], alone);
}

TEST(LineTopologyTest, CacAdmitsAcrossTheLine) {
  const AbhnTopology topo(line_params(4));
  core::AdmissionController cac(&topo, core::CacConfig{});
  const auto spec = testing::make_spec(1, {0, 0}, {3, 0},
                                       testing::video_source(),
                                       units::ms(120));
  const auto d = cac.request(spec);
  ASSERT_TRUE(d.admitted);
  EXPECT_LE(d.worst_case_delay, spec.deadline);
  // Only the endpoint rings hold allocations; transit rings are untouched.
  EXPECT_GT(cac.ledger(0).allocated(), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(1).allocated()), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(2).allocated()), 0.0);
  EXPECT_GT(cac.ledger(3).allocated(), 0.0);
}

TEST(LineTopologyTest, PacketSimBoundsHoldOnLongChains) {
  const AbhnTopology topo(line_params(4));
  const core::DelayAnalyzer analyzer(&topo);
  const auto spec = testing::make_spec(1, {0, 0}, {3, 1},
                                       testing::video_source(),
                                       units::ms(200));
  const std::vector<core::ConnectionInstance> set = {
      {spec, {units::ms(2), units::ms(2)}}};
  const Seconds bound = analyzer.analyze(set)[0];
  ASSERT_TRUE(isfinite(bound));
  sim::PacketSimConfig cfg;
  cfg.duration = Seconds{1.5};
  cfg.randomize_phases = false;
  cfg.async_fill = 0.9;
  const auto result = sim::run_packet_simulation(topo, set, cfg);
  ASSERT_GT(result.connections[0].messages_delivered, 0u);
  EXPECT_LE(result.connections[0].delay.max(), bound);
}

}  // namespace
}  // namespace hetnet::net
