// admissiond determinism and bookkeeping contracts.
//
// The tentpole claim: sharding, batching, prewarm, and the parallel
// analysis engine only reorder WORK — every service configuration commits
// the same decisions in the same seq order. The churn-equivalence test
// replays one seeded open-loop stream through batched/parallel services at
// 1, 2, and 8 analysis threads and requires outcome-by-outcome equality
// (and digest equality) with the serial replay (batch 1, prewarm off, one
// thread). The remaining tests pin the service-level request semantics the
// stream relies on: collision SETUPs, unmatched RELEASEs, and the
// measurement mark used by the SLO benches.
#include "src/server/admissiond.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/server/request_stream.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::server {
namespace {

StreamConfig small_stream() {
  StreamConfig config;
  config.num_setups = 250;
  config.lambda = 4000.0;        // saturated: rejects and churn both present
  config.mean_lifetime = units::ms(200);
  config.seed = 7;
  return config;
}

std::unique_ptr<AdmissionService> run_stream(
    const net::AbhnTopology& topo, const AdmissiondConfig& config,
    const std::vector<Request>& requests) {
  auto service = std::make_unique<AdmissionService>(&topo, config);
  for (const Request& req : requests) {
    service->submit(req);
    if (service->pending() >= 4 * config.batch_size) service->run_round();
  }
  service->run_all();
  return service;
}

TEST(AdmissiondTest, ChurnEquivalentToSerialReplayAcrossThreadCounts) {
  const net::AbhnTopology topo(net::paper_topology_params());
  const std::vector<Request> requests =
      RequestStream(&topo, small_stream()).drain();
  ASSERT_GT(requests.size(), 250u);  // setups plus drained releases

  AdmissiondConfig serial;
  serial.batch_size = 1;
  serial.prewarm = false;
  serial.record_outcomes = true;
  serial.cac.analysis.threads = 1;
  const auto ref = run_stream(topo, serial, requests);
  ASSERT_GT(ref->stats().admitted, 0u);
  ASSERT_GT(ref->stats().rejected, 0u);
  ASSERT_GT(ref->stats().matched_releases, 0u);
  ASSERT_GT(ref->stats().unmatched_releases, 0u);  // open-loop teardowns

  for (const int threads : {1, 2, 8}) {
    AdmissiondConfig batched;
    batched.batch_size = 32;
    batched.prewarm = true;
    batched.record_outcomes = true;
    batched.cac.analysis.threads = threads;
    const auto got = run_stream(topo, batched, requests);
    EXPECT_GT(got->stats().prewarmed_points, 0u);

    const auto& ra = ref->outcomes();
    const auto& rb = got->outcomes();
    ASSERT_EQ(ra.size(), rb.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].seq, rb[i].seq) << "threads=" << threads;
      EXPECT_EQ(ra[i].admitted, rb[i].admitted)
          << "threads=" << threads << " setup " << i;
      EXPECT_EQ(ra[i].reason, rb[i].reason) << "threads=" << threads;
      // Exact equality on purpose: bit-identical is the contract.
      EXPECT_EQ(ra[i].alloc.h_s.value(), rb[i].alloc.h_s.value());
      EXPECT_EQ(ra[i].alloc.h_r.value(), rb[i].alloc.h_r.value());
      EXPECT_EQ(ra[i].worst_case_delay.value(),
                rb[i].worst_case_delay.value());
      if (HasFailure()) return;
    }
    EXPECT_EQ(ref->decision_digest(), got->decision_digest())
        << "threads=" << threads;
  }
}

TEST(AdmissiondTest, DigestIndependentOfRoundCadence) {
  const net::AbhnTopology topo(net::paper_topology_params());
  const std::vector<Request> requests =
      RequestStream(&topo, small_stream()).drain();

  AdmissiondConfig config;
  config.batch_size = 16;
  // Cadence A: rounds forced as soon as a batch is available.
  AdmissionService eager(&topo, config);
  for (const Request& req : requests) {
    eager.submit(req);
    if (eager.pending() >= config.batch_size) eager.run_round();
  }
  eager.run_all();
  // Cadence B: everything submitted first, rounds drained at the end.
  AdmissionService lazy(&topo, config);
  for (const Request& req : requests) lazy.submit(req);
  lazy.run_all();

  EXPECT_EQ(eager.decision_digest(), lazy.decision_digest());
}

TEST(AdmissiondTest, LiveIdCollisionRefusedWithoutReachingCac) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissiondConfig config;
  config.batch_size = 1;
  config.record_outcomes = true;
  AdmissionService service(&topo, config);

  Request setup;
  setup.seq = 0;
  setup.type = RequestType::kSetup;
  setup.id = 1;
  setup.spec.id = 1;
  setup.spec.src = {0, 0};
  setup.spec.dst = {1, 0};
  setup.spec.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(50), units::ms(100), units::kbits(5), units::ms(10),
      BitsPerSecond::infinity());
  setup.spec.deadline = units::ms(150);
  service.submit(setup);

  Request dup = setup;  // same id while the first is still live
  dup.seq = 1;
  service.submit(dup);
  service.run_all();

  ASSERT_EQ(service.outcomes().size(), 2u);
  EXPECT_TRUE(service.outcomes()[0].admitted);
  EXPECT_FALSE(service.outcomes()[1].admitted);
  EXPECT_EQ(service.outcomes()[1].reason,
            core::RejectReason::kSignalingCollision);
  EXPECT_EQ(service.stats().collisions, 1u);
  EXPECT_EQ(service.cac().active_count(), 1u);  // the CAC saw only one

  // An unmatched RELEASE is a counted no-op; the matched one tears down.
  Request unmatched;
  unmatched.seq = 2;
  unmatched.type = RequestType::kRelease;
  unmatched.id = 99;
  service.submit(unmatched);
  Request matched = unmatched;
  matched.seq = 3;
  matched.id = 1;
  service.submit(matched);
  service.run_all();
  EXPECT_EQ(service.stats().unmatched_releases, 1u);
  EXPECT_EQ(service.stats().matched_releases, 1u);
  EXPECT_EQ(service.cac().active_count(), 0u);
}

TEST(AdmissiondTest, TelemetryIsObservationOnlyAcrossThreadCounts) {
  const net::AbhnTopology topo(net::paper_topology_params());
  const std::vector<Request> requests =
      RequestStream(&topo, small_stream()).drain();

  AdmissiondConfig quiet;
  quiet.flight_capacity = 0;  // recorder off, monitor inert
  quiet.cac.analysis.threads = 1;
  const auto ref = run_stream(topo, quiet, requests);

  for (const int threads : {1, 2, 8}) {
    AdmissiondConfig loud;
    loud.cac.analysis.threads = threads;
    loud.flight_capacity = 4096;
    loud.slo.p99_ns = 1;  // impossible target: every epoch breaches
    loud.slo.min_admission_probability = 0.0;
    loud.rounds_per_epoch = 4;
    std::uint64_t breach_hooks = 0;
    loud.on_slo_breach = [&breach_hooks](const obs::SloWindowReport&) {
      ++breach_hooks;
    };
    const auto got = run_stream(topo, loud, requests);
    // The full telemetry plane changes no decision bit.
    EXPECT_EQ(ref->decision_digest(), got->decision_digest())
        << "threads=" << threads;
    ASSERT_NE(got->flight(), nullptr);
    EXPECT_EQ(got->flight()->recorded_count(),
              got->stats().setups + got->stats().releases);
    EXPECT_GT(got->slo().epochs(), 0u);
    EXPECT_EQ(got->slo().breaches(), breach_hooks);
    EXPECT_GT(breach_hooks, 0u);
  }
  EXPECT_EQ(ref->flight(), nullptr);  // capacity 0 really disables it
}

TEST(AdmissiondTest, BreachDumpIsDeterministicAcrossThreadCounts) {
  const net::AbhnTopology topo(net::paper_topology_params());
  const std::vector<Request> requests =
      RequestStream(&topo, small_stream()).drain();

  std::uint64_t ref_digest = 0;
  std::string ref_dump;
  for (const int threads : {1, 2, 8}) {
    AdmissiondConfig config;
    config.cac.analysis.threads = threads;
    config.flight_capacity = 4096;  // large enough: nothing drops
    config.slo.p99_ns = 1;
    config.rounds_per_epoch = 4;
    const auto service = run_stream(topo, config, requests);
    ASSERT_NE(service->flight(), nullptr);
    EXPECT_EQ(service->flight()->dropped_count(), 0u);

    std::ostringstream dump;
    service->dump_flight(dump);
    EXPECT_GT(dump.str().size(), 0u);
    if (threads == 1) {
      ref_digest = service->flight()->digest();
      ref_dump = dump.str();
      continue;
    }
    // The flight digest folds decisions, allocations, and tiers (not
    // latencies), so it must match bit-for-bit across thread counts...
    EXPECT_EQ(service->flight()->digest(), ref_digest)
        << "threads=" << threads;
    // ...while the NDJSON dump differs only in its latency_ns fields.
    const auto lines = [](const std::string& text) {
      std::vector<std::string> out;
      std::istringstream in(text);
      for (std::string line; std::getline(in, line);) {
        const std::size_t at = line.find("\"latency_ns\":");
        EXPECT_NE(at, std::string::npos) << line;
        const std::size_t end = line.find(',', at);
        EXPECT_NE(end, std::string::npos) << line;
        if (at != std::string::npos && end != std::string::npos) {
          line.erase(at, end - at);
        }
        out.push_back(std::move(line));
      }
      return out;
    };
    const std::vector<std::string> la = lines(ref_dump);
    const std::vector<std::string> lb = lines(dump.str());
    ASSERT_EQ(la.size(), lb.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i], lb[i]) << "threads=" << threads << " line " << i;
      if (HasFailure()) return;
    }
  }
}

TEST(AdmissiondTest, BeginMeasurementSlicesTheReport) {
  const net::AbhnTopology topo(net::paper_topology_params());
  StreamConfig stream = small_stream();
  stream.num_setups = 60;
  const std::vector<Request> requests =
      RequestStream(&topo, stream).drain();
  const std::size_t half = requests.size() / 2;

  AdmissiondConfig config;
  AdmissionService service(&topo, config);
  for (std::size_t i = 0; i < half; ++i) service.submit(requests[i]);
  service.run_all();
  const SloReport warmup = service.report();
  EXPECT_GT(warmup.setups, 0u);

  service.begin_measurement();
  const SloReport at_mark = service.report();
  EXPECT_EQ(at_mark.requests, 0u);
  EXPECT_EQ(at_mark.setups, 0u);
  EXPECT_EQ(at_mark.post_eviction_samples, 0u);

  for (std::size_t i = half; i < requests.size(); ++i) {
    service.submit(requests[i]);
  }
  service.run_all();
  const SloReport measured = service.report();
  EXPECT_GT(measured.setups, 0u);
  // Warm-up and measured slices partition the stream's setups exactly.
  EXPECT_EQ(warmup.setups + measured.setups, stream.num_setups);
  // The mark slices the report, it does not reset lifetime stats.
  EXPECT_EQ(service.stats().setups, stream.num_setups);
}

}  // namespace
}  // namespace hetnet::server
