// merge_breakpoints / add_grid: the exact worst-case scans evaluate extrema
// only at breakpoints, so the merge must sort, deduplicate, and collapse
// floating-point near-duplicates without dropping genuine neighbors.
#include <gtest/gtest.h>

#include <vector>

#include "src/traffic/envelope.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

std::vector<double> raw(const std::vector<Seconds>& points) {
  std::vector<double> out;
  for (const Seconds p : points) out.push_back(p.value());
  return out;
}

TEST(MergeBreakpointsTest, MergesAndSortsDisjointLists) {
  const auto merged = merge_breakpoints(
      {{Seconds{0.3}, Seconds{0.1}}, {Seconds{0.2}}, {Seconds{0.4}}});
  EXPECT_EQ(raw(merged), (std::vector<double>{0.1, 0.2, 0.3, 0.4}));
}

TEST(MergeBreakpointsTest, CollapsesExactDuplicates) {
  const auto merged = merge_breakpoints(
      {{Seconds{0.1}, Seconds{0.2}}, {Seconds{0.2}, Seconds{0.1}}});
  EXPECT_EQ(raw(merged), (std::vector<double>{0.1, 0.2}));
}

TEST(MergeBreakpointsTest, CollapsesNearDuplicatesWithinTolerance) {
  // Two lists computed through different arithmetic land within kEps of the
  // same instant: the scan must see ONE candidate point, not two.
  const auto merged = merge_breakpoints(
      {{Seconds{0.1}}, {Seconds{0.1 + 0.5 * kEps}}, {Seconds{0.2}}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].value(), 0.1);
  EXPECT_DOUBLE_EQ(merged[1].value(), 0.2);
}

TEST(MergeBreakpointsTest, KeepsGenuineNeighborsOutsideTolerance) {
  const double gap = 1e-6;  // well beyond kEps at this magnitude
  const auto merged =
      merge_breakpoints({{Seconds{0.1}}, {Seconds{0.1 + gap}}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_NEAR(merged[1].value() - merged[0].value(), gap, 1e-2 * gap);
}

TEST(MergeBreakpointsTest, ToleranceScalesWithMagnitude) {
  // At t = 1000 s the relative tolerance is 1000 * kEps: a 1e-7 offset is
  // inside it and collapses, while the same offset at t = 0.1 s survives.
  const auto big = merge_breakpoints({{Seconds{1000.0}},
                                      {Seconds{1000.0 + 1e-7}}});
  EXPECT_EQ(big.size(), 1u);
  const auto small = merge_breakpoints({{Seconds{0.1}},
                                        {Seconds{0.1 + 1e-7}}});
  EXPECT_EQ(small.size(), 2u);
}

TEST(MergeBreakpointsTest, EmptyInputsYieldEmptyOutput) {
  EXPECT_TRUE(merge_breakpoints({}).empty());
  EXPECT_TRUE(merge_breakpoints({{}, {}}).empty());
  const auto merged = merge_breakpoints({{}, {Seconds{0.5}}, {}});
  EXPECT_EQ(raw(merged), (std::vector<double>{0.5}));
}

TEST(AddGridTest, InsertsMultiplesUpToHorizon) {
  const auto grid =
      add_grid({Seconds{0.25}}, Seconds{0.1}, Seconds{0.3});
  const std::vector<double> expected = {0.1, 0.2, 0.25, 0.3};
  ASSERT_EQ(grid.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(grid[i].value(), expected[i], 1e-12) << i;
  }
}

TEST(AddGridTest, RejectsNonPositiveStep) {
  EXPECT_THROW(add_grid({}, Seconds{}, Seconds{1.0}), std::logic_error);
  EXPECT_THROW(add_grid({}, Seconds{-0.1}, Seconds{1.0}), std::logic_error);
}

}  // namespace
}  // namespace hetnet
