#include "src/traffic/algebra.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

EnvelopePtr periodic(Bits c, Seconds p) {
  return std::make_shared<PeriodicEnvelope>(c, p);
}

EnvelopePtr bucket(Bits sigma, BitsPerSecond rho) {
  return std::make_shared<LeakyBucketEnvelope>(sigma, rho);
}

TEST(SumEnvelopeTest, AddsBitsAndRates) {
  auto s = sum_envelopes({bucket(Bits{100.0}, BitsPerSecond{10.0}), bucket(Bits{50.0}, BitsPerSecond{5.0})});
  EXPECT_DOUBLE_EQ(val(s->bits(Seconds{2.0})), 150.0 + 30.0);
  EXPECT_DOUBLE_EQ(val(s->long_term_rate()), 15.0);
  EXPECT_DOUBLE_EQ(val(s->burst_bound()), 150.0);
}

TEST(SumEnvelopeTest, EmptySumIsZero) {
  auto s = sum_envelopes({});
  EXPECT_DOUBLE_EQ(val(s->bits(Seconds{5.0})), 0.0);
  EXPECT_DOUBLE_EQ(val(s->long_term_rate()), 0.0);
}

TEST(SumEnvelopeTest, SingletonPassesThrough) {
  auto b = bucket(Bits{100.0}, BitsPerSecond{10.0});
  auto s = sum_envelopes({b});
  EXPECT_EQ(s.get(), b.get());
}

TEST(SumEnvelopeTest, MergesBreakpoints) {
  auto s = sum_envelopes({periodic(Bits{1000.0}, units::ms(10)),
                          periodic(Bits{500.0}, units::ms(7))});
  const auto pts = s->breakpoints(units::ms(25));
  // Must include multiples of both periods.
  auto contains = [&](Seconds v) {
    for (Seconds p : pts) {
      if (approx_eq(p, v)) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(units::ms(10)));
  EXPECT_TRUE(contains(units::ms(20)));
  EXPECT_TRUE(contains(units::ms(7)));
  EXPECT_TRUE(contains(units::ms(14)));
  EXPECT_TRUE(contains(units::ms(21)));
}

TEST(ShiftEnvelopeTest, ShiftsWindow) {
  auto s = shift_envelope(bucket(Bits{100.0}, BitsPerSecond{10.0}), Seconds{2.0});
  // A'(I) = A(I + 2) = 100 + 10·(I + 2).
  EXPECT_DOUBLE_EQ(val(s->bits(Seconds{0.0})), 120.0);
  EXPECT_DOUBLE_EQ(val(s->bits(Seconds{3.0})), 150.0);
  EXPECT_DOUBLE_EQ(val(s->long_term_rate()), 10.0);
  EXPECT_DOUBLE_EQ(val(s->burst_bound()), 120.0);
}

TEST(ShiftEnvelopeTest, ZeroShiftIsIdentity) {
  auto b = bucket(Bits{100.0}, BitsPerSecond{10.0});
  EXPECT_EQ(shift_envelope(b, Seconds{0.0}).get(), b.get());
}

TEST(ShiftEnvelopeTest, BreakpointsShiftLeft) {
  auto s = shift_envelope(periodic(Bits{1000.0}, units::ms(10)), units::ms(4));
  const auto pts = s->breakpoints(units::ms(20));
  // Input breakpoints at 10, 20 ms map to 6, 16 ms.
  ASSERT_GE(pts.size(), 2u);
  EXPECT_NEAR(val(pts[0]), val(units::ms(6)), 1e-12);
  EXPECT_NEAR(val(pts[1]), val(units::ms(16)), 1e-12);
}

TEST(MinEnvelopeTest, PointwiseMin) {
  auto m = min_envelope(bucket(Bits{1000.0}, BitsPerSecond{1.0}), bucket(Bits{0.0}, BitsPerSecond{100.0}));
  // Early: the 100 b/s line is lower; late: the 1 b/s line.
  EXPECT_DOUBLE_EQ(val(m->bits(Seconds{1.0})), 100.0);
  EXPECT_DOUBLE_EQ(val(m->bits(Seconds{100.0})), 1100.0);
  EXPECT_DOUBLE_EQ(val(m->long_term_rate()), 1.0);
}

TEST(MinEnvelopeTest, BreakpointsIncludeCrossing) {
  // Curves cross where 1000 + t = 100·t → t = 1000/99.
  auto m = min_envelope(bucket(Bits{1000.0}, BitsPerSecond{1.0}), bucket(Bits{0.0}, BitsPerSecond{100.0}));
  const auto pts = m->breakpoints(Seconds{20.0});
  bool found = false;
  for (Seconds p : pts) {
    if (abs(p - Seconds{1000.0 / 99.0}) < 1e-6) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MinEnvelopeTest, BurstBoundPairsWithSlowerOperand) {
  auto m = min_envelope(bucket(Bits{1000.0}, BitsPerSecond{1.0}), bucket(Bits{5.0}, BitsPerSecond{100.0}));
  // ltr = 1 (first operand); its burst (1000) is the valid majorization.
  EXPECT_DOUBLE_EQ(val(m->long_term_rate()), 1.0);
  EXPECT_DOUBLE_EQ(val(m->burst_bound()), 1000.0);
}

TEST(RateCapTest, CapsEnvelope) {
  auto capped = rate_cap(bucket(Bits{10000.0}, BitsPerSecond{5.0}), BitsPerSecond{100.0}, Bits{50.0});
  EXPECT_DOUBLE_EQ(val(capped->bits(Seconds{1.0})), 150.0);  // cap active: 50 + 100·1
  // Far out the original (slower) envelope takes over.
  EXPECT_DOUBLE_EQ(val(capped->bits(Seconds{1000.0})), 15000.0);
}

TEST(QuantizeEnvelopeTest, CeilToUnits) {
  // Frames of 1000 bits become 3 cells of 400 accounted bits (Theorem 2
  // with F_S=1000, C_S=384 → F_C=3; here simplified numbers).
  auto q = quantize_envelope(bucket(Bits{0.0}, BitsPerSecond{1000.0}), Bits{1000.0}, Bits{1200.0});
  EXPECT_DOUBLE_EQ(val(q->bits(Seconds{0.0})), 0.0);
  EXPECT_DOUBLE_EQ(val(q->bits(Seconds{0.5})), 1200.0);   // 500 bits → 1 frame
  EXPECT_DOUBLE_EQ(val(q->bits(Seconds{1.0})), 1200.0);   // exactly 1 frame
  EXPECT_DOUBLE_EQ(val(q->bits(Seconds{1.001})), 2400.0); // just over → 2
  EXPECT_DOUBLE_EQ(val(q->long_term_rate()), 1200.0);
}

TEST(QuantizeEnvelopeTest, ToleratesFloatNoiseAtBoundary) {
  auto q = quantize_envelope(bucket(Bits{0.0}, BitsPerSecond{1000.0}), Bits{1000.0}, Bits{1000.0});
  // 3 seconds → 3000 bits → exactly 3 units even with FP noise.
  EXPECT_DOUBLE_EQ(val(q->bits(Seconds{3.0})), 3000.0);
}

TEST(QuantizeEnvelopeTest, BreakpointsAtUnitCrossings) {
  auto q = quantize_envelope(bucket(Bits{0.0}, BitsPerSecond{1000.0}), Bits{500.0}, Bits{500.0});
  const auto pts = q->breakpoints(Seconds{2.05});
  // Steps at 0.5, 1.0, 1.5, 2.0 seconds.
  ASSERT_GE(pts.size(), 4u);
  EXPECT_NEAR(val(pts[0]), 0.5, 1e-9);
  EXPECT_NEAR(val(pts[1]), 1.0, 1e-9);
  EXPECT_NEAR(val(pts[2]), 1.5, 1e-9);
  EXPECT_NEAR(val(pts[3]), 2.0, 1e-9);
}

TEST(QuantizeEnvelopeTest, BurstBoundMajorizes) {
  auto q = quantize_envelope(
      std::make_shared<PeriodicEnvelope>(Bits{3000.0}, units::ms(10)), Bits{1000.0},
      Bits{1100.0});
  const BitsPerSecond rho = q->long_term_rate();
  const Bits b = q->burst_bound();
  for (Seconds i; i < 0.1; i += Seconds{0.00037}) {
    EXPECT_LE(q->bits(i), b + rho * i + Bits{1e-6});
  }
}

TEST(ScaleEnvelopeTest, ScalesEverything) {
  auto s = scale_envelope(bucket(Bits{100.0}, BitsPerSecond{10.0}), 2.5);
  EXPECT_DOUBLE_EQ(val(s->bits(Seconds{2.0})), 2.5 * 120.0);
  EXPECT_DOUBLE_EQ(val(s->long_term_rate()), 25.0);
  EXPECT_DOUBLE_EQ(val(s->burst_bound()), 250.0);
}

TEST(ScaleEnvelopeTest, UnitFactorIsIdentity) {
  auto b = bucket(Bits{100.0}, BitsPerSecond{10.0});
  EXPECT_EQ(scale_envelope(b, 1.0).get(), b.get());
}

TEST(AlgebraTest, ComposedChainStaysMonotone) {
  auto e = rate_cap(
      quantize_envelope(
          shift_envelope(
              sum_envelopes({periodic(Bits{1000.0}, units::ms(10)),
                             periodic(Bits{700.0}, units::ms(7))}),
              units::ms(3)),
          Bits{500.0}, Bits{530.0}),
      units::mbps(1), Bits{530.0});
  Bits prev{-1.0};
  for (Seconds i; i < 0.06; i += Seconds{0.00017}) {
    const Bits v = e->bits(i);
    EXPECT_GE(v, prev - Bits{1e-9}) << "I=" << i;
    prev = v;
  }
}

}  // namespace
}  // namespace hetnet
