#include "src/traffic/algebra.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

EnvelopePtr periodic(Bits c, Seconds p) {
  return std::make_shared<PeriodicEnvelope>(c, p);
}

EnvelopePtr bucket(Bits sigma, BitsPerSecond rho) {
  return std::make_shared<LeakyBucketEnvelope>(sigma, rho);
}

TEST(SumEnvelopeTest, AddsBitsAndRates) {
  auto s = sum_envelopes({bucket(100.0, 10.0), bucket(50.0, 5.0)});
  EXPECT_DOUBLE_EQ(s->bits(2.0), 150.0 + 30.0);
  EXPECT_DOUBLE_EQ(s->long_term_rate(), 15.0);
  EXPECT_DOUBLE_EQ(s->burst_bound(), 150.0);
}

TEST(SumEnvelopeTest, EmptySumIsZero) {
  auto s = sum_envelopes({});
  EXPECT_DOUBLE_EQ(s->bits(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s->long_term_rate(), 0.0);
}

TEST(SumEnvelopeTest, SingletonPassesThrough) {
  auto b = bucket(100.0, 10.0);
  auto s = sum_envelopes({b});
  EXPECT_EQ(s.get(), b.get());
}

TEST(SumEnvelopeTest, MergesBreakpoints) {
  auto s = sum_envelopes({periodic(1000.0, units::ms(10)),
                          periodic(500.0, units::ms(7))});
  const auto pts = s->breakpoints(units::ms(25));
  // Must include multiples of both periods.
  auto contains = [&](double v) {
    for (double p : pts) {
      if (approx_eq(p, v)) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(units::ms(10)));
  EXPECT_TRUE(contains(units::ms(20)));
  EXPECT_TRUE(contains(units::ms(7)));
  EXPECT_TRUE(contains(units::ms(14)));
  EXPECT_TRUE(contains(units::ms(21)));
}

TEST(ShiftEnvelopeTest, ShiftsWindow) {
  auto s = shift_envelope(bucket(100.0, 10.0), 2.0);
  // A'(I) = A(I + 2) = 100 + 10·(I + 2).
  EXPECT_DOUBLE_EQ(s->bits(0.0), 120.0);
  EXPECT_DOUBLE_EQ(s->bits(3.0), 150.0);
  EXPECT_DOUBLE_EQ(s->long_term_rate(), 10.0);
  EXPECT_DOUBLE_EQ(s->burst_bound(), 120.0);
}

TEST(ShiftEnvelopeTest, ZeroShiftIsIdentity) {
  auto b = bucket(100.0, 10.0);
  EXPECT_EQ(shift_envelope(b, 0.0).get(), b.get());
}

TEST(ShiftEnvelopeTest, BreakpointsShiftLeft) {
  auto s = shift_envelope(periodic(1000.0, units::ms(10)), units::ms(4));
  const auto pts = s->breakpoints(units::ms(20));
  // Input breakpoints at 10, 20 ms map to 6, 16 ms.
  ASSERT_GE(pts.size(), 2u);
  EXPECT_NEAR(pts[0], units::ms(6), 1e-12);
  EXPECT_NEAR(pts[1], units::ms(16), 1e-12);
}

TEST(MinEnvelopeTest, PointwiseMin) {
  auto m = min_envelope(bucket(1000.0, 1.0), bucket(0.0, 100.0));
  // Early: the 100 b/s line is lower; late: the 1 b/s line.
  EXPECT_DOUBLE_EQ(m->bits(1.0), 100.0);
  EXPECT_DOUBLE_EQ(m->bits(100.0), 1100.0);
  EXPECT_DOUBLE_EQ(m->long_term_rate(), 1.0);
}

TEST(MinEnvelopeTest, BreakpointsIncludeCrossing) {
  // Curves cross where 1000 + t = 100·t → t = 1000/99.
  auto m = min_envelope(bucket(1000.0, 1.0), bucket(0.0, 100.0));
  const auto pts = m->breakpoints(20.0);
  bool found = false;
  for (double p : pts) {
    if (std::abs(p - 1000.0 / 99.0) < 1e-6) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MinEnvelopeTest, BurstBoundPairsWithSlowerOperand) {
  auto m = min_envelope(bucket(1000.0, 1.0), bucket(5.0, 100.0));
  // ltr = 1 (first operand); its burst (1000) is the valid majorization.
  EXPECT_DOUBLE_EQ(m->long_term_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m->burst_bound(), 1000.0);
}

TEST(RateCapTest, CapsEnvelope) {
  auto capped = rate_cap(bucket(10000.0, 5.0), 100.0, 50.0);
  EXPECT_DOUBLE_EQ(capped->bits(1.0), 150.0);  // cap active: 50 + 100·1
  // Far out the original (slower) envelope takes over.
  EXPECT_DOUBLE_EQ(capped->bits(1000.0), 15000.0);
}

TEST(QuantizeEnvelopeTest, CeilToUnits) {
  // Frames of 1000 bits become 3 cells of 400 accounted bits (Theorem 2
  // with F_S=1000, C_S=384 → F_C=3; here simplified numbers).
  auto q = quantize_envelope(bucket(0.0, 1000.0), 1000.0, 1200.0);
  EXPECT_DOUBLE_EQ(q->bits(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q->bits(0.5), 1200.0);   // 500 bits → 1 frame → 1200
  EXPECT_DOUBLE_EQ(q->bits(1.0), 1200.0);   // exactly 1 frame
  EXPECT_DOUBLE_EQ(q->bits(1.001), 2400.0); // just over → 2 frames
  EXPECT_DOUBLE_EQ(q->long_term_rate(), 1200.0);
}

TEST(QuantizeEnvelopeTest, ToleratesFloatNoiseAtBoundary) {
  auto q = quantize_envelope(bucket(0.0, 1000.0), 1000.0, 1000.0);
  // 3 seconds → 3000 bits → exactly 3 units even with FP noise.
  EXPECT_DOUBLE_EQ(q->bits(3.0), 3000.0);
}

TEST(QuantizeEnvelopeTest, BreakpointsAtUnitCrossings) {
  auto q = quantize_envelope(bucket(0.0, 1000.0), 500.0, 500.0);
  const auto pts = q->breakpoints(2.05);
  // Steps at 0.5, 1.0, 1.5, 2.0 seconds.
  ASSERT_GE(pts.size(), 4u);
  EXPECT_NEAR(pts[0], 0.5, 1e-9);
  EXPECT_NEAR(pts[1], 1.0, 1e-9);
  EXPECT_NEAR(pts[2], 1.5, 1e-9);
  EXPECT_NEAR(pts[3], 2.0, 1e-9);
}

TEST(QuantizeEnvelopeTest, BurstBoundMajorizes) {
  auto q = quantize_envelope(
      std::make_shared<PeriodicEnvelope>(3000.0, units::ms(10)), 1000.0,
      1100.0);
  const double rho = q->long_term_rate();
  const double b = q->burst_bound();
  for (double i = 0.0; i < 0.1; i += 0.00037) {
    EXPECT_LE(q->bits(i), b + rho * i + 1e-6);
  }
}

TEST(ScaleEnvelopeTest, ScalesEverything) {
  auto s = scale_envelope(bucket(100.0, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(s->bits(2.0), 2.5 * 120.0);
  EXPECT_DOUBLE_EQ(s->long_term_rate(), 25.0);
  EXPECT_DOUBLE_EQ(s->burst_bound(), 250.0);
}

TEST(ScaleEnvelopeTest, UnitFactorIsIdentity) {
  auto b = bucket(100.0, 10.0);
  EXPECT_EQ(scale_envelope(b, 1.0).get(), b.get());
}

TEST(AlgebraTest, ComposedChainStaysMonotone) {
  auto e = rate_cap(
      quantize_envelope(
          shift_envelope(
              sum_envelopes({periodic(1000.0, units::ms(10)),
                             periodic(700.0, units::ms(7))}),
              units::ms(3)),
          500.0, 530.0),
      units::mbps(1), 530.0);
  double prev = -1.0;
  for (double i = 0.0; i < 0.06; i += 0.00017) {
    const double v = e->bits(i);
    EXPECT_GE(v, prev - 1e-9) << "I=" << i;
    prev = v;
  }
}

}  // namespace
}  // namespace hetnet
