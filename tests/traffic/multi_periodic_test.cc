#include "src/traffic/multi_periodic.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(MultiPeriodicTest, TwoLevelsMatchDualPeriodic) {
  MultiPeriodicEnvelope multi(
      {{3000.0, units::ms(30)}, {1000.0, units::ms(5)}});
  DualPeriodicEnvelope dual(3000.0, units::ms(30), 1000.0, units::ms(5));
  for (double i = 0.0; i < 0.2; i += 0.00037) {
    EXPECT_DOUBLE_EQ(multi.bits(i), dual.bits(i)) << "I=" << i;
  }
  EXPECT_DOUBLE_EQ(multi.long_term_rate(), dual.long_term_rate());
  EXPECT_DOUBLE_EQ(multi.burst_bound(), dual.burst_bound());
}

TEST(MultiPeriodicTest, TwoLevelsMatchDualPeriodicWithPeak) {
  MultiPeriodicEnvelope multi(
      {{3000.0, units::ms(30)}, {1000.0, units::ms(5)}}, units::mbps(1));
  DualPeriodicEnvelope dual(3000.0, units::ms(30), 1000.0, units::ms(5),
                            units::mbps(1));
  for (double i = 0.0; i < 0.1; i += 0.00021) {
    EXPECT_DOUBLE_EQ(multi.bits(i), dual.bits(i)) << "I=" << i;
  }
}

TEST(MultiPeriodicTest, OneLevelMatchesPeriodic) {
  MultiPeriodicEnvelope multi({{1000.0, units::ms(10)}});
  PeriodicEnvelope single(1000.0, units::ms(10));
  for (double i = 0.0; i < 0.05; i += 0.00093) {
    EXPECT_DOUBLE_EQ(multi.bits(i), single.bits(i)) << "I=" << i;
  }
}

TEST(MultiPeriodicTest, ThreeLevelMpegLikeValues) {
  // GOP 480 kbit / 500 ms; frames 40 kbit / 40 ms; slices 10 kbit / 10 ms.
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}});
  // First instant: one slice.
  EXPECT_DOUBLE_EQ(mpeg.bits(units::ms(1)), units::kbits(10));
  // 35 ms: slices at 0, 10, 20, 30 ms, capped by the 40-kbit frame.
  EXPECT_DOUBLE_EQ(mpeg.bits(units::ms(35)), units::kbits(40));
  // 45 ms: one full frame + first slice of the next.
  EXPECT_DOUBLE_EQ(mpeg.bits(units::ms(45)), units::kbits(50));
  // Long windows: ρ = 480 kbit / 500 ms.
  EXPECT_DOUBLE_EQ(mpeg.long_term_rate(), units::kbits(480) / 0.5);
  EXPECT_NEAR(mpeg.rate(units::sec(100)), mpeg.long_term_rate(),
              units::kbits(480) / 100.0 + 1.0);
}

TEST(MultiPeriodicTest, GopCapsFrames) {
  // 12 frames fit a GOP's budget exactly: A over one GOP period is C1.
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}});
  EXPECT_DOUBLE_EQ(mpeg.bits(units::ms(499)), units::kbits(480));
  EXPECT_DOUBLE_EQ(mpeg.bits(units::ms(501)), units::kbits(490));
}

TEST(MultiPeriodicTest, MonotoneAndBurstBounded) {
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}},
                             units::mbps(50));
  double prev = -1.0;
  const double rho = mpeg.long_term_rate();
  const double b = mpeg.burst_bound();
  for (double i = 0.0; i < 1.5; i += 0.0017) {
    const double v = mpeg.bits(i);
    EXPECT_GE(v, prev - 1e-9);
    EXPECT_LE(v, b + rho * i + 1e-6);
    prev = v;
  }
}

TEST(MultiPeriodicTest, AffineBetweenBreakpoints) {
  MultiPeriodicEnvelope mpeg({{units::kbits(120), units::ms(120)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}},
                             units::mbps(20));
  const Seconds horizon = units::ms(300);
  auto pts = mpeg.breakpoints(horizon);
  ASSERT_FALSE(pts.empty());
  pts.push_back(horizon);
  Seconds a = 0.0;
  for (Seconds b : pts) {
    if (b - a > 1e-7) {
      const Seconds lo = a + (b - a) * 0.02;
      const Seconds hi = b - (b - a) * 0.02;
      const Seconds mid = 0.5 * (lo + hi);
      const double expected = 0.5 * (mpeg.bits(lo) + mpeg.bits(hi));
      EXPECT_NEAR(mpeg.bits(mid), expected,
                  1e-6 * std::max(1.0, expected))
          << "segment (" << a << ", " << b << ")";
    }
    a = b;
  }
}

TEST(MultiPeriodicTest, RejectsBadLevelStructure) {
  // Increasing bits.
  EXPECT_THROW(MultiPeriodicEnvelope(
                   {{1000.0, units::ms(30)}, {2000.0, units::ms(5)}}),
               std::logic_error);
  // Increasing period.
  EXPECT_THROW(MultiPeriodicEnvelope(
                   {{2000.0, units::ms(5)}, {1000.0, units::ms(30)}}),
               std::logic_error);
  // Empty.
  EXPECT_THROW(MultiPeriodicEnvelope({}), std::logic_error);
  // Peak too low for the innermost burst.
  EXPECT_THROW(MultiPeriodicEnvelope({{1000.0, units::ms(1)}}, 1000.0),
               std::logic_error);
}

}  // namespace
}  // namespace hetnet
