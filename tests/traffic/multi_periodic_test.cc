#include "src/traffic/multi_periodic.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(MultiPeriodicTest, TwoLevelsMatchDualPeriodic) {
  MultiPeriodicEnvelope multi(
      {{Bits{3000.0}, units::ms(30)}, {Bits{1000.0}, units::ms(5)}});
  DualPeriodicEnvelope dual(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5));
  for (Seconds i; i < 0.2; i += Seconds{0.00037}) {
    EXPECT_DOUBLE_EQ(val(multi.bits(i)), val(dual.bits(i))) << "I=" << i;
  }
  EXPECT_DOUBLE_EQ(val(multi.long_term_rate()), val(dual.long_term_rate()));
  EXPECT_DOUBLE_EQ(val(multi.burst_bound()), val(dual.burst_bound()));
}

TEST(MultiPeriodicTest, TwoLevelsMatchDualPeriodicWithPeak) {
  MultiPeriodicEnvelope multi(
      {{Bits{3000.0}, units::ms(30)}, {Bits{1000.0}, units::ms(5)}}, units::mbps(1));
  DualPeriodicEnvelope dual(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5),
                            units::mbps(1));
  for (Seconds i; i < 0.1; i += Seconds{0.00021}) {
    EXPECT_DOUBLE_EQ(val(multi.bits(i)), val(dual.bits(i))) << "I=" << i;
  }
}

TEST(MultiPeriodicTest, OneLevelMatchesPeriodic) {
  MultiPeriodicEnvelope multi({{Bits{1000.0}, units::ms(10)}});
  PeriodicEnvelope single(Bits{1000.0}, units::ms(10));
  for (Seconds i; i < 0.05; i += Seconds{0.00093}) {
    EXPECT_DOUBLE_EQ(val(multi.bits(i)), val(single.bits(i))) << "I=" << i;
  }
}

TEST(MultiPeriodicTest, ThreeLevelMpegLikeValues) {
  // GOP 480 kbit / 500 ms; frames 40 kbit / 40 ms; slices 10 kbit / 10 ms.
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}});
  // First instant: one slice.
  EXPECT_DOUBLE_EQ(val(mpeg.bits(units::ms(1))), val(units::kbits(10)));
  // 35 ms: slices at 0, 10, 20, 30 ms, capped by the 40-kbit frame.
  EXPECT_DOUBLE_EQ(val(mpeg.bits(units::ms(35))), val(units::kbits(40)));
  // 45 ms: one full frame + first slice of the next.
  EXPECT_DOUBLE_EQ(val(mpeg.bits(units::ms(45))), val(units::kbits(50)));
  // Long windows: ρ = 480 kbit / 500 ms.
  EXPECT_DOUBLE_EQ(val(mpeg.long_term_rate()), val(units::kbits(480) / Seconds{0.5}));
  EXPECT_NEAR(val(mpeg.rate(units::sec(100))), val(mpeg.long_term_rate()),
              val(units::kbits(480)) / 100.0 + 1.0);
}

TEST(MultiPeriodicTest, GopCapsFrames) {
  // 12 frames fit a GOP's budget exactly: A over one GOP period is C1.
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}});
  EXPECT_DOUBLE_EQ(val(mpeg.bits(units::ms(499))), val(units::kbits(480)));
  EXPECT_DOUBLE_EQ(val(mpeg.bits(units::ms(501))), val(units::kbits(490)));
}

TEST(MultiPeriodicTest, MonotoneAndBurstBounded) {
  MultiPeriodicEnvelope mpeg({{units::kbits(480), units::ms(500)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}},
                             units::mbps(50));
  Bits prev{-1.0};
  const BitsPerSecond rho = mpeg.long_term_rate();
  const Bits b = mpeg.burst_bound();
  for (Seconds i; i < 1.5; i += Seconds{0.0017}) {
    const Bits v = mpeg.bits(i);
    EXPECT_GE(v, prev - Bits{1e-9});
    EXPECT_LE(v, b + rho * i + Bits{1e-6});
    prev = v;
  }
}

TEST(MultiPeriodicTest, AffineBetweenBreakpoints) {
  MultiPeriodicEnvelope mpeg({{units::kbits(120), units::ms(120)},
                              {units::kbits(40), units::ms(40)},
                              {units::kbits(10), units::ms(10)}},
                             units::mbps(20));
  const Seconds horizon = units::ms(300);
  auto pts = mpeg.breakpoints(horizon);
  ASSERT_FALSE(pts.empty());
  pts.push_back(horizon);
  Seconds a;
  for (Seconds b : pts) {
    if (b - a > 1e-7) {
      const Seconds lo = a + (b - a) * 0.02;
      const Seconds hi = b - (b - a) * 0.02;
      const Seconds mid = 0.5 * (lo + hi);
      const Bits expected = 0.5 * (mpeg.bits(lo) + mpeg.bits(hi));
      EXPECT_NEAR(val(mpeg.bits(mid)), val(expected),
                  1e-6 * std::max(1.0, val(expected)))
          << "segment (" << a << ", " << b << ")";
    }
    a = b;
  }
}

TEST(MultiPeriodicTest, RejectsBadLevelStructure) {
  // Increasing bits.
  EXPECT_THROW(MultiPeriodicEnvelope(
                   {{Bits{1000.0}, units::ms(30)}, {Bits{2000.0}, units::ms(5)}}),
               std::logic_error);
  // Increasing period.
  EXPECT_THROW(MultiPeriodicEnvelope(
                   {{Bits{2000.0}, units::ms(5)}, {Bits{1000.0}, units::ms(30)}}),
               std::logic_error);
  // Empty.
  EXPECT_THROW(MultiPeriodicEnvelope({}), std::logic_error);
  // Peak too low for the innermost burst.
  EXPECT_THROW(MultiPeriodicEnvelope({{Bits{1000.0}, units::ms(1)}}, BitsPerSecond{1000.0}),
               std::logic_error);
}

}  // namespace
}  // namespace hetnet
