#include "src/traffic/staircase.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(StaircaseEnvelopeTest, StepSemantics) {
  StaircaseEnvelope s({Seconds{0.0}, Seconds{1.0}, Seconds{2.0}},
                      {Bits{10.0}, Bits{20.0}, Bits{30.0}}, BitsPerSecond{5.0});
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{0.0})), 10.0);
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{0.5})), 20.0);  // (0,1] → second value
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{1.0})), 20.0);
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{1.5})), 30.0);
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{2.0})), 30.0);
  // Beyond the last point: linear tail.
  EXPECT_DOUBLE_EQ(val(s.bits(Seconds{4.0})), val(30.0 + 5.0 * 2.0));
}

TEST(StaircaseEnvelopeTest, BurstBoundDominates) {
  StaircaseEnvelope s({Seconds{0.0}, Seconds{1.0}, Seconds{2.0}},
                      {Bits{10.0}, Bits{20.0}, Bits{30.0}}, BitsPerSecond{5.0});
  const Bits b = s.burst_bound();
  for (Seconds i; i < 10.0; i += Seconds{0.1}) {
    EXPECT_LE(s.bits(i), b + s.long_term_rate() * i + Bits{1e-9});
  }
}

TEST(StaircaseEnvelopeTest, RejectsBadConstruction) {
  const BitsPerSecond r{1.0};
  EXPECT_THROW(StaircaseEnvelope({}, {}, r), std::logic_error);
  EXPECT_THROW(StaircaseEnvelope({Seconds{1.0}}, {Bits{5.0}}, r),
               std::logic_error);
  EXPECT_THROW(StaircaseEnvelope({Seconds{0.0}, Seconds{1.0}}, {Bits{5.0}}, r),
               std::logic_error);
  // Decreasing values.
  EXPECT_THROW(StaircaseEnvelope({Seconds{0.0}, Seconds{1.0}},
                                 {Bits{5.0}, Bits{4.0}}, r),
               std::logic_error);
  // Non-increasing intervals.
  EXPECT_THROW(StaircaseEnvelope({Seconds{0.0}, Seconds{1.0}, Seconds{1.0}},
                                 {Bits{1.0}, Bits{2.0}, Bits{3.0}}, r),
               std::logic_error);
}

TEST(StaircaseEnvelopeTest, BreakpointsWithinHorizon) {
  StaircaseEnvelope s({Seconds{0.0}, Seconds{1.0}, Seconds{2.0}, Seconds{3.0}},
                      {Bits{0.0}, Bits{1.0}, Bits{2.0}, Bits{3.0}},
                      BitsPerSecond{1.0});
  EXPECT_EQ(s.breakpoints(Seconds{2.5}).size(), 2u);
  EXPECT_EQ(s.breakpoints(Seconds{10.0}).size(), 3u);
}

// The fundamental rasterization property: the staircase upper-bounds the
// source EVERYWHERE (within the horizon via right-end sampling, beyond it
// via the leaky-bucket tail).
TEST(RasterizeTest, UpperBoundsSourceEverywhere) {
  auto src = std::make_shared<DualPeriodicEnvelope>(
      Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5), units::mbps(10));
  auto r = rasterize(src, units::ms(100), 32);
  for (Seconds i; i < 0.5; i += Seconds{0.00093}) {
    EXPECT_GE(r->bits(i), src->bits(i) - Bits{1e-6}) << "I=" << i;
  }
}

TEST(RasterizeTest, TightWithGenerousBudget) {
  auto src = std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10));
  auto r = rasterize(src, units::ms(100), 1024);
  // With all breakpoints kept, the staircase matches the source exactly at
  // the sampled right-ends within the horizon.
  for (double k = 1; k <= 9; ++k) {
    EXPECT_DOUBLE_EQ(val(r->bits(k * units::ms(10))), val(src->bits(k * units::ms(10))));
  }
}

TEST(RasterizeTest, ThinnedBudgetStillConservative) {
  auto src = std::make_shared<DualPeriodicEnvelope>(
      Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5));
  auto coarse = rasterize(src, units::ms(200), 4);
  for (Seconds i; i < 1.0; i += Seconds{0.0017}) {
    EXPECT_GE(coarse->bits(i), src->bits(i) - Bits{1e-6}) << "I=" << i;
  }
}

TEST(RasterizeTest, PreservesLongTermRate) {
  auto src = std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10));
  auto r = rasterize(src, units::ms(50), 16);
  EXPECT_DOUBLE_EQ(val(r->long_term_rate()), val(src->long_term_rate()));
}

TEST(RasterizeTest, ComposedEnvelopeStaysBounded) {
  // Rasterize a shifted, capped periodic source and verify domination.
  auto src = rate_cap(
      shift_envelope(
          std::make_shared<PeriodicEnvelope>(Bits{2000.0}, units::ms(8)),
          units::ms(3)),
      units::mbps(100), Bits{424.0});
  auto r = rasterize(src, units::ms(64), 24);
  for (Seconds i; i < 0.3; i += Seconds{0.00041}) {
    EXPECT_GE(r->bits(i), src->bits(i) - Bits{1e-6}) << "I=" << i;
  }
}

TEST(RasterizeTest, RejectsBadArguments) {
  auto src = std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10));
  EXPECT_THROW(rasterize(src, Seconds{0.0}, 16), std::logic_error);
  EXPECT_THROW(rasterize(src, Seconds{1.0}, 1), std::logic_error);
  EXPECT_THROW(rasterize(nullptr, Seconds{1.0}, 16), std::logic_error);
}

}  // namespace
}  // namespace hetnet
