#include "src/traffic/staircase.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

TEST(StaircaseEnvelopeTest, StepSemantics) {
  StaircaseEnvelope s({0.0, 1.0, 2.0}, {10.0, 20.0, 30.0}, 5.0);
  EXPECT_DOUBLE_EQ(s.bits(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.bits(0.5), 20.0);  // (0,1] → second value
  EXPECT_DOUBLE_EQ(s.bits(1.0), 20.0);
  EXPECT_DOUBLE_EQ(s.bits(1.5), 30.0);
  EXPECT_DOUBLE_EQ(s.bits(2.0), 30.0);
  // Beyond the last point: linear tail.
  EXPECT_DOUBLE_EQ(s.bits(4.0), 30.0 + 5.0 * 2.0);
}

TEST(StaircaseEnvelopeTest, BurstBoundDominates) {
  StaircaseEnvelope s({0.0, 1.0, 2.0}, {10.0, 20.0, 30.0}, 5.0);
  const double b = s.burst_bound();
  for (double i = 0.0; i < 10.0; i += 0.1) {
    EXPECT_LE(s.bits(i), b + s.long_term_rate() * i + 1e-9);
  }
}

TEST(StaircaseEnvelopeTest, RejectsBadConstruction) {
  EXPECT_THROW(StaircaseEnvelope({}, {}, 1.0), std::logic_error);
  EXPECT_THROW(StaircaseEnvelope({1.0}, {5.0}, 1.0), std::logic_error);
  EXPECT_THROW(StaircaseEnvelope({0.0, 1.0}, {5.0}, 1.0), std::logic_error);
  // Decreasing values.
  EXPECT_THROW(StaircaseEnvelope({0.0, 1.0}, {5.0, 4.0}, 1.0),
               std::logic_error);
  // Non-increasing intervals.
  EXPECT_THROW(StaircaseEnvelope({0.0, 1.0, 1.0}, {1.0, 2.0, 3.0}, 1.0),
               std::logic_error);
}

TEST(StaircaseEnvelopeTest, BreakpointsWithinHorizon) {
  StaircaseEnvelope s({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 2.0, 3.0}, 1.0);
  EXPECT_EQ(s.breakpoints(2.5).size(), 2u);
  EXPECT_EQ(s.breakpoints(10.0).size(), 3u);
}

// The fundamental rasterization property: the staircase upper-bounds the
// source EVERYWHERE (within the horizon via right-end sampling, beyond it
// via the leaky-bucket tail).
TEST(RasterizeTest, UpperBoundsSourceEverywhere) {
  auto src = std::make_shared<DualPeriodicEnvelope>(
      3000.0, units::ms(30), 1000.0, units::ms(5), units::mbps(10));
  auto r = rasterize(src, units::ms(100), 32);
  for (double i = 0.0; i < 0.5; i += 0.00093) {
    EXPECT_GE(r->bits(i), src->bits(i) - 1e-6) << "I=" << i;
  }
}

TEST(RasterizeTest, TightWithGenerousBudget) {
  auto src = std::make_shared<PeriodicEnvelope>(1000.0, units::ms(10));
  auto r = rasterize(src, units::ms(100), 1024);
  // With all breakpoints kept, the staircase matches the source exactly at
  // the sampled right-ends within the horizon.
  for (double k = 1; k <= 9; ++k) {
    EXPECT_DOUBLE_EQ(r->bits(k * units::ms(10)), src->bits(k * units::ms(10)));
  }
}

TEST(RasterizeTest, ThinnedBudgetStillConservative) {
  auto src = std::make_shared<DualPeriodicEnvelope>(3000.0, units::ms(30),
                                                    1000.0, units::ms(5));
  auto coarse = rasterize(src, units::ms(200), 4);
  for (double i = 0.0; i < 1.0; i += 0.0017) {
    EXPECT_GE(coarse->bits(i), src->bits(i) - 1e-6) << "I=" << i;
  }
}

TEST(RasterizeTest, PreservesLongTermRate) {
  auto src = std::make_shared<PeriodicEnvelope>(1000.0, units::ms(10));
  auto r = rasterize(src, units::ms(50), 16);
  EXPECT_DOUBLE_EQ(r->long_term_rate(), src->long_term_rate());
}

TEST(RasterizeTest, ComposedEnvelopeStaysBounded) {
  // Rasterize a shifted, capped periodic source and verify domination.
  auto src = rate_cap(
      shift_envelope(
          std::make_shared<PeriodicEnvelope>(2000.0, units::ms(8)),
          units::ms(3)),
      units::mbps(100), 424.0);
  auto r = rasterize(src, units::ms(64), 24);
  for (double i = 0.0; i < 0.3; i += 0.00041) {
    EXPECT_GE(r->bits(i), src->bits(i) - 1e-6) << "I=" << i;
  }
}

TEST(RasterizeTest, RejectsBadArguments) {
  auto src = std::make_shared<PeriodicEnvelope>(1000.0, units::ms(10));
  EXPECT_THROW(rasterize(src, 0.0, 16), std::logic_error);
  EXPECT_THROW(rasterize(src, 1.0, 1), std::logic_error);
  EXPECT_THROW(rasterize(nullptr, 1.0, 16), std::logic_error);
}

}  // namespace
}  // namespace hetnet
