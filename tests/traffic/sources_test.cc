#include "src/traffic/sources.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/util/units.h"

namespace hetnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PeriodicEnvelopeTest, InstantBurstValues) {
  // 1000 bits every 10 ms, instantaneous bursts (eq. 37 one-period reading).
  PeriodicEnvelope e(1000.0, units::ms(10));
  EXPECT_DOUBLE_EQ(e.bits(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(1)), 1000.0);   // window catches 1 burst
  EXPECT_DOUBLE_EQ(e.bits(units::ms(10)), 1000.0);  // exactly one period
  EXPECT_DOUBLE_EQ(e.bits(units::ms(15)), 2000.0);  // 1 full + partial
  EXPECT_DOUBLE_EQ(e.bits(units::ms(30)), 3000.0);
}

TEST(PeriodicEnvelopeTest, PeakRateLimitedBurst) {
  // 1000 bits every 10 ms at 1 Mb/s peak: a burst takes 1 ms to arrive.
  PeriodicEnvelope e(1000.0, units::ms(10), units::mbps(1));
  EXPECT_DOUBLE_EQ(e.bits(units::us(500)), 500.0);  // mid-burst
  EXPECT_DOUBLE_EQ(e.bits(units::ms(1)), 1000.0);   // burst complete
  EXPECT_DOUBLE_EQ(e.bits(units::ms(5)), 1000.0);   // idle until next period
  EXPECT_DOUBLE_EQ(e.bits(units::ms(10.5)), 1500.0);
}

TEST(PeriodicEnvelopeTest, LongTermRate) {
  PeriodicEnvelope e(1000.0, units::ms(10));
  EXPECT_DOUBLE_EQ(e.long_term_rate(), 100000.0);
  // Γ(I) → ρ as I grows (eq. 38).
  EXPECT_NEAR(e.rate(units::sec(100)), 100000.0, 20.0);
}

TEST(PeriodicEnvelopeTest, BurstBoundMajorizes) {
  PeriodicEnvelope e(1000.0, units::ms(10), units::mbps(1));
  const double rho = e.long_term_rate();
  const double b = e.burst_bound();
  for (double i = 0.0; i < 0.1; i += 0.0007) {
    EXPECT_LE(e.bits(i), b + rho * i + 1e-6);
  }
}

TEST(PeriodicEnvelopeTest, RejectsBadParameters) {
  EXPECT_THROW(PeriodicEnvelope(0.0, 1.0), std::logic_error);
  EXPECT_THROW(PeriodicEnvelope(1000.0, 0.0), std::logic_error);
  // Peak rate too low to deliver C within P.
  EXPECT_THROW(PeriodicEnvelope(1000.0, units::ms(1), 1000.0),
               std::logic_error);
}

TEST(PeriodicEnvelopeTest, BreakpointsCoverBurstEdges) {
  PeriodicEnvelope e(1000.0, units::ms(10), units::mbps(1));
  const auto pts = e.breakpoints(units::ms(25));
  // Expect burst ends at 1ms, 11ms, 21ms and period starts at 10ms, 20ms.
  auto contains = [&](double v) {
    for (double p : pts) {
      if (std::abs(p - v) < 1e-12) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(units::ms(1)));
  EXPECT_TRUE(contains(units::ms(10)));
  EXPECT_TRUE(contains(units::ms(11)));
  EXPECT_TRUE(contains(units::ms(20)));
  EXPECT_TRUE(contains(units::ms(21)));
}

TEST(DualPeriodicEnvelopeTest, MatchesEquation37) {
  // C1 = 3000 bits per P1 = 30 ms, as C2 = 1000-bit bursts every P2 = 5 ms.
  DualPeriodicEnvelope e(3000.0, units::ms(30), 1000.0, units::ms(5));
  // Within the first outer window: bursts at 0, 5, 10 ms, saturating at C1.
  EXPECT_DOUBLE_EQ(e.bits(units::ms(1)), 1000.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(6)), 2000.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(11)), 3000.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(29)), 3000.0);  // saturated at C1
  EXPECT_DOUBLE_EQ(e.bits(units::ms(31)), 4000.0);  // next window begins
  EXPECT_DOUBLE_EQ(e.bits(units::ms(60)), 6000.0);
}

TEST(DualPeriodicEnvelopeTest, LongTermRateIsC1OverP1) {
  DualPeriodicEnvelope e(3000.0, units::ms(30), 1000.0, units::ms(5));
  EXPECT_DOUBLE_EQ(e.long_term_rate(), 100000.0);
  EXPECT_NEAR(e.rate(units::sec(300)), 100000.0, 15.0);
}

TEST(DualPeriodicEnvelopeTest, PeakRateLimitsSubBursts) {
  DualPeriodicEnvelope e(3000.0, units::ms(30), 1000.0, units::ms(5),
                         units::mbps(1));
  // A sub-burst takes 1 ms to arrive at 1 Mb/s.
  EXPECT_DOUBLE_EQ(e.bits(units::us(500)), 500.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(1)), 1000.0);
  EXPECT_DOUBLE_EQ(e.bits(units::ms(5.5)), 1500.0);
}

TEST(DualPeriodicEnvelopeTest, DegeneratesToPeriodicWhenC2EqualsC1) {
  DualPeriodicEnvelope dual(1000.0, units::ms(10), 1000.0, units::ms(10));
  PeriodicEnvelope single(1000.0, units::ms(10));
  for (double i = 0.0; i < 0.05; i += 0.0013) {
    EXPECT_DOUBLE_EQ(dual.bits(i), single.bits(i)) << "I=" << i;
  }
}

TEST(DualPeriodicEnvelopeTest, RejectsBadParameters) {
  // C2 > C1.
  EXPECT_THROW(DualPeriodicEnvelope(1000.0, 0.03, 2000.0, 0.005),
               std::logic_error);
  // P2 > P1.
  EXPECT_THROW(DualPeriodicEnvelope(3000.0, 0.005, 1000.0, 0.03),
               std::logic_error);
  // Peak too low for C2 within P2.
  EXPECT_THROW(DualPeriodicEnvelope(3000.0, 0.03, 1000.0, 0.005, 1000.0),
               std::logic_error);
}

TEST(DualPeriodicEnvelopeTest, BurstBoundMajorizes) {
  DualPeriodicEnvelope e(3000.0, units::ms(30), 1000.0, units::ms(5));
  const double rho = e.long_term_rate();
  const double b = e.burst_bound();
  for (double i = 0.0; i < 0.2; i += 0.0011) {
    EXPECT_LE(e.bits(i), b + rho * i + 1e-6);
  }
}

TEST(LeakyBucketEnvelopeTest, AffineForm) {
  LeakyBucketEnvelope e(500.0, 1000.0);
  EXPECT_DOUBLE_EQ(e.bits(0.0), 500.0);
  EXPECT_DOUBLE_EQ(e.bits(2.0), 2500.0);
  EXPECT_DOUBLE_EQ(e.long_term_rate(), 1000.0);
  EXPECT_DOUBLE_EQ(e.burst_bound(), 500.0);
  EXPECT_TRUE(e.breakpoints(10.0).empty());
}

TEST(LeakyBucketEnvelopeTest, RejectsEmptyBucket) {
  EXPECT_THROW(LeakyBucketEnvelope(0.0, 0.0), std::logic_error);
  EXPECT_THROW(LeakyBucketEnvelope(-1.0, 10.0), std::logic_error);
}

TEST(ZeroEnvelopeTest, AlwaysZero) {
  ZeroEnvelope z;
  EXPECT_DOUBLE_EQ(z.bits(100.0), 0.0);
  EXPECT_DOUBLE_EQ(z.long_term_rate(), 0.0);
  EXPECT_DOUBLE_EQ(z.burst_bound(), 0.0);
}

TEST(SourceTest, NegativeIntervalRejected) {
  PeriodicEnvelope e(1000.0, 0.01);
  EXPECT_THROW(e.bits(-1.0), std::logic_error);
}

TEST(SourceTest, RateRequiresPositiveInterval) {
  PeriodicEnvelope e(1000.0, 0.01);
  EXPECT_THROW(e.rate(0.0), std::logic_error);
}

}  // namespace
}  // namespace hetnet
