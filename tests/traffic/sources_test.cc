#include "src/traffic/sources.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/util/units.h"

namespace hetnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PeriodicEnvelopeTest, InstantBurstValues) {
  // 1000 bits every 10 ms, instantaneous bursts (eq. 37 one-period reading).
  PeriodicEnvelope e(Bits{1000.0}, units::ms(10));
  EXPECT_DOUBLE_EQ(val(e.bits(Seconds{0.0})), 0.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(1))), 1000.0);   // window catches 1 burst
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(10))), 1000.0);  // exactly one period
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(15))), 2000.0);  // 1 full + partial
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(30))), 3000.0);
}

TEST(PeriodicEnvelopeTest, PeakRateLimitedBurst) {
  // 1000 bits every 10 ms at 1 Mb/s peak: a burst takes 1 ms to arrive.
  PeriodicEnvelope e(Bits{1000.0}, units::ms(10), units::mbps(1));
  EXPECT_DOUBLE_EQ(val(e.bits(units::us(500))), 500.0);  // mid-burst
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(1))), 1000.0);   // burst complete
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(5))), 1000.0);   // idle until next period
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(10.5))), 1500.0);
}

TEST(PeriodicEnvelopeTest, LongTermRate) {
  PeriodicEnvelope e(Bits{1000.0}, units::ms(10));
  EXPECT_DOUBLE_EQ(val(e.long_term_rate()), 100000.0);
  // Γ(I) → ρ as I grows (eq. 38).
  EXPECT_NEAR(val(e.rate(units::sec(100))), 100000.0, 20.0);
}

TEST(PeriodicEnvelopeTest, BurstBoundMajorizes) {
  PeriodicEnvelope e(Bits{1000.0}, units::ms(10), units::mbps(1));
  const BitsPerSecond rho = e.long_term_rate();
  const Bits b = e.burst_bound();
  for (Seconds i; i < 0.1; i += Seconds{0.0007}) {
    EXPECT_LE(e.bits(i), b + rho * i + Bits{1e-6});
  }
}

TEST(PeriodicEnvelopeTest, RejectsBadParameters) {
  EXPECT_THROW(PeriodicEnvelope(Bits{0.0}, Seconds{1.0}), std::logic_error);
  EXPECT_THROW(PeriodicEnvelope(Bits{1000.0}, Seconds{0.0}), std::logic_error);
  // Peak rate too low to deliver C within P.
  EXPECT_THROW(PeriodicEnvelope(Bits{1000.0}, units::ms(1), BitsPerSecond{1000.0}),
               std::logic_error);
}

TEST(PeriodicEnvelopeTest, BreakpointsCoverBurstEdges) {
  PeriodicEnvelope e(Bits{1000.0}, units::ms(10), units::mbps(1));
  const auto pts = e.breakpoints(units::ms(25));
  // Expect burst ends at 1ms, 11ms, 21ms and period starts at 10ms, 20ms.
  auto contains = [&](Seconds v) {
    for (Seconds p : pts) {
      if (abs(p - v) < 1e-12) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(units::ms(1)));
  EXPECT_TRUE(contains(units::ms(10)));
  EXPECT_TRUE(contains(units::ms(11)));
  EXPECT_TRUE(contains(units::ms(20)));
  EXPECT_TRUE(contains(units::ms(21)));
}

TEST(DualPeriodicEnvelopeTest, MatchesEquation37) {
  // C1 = 3000 bits per P1 = 30 ms, as C2 = 1000-bit bursts every P2 = 5 ms.
  DualPeriodicEnvelope e(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5));
  // Within the first outer window: bursts at 0, 5, 10 ms, saturating at C1.
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(1))), 1000.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(6))), 2000.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(11))), 3000.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(29))), 3000.0);  // saturated at C1
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(31))), 4000.0);  // next window begins
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(60))), 6000.0);
}

TEST(DualPeriodicEnvelopeTest, LongTermRateIsC1OverP1) {
  DualPeriodicEnvelope e(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5));
  EXPECT_DOUBLE_EQ(val(e.long_term_rate()), 100000.0);
  EXPECT_NEAR(val(e.rate(units::sec(300))), 100000.0, 15.0);
}

TEST(DualPeriodicEnvelopeTest, PeakRateLimitsSubBursts) {
  DualPeriodicEnvelope e(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5),
                         units::mbps(1));
  // A sub-burst takes 1 ms to arrive at 1 Mb/s.
  EXPECT_DOUBLE_EQ(val(e.bits(units::us(500))), 500.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(1))), 1000.0);
  EXPECT_DOUBLE_EQ(val(e.bits(units::ms(5.5))), 1500.0);
}

TEST(DualPeriodicEnvelopeTest, DegeneratesToPeriodicWhenC2EqualsC1) {
  DualPeriodicEnvelope dual(Bits{1000.0}, units::ms(10), Bits{1000.0}, units::ms(10));
  PeriodicEnvelope single(Bits{1000.0}, units::ms(10));
  for (Seconds i; i < 0.05; i += Seconds{0.0013}) {
    EXPECT_DOUBLE_EQ(val(dual.bits(i)), val(single.bits(i))) << "I=" << i;
  }
}

TEST(DualPeriodicEnvelopeTest, RejectsBadParameters) {
  // C2 > C1.
  EXPECT_THROW(DualPeriodicEnvelope(Bits{1000.0}, Seconds{0.03}, Bits{2000.0}, Seconds{0.005}),
               std::logic_error);
  // P2 > P1.
  EXPECT_THROW(DualPeriodicEnvelope(Bits{3000.0}, Seconds{0.005}, Bits{1000.0}, Seconds{0.03}),
               std::logic_error);
  // Peak too low for C2 within P2.
  EXPECT_THROW(DualPeriodicEnvelope(Bits{3000.0}, Seconds{0.03}, Bits{1000.0}, Seconds{0.005}, BitsPerSecond{1000.0}),
               std::logic_error);
}

TEST(DualPeriodicEnvelopeTest, BurstBoundMajorizes) {
  DualPeriodicEnvelope e(Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5));
  const BitsPerSecond rho = e.long_term_rate();
  const Bits b = e.burst_bound();
  for (Seconds i; i < 0.2; i += Seconds{0.0011}) {
    EXPECT_LE(e.bits(i), b + rho * i + Bits{1e-6});
  }
}

TEST(LeakyBucketEnvelopeTest, AffineForm) {
  LeakyBucketEnvelope e(Bits{500.0}, BitsPerSecond{1000.0});
  EXPECT_DOUBLE_EQ(val(e.bits(Seconds{0.0})), 500.0);
  EXPECT_DOUBLE_EQ(val(e.bits(Seconds{2.0})), 2500.0);
  EXPECT_DOUBLE_EQ(val(e.long_term_rate()), 1000.0);
  EXPECT_DOUBLE_EQ(val(e.burst_bound()), 500.0);
  EXPECT_TRUE(e.breakpoints(Seconds{10.0}).empty());
}

TEST(LeakyBucketEnvelopeTest, RejectsEmptyBucket) {
  EXPECT_THROW(LeakyBucketEnvelope(Bits{0.0}, BitsPerSecond{0.0}), std::logic_error);
  EXPECT_THROW(LeakyBucketEnvelope(Bits{-1.0}, BitsPerSecond{10.0}), std::logic_error);
}

TEST(ZeroEnvelopeTest, AlwaysZero) {
  ZeroEnvelope z;
  EXPECT_DOUBLE_EQ(val(z.bits(Seconds{100.0})), 0.0);
  EXPECT_DOUBLE_EQ(val(z.long_term_rate()), 0.0);
  EXPECT_DOUBLE_EQ(val(z.burst_bound()), 0.0);
}

TEST(SourceTest, NegativeIntervalRejected) {
  PeriodicEnvelope e(Bits{1000.0}, Seconds{0.01});
  EXPECT_THROW(e.bits(Seconds{-1.0}), std::logic_error);
}

TEST(SourceTest, RateRequiresPositiveInterval) {
  PeriodicEnvelope e(Bits{1000.0}, Seconds{0.01});
  EXPECT_THROW(e.rate(Seconds{0.0}), std::logic_error);
}

}  // namespace
}  // namespace hetnet
