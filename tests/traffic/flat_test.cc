// FlatEnvelope: directed-rounding flattening and the segment-array kernels
// (sum / min / shift / rate-cap / min-plus convolution), checked against
// the expression-tree algebra (src/traffic/algebra.cc) and the staircase
// rasterizer (src/traffic/staircase.cc) at randomized sample points.
//
// The load-bearing property is DIRECTED domination: Tier-A screening
// (DESIGN.md §11) may only trust a kUp flat that never dips below its
// source and a kDown flat that never rises above it — with NO tolerance,
// because a single wrong-side sample is exactly the kind of deviation a
// screen margin cannot see coming. The kernel tests pin the exact-pointwise
// claims the screen pipeline composes on top.
#include "src/traffic/flat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/traffic/staircase.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

constexpr double kHorizonS = 0.2;

EnvelopePtr dual() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(50), units::ms(100), units::kbits(5), units::ms(10));
}

EnvelopePtr bucket(double sigma, double rho) {
  return std::make_shared<LeakyBucketEnvelope>(Bits{sigma},
                                               BitsPerSecond{rho});
}

// A deliberately deep expression tree: the shape the flattener exists to
// collapse.
EnvelopePtr composed() {
  return rate_cap(
      sum_envelopes({dual(), shift_envelope(
                                 std::make_shared<PeriodicEnvelope>(
                                     units::kbits(12), units::ms(30)),
                                 units::ms(5))}),
      BitsPerSecond{2e6}, units::kbits(8));
}

// Sample points: every source breakpoint in (0, 2*horizon], segment
// midpoints, and uniform random fill — randomized breakpoints in the sense
// that the draw is seeded per test but fixed across runs.
std::vector<Seconds> sample_points(const EnvelopePtr& src, Seconds horizon,
                                   std::uint32_t seed, int random_points) {
  std::vector<Seconds> pts{Seconds{}};
  const std::vector<Seconds> bps = src->breakpoints(horizon * 2.0);
  for (std::size_t i = 0; i < bps.size(); ++i) {
    pts.push_back(bps[i]);
    const Seconds prev = i == 0 ? Seconds{} : bps[i - 1];
    pts.push_back(prev + (bps[i] - prev) * 0.5);
  }
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, val(horizon) * 2.0);
  for (int i = 0; i < random_points; ++i) pts.push_back(Seconds{u(rng)});
  return pts;
}

TEST(FlatFromEnvelopeTest, DirectedRoundingDominates) {
  const Seconds horizon{kHorizonS};
  const std::vector<EnvelopePtr> sources = {
      dual(), composed(), bucket(5000.0, 1e5),
      sum_envelopes({bucket(2000.0, 4e4),
                     std::make_shared<PeriodicEnvelope>(units::kbits(3),
                                                        units::ms(7))})};
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const EnvelopePtr& src = sources[s];
    for (const std::size_t budget : {4u, 8u, 24u}) {
      const FlatPtr up = flat_from_envelope(src, horizon, budget,
                                            Rounding::kUp);
      const FlatPtr down = flat_from_envelope(src, horizon, budget,
                                              Rounding::kDown);
      EXPECT_LE(up->size(), budget);
      EXPECT_LE(down->size(), budget);
      for (const Seconds I :
           sample_points(src, horizon, 1000 + 10 * s + budget, 200)) {
        const double exact = val(src->bits(I));
        // Domination with NO tolerance: this is the admit-safety claim.
        EXPECT_GE(val(up->bits(I)), exact)
            << "kUp below source " << s << " at I=" << val(I)
            << " budget=" << budget;
        EXPECT_LE(val(down->bits(I)), exact)
            << "kDown above source " << s << " at I=" << val(I)
            << " budget=" << budget;
      }
    }
  }
}

TEST(FlatFromEnvelopeTest, StaircaseRoundTripIsTightInsideSegments) {
  // A staircase that fits the segment budget compacts losslessly: the kUp
  // flat agrees with the staircase at every interior point (breakpoints
  // themselves may carry the next step's value — the sup over the
  // enclosing half-open segment — which domination covers above).
  const Seconds horizon{kHorizonS};
  const EnvelopePtr stair = rasterize(dual(), horizon, 16);
  const FlatPtr up = flat_from_envelope(stair, horizon, 24, Rounding::kUp);
  std::vector<Seconds> xs{Seconds{}};
  for (const Seconds x : stair->breakpoints(horizon)) xs.push_back(x);
  ASSERT_GT(xs.size(), 2u);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const Seconds mid = xs[i - 1] + (xs[i] - xs[i - 1]) * 0.5;
    const double exact = val(stair->bits(mid));
    EXPECT_GE(val(up->bits(mid)), exact);
    EXPECT_NEAR(val(up->bits(mid)), exact,
                1e-6 * std::max(1.0, exact))
        << "lossy round trip at segment " << i;
  }
}

TEST(FlatKernelsTest, SumMinShiftRateCapMatchAlgebraPointwise) {
  const Seconds horizon{kHorizonS};
  const FlatPtr a =
      flat_from_envelope(dual(), horizon, 24, Rounding::kUp);
  const FlatPtr b =
      flat_from_envelope(composed(), horizon, 16, Rounding::kUp);
  const FlatPtr c =
      flat_from_envelope(bucket(4000.0, 8e4), horizon, 8, Rounding::kUp);

  const FlatPtr sum = flat_sum({a, b, c});
  const FlatPtr mn = flat_min(a, b);
  const Seconds d = units::ms(3);
  const FlatPtr shifted = flat_shift(a, d);
  const BitsPerSecond cap_rate{1.5e6};
  const Bits cap_burst = units::kbits(2);
  const FlatPtr capped = flat_rate_cap(a, cap_rate, cap_burst);

  // The algebra operators applied to the same flat operands give the
  // reference values (lazy expression tree vs single merged array).
  const EnvelopePtr ref_sum = sum_envelopes({a, b, c});
  const EnvelopePtr ref_min = min_envelope(a, b);
  const EnvelopePtr ref_shift = shift_envelope(a, d);
  const EnvelopePtr ref_cap = rate_cap(a, cap_rate, cap_burst);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(0.0, kHorizonS * 2.0);
  std::vector<Seconds> pts;
  for (int i = 0; i < 400; ++i) pts.push_back(Seconds{u(rng)});
  for (const FlatPtr& f : {a, b, c}) {
    for (const Seconds x : f->starts()) pts.push_back(x);
  }
  for (const Seconds I : pts) {
    const auto near = [&](double got, double want, const char* what) {
      EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, want))
          << what << " at I=" << val(I);
    };
    near(val(sum->bits(I)), val(ref_sum->bits(I)), "flat_sum");
    near(val(mn->bits(I)), val(ref_min->bits(I)), "flat_min");
    near(val(shifted->bits(I)), val(ref_shift->bits(I)), "flat_shift");
    near(val(capped->bits(I)), val(ref_cap->bits(I)), "flat_rate_cap");
  }
}

TEST(FlatKernelsTest, ConvolutionIsExactOnTheCandidateSet) {
  const Seconds horizon{kHorizonS};
  const FlatPtr a =
      flat_from_envelope(dual(), horizon, 16, Rounding::kUp);
  const FlatPtr b = flat_from_envelope(bucket(3000.0, 6e4), horizon, 8,
                                       Rounding::kUp);
  const FlatPtr conv = flat_convolve(a, b);

  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, kHorizonS * 2.0);
  for (int i = 0; i < 200; ++i) {
    const Seconds I{u(rng)};
    // Reference: for piecewise-linear operands the min over t of
    // a(t) + b(I - t) is attained with one operand at a breakpoint, so
    // the candidate set {a-breakpoints, I - b-breakpoints, 0, I} is
    // exhaustive.
    std::vector<Seconds> ts{Seconds{}, I};
    for (const Seconds x : a->starts()) {
      if (x <= I) ts.push_back(x);
    }
    for (const Seconds y : b->starts()) {
      if (y <= I) ts.push_back(I - y);
    }
    double want = val(a->bits(I)) + val(b->bits(Seconds{}));
    for (const Seconds t : ts) {
      want = std::min(want, val(a->bits(t)) + val(b->bits(I - t)));
    }
    EXPECT_NEAR(val(conv->bits(I)), want, 1e-9 * std::max(1.0, want))
        << "I=" << val(I);
    // And it is a true lower-left closure: never above either operand
    // path at random interior split points.
    const Seconds t{u(rng) * val(I) / (kHorizonS * 2.0)};
    EXPECT_LE(val(conv->bits(I)),
              val(a->bits(t)) + val(b->bits(I - t)) +
                  1e-9 * std::max(1.0, want));
  }
}

TEST(FlatFingerprintTest, StructuralAndDeterministic) {
  const Seconds horizon{kHorizonS};
  const FlatPtr a1 = flat_from_envelope(dual(), horizon, 24, Rounding::kUp);
  const FlatPtr a2 = flat_from_envelope(dual(), horizon, 24, Rounding::kUp);
  // Same construction => same defining arrays => same fingerprint, across
  // distinct instances (the session FlatCache relies on this to recognize
  // a re-flattened source).
  EXPECT_EQ(a1->fingerprint(), a2->fingerprint());
  ASSERT_EQ(a1->size(), a2->size());
  for (std::size_t k = 0; k < a1->size(); ++k) {
    EXPECT_EQ(val(a1->starts()[k]), val(a2->starts()[k]));
    EXPECT_EQ(val(a1->values()[k]), val(a2->values()[k]));
    EXPECT_EQ(val(a1->slopes()[k]), val(a2->slopes()[k]));
  }
  // Different rounding or budget changes the arrays, hence the key.
  const FlatPtr down =
      flat_from_envelope(dual(), horizon, 24, Rounding::kDown);
  const FlatPtr tight = flat_from_envelope(dual(), horizon, 6, Rounding::kUp);
  EXPECT_NE(a1->fingerprint(), down->fingerprint());
  EXPECT_NE(a1->fingerprint(), tight->fingerprint());
}

}  // namespace
}  // namespace hetnet
