#include "src/traffic/validating.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/traffic/sources.h"
#include "src/traffic/staircase.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

// A configurable envelope for injecting each possible contract violation.
class MockEnvelope : public ArrivalEnvelope {
 public:
  std::function<double(double)> bits_fn = [](double i) {
    return 100.0 + 50.0 * i;
  };
  double rho = 50.0;
  double burst = 100.0;
  std::vector<Seconds> points;

  Bits bits(Seconds interval) const override {
    return Bits{bits_fn(interval.value())};
  }
  BitsPerSecond long_term_rate() const override { return BitsPerSecond{rho}; }
  Bits burst_bound() const override { return Bits{burst}; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    std::vector<Seconds> inside;
    for (const Seconds p : points) {
      if (p <= horizon) inside.push_back(p);
    }
    return inside;
  }
  std::string describe() const override { return "mock"; }
};

void probe(const ArrivalEnvelope& env) {
  for (Seconds i; i < 0.3; i += Seconds{0.0137}) {
    (void)env.bits(i);
  }
  (void)env.long_term_rate();
  (void)env.burst_bound();
  (void)env.breakpoints(Seconds{0.5});
}

TEST(ValidatingEnvelopeTest, AcceptsAllStandardSources) {
  const std::vector<EnvelopePtr> sources = {
      std::make_shared<LeakyBucketEnvelope>(Bits{50000.0}, units::mbps(10)),
      std::make_shared<PeriodicEnvelope>(Bits{100000.0}, units::ms(20)),
      std::make_shared<DualPeriodicEnvelope>(Bits{500000.0}, units::ms(100),
                                             Bits{100000.0}, units::ms(20)),
      std::make_shared<DualPeriodicEnvelope>(Bits{300000.0}, units::ms(100),
                                             Bits{50000.0}, units::ms(10),
                                             units::mbps(100)),
      std::make_shared<ZeroEnvelope>(),
  };
  for (const auto& src : sources) {
    const ValidatingEnvelope checked(src);
    EXPECT_NO_THROW(probe(checked)) << src->describe();
    EXPECT_EQ(checked.describe(), src->describe());
  }
}

TEST(ValidatingEnvelopeTest, ResultsPassThroughUnchanged) {
  const auto src =
      std::make_shared<PeriodicEnvelope>(Bits{80000.0}, units::ms(25));
  const ValidatingEnvelope checked(src);
  for (Seconds i; i < 0.2; i += Seconds{0.009}) {
    EXPECT_EQ(checked.bits(i), src->bits(i));
  }
  EXPECT_EQ(checked.long_term_rate(), src->long_term_rate());
  EXPECT_EQ(checked.burst_bound(), src->burst_bound());
}

TEST(ValidatingEnvelopeTest, RejectsNullInner) {
  EXPECT_THROW(ValidatingEnvelope(nullptr), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesNegativeBits) {
  auto mock = std::make_shared<MockEnvelope>();
  mock->bits_fn = [](double) { return -1.0; };
  const ValidatingEnvelope checked(mock);
  EXPECT_THROW(checked.bits(Seconds{0.1}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesDecreasingEnvelope) {
  auto mock = std::make_shared<MockEnvelope>();
  mock->bits_fn = [](double i) { return 1000.0 - 100.0 * i; };
  mock->burst = 2000.0;
  const ValidatingEnvelope checked(mock);
  (void)checked.bits(Seconds{0.1});
  EXPECT_THROW(checked.bits(Seconds{3.0}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesBurstBoundViolation) {
  auto mock = std::make_shared<MockEnvelope>();
  // A(I) = 100 + 80 I but claims rho = 50: majorization fails for large I.
  mock->bits_fn = [](double i) { return 100.0 + 80.0 * i; };
  const ValidatingEnvelope checked(mock);
  EXPECT_THROW(checked.bits(Seconds{10.0}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesNonAffineSegment) {
  auto mock = std::make_shared<MockEnvelope>();
  // Quadratic growth with no breakpoints: cannot be affine on (0, I].
  mock->bits_fn = [](double i) { return 10.0 + 1000.0 * i * i; };
  mock->rho = 1e9;
  mock->burst = 1e9;
  const ValidatingEnvelope checked(mock);
  EXPECT_THROW(checked.bits(Seconds{0.5}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesUnsortedBreakpoints) {
  auto mock = std::make_shared<MockEnvelope>();
  mock->points = {Seconds{0.2}, Seconds{0.1}};
  const ValidatingEnvelope checked(mock);
  EXPECT_THROW(checked.breakpoints(Seconds{1.0}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, CatchesNonPositiveBreakpoint) {
  auto mock = std::make_shared<MockEnvelope>();
  mock->points = {Seconds{-0.1}, Seconds{0.1}};
  const ValidatingEnvelope checked(mock);
  EXPECT_THROW(checked.breakpoints(Seconds{1.0}), std::logic_error);
}

TEST(ValidatingEnvelopeTest, WrapRespectsBuildFlag) {
  const auto src =
      std::make_shared<LeakyBucketEnvelope>(Bits{1000.0}, units::mbps(1));
  const EnvelopePtr wrapped = wrap_validating(src);
#ifdef HETNET_VALIDATE
  EXPECT_NE(wrapped.get(), src.get());
  ASSERT_NE(std::dynamic_pointer_cast<const ValidatingEnvelope>(wrapped),
            nullptr);
  // Re-wrapping is idempotent.
  EXPECT_EQ(wrap_validating(wrapped).get(), wrapped.get());
#else
  EXPECT_EQ(wrapped.get(), src.get());
#endif
  EXPECT_EQ(wrap_validating(nullptr), nullptr);
}

TEST(ValidatingEnvelopeTest, StaircaseSurvivesValidation) {
  // The staircase has genuine jumps at breakpoints: the affine check must
  // not flag the discontinuities themselves.
  const auto stairs = std::make_shared<StaircaseEnvelope>(
      std::vector<Seconds>{Seconds{0.0}, Seconds{0.01}, Seconds{0.05}},
      std::vector<Bits>{Bits{1000.0}, Bits{5000.0}, Bits{9000.0}},
      BitsPerSecond{100000.0});
  const ValidatingEnvelope checked(stairs);
  EXPECT_NO_THROW(probe(checked));
}

}  // namespace
}  // namespace hetnet
