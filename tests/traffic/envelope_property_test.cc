// Parameterized property suite: every envelope construction in the library
// must satisfy the ArrivalEnvelope contract (see src/traffic/envelope.h).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "src/traffic/algebra.h"
#include "src/traffic/cached.h"
#include "src/traffic/envelope.h"
#include "src/traffic/multi_periodic.h"
#include "src/traffic/sources.h"
#include "src/traffic/staircase.h"
#include "src/traffic/validating.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

struct EnvelopeCase {
  std::string name;
  std::function<EnvelopePtr()> make;
};

EnvelopePtr dual() {
  return std::make_shared<DualPeriodicEnvelope>(
      Bits{3000.0}, units::ms(30), Bits{1000.0}, units::ms(5), units::mbps(50));
}

const EnvelopeCase kCases[] = {
    {"periodic_instant",
     [] {
       return std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10));
     }},
    {"periodic_peaked",
     [] {
       return std::make_shared<PeriodicEnvelope>(Bits{1000.0}, units::ms(10),
                                                 units::mbps(1));
     }},
    {"dual_periodic", [] { return dual(); }},
    {"multi_periodic_3",
     [] {
       return std::make_shared<MultiPeriodicEnvelope>(
           std::vector<PeriodicLevel>{{units::kbits(120), units::ms(120)},
                                      {units::kbits(40), units::ms(40)},
                                      {units::kbits(10), units::ms(10)}},
           units::mbps(50));
     }},
    {"leaky_bucket",
     [] {
       return std::make_shared<LeakyBucketEnvelope>(Bits{500.0},
                                                    BitsPerSecond{2000.0});
     }},
    {"zero", [] { return std::make_shared<ZeroEnvelope>(); }},
    {"sum",
     [] {
       return sum_envelopes({dual(), std::make_shared<PeriodicEnvelope>(
                                         Bits{700.0}, units::ms(7))});
     }},
    {"shift", [] { return shift_envelope(dual(), units::ms(3)); }},
    {"min",
     [] {
       return min_envelope(dual(), std::make_shared<LeakyBucketEnvelope>(
                                       Bits{800.0}, BitsPerSecond{150000.0}));
     }},
    {"rate_cap", [] { return rate_cap(dual(), units::mbps(1), Bits{424.0}); }},
    {"quantize", [] { return quantize_envelope(dual(), Bits{1000.0}, Bits{1272.0}); }},
    {"scale", [] { return scale_envelope(dual(), 1.0625); }},
    {"staircase",
     [] { return rasterize(dual(), units::ms(120), 48); }},
    {"cached", [] { return cache_envelope(dual()); }},
    {"deep_composition",
     [] {
       return rate_cap(
           quantize_envelope(
               shift_envelope(sum_envelopes({dual(), dual()}), units::ms(2)),
               Bits{1000.0}, Bits{1272.0}),
           units::mbps(140), Bits{424.0});
     }},
};

class EnvelopeContractTest : public ::testing::TestWithParam<EnvelopeCase> {};

TEST_P(EnvelopeContractTest, NonNegativeAndMonotone) {
  const auto env = wrap_validating(GetParam().make());
  Bits prev{-1.0};
  for (Seconds i; i < 0.25; i += Seconds{0.00073}) {
    const Bits v = env->bits(i);
    EXPECT_GE(v, 0.0) << "I=" << i;
    EXPECT_GE(v, prev - Bits{1e-9}) << "I=" << i;
    prev = v;
  }
}

TEST_P(EnvelopeContractTest, BurstBoundMajorizes) {
  const auto env = wrap_validating(GetParam().make());
  const BitsPerSecond rho = env->long_term_rate();
  const Bits b = env->burst_bound();
  ASSERT_TRUE(isfinite(b));
  for (Seconds i; i < 1.0; i += Seconds{0.0041}) {
    EXPECT_LE(env->bits(i), b + rho * i + Bits{1e-6}) << "I=" << i;
  }
}

TEST_P(EnvelopeContractTest, BreakpointsSortedAndInRange) {
  const auto env = wrap_validating(GetParam().make());
  const Seconds horizon = units::ms(80);
  const auto pts = env->breakpoints(horizon);
  Seconds prev;
  for (Seconds p : pts) {
    EXPECT_GT(p, prev) << "breakpoints must be strictly increasing";
    EXPECT_LE(p, horizon * (1 + 1e-9));
    prev = p;
  }
}

TEST_P(EnvelopeContractTest, AffineBetweenBreakpoints) {
  const auto env = wrap_validating(GetParam().make());
  const Seconds horizon = units::ms(80);
  auto pts = env->breakpoints(horizon);
  pts.push_back(horizon);
  Seconds a;
  for (Seconds b : pts) {
    if (b - a > 1e-7) {
      // Probe strictly inside the open segment; affine ⇒ the midpoint value
      // is the average of values near the ends.
      const Seconds lo = a + (b - a) * 0.05;
      const Seconds hi = b - (b - a) * 0.05;
      const Seconds mid = 0.5 * (lo + hi);
      const Bits expected = 0.5 * (env->bits(lo) + env->bits(hi));
      const double scale = std::max(1.0, val(abs(expected)));
      EXPECT_NEAR(val(env->bits(mid)), val(expected), 1e-6 * scale)
          << "segment (" << a << ", " << b << ")";
    }
    a = b;
  }
}

TEST_P(EnvelopeContractTest, LongTermRateIsAsymptoticSlope) {
  const auto env = wrap_validating(GetParam().make());
  const BitsPerSecond rho = env->long_term_rate();
  const Seconds far{500.0};
  // b + ρT >= A(T) >= ρT − b-ish; both sides pinched at large T.
  EXPECT_NEAR(val(env->bits(far) / far), val(rho),
              val(env->burst_bound() / far) + 1e-6 + val(rho) * 1e-6);
}

TEST_P(EnvelopeContractTest, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->describe().empty());
}

TEST_P(EnvelopeContractTest, CachedWrapperAgrees) {
  const auto env = wrap_validating(GetParam().make());
  const auto cached = cache_envelope(env);
  for (Seconds i; i < 0.1; i += Seconds{0.0019}) {
    EXPECT_DOUBLE_EQ(val(cached->bits(i)), val(env->bits(i)));
    // Second lookup hits the cache and must agree.
    EXPECT_DOUBLE_EQ(val(cached->bits(i)), val(env->bits(i)));
  }
  EXPECT_DOUBLE_EQ(val(cached->long_term_rate()), val(env->long_term_rate()));
  EXPECT_DOUBLE_EQ(val(cached->burst_bound()), val(env->burst_bound()));
}

INSTANTIATE_TEST_SUITE_P(
    AllEnvelopes, EnvelopeContractTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<EnvelopeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hetnet
