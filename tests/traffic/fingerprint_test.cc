// Envelope fingerprint contract (src/traffic/fingerprint.h) and the
// expression-tree compactions in the algebra factories. The incremental
// admission engine keys its memo tables on fingerprints, so the properties
// pinned here — structural equality ⇒ equal fingerprint, distinct structure
// ⇒ distinct fingerprint, compaction preserves values exactly — are load-
// bearing for admission-decision correctness.
#include <gtest/gtest.h>

#include <memory>

#include "src/traffic/algebra.h"
#include "src/traffic/cached.h"
#include "src/traffic/sources.h"
#include "src/traffic/validating.h"
#include "src/util/units.h"

namespace hetnet {
namespace {

EnvelopePtr dual() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(300), units::ms(100), units::kbits(100), units::ms(20));
}

TEST(FingerprintTest, SourcesAreStructural) {
  // Two distinct instances with the same parameters are interchangeable
  // bit-for-bit, so they must share a fingerprint.
  EXPECT_EQ(dual()->fingerprint(), dual()->fingerprint());
  const auto p1 =
      std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
  const auto p2 =
      std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
  EXPECT_EQ(p1->fingerprint(), p2->fingerprint());
  const auto lb1 =
      std::make_shared<LeakyBucketEnvelope>(units::kbits(5), units::mbps(1));
  const auto lb2 =
      std::make_shared<LeakyBucketEnvelope>(units::kbits(5), units::mbps(1));
  EXPECT_EQ(lb1->fingerprint(), lb2->fingerprint());
  EXPECT_EQ(ZeroEnvelope().fingerprint(), ZeroEnvelope().fingerprint());
}

TEST(FingerprintTest, DifferentParametersDiffer) {
  const auto a =
      std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(20));
  const auto b =
      std::make_shared<PeriodicEnvelope>(units::kbits(10), units::ms(21));
  const auto c =
      std::make_shared<PeriodicEnvelope>(units::kbits(11), units::ms(20));
  EXPECT_NE(a->fingerprint(), b->fingerprint());
  EXPECT_NE(a->fingerprint(), c->fingerprint());
  // A periodic source and a leaky bucket must never collide, even with
  // numerically equal parameters.
  const auto lb = std::make_shared<LeakyBucketEnvelope>(
      units::kbits(10), units::kbits(10) / units::ms(20));
  EXPECT_NE(a->fingerprint(), lb->fingerprint());
}

TEST(FingerprintTest, OperatorsAreStructural) {
  const EnvelopePtr base = dual();
  // Same operand object, same parameters → same fingerprint even across
  // distinct wrapper instances (the re-derivation case in admission probes).
  EXPECT_EQ(shift_envelope(base, units::ms(1))->fingerprint(),
            shift_envelope(base, units::ms(1))->fingerprint());
  EXPECT_NE(shift_envelope(base, units::ms(1))->fingerprint(),
            shift_envelope(base, units::ms(2))->fingerprint());

  const EnvelopePtr other = dual();
  EXPECT_EQ(sum_envelopes({base, other})->fingerprint(),
            sum_envelopes({base, other})->fingerprint());
  // Floating-point addition is order-sensitive, so the sum fingerprint is
  // order-sensitive too.
  EXPECT_NE(
      sum_envelopes({base, shift_envelope(other, units::ms(1))})->fingerprint(),
      sum_envelopes({shift_envelope(other, units::ms(1)), base})->fingerprint());

  EXPECT_EQ(rate_cap(base, units::mbps(10), units::kbits(1))->fingerprint(),
            rate_cap(base, units::mbps(10), units::kbits(1))->fingerprint());
  EXPECT_NE(rate_cap(base, units::mbps(10), units::kbits(1))->fingerprint(),
            rate_cap(base, units::mbps(11), units::kbits(1))->fingerprint());

  EXPECT_EQ(
      quantize_envelope(base, units::kbits(4), units::kbits(5))->fingerprint(),
      quantize_envelope(base, units::kbits(4), units::kbits(5))->fingerprint());
  EXPECT_EQ(scale_envelope(base, 0.5)->fingerprint(),
            scale_envelope(base, 0.5)->fingerprint());
  EXPECT_NE(scale_envelope(base, 0.5)->fingerprint(),
            scale_envelope(base, 0.25)->fingerprint());
}

TEST(FingerprintTest, WrappersAreTransparent) {
  const EnvelopePtr base = dual();
  EXPECT_EQ(cache_envelope(base)->fingerprint(), base->fingerprint());
  EXPECT_EQ(ValidatingEnvelope(base).fingerprint(), base->fingerprint());
}

TEST(CompactionTest, ShiftOfShiftFlattens) {
  const EnvelopePtr base = dual();
  const EnvelopePtr nested =
      shift_envelope(shift_envelope(base, units::ms(2)), units::ms(3));
  // One shift node over the original input, not two.
  EXPECT_EQ(nested->fingerprint(),
            shift_envelope(base, units::ms(2) + units::ms(3))->fingerprint());
  // And the flattened tree still computes the shifted envelope.
  const Seconds combined = units::ms(2) + units::ms(3);
  for (const double ms : {0.0, 1.0, 7.5, 40.0, 250.0}) {
    const Seconds i = units::ms(ms);
    EXPECT_EQ(nested->bits(i).value(), base->bits(i + combined).value());
  }
}

TEST(CompactionTest, RedundantRateCapIsIdentity) {
  const EnvelopePtr base = dual();
  const EnvelopePtr capped = rate_cap(base, units::mbps(10), units::kbits(1));
  // Re-capping at the same (or looser) rate/burst changes nothing — the
  // factory must return the input unchanged (pointer equality), which is
  // what keeps per-hop output chains from deepening across probes.
  EXPECT_EQ(rate_cap(capped, units::mbps(10), units::kbits(1)).get(),
            capped.get());
  EXPECT_EQ(rate_cap(capped, units::mbps(20), units::kbits(2)).get(),
            capped.get());
  // A strictly tighter cap is NOT redundant and must add a node.
  const EnvelopePtr tighter =
      rate_cap(capped, units::mbps(5), units::kbits(1));
  EXPECT_NE(tighter.get(), capped.get());
  EXPECT_LE(tighter->long_term_rate().value(), units::mbps(5).value());
}

TEST(CompactionTest, InstanceFingerprintsAreUnique) {
  // Envelopes without a structural override (e.g. two different computed
  // staircases) must never share a fingerprint by accident: the default is
  // a unique per-instance id.
  class Opaque final : public ArrivalEnvelope {
   public:
    Bits bits(Seconds) const override { return Bits{1.0}; }
    BitsPerSecond long_term_rate() const override { return BitsPerSecond{}; }
    Bits burst_bound() const override { return Bits{1.0}; }
    std::vector<Seconds> breakpoints(Seconds) const override { return {}; }
    std::string describe() const override { return "opaque"; }
  };
  const Opaque a;
  const Opaque b;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), a.fingerprint());
}

}  // namespace
}  // namespace hetnet
