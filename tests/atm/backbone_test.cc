#include "src/atm/backbone.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace hetnet::atm {
namespace {

TEST(CellFormatTest, PayloadCapacity) {
  CellFormat cells;  // 48/53
  EXPECT_NEAR(val(payload_capacity(units::mbps(155), cells)),
              val(units::mbps(155) * 48.0 / 53.0), 1.0);
}

TEST(CellFormatTest, CellTime) {
  CellFormat cells;
  EXPECT_NEAR(val(cell_time(units::mbps(155), cells)), val(424.0 / 155e6), 1e-15);
}

TEST(BackboneTest, MeshHasExpectedPorts) {
  const Backbone bb = make_mesh_backbone(3, LinkParams{});
  // 3 switch-switch links (×2 directions) + 3 access links (×2).
  EXPECT_EQ(bb.num_ports(), 12);
  EXPECT_EQ(bb.num_switches(), 3);
  EXPECT_EQ(bb.num_accesses(), 3);
}

TEST(BackboneTest, RouteBetweenAccessesViaTwoSwitches) {
  const Backbone bb = make_mesh_backbone(3, LinkParams{});
  const auto route = bb.route(0, 2);
  ASSERT_TRUE(route.has_value());
  // ID0 → S0 → S2 → ID2: three sending ports.
  ASSERT_EQ(route->size(), 3u);
  // First hop leaves the interface device: no fabric latency.
  EXPECT_DOUBLE_EQ((*route)[0].fabric.value(), 0.0);
  // Later hops cross a switch.
  EXPECT_DOUBLE_EQ((*route)[1].fabric.value(), val(bb.switch_fabric_delay()));
  EXPECT_DOUBLE_EQ((*route)[2].fabric.value(), val(bb.switch_fabric_delay()));
}

TEST(BackboneTest, RouteIsDeterministic) {
  const Backbone bb = make_mesh_backbone(4, LinkParams{});
  const auto r1 = bb.route(1, 3);
  const auto r2 = bb.route(1, 3);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  ASSERT_EQ(r1->size(), r2->size());
  for (std::size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].port, (*r2)[i].port);
  }
}

TEST(BackboneTest, ReverseRouteUsesDifferentPorts) {
  const Backbone bb = make_mesh_backbone(3, LinkParams{});
  const auto fwd = bb.route(0, 1);
  const auto rev = bb.route(1, 0);
  ASSERT_TRUE(fwd.has_value() && rev.has_value());
  // Directed ports: A→B traffic never queues behind B→A traffic.
  for (const auto& hf : *fwd) {
    for (const auto& hr : *rev) {
      EXPECT_NE(hf.port, hr.port);
    }
  }
}

TEST(BackboneTest, RoutesDoNotTransitOtherAccessPoints) {
  // With only two switches, access 0 → access 1 must go ID0→S0→S1→ID1 and
  // never "through" another interface device.
  Backbone bb(2, CellFormat{});
  bb.connect_switches(0, 1, LinkParams{});
  const AccessId a0 = bb.attach_access(0, LinkParams{});
  const AccessId a1 = bb.attach_access(1, LinkParams{});
  const AccessId a2 = bb.attach_access(0, LinkParams{});  // extra ID
  (void)a2;
  const auto route = bb.route(a0, a1);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 3u);
}

TEST(BackboneTest, DisconnectedAccessesReturnNullopt) {
  Backbone bb(2, CellFormat{});  // two switches, NO link between them
  const AccessId a0 = bb.attach_access(0, LinkParams{});
  const AccessId a1 = bb.attach_access(1, LinkParams{});
  EXPECT_FALSE(bb.route(a0, a1).has_value());
}

TEST(BackboneTest, LineBackboneRoutesAlongTheChain) {
  const Backbone bb = make_line_backbone(4, LinkParams{});
  const auto route = bb.route(0, 3);
  ASSERT_TRUE(route.has_value());
  // ID0 → S0 → S1 → S2 → S3 → ID3.
  EXPECT_EQ(route->size(), 5u);
  const auto adjacent = bb.route(1, 2);
  ASSERT_TRUE(adjacent.has_value());
  EXPECT_EQ(adjacent->size(), 3u);
}

TEST(BackboneTest, PortAccessorsValidateRange) {
  const Backbone bb = make_mesh_backbone(3, LinkParams{});
  EXPECT_THROW(bb.port_link(-1), std::logic_error);
  EXPECT_THROW(bb.port_link(bb.num_ports()), std::logic_error);
}

TEST(BackboneTest, SelfRouteRejected) {
  const Backbone bb = make_mesh_backbone(3, LinkParams{});
  EXPECT_THROW(bb.route(1, 1), std::logic_error);
}

TEST(BackboneTest, ConstructionValidation) {
  EXPECT_THROW(Backbone(0, CellFormat{}), std::logic_error);
  Backbone bb(2, CellFormat{});
  EXPECT_THROW(bb.connect_switches(0, 0, LinkParams{}), std::logic_error);
  EXPECT_THROW(bb.connect_switches(0, 5, LinkParams{}), std::logic_error);
  EXPECT_THROW(bb.attach_access(7, LinkParams{}), std::logic_error);
}

}  // namespace
}  // namespace hetnet::atm
