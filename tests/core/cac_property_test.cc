// Parameterized property suite for the CAC (Section 5.3): the structural
// invariants of the algorithm must hold across β values, workload shapes,
// and network load levels.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/core/cac.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;

struct CacCase {
  std::string name;
  double beta;
  int preload;           // background connections admitted first
  double rho_mbps;       // requesting connection's sustained rate
  double deadline_ms;
};

const CacCase kCases[] = {
    {"beta0_empty", 0.0, 0, 5.0, 80.0},
    {"beta0_loaded", 0.0, 3, 5.0, 80.0},
    {"beta25_loaded", 0.25, 3, 5.0, 80.0},
    {"beta50_empty", 0.5, 0, 5.0, 80.0},
    {"beta50_loaded", 0.5, 3, 5.0, 80.0},
    {"beta50_tight", 0.5, 2, 5.0, 45.0},
    {"beta75_loaded", 0.75, 3, 5.0, 80.0},
    {"beta100_empty", 1.0, 0, 5.0, 80.0},
    {"beta100_loaded", 1.0, 3, 5.0, 80.0},
    {"small_flow", 0.5, 3, 0.5, 60.0},
    {"big_flow", 0.5, 1, 20.0, 100.0},
};

EnvelopePtr flow_source(double rho_mbps) {
  const Bits c1 = units::mbps(rho_mbps) * units::ms(100);
  return std::make_shared<DualPeriodicEnvelope>(c1, units::ms(100), c1 / 10.0,
                                                units::ms(10));
}

class CacPropertyTest : public ::testing::TestWithParam<CacCase> {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<net::AbhnTopology>(net::paper_topology_params());
    CacConfig config;
    config.beta = GetParam().beta;
    cac_ = std::make_unique<AdmissionController>(topo_.get(), config);
    for (int i = 0; i < GetParam().preload; ++i) {
      auto bg = make_spec(static_cast<net::ConnectionId>(100 + i),
                          {0, i + 1}, {1, i + 1}, flow_source(5.0),
                          units::ms(80));
      cac_->request(bg);
    }
    spec_ = make_spec(1, {0, 0}, {1, 0}, flow_source(GetParam().rho_mbps),
                      units::ms(GetParam().deadline_ms));
    decision_ = cac_->request(spec_);
  }

  std::unique_ptr<net::AbhnTopology> topo_;
  std::unique_ptr<AdmissionController> cac_;
  net::ConnectionSpec spec_;
  AdmissionDecision decision_;
};

TEST_P(CacPropertyTest, AdmittedImpliesDeadlineMet) {
  if (!decision_.admitted) GTEST_SKIP() << "rejected in this scenario";
  EXPECT_TRUE(isfinite(decision_.worst_case_delay));
  EXPECT_LE(decision_.worst_case_delay, spec_.deadline * (1 + 1e-9));
}

TEST_P(CacPropertyTest, AnchorsOrderedOnTheLine) {
  if (!decision_.admitted) GTEST_SKIP() << "rejected in this scenario";
  const Seconds tol{1e-12};
  EXPECT_LE(decision_.min_need.h_s, decision_.max_need.h_s + tol);
  EXPECT_LE(decision_.max_need.h_s, decision_.max_avail.h_s + tol);
  EXPECT_LE(decision_.min_need.h_r, decision_.max_need.h_r + tol);
  EXPECT_LE(decision_.max_need.h_r, decision_.max_avail.h_r + tol);
  EXPECT_LE(decision_.alloc.h_s, decision_.max_avail.h_s + tol);
  EXPECT_GE(decision_.alloc.h_s, decision_.min_need.h_s - tol);
}

TEST_P(CacPropertyTest, BetaInterpolationRespected) {
  if (!decision_.admitted) GTEST_SKIP() << "rejected in this scenario";
  // eq. (35): H_S = min_need + β (max_need − min_need), up to the fallback
  // the controller may take at bisection resolution.
  const Seconds expected =
      decision_.min_need.h_s +
      GetParam().beta * (decision_.max_need.h_s - decision_.min_need.h_s);
  EXPECT_NEAR(val(decision_.alloc.h_s), val(expected),
              0.05 * val(decision_.max_avail.h_s) + 1e-9);
}

TEST_P(CacPropertyTest, LedgersMatchActiveSet) {
  std::vector<Seconds> per_ring(static_cast<std::size_t>(topo_->num_rings()));
  for (const auto& [id, conn] : cac_->active()) {
    per_ring[static_cast<std::size_t>(conn.spec.src.ring)] += conn.alloc.h_s;
    per_ring[static_cast<std::size_t>(conn.spec.dst.ring)] += conn.alloc.h_r;
  }
  for (int r = 0; r < topo_->num_rings(); ++r) {
    EXPECT_NEAR(val(cac_->ledger(r).allocated()),
                val(per_ring[static_cast<std::size_t>(r)]), 1e-12)
        << "ring " << r;
    EXPECT_LE(cac_->ledger(r).allocated(),
              cac_->ledger(r).capacity() * (1 + 1e-9));
  }
}

TEST_P(CacPropertyTest, WholeActiveSetStillFeasible) {
  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : cac_->active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  if (set.empty()) GTEST_SKIP() << "nothing admitted";
  const auto delays = cac_->analyzer().analyze(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(isfinite(delays[i])) << "connection " << i;
    EXPECT_LE(delays[i], set[i].spec.deadline * (1 + 1e-9))
        << "connection " << i;
  }
}

TEST_P(CacPropertyTest, ReleaseRestoresLedgersExactly) {
  std::vector<net::ConnectionId> ids;
  for (const auto& [id, conn] : cac_->active()) ids.push_back(id);
  for (net::ConnectionId id : ids) cac_->release(id);
  for (int r = 0; r < topo_->num_rings(); ++r) {
    EXPECT_NEAR(val(cac_->ledger(r).allocated()), 0.0, 1e-12);
    EXPECT_EQ(cac_->ledger(r).reservations(), 0u);
  }
  EXPECT_EQ(cac_->active_count(), 0u);
}

TEST_P(CacPropertyTest, DecisionIsDeterministic) {
  // A second controller given the identical request sequence decides
  // identically (the analysis has no hidden randomness).
  CacConfig config;
  config.beta = GetParam().beta;
  AdmissionController other(topo_.get(), config);
  for (int i = 0; i < GetParam().preload; ++i) {
    auto bg = make_spec(static_cast<net::ConnectionId>(100 + i), {0, i + 1},
                        {1, i + 1}, flow_source(5.0), units::ms(80));
    other.request(bg);
  }
  const auto repeat = other.request(spec_);
  EXPECT_EQ(repeat.admitted, decision_.admitted);
  if (repeat.admitted) {
    EXPECT_DOUBLE_EQ(val(repeat.alloc.h_s), val(decision_.alloc.h_s));
    EXPECT_DOUBLE_EQ(val(repeat.alloc.h_r), val(decision_.alloc.h_r));
    EXPECT_DOUBLE_EQ(val(repeat.worst_case_delay),
                     val(decision_.worst_case_delay));
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CacPropertyTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace hetnet::core
