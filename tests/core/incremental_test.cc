// Soundness of the incremental admission-analysis engine: under randomized
// admit/release churn, an incremental controller (prefix cache + session
// memo) must make BIT-IDENTICAL decisions — allocations, delay bounds, line
// anchors — to a cold controller that recomputes everything from scratch,
// including after release() invalidation. The memo layer is a pure cache;
// any divergence, however small, is a correctness bug.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/cac.h"
#include "src/traffic/sources.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

CacConfig config_with(bool incremental) {
  CacConfig config;
  config.beta = 0.5;
  config.incremental = incremental;
  return config;
}

void expect_decisions_identical(const AdmissionDecision& inc,
                                const AdmissionDecision& cold) {
  EXPECT_EQ(inc.admitted, cold.admitted);
  EXPECT_EQ(inc.reason, cold.reason);
  // Exact floating-point equality on purpose: the incremental engine
  // promises bit-identical results, not approximately equal ones.
  EXPECT_EQ(inc.alloc.h_s.value(), cold.alloc.h_s.value());
  EXPECT_EQ(inc.alloc.h_r.value(), cold.alloc.h_r.value());
  EXPECT_EQ(inc.worst_case_delay.value(), cold.worst_case_delay.value());
  EXPECT_EQ(inc.max_avail.h_s.value(), cold.max_avail.h_s.value());
  EXPECT_EQ(inc.max_avail.h_r.value(), cold.max_avail.h_r.value());
  EXPECT_EQ(inc.min_need.h_s.value(), cold.min_need.h_s.value());
  EXPECT_EQ(inc.min_need.h_r.value(), cold.min_need.h_r.value());
  EXPECT_EQ(inc.max_need.h_s.value(), cold.max_need.h_s.value());
  EXPECT_EQ(inc.max_need.h_r.value(), cold.max_need.h_r.value());
}

// Every active connection's delay under both engines, via a joint analysis
// of the full active set (which the two controllers must agree on exactly).
void expect_active_sets_identical(const AdmissionController& inc,
                                  const AdmissionController& cold) {
  ASSERT_EQ(inc.active_count(), cold.active_count());
  std::vector<ConnectionInstance> inc_set;
  std::vector<ConnectionInstance> cold_set;
  for (const auto& [id, conn] : inc.active()) {
    inc_set.push_back({conn.spec, conn.alloc});
  }
  for (const auto& [id, conn] : cold.active()) {
    cold_set.push_back({conn.spec, conn.alloc});
  }
  const auto inc_delays = inc.analyzer().analyze(inc_set);
  const auto cold_delays = cold.analyzer().analyze(cold_set);
  ASSERT_EQ(inc_delays.size(), cold_delays.size());
  for (std::size_t i = 0; i < inc_delays.size(); ++i) {
    EXPECT_EQ(inc_delays[i].value(), cold_delays[i].value());
  }
}

class IncrementalChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalChurnTest, DecisionsBitIdenticalToColdRecompute) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController inc(&topo, config_with(true));
  AdmissionController cold(&topo, config_with(false));
  Rng rng(GetParam());

  std::vector<net::ConnectionId> live;
  net::ConnectionId next_id = 1;
  int admitted = 0;

  for (int step = 0; step < 60; ++step) {
    const bool do_release = !live.empty() && rng.bernoulli(0.35);
    if (do_release) {
      const std::size_t k = rng.pick(live.size());
      inc.release(live[k]);
      cold.release(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const net::HostId src = topo.host_at(
          static_cast<int>(rng.pick(static_cast<std::size_t>(
              topo.num_hosts()))));
      net::HostId dst;
      if (rng.bernoulli(0.2)) {  // intra-ring: the 1-D search path
        dst = {src.ring, (src.index + 1 + static_cast<int>(rng.pick(3))) % 4};
      } else {
        dst = {(src.ring + 1 + static_cast<int>(rng.pick(2))) % 3,
               static_cast<int>(rng.pick(4))};
      }
      const EnvelopePtr source =
          rng.bernoulli(0.5) ? video_source() : sensor_source();
      const Seconds deadline =
          rng.bernoulli(0.5) ? units::ms(80) : units::ms(40);
      const auto spec = make_spec(next_id, src, dst, source, deadline);
      const auto d_inc = inc.request(spec);
      const auto d_cold = cold.request(spec);
      expect_decisions_identical(d_inc, d_cold);
      if (d_inc.admitted) {
        live.push_back(next_id);
        ++admitted;
      }
      ++next_id;
    }
    if (HasFailure()) break;  // one divergence is enough to diagnose
  }
  expect_active_sets_identical(inc, cold);
  // The workload must actually exercise the engine (admissions AND at least
  // one release-triggered invalidation).
  EXPECT_GT(admitted, 5);
  // And the incremental engine must actually be reusing work.
  EXPECT_GT(inc.session_stats().port_hits, 0u);
  EXPECT_GT(inc.session_stats().suffix_hits, 0u);
  EXPECT_EQ(cold.session_stats().port_hits + cold.session_stats().port_evals,
            0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurnTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(IncrementalTest, SessionCompleteMatchesColdAnalyze) {
  const net::AbhnTopology topo(net::paper_topology_params());
  const DelayAnalyzer analyzer(&topo);

  std::vector<ConnectionInstance> set;
  for (int i = 0; i < 6; ++i) {
    const net::HostId src{i % 3, i % 4};
    const net::HostId dst{(i + 1) % 3, (i + 2) % 4};
    auto spec = make_spec(static_cast<net::ConnectionId>(i + 1), src, dst,
                          i % 2 == 0 ? video_source() : sensor_source(),
                          units::ms(80));
    set.push_back({spec, {units::us(400), units::us(400)}});
  }

  const auto cold = analyzer.analyze(set);

  std::vector<SendPrefix> prefixes;
  for (const auto& inst : set) {
    prefixes.push_back(analyzer.send_prefix(inst.spec, inst.alloc.h_s));
  }
  AnalysisSession session;
  const auto first = analyzer.complete(set, prefixes, &session);
  const auto second = analyzer.complete(set, prefixes, &session);
  ASSERT_EQ(first.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(first[i].value(), cold[i].value()) << "connection " << i;
    EXPECT_EQ(second[i].value(), cold[i].value()) << "connection " << i;
  }
  // The second pass must have been served entirely from the memo.
  EXPECT_GT(session.stats().port_hits, 0u);
  EXPECT_GT(session.stats().suffix_hits, 0u);
  EXPECT_EQ(session.stats().port_evals * 2,
            session.stats().port_evals + session.stats().port_hits);
}

TEST(IncrementalTest, ReleaseInvalidatesPrefixCache) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController inc(&topo, config_with(true));
  AdmissionController cold(&topo, config_with(false));

  const auto a = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  const auto b = make_spec(2, {1, 1}, {2, 1}, video_source(), units::ms(80));
  const auto c = make_spec(3, {2, 2}, {0, 2}, video_source(), units::ms(80));
  for (const auto& spec : {a, b, c}) {
    expect_decisions_identical(inc.request(spec), cold.request(spec));
  }
  inc.release(2);
  cold.release(2);
  // Re-admitting the same id after release must again match the cold
  // engine exactly — a stale prefix or port bound would diverge here.
  const auto b2 = make_spec(2, {1, 1}, {2, 1}, sensor_source(), units::ms(40));
  expect_decisions_identical(inc.request(b2), cold.request(b2));
  expect_active_sets_identical(inc, cold);
}

TEST(IncrementalTest, FeasibleAtAndDelayAtMatchCold) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController inc(&topo, config_with(true));
  AdmissionController cold(&topo, config_with(false));
  for (int i = 0; i < 4; ++i) {
    const auto spec =
        make_spec(static_cast<net::ConnectionId>(i + 1), {i % 3, i % 4},
                  {(i + 1) % 3, i % 4}, video_source(), units::ms(80));
    expect_decisions_identical(inc.request(spec), cold.request(spec));
  }
  const auto probe = make_spec(99, {0, 3}, {2, 3}, video_source(),
                               units::ms(80));
  for (const double us : {50.0, 200.0, 800.0, 3000.0}) {
    const net::Allocation alloc{units::us(us), units::us(us)};
    EXPECT_EQ(inc.feasible_at(probe, alloc), cold.feasible_at(probe, alloc));
    EXPECT_EQ(inc.delay_at(probe, alloc).value(),
              cold.delay_at(probe, alloc).value());
  }
}

}  // namespace
}  // namespace hetnet::core
