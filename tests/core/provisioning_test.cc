#include "src/core/provisioning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::video_source;

class ProvisioningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<net::AbhnTopology>(net::paper_topology_params());
    cac_ = std::make_unique<AdmissionController>(topo_.get(), CacConfig{});
    for (int i = 0; i < 4; ++i) {
      auto spec = make_spec(static_cast<net::ConnectionId>(i + 1),
                            {i % 3, i % 4}, {(i + 1) % 3, i % 4},
                            video_source(), units::ms(120));
      ASSERT_TRUE(cac_->request(spec).admitted) << i;
    }
  }

  std::unique_ptr<net::AbhnTopology> topo_;
  std::unique_ptr<AdmissionController> cac_;
};

TEST_F(ProvisioningTest, RingRowsMatchLedgers) {
  const auto report = provisioning_report(*cac_);
  ASSERT_EQ(report.rings.size(), 3u);
  for (const auto& ring : report.rings) {
    EXPECT_DOUBLE_EQ(ring.allocated.value(),
                     val(cac_->ledger(ring.ring).allocated()));
    EXPECT_DOUBLE_EQ(ring.capacity.value(),
                     val(cac_->ledger(ring.ring).capacity()));
    EXPECT_LE(ring.allocated, ring.capacity * (1 + 1e-9));
  }
}

TEST_F(ProvisioningTest, PortsCoverEveryRouteHop) {
  const auto report = provisioning_report(*cac_);
  // 4 connections on distinct ring pairs: each uses 3 ports; overlaps
  // possible, but at least 3 distinct ports must appear and every port row
  // must carry at least one flow and a positive buffer.
  EXPECT_GE(report.ports.size(), 3u);
  int total_flow_slots = 0;
  for (const auto& port : report.ports) {
    EXPECT_GE(port.flows, 1);
    // A lone smooth flow through a fast port can legitimately need no
    // buffer; the bound must simply be well-defined and non-negative.
    EXPECT_GE(port.buffer_required, 0.0);
    EXPECT_GE(port.delay_bound, 0.0);
    total_flow_slots += port.flows;
  }
  // Each of the 4 connections crosses exactly 3 ports.
  EXPECT_EQ(total_flow_slots, 12);
}

TEST_F(ProvisioningTest, ConnectionRowsAreWithinContracts) {
  const auto report = provisioning_report(*cac_);
  ASSERT_EQ(report.connections.size(), 4u);
  for (const auto& conn : report.connections) {
    EXPECT_TRUE(isfinite(conn.worst_case_delay));
    EXPECT_LE(conn.worst_case_delay, conn.deadline * (1 + 1e-9));
    EXPECT_GT(conn.private_buffers, 0.0);
  }
}

TEST_F(ProvisioningTest, RenderingContainsAllSections) {
  const auto report = provisioning_report(*cac_);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("synchronous bandwidth"), std::string::npos);
  EXPECT_NE(text.find("ATM output ports"), std::string::npos);
  EXPECT_NE(text.find("connections:"), std::string::npos);
}

TEST(ProvisioningEmptyTest, EmptyControllerYieldsEmptySections) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto report = provisioning_report(cac);
  EXPECT_EQ(report.rings.size(), 3u);
  EXPECT_TRUE(report.ports.empty());
  EXPECT_TRUE(report.connections.empty());
}

}  // namespace
}  // namespace hetnet::core
