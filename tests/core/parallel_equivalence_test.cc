// PR-4 determinism contract: the parallel admission engine
// (AnalysisConfig::threads — wave-parallel joint analysis, parallel
// prefix/suffix fan-out, speculative bisection batching) must produce
// BIT-IDENTICAL AdmissionDecisions to the serial engine at every thread
// count. Exercised two ways:
//
//   * directed: a hand-built paper-topology churn sequence, replayed at
//     1/2/8 threads, every decision field compared with exact double
//     equality (and the joint delay vectors of the final set compared
//     elementwise);
//   * differential: a sweep of fuzz scenarios (the same generator the
//     soundness fuzzer uses) through the parallel_equivalence oracle,
//     which replays each scenario at 2 and 8 threads against serial.
//
// 2 threads exercises the fork/join machinery without speculation
// (2^d−1 ≤ 2 ⇒ depth 1, below the speculation cutoff); 8 threads adds
// depth-3 speculative probe batching with session overlays.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/core/analyzer.h"
#include "src/core/cac.h"
#include "src/testing/fuzz/oracles.h"
#include "src/testing/fuzz/scenario.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::core {
namespace {

net::ConnectionSpec spec_for(net::ConnectionId id, int src_ring, int src_host,
                             int dst_ring, int dst_host) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = {src_ring, src_host};
  spec.dst = {dst_ring, dst_host};
  spec.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(40), units::ms(100), units::kbits(4), units::ms(10));
  spec.deadline = units::ms(80);
  return spec;
}

CacConfig config_with_threads(int threads) {
  CacConfig cfg;
  cfg.beta = 0.3;
  cfg.analysis.threads = threads;
  return cfg;
}

// Admit a mix of inter- and intra-ring connections with interleaved
// releases; returns every decision the controller produced.
std::vector<AdmissionDecision> run_churn(AdmissionController& cac) {
  std::vector<AdmissionDecision> decisions;
  net::ConnectionId next_id = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      const int src_ring = i % 3;
      const int dst_ring = (src_ring + 1 + round) % 3;
      decisions.push_back(cac.request(spec_for(
          next_id++, src_ring, i % 4, dst_ring, (i + 1) % 4)));
    }
    // Release the first admitted connection of the round to churn the
    // prefix cache and the session memo.
    const net::ConnectionId victim =
        static_cast<net::ConnectionId>(round * 4 + 1);
    if (cac.active().contains(victim)) cac.release(victim);
  }
  return decisions;
}

void expect_identical(const AdmissionDecision& a, const AdmissionDecision& b,
                      int threads, std::size_t op) {
  const std::string where =
      "op " + std::to_string(op) + " at " + std::to_string(threads) +
      " threads";
  EXPECT_EQ(a.admitted, b.admitted) << where;
  EXPECT_EQ(a.reason, b.reason) << where;
  EXPECT_EQ(val(a.alloc.h_s), val(b.alloc.h_s)) << where;
  EXPECT_EQ(val(a.alloc.h_r), val(b.alloc.h_r)) << where;
  if (a.admitted && b.admitted) {
    EXPECT_EQ(val(a.worst_case_delay), val(b.worst_case_delay)) << where;
  }
  EXPECT_EQ(val(a.max_avail.h_s), val(b.max_avail.h_s)) << where;
  EXPECT_EQ(val(a.max_avail.h_r), val(b.max_avail.h_r)) << where;
  EXPECT_EQ(val(a.min_need.h_s), val(b.min_need.h_s)) << where;
  EXPECT_EQ(val(a.min_need.h_r), val(b.min_need.h_r)) << where;
  EXPECT_EQ(val(a.max_need.h_s), val(b.max_need.h_s)) << where;
  EXPECT_EQ(val(a.max_need.h_r), val(b.max_need.h_r)) << where;
}

TEST(ParallelEquivalence, ChurnDecisionsBitIdenticalAcrossThreadCounts) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController serial(&topo, config_with_threads(1));
  const std::vector<AdmissionDecision> ref = run_churn(serial);

  for (const int threads : {2, 8}) {
    AdmissionController par(&topo, config_with_threads(threads));
    const std::vector<AdmissionDecision> got = run_churn(par);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_identical(ref[i], got[i], threads, i);
    }
    // The surviving sets (and therefore the ledgers) must agree too.
    ASSERT_EQ(serial.active_count(), par.active_count());
    for (int ring = 0; ring < topo.num_rings(); ++ring) {
      EXPECT_EQ(val(serial.ledger(ring).allocated()),
                val(par.ledger(ring).allocated()))
          << "ring " << ring << " at " << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, JointDelayVectorsBitIdenticalAcrossThreadCounts) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController serial(&topo, config_with_threads(1));
  run_churn(serial);
  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : serial.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  ASSERT_FALSE(set.empty());

  AnalysisConfig serial_cfg;
  const DelayAnalyzer ref_analyzer(&topo, serial_cfg);
  const std::vector<Seconds> ref = ref_analyzer.analyze(set);
  for (const int threads : {2, 8}) {
    AnalysisConfig cfg;
    cfg.threads = threads;
    const DelayAnalyzer par(&topo, cfg);
    const std::vector<Seconds> got = par.analyze(set);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (std::isinf(val(ref[i]))) {
        EXPECT_TRUE(std::isinf(val(got[i])))
            << "conn " << i << " at " << threads << " threads";
      } else {
        EXPECT_EQ(val(ref[i]), val(got[i]))
            << "conn " << i << " at " << threads << " threads";
      }
    }
  }
}

// Differential sweep: the same check the fuzzer's parallel oracle runs,
// over a deterministic band of generated scenarios (admits, releases,
// intra-ring requests, varied β/TTRT/topologies).
TEST(ParallelEquivalence, FuzzScenarioSweepMatchesSerial) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fuzz::FuzzScenario scenario = fuzz::generate_scenario(seed);
    const fuzz::OracleResult verdict =
        fuzz::check_parallel_equivalence(scenario);
    EXPECT_TRUE(verdict.ok)
        << "seed " << seed << ": " << verdict.detail << "\n"
        << fuzz::describe_scenario(scenario);
  }
}

}  // namespace
}  // namespace hetnet::core
