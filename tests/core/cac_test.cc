#include "src/core/cac.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

CacConfig default_config(double beta = 0.5) {
  CacConfig cfg;
  cfg.beta = beta;
  return cfg;
}

TEST(AdmissionControllerTest, AdmitsAFeasibleConnection) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config());
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  const auto decision = cac.request(spec);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(decision.reason, RejectReason::kNone);
  EXPECT_LE(decision.worst_case_delay, spec.deadline);
  EXPECT_GT(decision.alloc.h_s, 0.0);
  EXPECT_GT(decision.alloc.h_r, 0.0);
  EXPECT_EQ(cac.active_count(), 1u);
  // The ledgers reflect the grant.
  EXPECT_DOUBLE_EQ(val(cac.ledger(0).allocated()), val(decision.alloc.h_s));
  EXPECT_DOUBLE_EQ(val(cac.ledger(1).allocated()), val(decision.alloc.h_r));
}

TEST(AdmissionControllerTest, AnchorsAreOrderedAlongTheLine) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config(0.5));
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  const auto d = cac.request(spec);
  ASSERT_TRUE(d.admitted);
  // min_need <= alloc <= max_need <= max_avail, componentwise.
  const Seconds tol{1e-12};
  EXPECT_LE(d.min_need.h_s, d.alloc.h_s + tol);
  EXPECT_LE(d.alloc.h_s, d.max_need.h_s + tol);
  EXPECT_LE(d.max_need.h_s, d.max_avail.h_s + tol);
  EXPECT_LE(d.min_need.h_r, d.alloc.h_r + tol);
  EXPECT_LE(d.alloc.h_r, d.max_need.h_r + tol);
  EXPECT_LE(d.max_need.h_r, d.max_avail.h_r + tol);
}

TEST(AdmissionControllerTest, ProportionalRuleHoldsOnTheLine) {
  // Rule 2 (Section 5.3): H_S : H_R follows the max-available ratio (up to
  // the H^min_abs offset of the search segment).
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config(0.5));
  // Preload ring 1 so its available bandwidth differs from ring 0's.
  const auto preload =
      make_spec(1, {1, 0}, {2, 0}, video_source(), units::ms(150));
  ASSERT_TRUE(cac.request(preload).admitted);
  const auto spec =
      make_spec(2, {0, 0}, {1, 1}, video_source(), units::ms(150));
  const auto d = cac.request(spec);
  ASSERT_TRUE(d.admitted);
  const Seconds h_min = cac.config().h_min_abs;
  const double lambda_s =
      (d.alloc.h_s - h_min) / (d.max_avail.h_s - h_min);
  const double lambda_r =
      (d.alloc.h_r - h_min) / (d.max_avail.h_r - h_min);
  EXPECT_NEAR(lambda_s, lambda_r, 1e-9);
}

TEST(AdmissionControllerTest, BetaOrdersAllocations) {
  const auto topo = paper_topology();
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  Seconds prev_h_s{-1.0};
  for (double beta : {0.0, 0.5, 1.0}) {
    AdmissionController cac(&topo, default_config(beta));
    const auto d = cac.request(spec);
    ASSERT_TRUE(d.admitted) << "beta=" << beta;
    EXPECT_GE(d.alloc.h_s, prev_h_s - Seconds{1e-12}) << "beta=" << beta;
    prev_h_s = d.alloc.h_s;
  }
}

TEST(AdmissionControllerTest, ImpossibleDeadlineRejected) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config());
  // 1 ms is below even the 2×(2·TTRT) MAC floor.
  const auto spec = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(1));
  const auto d = cac.request(spec);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kInfeasible);
  EXPECT_EQ(cac.active_count(), 0u);
  // Nothing leaked into the ledgers.
  EXPECT_DOUBLE_EQ(val(cac.ledger(0).allocated()), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(1).allocated()), 0.0);
}

TEST(AdmissionControllerTest, ReleaseReturnsBandwidth) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config());
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  ASSERT_TRUE(cac.request(spec).admitted);
  cac.release(1);
  EXPECT_EQ(cac.active_count(), 0u);
  EXPECT_DOUBLE_EQ(val(cac.ledger(0).allocated()), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(1).allocated()), 0.0);
  EXPECT_THROW(cac.release(1), std::logic_error);
}

TEST(AdmissionControllerTest, ExistingConnectionsProtected) {
  // Admit one connection with a deadline close to its bound, then load the
  // shared ports until admission fails — the existing contract must never
  // be broken (checked by construction: the controller re-verifies eq. 24
  // on every request; here we verify admissions eventually stop).
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config(0.0));  // tightest delays
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    const auto spec = make_spec(static_cast<net::ConnectionId>(i + 1),
                                {0, i}, {1, i}, video_source(),
                                units::ms(45));
    if (cac.request(spec).admitted) ++admitted;
  }
  EXPECT_GE(admitted, 1);
  EXPECT_LT(admitted, 4);
  // Whatever was admitted still meets its deadline under the final state.
  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  const auto delays = cac.analyzer().analyze(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(isfinite(delays[i]));
    EXPECT_LE(delays[i], set[i].spec.deadline * (1 + 1e-9));
  }
}

TEST(AdmissionControllerTest, RingExhaustionRejects) {
  const auto topo = paper_topology();
  CacConfig cfg = default_config();
  AdmissionController cac(&topo, cfg);
  // Grab nearly all of ring 0's synchronous bandwidth with β = max-avail
  // strawman connections.
  CacConfig greedy = cfg;
  greedy.rule = AllocationRule::kMaximumAvailable;
  AdmissionController hog(&topo, greedy);
  const auto big =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  ASSERT_TRUE(hog.request(big).admitted);
  // Ring 0 (and ring 1) are now fully allocated.
  EXPECT_NEAR(val(hog.ledger(0).available()), 0.0, 1e-9);
  const auto next =
      make_spec(2, {0, 1}, {1, 1}, sensor_source(), units::ms(150));
  const auto d = hog.request(next);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kNoSyncBandwidth);
}

TEST(AdmissionControllerTest, FeasibleAtMatchesDecisionBoundary) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config());
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  // Generous allocation: feasible; tiny: not.
  EXPECT_TRUE(cac.feasible_at(spec, {units::ms(4), units::ms(4)}));
  EXPECT_FALSE(cac.feasible_at(spec, {units::us(30), units::us(30)}));
  // delay_at agrees with the feasibility verdicts.
  EXPECT_LE(cac.delay_at(spec, {units::ms(4), units::ms(4)}), spec.deadline);
  EXPECT_GT(cac.delay_at(spec, {units::us(30), units::us(30)}),
            spec.deadline);
}

TEST(AdmissionControllerTest, AdmittedDelayIsMonotoneInBeta) {
  // Larger β → more bandwidth → the admitted connection's own bound is no
  // worse.
  const auto topo = paper_topology();
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(80));
  Seconds prev{1e9};
  for (double beta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    AdmissionController cac(&topo, default_config(beta));
    const auto d = cac.request(spec);
    ASSERT_TRUE(d.admitted);
    EXPECT_LE(d.worst_case_delay, prev * (1 + 1e-9)) << "beta=" << beta;
    prev = d.worst_case_delay;
  }
}

TEST(AdmissionControllerTest, DuplicateIdRejected) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, default_config());
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(150));
  ASSERT_TRUE(cac.request(spec).admitted);
  EXPECT_THROW(cac.request(spec), std::logic_error);
}

TEST(AdmissionControllerTest, ConfigValidation) {
  const auto topo = paper_topology();
  CacConfig cfg;
  cfg.beta = 1.5;
  EXPECT_THROW(AdmissionController(&topo, cfg), std::logic_error);
  cfg = CacConfig{};
  cfg.h_min_abs = Seconds{};
  EXPECT_THROW(AdmissionController(&topo, cfg), std::logic_error);
}

}  // namespace
}  // namespace hetnet::core
