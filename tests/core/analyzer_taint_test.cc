// Unbounded-connection semantics of the joint analyzer: when a shared port
// has no finite bound, everything through it must report +infinity — an
// optimistic number for ANY coupled connection could let the CAC admit a
// violating configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;

EnvelopePtr heavy_source() {
  // ρ = 40 Mb/s: stable at a MAC with H = 3.4 ms (service ≈ 42 Mb/s), but
  // four of these through one 140 Mb/s payload port overbook it.
  return std::make_shared<DualPeriodicEnvelope>(
      units::mbits(4), units::ms(100), units::kbits(400), units::ms(10));
}

TEST(AnalyzerTaintTest, OverbookedPortPoisonsEveryFlowThroughIt) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  // Two from ring 0 and two from ring 1, all into ring 2: the S→ID_2
  // downlink carries 4 × 40 = 160 Mb/s > 140 Mb/s payload capacity.
  std::vector<ConnectionInstance> set;
  const net::Allocation alloc{units::ms(3.4), units::ms(1.0)};
  set.push_back({make_spec(1, {0, 0}, {2, 0}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(2, {0, 1}, {2, 1}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(3, {1, 0}, {2, 2}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(4, {1, 1}, {2, 3}, heavy_source(), Seconds{1.0}), alloc});
  const auto delays = analyzer.analyze(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(delays[i], kUnbounded) << "connection " << i;
  }
}

TEST(AnalyzerTaintTest, UncoupledConnectionSurvivesOthersOverbooking) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  std::vector<ConnectionInstance> set;
  const net::Allocation heavy_alloc{units::ms(3.4), units::ms(1.0)};
  set.push_back(
      {make_spec(1, {0, 0}, {2, 0}, heavy_source(), Seconds{1.0}), heavy_alloc});
  set.push_back(
      {make_spec(2, {0, 1}, {2, 1}, heavy_source(), Seconds{1.0}), heavy_alloc});
  set.push_back(
      {make_spec(3, {1, 0}, {2, 2}, heavy_source(), Seconds{1.0}), heavy_alloc});
  set.push_back(
      {make_spec(4, {1, 1}, {2, 3}, heavy_source(), Seconds{1.0}), heavy_alloc});
  // Reverse direction (2 → 0): disjoint directed ports.
  set.push_back({make_spec(5, {2, 0}, {0, 0},
                           hetnet::testing::sensor_source(), Seconds{1.0}),
                 {units::ms(1), units::ms(1)}});
  const auto delays = analyzer.analyze(set);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(delays[i], kUnbounded);
  EXPECT_TRUE(isfinite(delays[4]));
}

TEST(AnalyzerTaintTest, PortReportsOmitUnboundedPorts) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  std::vector<ConnectionInstance> set;
  const net::Allocation alloc{units::ms(3.4), units::ms(1.0)};
  set.push_back({make_spec(1, {0, 0}, {2, 0}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(2, {0, 1}, {2, 1}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(3, {1, 0}, {2, 2}, heavy_source(), Seconds{1.0}), alloc});
  set.push_back({make_spec(4, {1, 1}, {2, 3}, heavy_source(), Seconds{1.0}), alloc});
  const auto ports = analyzer.port_reports(set);
  // The uplink ports (two flows each, 80 Mb/s) are bounded; the shared
  // downlink is overbooked and must be absent.
  for (const auto& [port, report] : ports) {
    EXPECT_LE(report.flows, 2) << "the 4-flow downlink must not be reported";
  }
}

TEST(AnalyzerTaintTest, PrefixFailureIsLocal) {
  // An unallocated (zero H_S) connection reports unbounded, while a
  // well-allocated connection sharing its would-be ports is analyzed
  // normally — by the time CAC acts, the infinite entry rejects the
  // configuration anyway (documented contract).
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  std::vector<ConnectionInstance> set;
  set.push_back({make_spec(1, {0, 0}, {1, 0},
                           hetnet::testing::video_source(), Seconds{1.0}),
                 {Seconds{}, units::ms(1)}});
  set.push_back({make_spec(2, {0, 1}, {1, 1},
                           hetnet::testing::video_source(), Seconds{1.0}),
                 {units::ms(2), units::ms(2)}});
  const auto delays = analyzer.analyze(set);
  EXPECT_EQ(delays[0], kUnbounded);
  EXPECT_TRUE(isfinite(delays[1]));
}

}  // namespace
}  // namespace hetnet::core
