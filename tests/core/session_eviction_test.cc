// Generational (hot/cold) eviction regression tests — the admissiond
// latency-cliff fix. SegmentedMap must keep the promoted hot working set
// across a rotation (dropping only the untouched cold half), and a
// capacity-starved AnalysisSession must change only COST, never a single
// decision bit (equal key ⇒ bit-identical value; see src/core/session.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/core/session.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

TEST(SegmentedMapTest, LookupPromotesColdEntriesAcrossRotation) {
  SegmentedMap<int, std::string> map;
  map.emplace(1, "hot-worker");
  map.emplace(2, "one-shot");
  map.emplace(3, "overflow");
  // First rotation: everything demotes to cold (nothing evicted — the old
  // cold generation was empty).
  EXPECT_EQ(map.rotate_if_above(2), 0u);
  // Touch only the working-set key; it is promoted back into hot.
  EXPECT_NE(map.lookup(1), nullptr);
  map.emplace(4, "fresh");
  map.emplace(5, "fresh");
  // Second rotation: the untouched cold survivors (2 and 3) are dropped,
  // the promoted entry lives on.
  EXPECT_EQ(map.rotate_if_above(2), 2u);
  EXPECT_TRUE(map.contains(1));
  EXPECT_FALSE(map.contains(2));
  EXPECT_FALSE(map.contains(3));
  EXPECT_TRUE(map.contains(4));
}

TEST(SegmentedMapTest, PeekNeverPromotes) {
  SegmentedMap<int, int> map;
  map.emplace(7, 70);
  EXPECT_EQ(map.rotate_if_above(0), 0u);  // 7 now cold
  EXPECT_NE(map.peek(7), nullptr);        // read-only: stays cold
  map.emplace(8, 80);
  EXPECT_EQ(map.rotate_if_above(0), 1u);  // cold generation (7) dropped
  EXPECT_FALSE(map.contains(7));
  EXPECT_TRUE(map.contains(8));
}

TEST(SegmentedMapTest, PromotionKeepsElementAddressStable) {
  SegmentedMap<int, int> map;
  int* before = &map.emplace(42, 420);
  EXPECT_EQ(map.rotate_if_above(0), 0u);  // demote to cold
  int* after = map.lookup(42);            // promote back to hot
  EXPECT_EQ(before, after);               // node splice, no move
  // A rotation that keeps the entry (now hot) also keeps its address.
  map.emplace(43, 430);
  EXPECT_EQ(map.rotate_if_above(0), 0u);
  EXPECT_EQ(map.peek(42), before);
}

TEST(SegmentedMapTest, EraseIfSweepsBothGenerations) {
  SegmentedMap<int, int> map;
  map.emplace(1, 10);
  map.emplace(2, 20);
  map.rotate_if_above(0);  // both cold
  map.emplace(3, 30);
  map.emplace(4, 40);
  EXPECT_EQ(map.erase_if([](int k) { return k % 2 == 0; }), 2u);
  EXPECT_TRUE(map.contains(1));
  EXPECT_FALSE(map.contains(2));
  EXPECT_TRUE(map.contains(3));
  EXPECT_FALSE(map.contains(4));
  EXPECT_EQ(map.size(), 2u);
}

// The eviction contract end to end: a controller starved to a tiny session
// capacity rotates constantly, yet every decision stays bit-identical to a
// roomy controller's. Cache content can change cost, never values.
TEST(SessionEvictionTest, StarvedCapacityNeverChangesDecisions) {
  const net::AbhnTopology topo(net::paper_topology_params());
  CacConfig roomy;
  roomy.beta = 0.5;
  CacConfig starved = roomy;
  starved.session_max_entries = 32;
  AdmissionController big(&topo, roomy);
  AdmissionController small(&topo, starved);
  Rng rng(11u);

  std::vector<net::ConnectionId> live;
  net::ConnectionId next_id = 1;
  for (int step = 0; step < 60; ++step) {
    if (!live.empty() && rng.bernoulli(0.3)) {
      const std::size_t k = rng.pick(live.size());
      big.release(live[k]);
      small.release(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      continue;
    }
    const net::HostId src = topo.host_at(
        static_cast<int>(rng.pick(static_cast<std::size_t>(
            topo.num_hosts()))));
    const net::HostId dst{(src.ring + 1) % 3, static_cast<int>(rng.pick(4))};
    const EnvelopePtr source =
        rng.bernoulli(0.5) ? video_source() : sensor_source();
    const auto spec = make_spec(next_id, src, dst, source, units::ms(80));
    const auto d_big = big.request(spec);
    const auto d_small = small.request(spec);
    EXPECT_EQ(d_big.admitted, d_small.admitted);
    EXPECT_EQ(d_big.reason, d_small.reason);
    EXPECT_EQ(d_big.alloc.h_s.value(), d_small.alloc.h_s.value());
    EXPECT_EQ(d_big.alloc.h_r.value(), d_small.alloc.h_r.value());
    EXPECT_EQ(d_big.worst_case_delay.value(),
              d_small.worst_case_delay.value());
    if (d_big.admitted) live.push_back(next_id);
    ++next_id;
    if (HasFailure()) break;
  }
  // The starved controller must actually have been rotating generations —
  // otherwise this test pinned nothing.
  EXPECT_GT(small.eviction_count(), 0u);
  EXPECT_EQ(big.session_stats().evictions, 0u);
}

}  // namespace
}  // namespace hetnet::core
