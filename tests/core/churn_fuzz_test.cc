// Randomized churn fuzzing of the admission controller: long random
// admit/release sequences with invariant checks after every operation.
// Catches ledger leaks, stale coupling state, and any configuration the
// CAC could be driven into where an admitted contract silently breaks.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/cac.h"
#include "src/traffic/sources.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;

class ChurnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnFuzzTest, InvariantsSurviveRandomChurn) {
  const net::AbhnTopology topo(net::paper_topology_params());
  CacConfig config;
  config.beta = 0.5;
  AdmissionController cac(&topo, config);
  Rng rng(GetParam());

  std::vector<net::ConnectionId> live;
  std::vector<int> live_host;  // flat source host per live connection
  std::vector<bool> host_busy(static_cast<std::size_t>(topo.num_hosts()),
                              false);
  net::ConnectionId next_id = 1;
  int admitted_total = 0;

  for (int step = 0; step < 120; ++step) {
    const bool do_release = !live.empty() && rng.bernoulli(0.4);
    if (do_release) {
      const std::size_t k = rng.pick(live.size());
      cac.release(live[k]);
      host_busy[static_cast<std::size_t>(live_host[k])] = false;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      live_host.erase(live_host.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      std::vector<int> idle;
      for (int h = 0; h < topo.num_hosts(); ++h) {
        if (!host_busy[static_cast<std::size_t>(h)]) idle.push_back(h);
      }
      if (idle.empty()) continue;
      const int src_flat = idle[rng.pick(idle.size())];
      const net::HostId src = topo.host_at(src_flat);
      // Mix inter-ring and intra-ring requests.
      net::HostId dst;
      if (rng.bernoulli(0.2)) {
        dst = {src.ring, (src.index + 1 + static_cast<int>(rng.pick(3))) % 4};
      } else {
        dst = {(src.ring + 1 + static_cast<int>(rng.pick(2))) % 3,
               static_cast<int>(rng.pick(4))};
      }
      const double rho_mbps = rng.uniform(0.5, 8.0);
      const Bits c1 = units::mbps(rho_mbps) * units::ms(100);
      auto spec = make_spec(next_id++, src, dst,
                            std::make_shared<DualPeriodicEnvelope>(
                                c1, units::ms(100), c1 / 10.0, units::ms(10)),
                            units::ms(rng.uniform(50.0, 150.0)));
      const auto d = cac.request(spec);
      if (d.admitted) {
        ++admitted_total;
        live.push_back(spec.id);
        live_host.push_back(src_flat);
        host_busy[static_cast<std::size_t>(src_flat)] = true;
        EXPECT_LE(d.worst_case_delay, spec.deadline * (1 + 1e-9));
      }
    }

    // --- Invariants after every operation. ---
    ASSERT_EQ(cac.active_count(), live.size());
    std::vector<Seconds> per_ring(3);
    std::vector<std::size_t> per_ring_count(3, 0);
    for (const auto& [id, conn] : cac.active()) {
      per_ring[static_cast<std::size_t>(conn.spec.src.ring)] +=
          conn.alloc.h_s;
      ++per_ring_count[static_cast<std::size_t>(conn.spec.src.ring)];
      if (conn.spec.src.ring != conn.spec.dst.ring) {
        per_ring[static_cast<std::size_t>(conn.spec.dst.ring)] +=
            conn.alloc.h_r;
        ++per_ring_count[static_cast<std::size_t>(conn.spec.dst.ring)];
      }
    }
    for (int r = 0; r < 3; ++r) {
      ASSERT_NEAR(val(cac.ledger(r).allocated()),
                  val(per_ring[static_cast<std::size_t>(r)]), 1e-9)
          << "ring " << r << " at step " << step;
      ASSERT_EQ(cac.ledger(r).reservations(),
                per_ring_count[static_cast<std::size_t>(r)]);
      ASSERT_LE(cac.ledger(r).allocated(),
                cac.ledger(r).capacity() * (1 + 1e-9));
    }
  }

  // The run must have actually exercised admissions.
  EXPECT_GT(admitted_total, 5);

  // Final joint verification: every surviving contract still holds.
  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  if (!set.empty()) {
    const auto delays = cac.analyzer().analyze(set);
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_TRUE(isfinite(delays[i])) << i;
      EXPECT_LE(delays[i], set[i].spec.deadline * (1 + 1e-9)) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest,
                         ::testing::Values(11u, 23u, 47u, 101u, 907u));

}  // namespace
}  // namespace hetnet::core
