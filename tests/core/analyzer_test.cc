#include "src/core/analyzer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

TEST(DelayAnalyzerTest, SingleConnectionFiniteBound) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(200));
  const auto delays = analyzer.analyze({{spec, {units::ms(2), units::ms(2)}}});
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_TRUE(isfinite(delays[0]));
  // Dominated by the two timed-token MACs: at least 2·TTRT each.
  EXPECT_GE(delays[0], 4 * units::ms(8));
  EXPECT_LT(delays[0], units::ms(200));
}

TEST(DelayAnalyzerTest, DelayDecreasesWithSendAllocation) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(500));
  Seconds prev{1e9};
  for (double h_ms : {0.3, 0.6, 1.2, 2.4, 4.8}) {
    const auto d = analyzer.analyze(
        {{spec, {units::ms(h_ms), units::ms(2)}}});
    ASSERT_TRUE(isfinite(d[0])) << "H_S=" << h_ms << "ms";
    EXPECT_LE(d[0], prev * (1 + 1e-9)) << "H_S=" << h_ms << "ms";
    prev = d[0];
  }
}

TEST(DelayAnalyzerTest, DelayDecreasesWithReceiveAllocation) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(500));
  Seconds prev{1e9};
  for (double h_ms : {0.3, 0.6, 1.2, 2.4, 4.8}) {
    const auto d = analyzer.analyze(
        {{spec, {units::ms(2), units::ms(h_ms)}}});
    ASSERT_TRUE(isfinite(d[0])) << "H_R=" << h_ms << "ms";
    EXPECT_LE(d[0], prev * (1 + 1e-9)) << "H_R=" << h_ms << "ms";
    prev = d[0];
  }
}

TEST(DelayAnalyzerTest, UnusableAllocationIsUnbounded) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(200));
  EXPECT_EQ(analyzer.analyze({{spec, {Seconds{}, units::ms(2)}}})[0], kUnbounded);
  EXPECT_EQ(analyzer.analyze({{spec, {units::ms(2), Seconds{}}}})[0], kUnbounded);
  // An allocation whose guaranteed rate is below the source rate.
  EXPECT_EQ(analyzer.analyze({{spec, {units::us(50), units::ms(2)}}})[0],
            kUnbounded);
}

TEST(DelayAnalyzerTest, SharedPortCouplesConnections) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const net::Allocation alloc{units::ms(2), units::ms(2)};
  const auto a = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(500));
  // Same ring pair → same backbone ports.
  const auto b = make_spec(2, {0, 1}, {1, 1}, video_source(), units::ms(500));
  const Seconds alone = analyzer.analyze({{a, alloc}})[0];
  const auto both = analyzer.analyze({{a, alloc}, {b, alloc}});
  ASSERT_TRUE(isfinite(both[0]) && isfinite(both[1]));
  EXPECT_GT(both[0], alone);
}

TEST(DelayAnalyzerTest, DisjointConnectionsDoNotInterfere) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const net::Allocation alloc{units::ms(2), units::ms(2)};
  const auto a = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(500));
  // Reverse direction: all ports are directed, so no sharing.
  const auto b = make_spec(2, {1, 1}, {0, 1}, video_source(), units::ms(500));
  const Seconds alone = analyzer.analyze({{a, alloc}})[0];
  const auto both = analyzer.analyze({{a, alloc}, {b, alloc}});
  EXPECT_NEAR(val(both[0]), val(alone), 1e-12);
}

TEST(DelayAnalyzerTest, SendPrefixCachingMatchesDirectAnalysis) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const net::Allocation alloc{units::ms(2), units::ms(2)};
  const auto a = make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(500));
  const auto b = make_spec(2, {2, 0}, {1, 1}, sensor_source(), units::ms(500));
  const std::vector<ConnectionInstance> set = {{a, alloc}, {b, alloc}};
  std::vector<SendPrefix> prefixes;
  for (const auto& inst : set) {
    prefixes.push_back(analyzer.send_prefix(inst.spec, inst.alloc.h_s));
  }
  const auto via_prefix = analyzer.complete(set, prefixes);
  const auto direct = analyzer.analyze(set);
  ASSERT_EQ(via_prefix.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(val(via_prefix[i]), val(direct[i]));
  }
}

TEST(DelayAnalyzerTest, BreakdownStagesSumToTotal) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {2, 1}, video_source(), units::ms(500));
  const std::vector<ConnectionInstance> set = {
      {spec, {units::ms(2), units::ms(2)}}};
  const auto breakdown = analyzer.breakdown(set, 0);
  ASSERT_TRUE(breakdown.has_value());
  // FDDI_S(2) + ID_S(3) + 3 ATM hops + ID_R(3) + FDDI_R(2) = 13 stages.
  EXPECT_EQ(breakdown->stages.size(), 13u);
  EXPECT_EQ(breakdown->stages.front().server_name, "FDDI_S.MAC");
  EXPECT_EQ(breakdown->stages.back().server_name, "FDDI_R.Delay_Line");
  Seconds sum;
  for (const auto& stage : breakdown->stages) {
    EXPECT_GE(stage.analysis.worst_case_delay, 0.0);
    sum += stage.analysis.worst_case_delay;
  }
  EXPECT_NEAR(val(sum), val(breakdown->total_delay), 1e-12);
  // Breakdown agrees with the plain analysis.
  EXPECT_NEAR(val(analyzer.analyze(set)[0]), val(breakdown->total_delay), 1e-12);
}

TEST(DelayAnalyzerTest, BreakdownOfUnboundedConnectionIsNullopt) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(200));
  EXPECT_FALSE(
      analyzer.breakdown({{spec, {units::us(10), units::ms(2)}}}, 0)
          .has_value());
}

TEST(DelayAnalyzerTest, ManyConnectionsAllFinite) {
  // Fill several hosts across all rings and check the joint analysis holds
  // everything finite with moderate allocations.
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  std::vector<ConnectionInstance> set;
  net::ConnectionId id = 1;
  for (int ring = 0; ring < 3; ++ring) {
    for (int host = 0; host < 2; ++host) {
      const auto spec = make_spec(id, {ring, host}, {(ring + 1) % 3, host},
                                  sensor_source(), units::ms(500));
      set.push_back({spec, {units::ms(0.5), units::ms(0.5)}});
      ++id;
    }
  }
  const auto delays = analyzer.analyze(set);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_TRUE(isfinite(delays[i])) << "connection " << i;
    EXPECT_LT(delays[i], units::ms(200)) << "connection " << i;
  }
}

}  // namespace
}  // namespace hetnet::core
