// Intra-ring connections (Section 4.1 case 1): hosts on the same FDDI ring
// reach each other over the ring alone — no interface devices, no backbone,
// no receive-side allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/cac.h"
#include "src/sim/packet_sim.h"
#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::sensor_source;
using hetnet::testing::video_source;

TEST(IntraRingTest, AnalyzerPathIsMacPlusDelayLine) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto spec =
      make_spec(1, {0, 0}, {0, 2}, video_source(), units::ms(100));
  const std::vector<ConnectionInstance> set = {{spec, {units::ms(2), Seconds{}}}};
  const auto breakdown = analyzer.breakdown(set, 0);
  ASSERT_TRUE(breakdown.has_value());
  ASSERT_EQ(breakdown->stages.size(), 2u);
  EXPECT_EQ(breakdown->stages[0].server_name, "FDDI_S.MAC");
  EXPECT_EQ(breakdown->stages[1].server_name, "FDDI_S.Delay_Line");
}

TEST(IntraRingTest, CheaperThanBackboneCrossing) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto local =
      make_spec(1, {0, 0}, {0, 2}, video_source(), units::ms(100));
  const auto remote =
      make_spec(2, {0, 0}, {1, 2}, video_source(), units::ms(100));
  const Seconds d_local =
      analyzer.analyze({{local, {units::ms(2), Seconds{}}}})[0];
  const Seconds d_remote =
      analyzer.analyze({{remote, {units::ms(2), units::ms(2)}}})[0];
  ASSERT_TRUE(isfinite(d_local) && isfinite(d_remote));
  EXPECT_LT(d_local, d_remote);
}

TEST(IntraRingTest, DoesNotShareBackbonePorts) {
  const auto topo = paper_topology();
  const DelayAnalyzer analyzer(&topo);
  const auto remote =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(200));
  const auto local =
      make_spec(2, {0, 1}, {0, 2}, video_source(), units::ms(200));
  const net::Allocation a{units::ms(2), units::ms(2)};
  const Seconds alone = analyzer.analyze({{remote, a}})[0];
  const auto both =
      analyzer.analyze({{remote, a}, {local, {units::ms(2), Seconds{}}}});
  EXPECT_NEAR(val(both[0]), val(alone), 1e-12);
}

TEST(IntraRingTest, CacAdmitsWithSourceRingOnly) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {2, 0}, {2, 3}, video_source(), units::ms(60));
  const auto d = cac.request(spec);
  ASSERT_TRUE(d.admitted);
  EXPECT_GT(d.alloc.h_s, 0.0);
  EXPECT_DOUBLE_EQ(val(d.alloc.h_r), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(2).allocated()), val(d.alloc.h_s));
  EXPECT_DOUBLE_EQ(val(cac.ledger(0).allocated()), 0.0);
  EXPECT_DOUBLE_EQ(val(cac.ledger(1).allocated()), 0.0);
  cac.release(1);
  EXPECT_DOUBLE_EQ(val(cac.ledger(2).allocated()), 0.0);
}

TEST(IntraRingTest, SingleMacFloorNotDouble) {
  // Only one timed-token MAC on the path: the floor is ~2·TTRT, not 4·TTRT,
  // so deadlines infeasible for backbone crossings are feasible locally.
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto local =
      make_spec(1, {0, 0}, {0, 1}, sensor_source(), units::ms(22));
  EXPECT_TRUE(cac.request(local).admitted);
  const auto remote =
      make_spec(2, {1, 0}, {2, 1}, sensor_source(), units::ms(22));
  EXPECT_FALSE(cac.request(remote).admitted);
}

TEST(IntraRingTest, PacketSimDeliversLocally) {
  const auto topo = paper_topology();
  const auto spec =
      make_spec(1, {0, 0}, {0, 2}, video_source(), units::ms(100));
  const std::vector<ConnectionInstance> set = {{spec, {units::ms(2), Seconds{}}}};
  const DelayAnalyzer analyzer(&topo);
  const Seconds bound = analyzer.analyze(set)[0];
  ASSERT_TRUE(isfinite(bound));

  sim::PacketSimConfig cfg;
  cfg.duration = Seconds{1.0};
  cfg.async_fill = 0.9;
  cfg.randomize_phases = false;
  const auto result = sim::run_packet_simulation(topo, set, cfg);
  const auto& trace = result.connections[0];
  EXPECT_GT(trace.messages_generated, 0u);
  EXPECT_EQ(trace.messages_delivered, trace.messages_generated);
  EXPECT_LE(trace.delay.max(), bound);
}

TEST(IntraRingTest, MixedLocalAndRemoteWorkload) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    const bool local = i % 2 == 0;
    const auto spec = make_spec(
        static_cast<net::ConnectionId>(i + 1), {i % 3, 0 + (i / 3)},
        local ? net::HostId{i % 3, 3} : net::HostId{(i + 1) % 3, 3},
        sensor_source(), units::ms(80));
    if (cac.request(spec).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 6);
  // Joint analysis stays consistent.
  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) set.push_back({conn.spec, conn.alloc});
  const auto delays = cac.analyzer().analyze(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(isfinite(delays[i]));
    EXPECT_LE(delays[i], set[i].spec.deadline * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace hetnet::core
