// PR-7 determinism contract: the tiered admission path (CacConfig::tiered —
// Tier-A floor / kUp-screen certificates in front of the exact engine,
// Tier-B whole-vector decision memo behind it) must produce BIT-IDENTICAL
// AdmissionDecisions to the untiered incremental engine. Not just the
// admit/reject bit: allocations, anchors, delay bounds, and ledgers, since
// a screen certificate that fires on a bisection probe removes an exact
// evaluation from the trajectory and any disagreement would shift every
// later bracket. Exercised three ways:
//
//   * directed: a hand-built paper-topology churn sequence replayed
//     tiered-on vs tiered-off at 1/2/8 threads (2 exercises fork/join
//     without speculation, 8 adds speculative bisection batching whose
//     prefetch feeds the same decision memo the tiers read);
//   * degraded: the same comparison with the kUp screen's admit
//     certificates disabled (screen_upper_certificates = false), isolating
//     the proven floor certificate + Tier-B memo;
//   * differential: a sweep of fuzz scenarios through the
//     tiered_equivalence oracle — the adversarial audit of
//     CacConfig::screen_margin across generated topologies and churn.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/core/cac.h"
#include "src/testing/fuzz/oracles.h"
#include "src/testing/fuzz/scenario.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace hetnet::core {
namespace {

net::ConnectionSpec spec_for(net::ConnectionId id, int src_ring, int src_host,
                             int dst_ring, int dst_host) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = {src_ring, src_host};
  spec.dst = {dst_ring, dst_host};
  spec.source = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(40), units::ms(100), units::kbits(4), units::ms(10));
  spec.deadline = units::ms(80);
  return spec;
}

CacConfig config_for(bool tiered, int threads, bool upper_certs = true) {
  CacConfig cfg;
  cfg.beta = 0.3;
  cfg.tiered = tiered;
  cfg.screen_upper_certificates = upper_certs;
  cfg.analysis.threads = threads;
  return cfg;
}

// Admit a mix of inter- and intra-ring connections with interleaved
// releases; returns every decision the controller produced.
std::vector<AdmissionDecision> run_churn(AdmissionController& cac) {
  std::vector<AdmissionDecision> decisions;
  net::ConnectionId next_id = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      const int src_ring = i % 3;
      const int dst_ring = (src_ring + 1 + round) % 3;
      decisions.push_back(cac.request(spec_for(
          next_id++, src_ring, i % 4, dst_ring, (i + 1) % 4)));
    }
    const net::ConnectionId victim =
        static_cast<net::ConnectionId>(round * 4 + 1);
    if (cac.active().contains(victim)) cac.release(victim);
  }
  return decisions;
}

void expect_identical(const AdmissionDecision& a, const AdmissionDecision& b,
                      const std::string& where) {
  EXPECT_EQ(a.admitted, b.admitted) << where;
  EXPECT_EQ(a.reason, b.reason) << where;
  EXPECT_EQ(val(a.alloc.h_s), val(b.alloc.h_s)) << where;
  EXPECT_EQ(val(a.alloc.h_r), val(b.alloc.h_r)) << where;
  if (a.admitted && b.admitted) {
    EXPECT_EQ(val(a.worst_case_delay), val(b.worst_case_delay)) << where;
  }
  EXPECT_EQ(val(a.max_avail.h_s), val(b.max_avail.h_s)) << where;
  EXPECT_EQ(val(a.max_avail.h_r), val(b.max_avail.h_r)) << where;
  EXPECT_EQ(val(a.min_need.h_s), val(b.min_need.h_s)) << where;
  EXPECT_EQ(val(a.min_need.h_r), val(b.min_need.h_r)) << where;
  EXPECT_EQ(val(a.max_need.h_s), val(b.max_need.h_s)) << where;
  EXPECT_EQ(val(a.max_need.h_r), val(b.max_need.h_r)) << where;
}

void compare_engines(bool upper_certs) {
  const net::AbhnTopology topo(net::paper_topology_params());
  for (const int threads : {1, 2, 8}) {
    AdmissionController untiered(&topo, config_for(false, threads));
    AdmissionController tiered(&topo,
                               config_for(true, threads, upper_certs));
    const std::vector<AdmissionDecision> ref = run_churn(untiered);
    const std::vector<AdmissionDecision> got = run_churn(tiered);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_identical(ref[i], got[i],
                       "op " + std::to_string(i) + " at " +
                           std::to_string(threads) + " threads (upper_certs=" +
                           (upper_certs ? "on" : "off") + ")");
    }
    ASSERT_EQ(untiered.active_count(), tiered.active_count());
    for (int ring = 0; ring < topo.num_rings(); ++ring) {
      EXPECT_EQ(val(untiered.ledger(ring).allocated()),
                val(tiered.ledger(ring).allocated()))
          << "ring " << ring << " at " << threads << " threads";
    }
  }
}

TEST(TieredEquivalence, ChurnDecisionsBitIdenticalAcrossThreadCounts) {
  compare_engines(/*upper_certs=*/true);
}

TEST(TieredEquivalence, FloorCertAndMemoAloneBitIdentical) {
  compare_engines(/*upper_certs=*/false);
}

// The screen must actually fire on this workload — a trivially
// all-fallback tiered path would make the equivalence vacuous.
TEST(TieredEquivalence, ScreenResolvesDecisionsOnTheChurnWorkload) {
  const net::AbhnTopology topo(net::paper_topology_params());
  AdmissionController tiered(&topo, config_for(true, 1));
  run_churn(tiered);
  auto& m = tiered.metrics();
  EXPECT_GT(m.counter("cac.screen.evals").value(), 0u);
  EXPECT_GT(m.counter("cac.tier.screen_admit").value() +
                m.counter("cac.tier.screen_reject").value(),
            0u);
}

// Differential sweep: the same check the fuzzer's tiered oracle runs, over
// a deterministic band of generated scenarios (admits, releases, intra-ring
// requests, varied β/TTRT/topologies) — the adversarial audit of
// CacConfig::screen_margin.
TEST(TieredEquivalence, FuzzScenarioSweepMatchesUntiered) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fuzz::FuzzScenario scenario = fuzz::generate_scenario(seed);
    const fuzz::OracleResult verdict =
        fuzz::check_tiered_equivalence(scenario);
    EXPECT_TRUE(verdict.ok)
        << "seed " << seed << ": " << verdict.detail << "\n"
        << fuzz::describe_scenario(scenario);
  }
}

}  // namespace
}  // namespace hetnet::core
