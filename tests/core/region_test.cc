#include "src/core/region.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::video_source;

TEST(RegionTest, GridShapeAndCoordinates) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 5, 4);
  EXPECT_EQ(grid.steps_s, 5);
  EXPECT_EQ(grid.steps_r, 4);
  EXPECT_EQ(grid.samples.size(), 20u);
  EXPECT_DOUBLE_EQ(grid.at(4, 3).h_s.value(), val(grid.h_s_max));
  EXPECT_DOUBLE_EQ(grid.at(4, 3).h_r.value(), val(grid.h_r_max));
}

TEST(RegionTest, RegionIsUpwardClosed) {
  // More bandwidth never breaks feasibility (alone in the network, there is
  // no cross-traffic coupling): if (i, j) is feasible, so is (i', j') >= it.
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 9, 9);
  for (int j = 0; j < 9; ++j) {
    for (int i = 0; i < 9; ++i) {
      if (!grid.at(i, j).feasible) continue;
      for (int jj = j; jj < 9; ++jj) {
        for (int ii = i; ii < 9; ++ii) {
          EXPECT_TRUE(grid.at(ii, jj).feasible)
              << "(" << i << "," << j << ") feasible but (" << ii << ","
              << jj << ") not";
        }
      }
    }
  }
}

TEST(RegionTest, ConvexityHoldsEmpirically) {
  // Theorems 3–4: the feasible region is convex. Checked on the Figure-6
  // scenario (background connections sharing the path).
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  for (int i = 0; i < 2; ++i) {
    auto bg = make_spec(static_cast<net::ConnectionId>(i + 1), {0, i + 1},
                        {1, i + 1}, video_source(), units::ms(100));
    ASSERT_TRUE(cac.request(bg).admitted);
  }
  const auto spec =
      make_spec(99, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 11, 11);
  EXPECT_EQ(count_convexity_violations(grid), 0);
}

// Builds a grid from ASCII rows ('#' feasible, '.' infeasible); rows top to
// bottom are decreasing j, matching render_region's orientation.
RegionGrid grid_from_art(const std::vector<std::string>& rows) {
  RegionGrid grid;
  grid.steps_r = static_cast<int>(rows.size());
  grid.steps_s = static_cast<int>(rows.front().size());
  grid.h_s_max = units::ms(10);
  grid.h_r_max = units::ms(10);
  grid.samples.resize(static_cast<std::size_t>(grid.steps_s) *
                      static_cast<std::size_t>(grid.steps_r));
  for (int j = 0; j < grid.steps_r; ++j) {
    for (int i = 0; i < grid.steps_s; ++i) {
      RegionSample s;
      s.h_s = grid.h_s_max * (i + 1) / grid.steps_s;
      s.h_r = grid.h_r_max * (j + 1) / grid.steps_r;
      s.feasible =
          rows[static_cast<std::size_t>(grid.steps_r - 1 - j)]
              [static_cast<std::size_t>(i)] == '#';
      s.delay = s.feasible ? units::ms(1) : kUnbounded;
      grid.samples[static_cast<std::size_t>(j * grid.steps_s + i)] = s;
    }
  }
  return grid;
}

TEST(RegionTest, ConvexityViolationsCountMidpointsOnce) {
  // A known non-convex grid: the middle column is infeasible, so every
  // infeasible point between two feasible ones on its row is a violating
  // midpoint. Each is counted ONCE no matter how many feasible pairs
  // witness it.
  const RegionGrid grid = grid_from_art({
      "##.##",
      "##.##",
      "##.##",
  });
  // Each row's (2, j) has witnesses (e.g. (1,j)+(3,j), (0,j)+(4,j), and
  // diagonal pairs across rows) but counts once → 3 violating midpoints.
  EXPECT_EQ(count_convexity_violations(grid), 3);
}

TEST(RegionTest, ConvexGridHasNoViolations) {
  // An upward-closed staircase region (the Figure-6 shape) is
  // midpoint-convex: no infeasible point lies between two feasible ones.
  const RegionGrid grid = grid_from_art({
      "..###",
      ".####",
      "#####",
  });
  EXPECT_EQ(count_convexity_violations(grid), 0);
}

TEST(RegionTest, IsolatedInfeasibleHoleIsOneViolation) {
  const RegionGrid grid = grid_from_art({
      "###",
      "#.#",
      "###",
  });
  EXPECT_EQ(count_convexity_violations(grid), 1);
}

TEST(RegionTest, DiagonalPairWitnessesMidpoint) {
  // Only a diagonal feasible pair witnesses the center: (0,0) and (2,2).
  const RegionGrid grid = grid_from_art({
      "..#",
      "...",
      "#..",
  });
  EXPECT_EQ(count_convexity_violations(grid), 1);
}

TEST(RegionTest, DelayDecreasesUpward) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 6, 6);
  for (int j = 1; j < 6; ++j) {
    for (int i = 1; i < 6; ++i) {
      const auto& here = grid.at(i, j);
      const auto& left = grid.at(i - 1, j);
      const auto& below = grid.at(i, j - 1);
      if (isfinite(here.delay) && isfinite(left.delay)) {
        EXPECT_LE(here.delay, left.delay * (1 + 1e-9));
      }
      if (isfinite(here.delay) && isfinite(below.delay)) {
        EXPECT_LE(here.delay, below.delay * (1 + 1e-9));
      }
    }
  }
}

TEST(RegionTest, RenderMarksFeasibleCells) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 6, 6);
  const std::string art = render_region(grid);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("H_R"), std::string::npos);
}

TEST(RegionTest, EmptyGridRejected) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  EXPECT_THROW(sample_feasible_region(cac, spec, 0, 3), std::logic_error);
}

}  // namespace
}  // namespace hetnet::core
