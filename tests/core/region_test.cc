#include "src/core/region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/units.h"
#include "tests/testing/scenario.h"

namespace hetnet::core {
namespace {

using hetnet::testing::make_spec;
using hetnet::testing::paper_topology;
using hetnet::testing::video_source;

TEST(RegionTest, GridShapeAndCoordinates) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 5, 4);
  EXPECT_EQ(grid.steps_s, 5);
  EXPECT_EQ(grid.steps_r, 4);
  EXPECT_EQ(grid.samples.size(), 20u);
  EXPECT_DOUBLE_EQ(grid.at(4, 3).h_s.value(), val(grid.h_s_max));
  EXPECT_DOUBLE_EQ(grid.at(4, 3).h_r.value(), val(grid.h_r_max));
}

TEST(RegionTest, RegionIsUpwardClosed) {
  // More bandwidth never breaks feasibility (alone in the network, there is
  // no cross-traffic coupling): if (i, j) is feasible, so is (i', j') >= it.
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 9, 9);
  for (int j = 0; j < 9; ++j) {
    for (int i = 0; i < 9; ++i) {
      if (!grid.at(i, j).feasible) continue;
      for (int jj = j; jj < 9; ++jj) {
        for (int ii = i; ii < 9; ++ii) {
          EXPECT_TRUE(grid.at(ii, jj).feasible)
              << "(" << i << "," << j << ") feasible but (" << ii << ","
              << jj << ") not";
        }
      }
    }
  }
}

TEST(RegionTest, ConvexityHoldsEmpirically) {
  // Theorems 3–4: the feasible region is convex. Checked on the Figure-6
  // scenario (background connections sharing the path).
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  for (int i = 0; i < 2; ++i) {
    auto bg = make_spec(static_cast<net::ConnectionId>(i + 1), {0, i + 1},
                        {1, i + 1}, video_source(), units::ms(100));
    ASSERT_TRUE(cac.request(bg).admitted);
  }
  const auto spec =
      make_spec(99, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 11, 11);
  EXPECT_EQ(count_convexity_violations(grid), 0);
}

TEST(RegionTest, DelayDecreasesUpward) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 6, 6);
  for (int j = 1; j < 6; ++j) {
    for (int i = 1; i < 6; ++i) {
      const auto& here = grid.at(i, j);
      const auto& left = grid.at(i - 1, j);
      const auto& below = grid.at(i, j - 1);
      if (isfinite(here.delay) && isfinite(left.delay)) {
        EXPECT_LE(here.delay, left.delay * (1 + 1e-9));
      }
      if (isfinite(here.delay) && isfinite(below.delay)) {
        EXPECT_LE(here.delay, below.delay * (1 + 1e-9));
      }
    }
  }
}

TEST(RegionTest, RenderMarksFeasibleCells) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  const RegionGrid grid = sample_feasible_region(cac, spec, 6, 6);
  const std::string art = render_region(grid);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("H_R"), std::string::npos);
}

TEST(RegionTest, EmptyGridRejected) {
  const auto topo = paper_topology();
  AdmissionController cac(&topo, CacConfig{});
  const auto spec =
      make_spec(1, {0, 0}, {1, 0}, video_source(), units::ms(100));
  EXPECT_THROW(sample_feasible_region(cac, spec, 0, 3), std::logic_error);
}

}  // namespace
}  // namespace hetnet::core
