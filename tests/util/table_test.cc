#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hetnet {
namespace {

TEST(TableWriterTest, AsciiContainsHeadersAndRows) {
  TableWriter t({"beta", "AP"});
  t.add_row({"0.5", "0.93"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("0.93"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriterTest, RowWidthMismatchThrows) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::logic_error);
}

TEST(TableWriterTest, EmptyHeadersRejected) {
  EXPECT_THROW(TableWriter({}), std::logic_error);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TableWriterTest, CsvQuotesCommas) {
  TableWriter t({"k", "v"});
  t.add_row({"a,b", "c"});
  EXPECT_EQ(t.to_csv(), "k,v\n\"a,b\",c\n");
}

TEST(TableWriterTest, FmtPrecision) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(1.0, 3), "1.000");
}

TEST(TableWriterTest, ColumnsAreAligned) {
  TableWriter t({"name", "v"});
  t.add_row({"longer-name", "1"});
  t.add_row({"x", "2"});
  std::istringstream in(t.to_ascii());
  std::string header, sep, row1, row2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row1);
  std::getline(in, row2);
  // The second column starts at the same offset in every row.
  EXPECT_EQ(row1.find(" 1"), row2.find(" 2"));
}

TEST(TableWriterTest, PrintWritesToStream) {
  TableWriter t({"a"});
  t.add_row({"z"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_ascii());
}

TEST(TableWriterTest, RowsCounts) {
  TableWriter t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace hetnet
