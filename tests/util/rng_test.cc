#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hetnet {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(RngTest, UniformRangeRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::logic_error);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), std::logic_error);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential_mean(0.0), std::logic_error);
  EXPECT_THROW(rng.exponential_mean(-1.0), std::logic_error);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(19);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent_copy(19);
  parent_copy.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(23);
  Rng b(23);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, PickStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.pick(5), 5u);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(31);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(31);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace hetnet
