#include "src/util/units.h"

#include <gtest/gtest.h>

namespace hetnet {
namespace {

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(units::ms(8.0), 0.008);
  EXPECT_DOUBLE_EQ(units::us(50.0), 50e-6);
  EXPECT_DOUBLE_EQ(units::ns(100.0), 100e-9);
  EXPECT_DOUBLE_EQ(units::sec(2.0), 2.0);
}

TEST(UnitsTest, DataConversions) {
  EXPECT_DOUBLE_EQ(units::bytes(53.0), 424.0);
  EXPECT_DOUBLE_EQ(units::kbits(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(units::mbits(2.0), 2e6);
}

TEST(UnitsTest, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(units::mbps(155.0), 155e6);
  EXPECT_DOUBLE_EQ(units::mbps(100.0), 1e8);
  EXPECT_DOUBLE_EQ(units::gbps(1.0), 1e9);
  EXPECT_DOUBLE_EQ(units::kbps(64.0), 64000.0);
}

TEST(UnitsTest, ApproxLeHandlesExactAndNoise) {
  EXPECT_TRUE(approx_le(1.0, 1.0));
  EXPECT_TRUE(approx_le(1.0, 2.0));
  EXPECT_FALSE(approx_le(2.0, 1.0));
  // Values within relative tolerance count as <=.
  EXPECT_TRUE(approx_le(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(approx_le(1.0 + 1e-6, 1.0));
}

TEST(UnitsTest, ApproxLeScalesWithMagnitude) {
  EXPECT_TRUE(approx_le(1e12 + 1.0, 1e12));
  EXPECT_FALSE(approx_le(1e12 + 1e6, 1e12));
}

TEST(UnitsTest, ApproxEq) {
  EXPECT_TRUE(approx_eq(3.0, 3.0 + 1e-12));
  EXPECT_FALSE(approx_eq(3.0, 3.1));
}

}  // namespace
}  // namespace hetnet
