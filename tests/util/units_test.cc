#include "src/util/units.h"

#include <gtest/gtest.h>

namespace hetnet {
namespace {

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(val(units::ms(8.0)), 0.008);
  EXPECT_DOUBLE_EQ(val(units::us(50.0)), 50e-6);
  EXPECT_DOUBLE_EQ(val(units::ns(100.0)), 100e-9);
  EXPECT_DOUBLE_EQ(val(units::sec(2.0)), 2.0);
}

TEST(UnitsTest, DataConversions) {
  EXPECT_DOUBLE_EQ(val(units::bytes(53.0)), 424.0);
  EXPECT_DOUBLE_EQ(val(units::kbits(1.5)), 1500.0);
  EXPECT_DOUBLE_EQ(val(units::mbits(2.0)), 2e6);
}

TEST(UnitsTest, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(val(units::mbps(155.0)), 155e6);
  EXPECT_DOUBLE_EQ(val(units::mbps(100.0)), 1e8);
  EXPECT_DOUBLE_EQ(val(units::gbps(1.0)), 1e9);
  EXPECT_DOUBLE_EQ(val(units::kbps(64.0)), 64000.0);
}

TEST(UnitsTest, ApproxLeHandlesExactAndNoise) {
  EXPECT_TRUE(approx_le(1.0, 1.0));
  EXPECT_TRUE(approx_le(1.0, 2.0));
  EXPECT_FALSE(approx_le(2.0, 1.0));
  // Values within relative tolerance count as <=.
  EXPECT_TRUE(approx_le(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(approx_le(1.0 + 1e-6, 1.0));
}

TEST(UnitsTest, ApproxLeScalesWithMagnitude) {
  EXPECT_TRUE(approx_le(1e12 + 1.0, 1e12));
  EXPECT_FALSE(approx_le(1e12 + 1e6, 1e12));
}

TEST(UnitsTest, ApproxEq) {
  EXPECT_TRUE(approx_eq(3.0, 3.0 + 1e-12));
  EXPECT_FALSE(approx_eq(3.0, 3.1));
}

TEST(UnitsTest, ApproxLeExactEpsilonBoundary) {
  // The tolerance is kEps * max(1, |a|, |b|). At unit scale the boundary
  // sits exactly at b + kEps: on it passes, just beyond it fails.
  EXPECT_TRUE(approx_le(1.0 + kEps, 1.0));
  EXPECT_FALSE(approx_le(1.0 + 2.5 * kEps, 1.0));
  // Below unit magnitude the tolerance stays absolute (scale floors at 1).
  EXPECT_TRUE(approx_le(kEps, 0.0));
  EXPECT_FALSE(approx_le(3.0 * kEps, 0.0));
}

TEST(UnitsTest, ApproxLeNegativeValues) {
  EXPECT_TRUE(approx_le(-2.0, -1.0));
  EXPECT_FALSE(approx_le(-1.0, -2.0));
  EXPECT_TRUE(approx_le(-1.0, -1.0 - 1e-12));
  EXPECT_TRUE(approx_le(-1e12, 1e12));
  // Tolerance scales with the larger magnitude even when negative.
  EXPECT_TRUE(approx_le(-1e12 + 1.0, -1e12));
  EXPECT_FALSE(approx_le(-1e12 + 1e6, -1e12));
}

TEST(UnitsTest, ApproxEqLargeMagnitudes) {
  EXPECT_TRUE(approx_eq(1e15, 1e15 + 1e3));
  EXPECT_FALSE(approx_eq(1e15, 1e15 + 1e8));
  EXPECT_TRUE(approx_eq(0.0, 0.0));
  EXPECT_TRUE(approx_eq(0.0, kEps / 2.0));
}

TEST(UnitsTest, ApproxHelpersLiftToQuantities) {
  EXPECT_TRUE(approx_le(units::ms(1), units::ms(1)));
  EXPECT_TRUE(approx_le(units::ms(1), units::ms(2)));
  EXPECT_FALSE(approx_le(units::ms(2), units::ms(1)));
  EXPECT_TRUE(approx_eq(units::mbps(100), units::mbps(100)));
  EXPECT_FALSE(approx_eq(units::mbps(100), units::mbps(101)));
  // Mixed quantity/double overloads follow the raw-bound policy.
  EXPECT_TRUE(approx_le(units::sec(1), 1.0));
  EXPECT_TRUE(approx_le(0.0, units::sec(1)));
  EXPECT_FALSE(approx_le(units::sec(2), 1.0));
  EXPECT_TRUE(approx_eq(units::bytes(53), 424.0));
}

TEST(UnitsTest, DimensionalArithmetic) {
  const Bits b = units::mbps(10) * units::ms(100);
  EXPECT_DOUBLE_EQ(val(b), 1e6);
  const BitsPerSecond r = units::kbits(8) / units::ms(1);
  EXPECT_DOUBLE_EQ(val(r), 8e6);
  const Seconds t = units::kbits(424) / units::mbps(212);
  EXPECT_DOUBLE_EQ(val(t), 2e-3);
  // Same-dimension division collapses to a dimensionless double.
  const double ratio = units::mbps(50) / units::mbps(100);
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(UnitsTest, QuantityIsZeroOverhead) {
  static_assert(sizeof(Seconds) == sizeof(double));
  static_assert(sizeof(BitsPerSecond) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<Bits>);
}

TEST(UnitsTest, AdlMathHelpers) {
  EXPECT_TRUE(isfinite(units::sec(1)));
  EXPECT_FALSE(isfinite(Seconds::infinity()));
  EXPECT_TRUE(isinf(Seconds::infinity()));
  EXPECT_FALSE(isnan(units::sec(1)));
  EXPECT_DOUBLE_EQ(val(abs(Seconds{-2.0})), 2.0);
  EXPECT_DOUBLE_EQ(val(2.5), 2.5);  // val() passes raw doubles through
}

}  // namespace
}  // namespace hetnet
