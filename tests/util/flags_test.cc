#include "src/util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hetnet {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  Flags f = make({"requests=500", "beta=0.5"});
  EXPECT_DOUBLE_EQ(f.get("requests", 0.0), 500.0);
  EXPECT_DOUBLE_EQ(f.get("beta", 0.0), 0.5);
}

TEST(FlagsTest, FallbackWhenAbsent) {
  Flags f = make({});
  EXPECT_DOUBLE_EQ(f.get("missing", 42.0), 42.0);
}

TEST(FlagsTest, MalformedArgumentThrows) {
  EXPECT_THROW(make({"no-equals"}), std::invalid_argument);
  EXPECT_THROW(make({"=value"}), std::invalid_argument);
}

TEST(FlagsTest, NonNumericValueThrows) {
  Flags f = make({"x=abc"});
  EXPECT_THROW(f.get("x", 0.0), std::invalid_argument);
  Flags g = make({"x=1.5junk"});
  EXPECT_THROW(g.get("x", 0.0), std::invalid_argument);
}

TEST(FlagsTest, StringValues) {
  Flags f = make({"mode=fast"});
  EXPECT_EQ(f.get_string("mode", "slow"), "fast");
  EXPECT_EQ(f.get_string("other", "slow"), "slow");
}

TEST(FlagsTest, UnknownKeysDetected) {
  Flags f = make({"known=1", "typo=2"});
  f.get("known", 0.0);
  const auto unknown = f.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_TRUE(unknown.contains("typo"));
}

TEST(FlagsTest, AllKeysReadMeansNoUnknown) {
  Flags f = make({"a=1", "b=2"});
  f.get("a", 0.0);
  f.get("b", 0.0);
  f.get("c", 0.0);  // absent key still marks as known
  EXPECT_TRUE(f.unknown_keys().empty());
}

TEST(FlagsTest, HasReportsPresence) {
  Flags f = make({"a=1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_FALSE(f.has("b"));
}

TEST(FlagsTest, NegativeAndScientificValues) {
  Flags f = make({"x=-2.5", "y=1e-3"});
  EXPECT_DOUBLE_EQ(f.get("x", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(f.get("y", 0.0), 1e-3);
}

}  // namespace
}  // namespace hetnet
