#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hetnet {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: Σ(x-5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, CiShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

// Parallel-axis Welford merge: pooling shard statistics must agree with a
// single pass over the concatenated samples — count/min/max exactly,
// mean/variance up to floating-point rounding.
TEST(RunningStatsTest, MergeMatchesSinglePass) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 137; ++i) {
    // Deterministic irregular values spanning sign and magnitude.
    const double x = (i % 7 - 3) * 1.37 + i * 0.013;
    (i % 3 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9 * std::abs(all.mean()));
  EXPECT_NEAR(a.variance(), all.variance(),
              1e-9 * std::abs(all.variance()));
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats filled;
  filled.add(1.0);
  filled.add(3.0);

  RunningStats left;  // empty.merge(filled) adopts filled
  left.merge(filled);
  EXPECT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.mean(), 2.0);
  EXPECT_EQ(left.min(), 1.0);
  EXPECT_EQ(left.max(), 3.0);

  RunningStats right = filled;  // filled.merge(empty) is a no-op
  RunningStats empty;
  right.merge(empty);
  EXPECT_EQ(right.count(), 2u);
  EXPECT_DOUBLE_EQ(right.mean(), 2.0);

  RunningStats e1;
  RunningStats e2;
  e1.merge(e2);
  EXPECT_EQ(e1.count(), 0u);
  EXPECT_EQ(e1.mean(), 0.0);
}

TEST(RunningStatsTest, MergeIsOrderInsensitiveOnCounts) {
  RunningStats ab;
  RunningStats ba;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 10; ++i) a.add(i * 0.5);
  for (int i = 0; i < 25; ++i) b.add(100.0 - i);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12 * std::abs(ab.mean()));
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9);
}

TEST(ProportionStatsTest, CountsSuccesses) {
  ProportionStats p;
  p.add(true);
  p.add(false);
  p.add(true);
  p.add(true);
  EXPECT_EQ(p.trials(), 4u);
  EXPECT_EQ(p.successes(), 3u);
  EXPECT_DOUBLE_EQ(p.proportion(), 0.75);
}

TEST(ProportionStatsTest, EmptyProportionIsZero) {
  ProportionStats p;
  EXPECT_EQ(p.proportion(), 0.0);
  EXPECT_EQ(p.ci95_halfwidth(), 0.0);
}

TEST(ProportionStatsTest, DegenerateProportionHasZeroCi) {
  ProportionStats p;
  for (int i = 0; i < 10; ++i) p.add(true);
  EXPECT_DOUBLE_EQ(p.proportion(), 1.0);
  EXPECT_DOUBLE_EQ(p.ci95_halfwidth(), 0.0);
}

TEST(HistogramTest, BinsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[1], 2u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(HistogramTest, QuantileUpperIsConservative) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 99; ++i) h.add(0.5);
  h.add(9.5);
  // 99% of the mass in the first bin: the 0.5-quantile's upper edge is 1.0.
  EXPECT_DOUBLE_EQ(h.quantile_upper(0.5), 1.0);
  // The full-mass quantile must cover the top bin.
  EXPECT_DOUBLE_EQ(h.quantile_upper(1.0), 10.0);
}

TEST(HistogramTest, QuantileRejectsOutOfRangeQ) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_THROW(h.quantile_upper(0.0), std::logic_error);
  EXPECT_THROW(h.quantile_upper(1.5), std::logic_error);
}

TEST(HistogramTest, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(HistogramTest, ToStringShowsNonEmptyBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("[0, 1)"), std::string::npos);
}

}  // namespace
}  // namespace hetnet
