#include "src/util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace hetnet {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(HETNET_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(CheckTest, FailureThrowsLogicError) {
  EXPECT_THROW(HETNET_CHECK(false, "always fails"), std::logic_error);
}

TEST(CheckTest, MessageCarriesExpressionAndText) {
  try {
    HETNET_CHECK(2 < 1, "two is not less than one");
    FAIL() << "check did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(CheckTest, MessageCarriesFileAndLine) {
  int line = 0;
  std::string what;
  try {
    line = __LINE__ + 1;
    HETNET_CHECK(false, "locate me");
  } catch (const std::logic_error& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  EXPECT_NE(what.find(":" + std::to_string(line) + ":"), std::string::npos)
      << what;
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto counted = [&] {
    ++evaluations;
    return true;
  };
  HETNET_CHECK(counted(), "side-effect probe");
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, MessageBuiltOnlyOnFailure) {
  // The __VA_ARGS__ expression must not run on the passing path: an
  // expensive or throwing message builder is free when the check holds.
  int message_builds = 0;
  auto message = [&] {
    ++message_builds;
    return std::string("expensive");
  };
  HETNET_CHECK(true, message());
  EXPECT_EQ(message_builds, 0);
  EXPECT_THROW(HETNET_CHECK(false, message()), std::logic_error);
  EXPECT_EQ(message_builds, 1);
}

TEST(CheckTest, EmptyMessageAllowedByMacro) {
  // Call sites in this repo must pass a message (enforced by tools/lint.py),
  // but the macro itself degrades gracefully.
  try {
    HETNET_CHECK(false, "");
    FAIL() << "check did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("check failed"), std::string::npos);
  }
}

}  // namespace
}  // namespace hetnet
