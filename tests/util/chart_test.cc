#include "src/util/chart.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hetnet {
namespace {

TEST(AsciiChartTest, RendersSeriesGlyphs) {
  AsciiChart chart(20, 6);
  chart.add_series("rising", '*', {{0, 0}, {1, 1}, {2, 2}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = rising"), std::string::npos);
}

TEST(AsciiChartTest, MultipleSeriesDistinctGlyphs) {
  AsciiChart chart(30, 8);
  chart.add_series("a", 'a', {{0, 0}, {1, 0.2}});
  chart.add_series("b", 'b', {{0, 1}, {1, 0.8}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChartTest, HighPointSitsAboveLowPoint) {
  AsciiChart chart(10, 5);
  chart.add_series("s", '#', {{0, 0.0}, {1, 1.0}});
  const std::string out = chart.render();
  // The first canvas line holds the high point; the last one the low point.
  const auto first_hash = out.find('#');
  const auto last_hash = out.rfind('#');
  EXPECT_LT(first_hash, last_hash);
  // The high point is rendered further right? No — higher row. Check rows:
  const std::string up_to_first = out.substr(0, first_hash);
  const std::string up_to_last = out.substr(0, last_hash);
  const auto lines_before_first =
      std::count(up_to_first.begin(), up_to_first.end(), '\n');
  const auto lines_before_last =
      std::count(up_to_last.begin(), up_to_last.end(), '\n');
  EXPECT_LT(lines_before_first, lines_before_last);
}

TEST(AsciiChartTest, FixedYRangeClipsOutliers) {
  AsciiChart chart(12, 4);
  chart.set_y_range(0.0, 1.0);
  chart.add_series("s", '#', {{0, 0.5}, {1, 50.0}});  // outlier clipped
  const std::string out = chart.render();
  // Exactly one visible point remains.
  EXPECT_EQ(std::count(out.begin(), out.end(), '#'),
            1 + 1);  // point + legend glyph
}

TEST(AsciiChartTest, AxisLabelsPresent) {
  AsciiChart chart(16, 4);
  chart.set_y_range(0.0, 1.0);
  chart.add_series("s", '#', {{0.0, 0.2}, {2.0, 0.8}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("0.000"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiChartTest, Validation) {
  EXPECT_THROW(AsciiChart(2, 2), std::logic_error);
  AsciiChart chart(12, 4);
  EXPECT_THROW(chart.add_series("s", '#', {}), std::logic_error);
  EXPECT_THROW(chart.set_y_range(1.0, 1.0), std::logic_error);
  EXPECT_THROW(chart.render(), std::logic_error);  // nothing to plot
}

TEST(AsciiChartTest, SinglePointSeries) {
  AsciiChart chart(12, 4);
  chart.add_series("dot", 'o', {{5.0, 5.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('o'), std::string::npos);
}

}  // namespace
}  // namespace hetnet
