// Contract tests for the deterministic fork/join primitive
// (src/util/thread_pool.h): shape edge cases, exception propagation,
// nested-region degradation, and the determinism discipline the analysis
// engine builds on (index-owned slots + caller-side reduction in index
// order ⇒ bit-identical results for any thread count).
#include "src/util/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hetnet::util {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  for (const int threads : {1, 2, 8}) {
    parallel_for(0, threads, [&](std::size_t) { ++calls; });
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  for (const int threads : {1, 2, 8}) {
    int calls = 0;  // not atomic: n <= 1 must degrade to the serial loop
    parallel_for(1, threads, [&](std::size_t i) {
      EXPECT_EQ(i, 0u);
      ++calls;
    });
    EXPECT_EQ(calls, 1);
  }
}

TEST(ThreadPool, EveryIndexRunsExactlyOnceManyMoreItemsThanWorkers) {
  constexpr std::size_t kN = 10'000;
  for (const int threads : {1, 2, 3, 8, 32}) {
    std::vector<std::atomic<int>> counts(kN);
    parallel_for(kN, threads, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPool, ThreadsExceedingItemsStillCoversRange) {
  std::vector<std::atomic<int>> counts(3);
  parallel_for(3, 64, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 2, 8}) {
    EXPECT_THROW(
        parallel_for(100, threads,
                     [&](std::size_t i) {
                       if (i == 37) throw std::runtime_error("boom 37");
                     }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(ThreadPool, SmallestIndexExceptionWinsRegardlessOfScheduling) {
  // Every index throws, so whichever interleaving the pool picks, several
  // failures race; the contract pins the propagated one to the smallest
  // index so error reports do not depend on scheduling.
  for (const int threads : {1, 2, 8}) {
    std::string what;
    try {
      parallel_for(64, threads, [&](std::size_t i) {
        throw std::runtime_error("idx " + std::to_string(i));
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "idx 0") << threads << " threads";
  }
}

TEST(ThreadPool, ExceptionStopsDistributionOfNewIndexes) {
  std::atomic<int> ran{0};
  try {
    parallel_for(100'000, 4, [&](std::size_t i) {
      ++ran;
      if (i == 0) throw std::runtime_error("early");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error&) {
  }
  // Not all 100k indexes may run: the failure cancels the remainder. The
  // exact count is schedule-dependent; it must only be well under the full
  // range (each worker can overshoot by at most its in-flight index).
  EXPECT_LT(ran.load(), 100'000);
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCoversRange) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<int>> hits(kOuter);
  parallel_for(kOuter, 8, [&](std::size_t o) {
    hits[o].assign(kInner, 0);
    // Nested region: must degrade to the serial inline loop (no deadlock,
    // no thread explosion), so non-atomic writes into this row are safe.
    parallel_for(kInner, 8, [&](std::size_t i) { ++hits[o][i]; });
  });
  for (const auto& row : hits) {
    ASSERT_EQ(row.size(), kInner);
    for (const int h : row) ASSERT_EQ(h, 1);
  }
}

// The discipline the analysis engine relies on: each body(i) writes slot i,
// the caller reduces in index order afterwards. Floating-point addition is
// not associative, so this only yields bit-identical sums because the
// REDUCTION is serial — the parallel part just fills the slots.
TEST(ThreadPool, SlotFillPlusOrderedReductionIsBitIdenticalAcrossThreads) {
  constexpr std::size_t kN = 4096;
  const auto reduce_with = [&](int threads) {
    std::vector<double> slots(kN);
    parallel_for(kN, threads, [&](std::size_t i) {
      // Irrational-ish values so any reassociation would change the bits.
      slots[i] = 1.0 / (3.0 + static_cast<double>(i) * 0.7071067811865476);
    });
    double sum = 0.0;
    for (const double s : slots) sum += s;  // caller-side, index order
    return sum;
  };
  const double serial = reduce_with(1);
  for (const int threads : {2, 3, 8, 32}) {
    const double parallel = reduce_with(threads);
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(ThreadPool, ParallelMapOrdersResultsByIndex) {
  for (const int threads : {1, 2, 8}) {
    const std::vector<std::size_t> out = parallel_map<std::size_t>(
        1000, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  EXPECT_THROW(parallel_for(8, 4,
                            [](std::size_t) {
                              throw std::runtime_error("poison");
                            }),
               std::runtime_error);
  // The pool must come back clean: subsequent regions run normally.
  std::atomic<int> calls{0};
  parallel_for(100, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 100);
}

}  // namespace
}  // namespace hetnet::util
