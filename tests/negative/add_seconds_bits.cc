// MUST NOT COMPILE: adding a duration to a data amount is dimensionally
// meaningless; Quantity only defines operator+ between identical dimensions.
#include "src/util/units.h"

namespace hetnet {

double broken(Seconds t, Bits b) {
  return val(t + b);  // error: no operator+(Seconds, Bits)
}

}  // namespace hetnet

int main() { return 0; }
