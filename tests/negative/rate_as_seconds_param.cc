// MUST NOT COMPILE: passing a bandwidth where a duration is expected. The
// classic bug this library exists to prevent — swapped arguments at a
// call site compile fine when everything is `double`.
#include "src/util/units.h"

namespace hetnet {

Seconds deadline_slack(Seconds deadline, Seconds elapsed) {
  return deadline - elapsed;
}

Seconds broken() {
  const BitsPerSecond link = units::mbps(100);
  return deadline_slack(link, units::ms(5));  // error: BitsPerSecond != Seconds
}

}  // namespace hetnet

int main() { return 0; }
