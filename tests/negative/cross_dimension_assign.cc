// MUST NOT COMPILE: the result of Bits / Seconds is a BitsPerSecond; it
// cannot be stored back into a Bits variable.
#include "src/util/units.h"

namespace hetnet {

void broken() {
  Bits burst{42400.0};
  burst = burst / units::ms(1);  // error: Quantity<-1,1> is not Bits
}

}  // namespace hetnet

int main() { return 0; }
