// MUST NOT COMPILE: assigning a raw double to a HopSpec's propagation.
// Hop sequences are data, and data written as bare numbers is exactly where
// a 0.25 silently means "seconds" to one reader and "milliseconds" to
// another — the strong types force units::* at the literal.
#include "src/servers/registry.h"
#include "src/util/units.h"

namespace hetnet {

servers::HopSpec broken() {
  servers::HopSpec hop;
  hop.medium = "satellite-atm";
  hop.propagation = 0.25;  // error: double is not Seconds
  return hop;
}

}  // namespace hetnet

int main() { return 0; }
