// MUST NOT COMPILE: putting a duration into a HopSpec's signalling-rate
// override. Swapped hop-spec fields would otherwise survive until a medium
// factory divides by them.
#include "src/servers/registry.h"
#include "src/util/units.h"

namespace hetnet {

servers::HopSpec broken() {
  servers::HopSpec hop;
  hop.medium = "tdma-ethernet";
  hop.rate = units::ms(1);  // error: Seconds is not BitsPerSecond
  return hop;
}

}  // namespace hetnet

int main() { return 0; }
