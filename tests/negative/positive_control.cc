// Positive control: the same surrounding code as the failing cases, with
// dimensionally correct expressions. Must compile — otherwise the negative
// cases are failing for the wrong reason (broken include path, bad flag, …).
#include "src/util/units.h"

namespace hetnet {

Seconds transmission_time(Bits frame, BitsPerSecond rate) {
  return frame / rate;
}

Bits bits_in_window(BitsPerSecond rate, Seconds window) {
  return rate * window;
}

Seconds total_latency(Seconds queueing, Seconds propagation) {
  return queueing + propagation;
}

double utilization(BitsPerSecond offered, BitsPerSecond capacity) {
  return offered / capacity;
}

Seconds explicit_construction() { return Seconds{1.5e-3}; }

}  // namespace hetnet

int main() { return 0; }
