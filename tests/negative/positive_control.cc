// Positive control: the same surrounding code as the failing cases, with
// dimensionally correct expressions. Must compile — otherwise the negative
// cases are failing for the wrong reason (broken include path, bad flag, …).
#include "src/servers/registry.h"
#include "src/util/units.h"

namespace hetnet {

Seconds transmission_time(Bits frame, BitsPerSecond rate) {
  return frame / rate;
}

Bits bits_in_window(BitsPerSecond rate, Seconds window) {
  return rate * window;
}

Seconds total_latency(Seconds queueing, Seconds propagation) {
  return queueing + propagation;
}

double utilization(BitsPerSecond offered, BitsPerSecond capacity) {
  return offered / capacity;
}

Seconds explicit_construction() { return Seconds{1.5e-3}; }

servers::HopSpec well_typed_hop() {
  servers::HopSpec hop;
  hop.medium = "satellite-atm";
  hop.propagation = units::ms(250);
  hop.rate = units::mbps(155);
  hop.slot_time = units::us(64);
  return hop;
}

}  // namespace hetnet

int main() { return 0; }
