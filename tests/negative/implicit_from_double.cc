// MUST NOT COMPILE: Quantity's double constructor is explicit, so a bare
// magnitude cannot silently become a physical quantity — the unit (seconds?
// milliseconds?) must be stated at the point of creation.
#include "src/util/units.h"

namespace hetnet {

Seconds broken() {
  Seconds s = 1.0;  // error: explicit constructor
  return s;
}

}  // namespace hetnet

int main() { return 0; }
