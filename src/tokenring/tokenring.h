// IEEE 802.5 token-ring MAC server — the Section 7 extension.
//
// "Our methodology can be easily extended to the networks with different
//  configurations. For example, if the LAN segments are IEEE 802.5 token
//  rings, one only needs to analyze an 802.5_MAC server in addition to the
//  servers that have been analyzed in this paper."
//
// Model (the classic priority-token analysis of Strosnider [20]): each
// real-time station transmits at most one frame of its reserved size per
// token visit, and the token returns within the worst-case cycle
//
//     T_cycle = walk latency + Σ_j (frame_j + overhead) / ring rate
//
// over all stations j on the ring. The guaranteed service is therefore one
// frame per T_cycle — the same step-function structure as the FDDI
// timed-token bound with TTRT → T_cycle and H·BW → frame payload, so the
// Theorem-1 machinery applies verbatim. This module packages that
// correspondence: it computes the worst-case cycle for a station population
// and exposes an 802.5 MAC server that can be dropped into any ServerChain
// (e.g. an 802.5-ATM-802.5 path; see tests/tokenring for a full chain).
#pragma once

#include <vector>

#include "src/servers/fddi_mac.h"
#include "src/servers/server.h"
#include "src/util/units.h"

namespace hetnet::tokenring {

struct TokenRingParams {
  // 4 or 16 Mb/s rings were deployed; default to the fast variant.
  BitsPerSecond ring_rate = units::mbps(16);
  // Token walk latency around the ring (propagation + per-station repeat).
  Seconds walk_latency = units::us(30);
  // Per-frame MAC overhead: SD+AC+FC+DA+SA+FCS+ED+FS = 21 bytes.
  Bits frame_overhead = units::bytes(21);
};

// Worst-case token cycle when every station j may hold the token for one
// frame of payload `frame_payloads[j]` per visit.
Seconds worst_cycle(const TokenRingParams& ring,
                    const std::vector<Bits>& frame_payloads);

// Effective payload rate while a station transmits its frame.
BitsPerSecond effective_payload_rate(const TokenRingParams& ring,
                                     Bits frame_payload);

class TokenRingMacServer final : public Server {
 public:
  // A station reserving one `frame_payload`-bit frame per token visit, on a
  // ring whose worst-case cycle (all stations' reservations included) is
  // `cycle`. `buffer_limit` mirrors Theorem 1's S.
  TokenRingMacServer(std::string name, const TokenRingParams& ring,
                     Bits frame_payload, Seconds cycle,
                     Bits buffer_limit =
                         Bits::infinity(),
                     const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return inner_.name(); }

  // The guaranteed-rate view: one frame per cycle.
  BitsPerSecond guaranteed_rate() const;

 private:
  FddiMacServer inner_;
};

}  // namespace hetnet::tokenring
