#include "src/tokenring/tokenring.h"

#include "src/util/check.h"

namespace hetnet::tokenring {
namespace {

FddiMacParams as_timed_token(const TokenRingParams& ring, Bits frame_payload,
                             Seconds cycle, Bits buffer_limit) {
  HETNET_CHECK(frame_payload > 0, "frame payload must be positive");
  HETNET_CHECK(cycle > 0, "cycle must be positive");
  // One frame per visit ⟺ synchronous window of exactly one frame time at
  // the effective payload rate; the cycle plays TTRT's role.
  FddiMacParams params;
  params.ttrt = cycle;
  params.ring_rate = effective_payload_rate(ring, frame_payload);
  params.sync_allocation = frame_payload / params.ring_rate;
  HETNET_CHECK(params.sync_allocation <= cycle,
               "one frame must fit within the worst-case cycle");
  params.buffer_limit = buffer_limit;
  return params;
}

}  // namespace

Seconds worst_cycle(const TokenRingParams& ring,
                    const std::vector<Bits>& frame_payloads) {
  HETNET_CHECK(ring.ring_rate > 0, "ring rate must be positive");
  Seconds cycle = ring.walk_latency;
  for (Bits payload : frame_payloads) {
    HETNET_CHECK(payload > 0, "frame payload must be positive");
    cycle += (payload + ring.frame_overhead) / ring.ring_rate;
  }
  return cycle;
}

BitsPerSecond effective_payload_rate(const TokenRingParams& ring,
                                     Bits frame_payload) {
  HETNET_CHECK(frame_payload > 0, "frame payload must be positive");
  return ring.ring_rate * frame_payload /
         (frame_payload + ring.frame_overhead);
}

TokenRingMacServer::TokenRingMacServer(std::string name,
                                       const TokenRingParams& ring,
                                       Bits frame_payload, Seconds cycle,
                                       Bits buffer_limit,
                                       const AnalysisConfig& config)
    : inner_(std::move(name),
             as_timed_token(ring, frame_payload, cycle, buffer_limit),
             config) {}

std::optional<ServerAnalysis> TokenRingMacServer::analyze(
    const EnvelopePtr& input) const {
  return inner_.analyze(input);
}

BitsPerSecond TokenRingMacServer::guaranteed_rate() const {
  return inner_.params().sync_allocation * inner_.params().ring_rate /
         inner_.params().ttrt;
}

}  // namespace hetnet::tokenring
