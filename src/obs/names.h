// Central metric-name table. Every counter / gauge / histogram /
// callback name used inside src/ lives here as a constant; call sites
// pass the constant, never a string literal. A typo'd literal silently
// creates a dead series (find-or-create registries cannot distinguish a
// new metric from a misspelled one), so the hetlint metric-name-literal
// check rejects string literals at registry call sites in src/ — this
// file is the one sanctioned spelling of each name.
//
// Naming convention: dotted lowercase `<subsystem>.<group>.<metric>`,
// units spelled in the trailing segment where they matter (`_ns`,
// `_bits`, `_s`). Exposition (src/obs/exposition.h) sanitizes the dots
// for Prometheus; the dotted form is canonical everywhere else.
#ifndef HETNET_OBS_NAMES_H_
#define HETNET_OBS_NAMES_H_

namespace hetnet::obs::names {

// --- Admission controller (src/core/cac.cc) ---
inline constexpr char kCacRequests[] = "cac.requests";
inline constexpr char kCacAdmitted[] = "cac.admitted";
inline constexpr char kCacRejectedNoSyncBandwidth[] =
    "cac.rejected.no_sync_bandwidth";
inline constexpr char kCacRejectedInfeasible[] = "cac.rejected.infeasible";
inline constexpr char kCacProbeEvals[] = "cac.probe_evals";
inline constexpr char kCacSpeculativeBatches[] = "cac.speculative_batches";
inline constexpr char kCacSpeculativePoints[] = "cac.speculative_points";
inline constexpr char kCacPrewarmBatches[] = "cac.prewarm_batches";
inline constexpr char kCacPrewarmPoints[] = "cac.prewarm_points";
inline constexpr char kCacReleaseInvalidations[] = "cac.release_invalidations";
inline constexpr char kCacActiveConnections[] = "cac.active_connections";

// --- Tier-A screen and tier attribution (src/core/cac.cc) ---
inline constexpr char kCacScreenEvals[] = "cac.screen.evals";
inline constexpr char kCacScreenFloorCerts[] = "cac.screen.floor_certs";
inline constexpr char kCacScreenUpperCerts[] = "cac.screen.upper_certs";
inline constexpr char kCacTierScreenAdmit[] = "cac.tier.screen_admit";
inline constexpr char kCacTierScreenReject[] = "cac.tier.screen_reject";
inline constexpr char kCacTierFallback[] = "cac.tier.fallback";

// --- AnalysisSession memo tallies (callback-backed, src/core/cac.cc) ---
inline constexpr char kCacSessionPortEvals[] = "cac.session.port_evals";
inline constexpr char kCacSessionPortHits[] = "cac.session.port_hits";
inline constexpr char kCacSessionSuffixEvals[] = "cac.session.suffix_evals";
inline constexpr char kCacSessionSuffixHits[] = "cac.session.suffix_hits";
inline constexpr char kCacSessionDecisionHits[] = "cac.session.decision_hits";
inline constexpr char kCacSessionDecisionEvals[] = "cac.session.decision_evals";
inline constexpr char kCacSessionFlatHits[] = "cac.session.flat_hits";
inline constexpr char kCacSessionFlatCompiles[] = "cac.session.flat_compiles";
inline constexpr char kCacSessionEvictions[] = "cac.session.evictions";
inline constexpr char kCacSessionInvalidations[] = "cac.session.invalidations";
inline constexpr char kCacSessionEntries[] = "cac.session.entries";
inline constexpr char kCacPrefixEvictions[] = "cac.prefix.evictions";

// --- Packet simulator (src/sim/packet_sim.cc) ---
inline constexpr char kSimPacketEventsExecuted[] = "sim.packet.events_executed";
inline constexpr char kSimPacketMessagesGenerated[] =
    "sim.packet.messages_generated";
inline constexpr char kSimPacketMessagesDelivered[] =
    "sim.packet.messages_delivered";
inline constexpr char kSimPacketMaxPortBacklogBits[] =
    "sim.packet.max_port_backlog_bits";
inline constexpr char kSimPacketMaxTokenRotationS[] =
    "sim.packet.max_token_rotation_s";

// --- admissiond service (src/server/admissiond.cc) ---
// The latency histograms gain a ".epochN" suffix after each
// begin_measurement(); the bases here are the canonical prefixes.
inline constexpr char kAdmissiondSetupNs[] = "admissiond.setup_ns";
inline constexpr char kAdmissiondSteadyNs[] = "admissiond.steady_ns";
inline constexpr char kAdmissiondPostEvictionNs[] =
    "admissiond.post_eviction_ns";
inline constexpr char kAdmissiondSloEpochs[] = "admissiond.slo.epochs";
inline constexpr char kAdmissiondSloBreaches[] = "admissiond.slo.breaches";
inline constexpr char kAdmissiondFlightRecorded[] =
    "admissiond.flight.recorded";
inline constexpr char kAdmissiondFlightDropped[] = "admissiond.flight.dropped";

}  // namespace hetnet::obs::names

#endif  // HETNET_OBS_NAMES_H_
