#include "src/obs/exposition.h"

#include <cctype>
#include <cmath>
#include <ostream>
#include <string>

namespace hetnet::obs {
namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (our canonical
// separator) and anything else exotic become underscores.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Minimal JSON string escaping; metric names are ASCII identifiers, but
// be safe anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      const char* hex = "0123456789abcdef";
      out.push_back(hex[(c >> 4) & 0xF]);
      out.push_back(hex[c & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

double upper_edge(int bin) {
  return std::exp2(double(bin + 1) / ShardedHistogram::kBinsPerOctave);
}

}  // namespace

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  for (const auto& [name, value] : registry.counter_snapshot()) {
    const std::string p = sanitize(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauge_snapshot()) {
    const std::string p = sanitize(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, merged] : registry.histogram_snapshot()) {
    const std::string p = sanitize(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < int(merged.bins.size()); ++i) {
      if (merged.bins[std::size_t(i)] == 0) continue;
      cumulative += merged.bins[std::size_t(i)];
      out << p << "_bucket{le=\"" << upper_edge(i) << "\"} " << cumulative
          << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << merged.count << "\n"
        << p << "_sum " << merged.sum << "\n"
        << p << "_count " << merged.count << "\n";
  }
}

void write_metrics_json(const MetricsRegistry& registry, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.counter_snapshot()) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.gauge_snapshot()) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, merged] : registry.histogram_snapshot()) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
        << "\"count\": " << merged.count;
    if (merged.count > 0) {
      out << ", \"min\": " << merged.min << ", \"max\": " << merged.max
          << ", \"sum\": " << merged.sum
          << ", \"mean\": " << merged.mean()
          << ", \"p50\": " << merged.quantile_upper(0.5)
          << ", \"p99\": " << merged.quantile_upper(0.99);
    }
    out << "}";
    first = false;
  }
  out << (first ? "}\n" : "\n  }\n") << "}\n";
}

}  // namespace hetnet::obs
