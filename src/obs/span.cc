#include "src/obs/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace hetnet::obs {

namespace internal {
std::atomic<TraceRecorder*> g_global_recorder{nullptr};
}  // namespace internal

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Trace timestamps come from steady_clock durations, so they are finite
// and non-exotic; %.3f keeps microsecond fractions without JSON noise.
void write_json_number(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out << buf;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t max_events_per_thread)
    : id_(next_recorder_id()),
      max_events_per_thread_(max_events_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

Seconds TraceRecorder::now() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return Seconds{std::chrono::duration<double>(dt).count()};
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  // Same id-keyed thread-local scheme as ShardedHistogram::local_shard:
  // ids are never reused, so stale entries can never be matched.
  thread_local std::vector<std::pair<std::uint64_t, Buffer*>> cache;
  for (const auto& [id, buffer] : cache) {
    if (id == id_) return *buffer;
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buffer = buffers_.back().get();
  buffer->tid = std::uint32_t(buffers_.size());  // dense, 1-based
  cache.emplace_back(id_, buffer);
  return *buffer;
}

void TraceRecorder::record_complete(const char* name, const char* category,
                                    Seconds ts, Seconds dur,
                                    const Arg* args, int num_args) {
  Buffer& buffer = local_buffer();
  if (buffer.events.size() >= max_events_per_thread_) {
    // Cap reached: count the loss instead of growing without bound. The
    // branch costs nothing extra — size/capacity are already hot from the
    // push_back below.
    ++buffer.dropped;
    return;
  }
  Event event;
  event.name = name;
  event.category = category;
  event.ts = ts;
  event.dur = dur;
  event.num_args = std::min(num_args, kMaxArgs);
  for (int i = 0; i < event.num_args; ++i) event.args[i] = args[i];
  buffer.events.push_back(event);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->dropped;
  return n;
}

void TraceRecorder::drain_chrome_trace(std::ostream& out) {
  write_chrome_trace(out);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) buffer->events.clear();
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  struct Flat {
    const Event* event;
    std::uint32_t tid;
  };
  std::vector<Flat> flat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      for (const Event& event : buffer->events) {
        flat.push_back({&event, buffer->tid});
      }
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const Flat& a, const Flat& b) {
                     return a.event->ts < b.event->ts;
                   });

  // Chrome trace-event "JSON object format". Names/categories/arg keys
  // are engine-chosen literals (no escaping needed).
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Flat& item : flat) {
    const Event& e = *item.event;
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
        << "\",\"ph\":\"X\",\"ts\":";
    write_json_number(out, val(e.ts) * 1e6);  // Chrome's native µs
    out << ",\"dur\":";
    write_json_number(out, val(e.dur) * 1e6);
    out << ",\"pid\":1,\"tid\":" << item.tid;
    if (e.num_args > 0) {
      out << ",\"args\":{";
      for (int i = 0; i < e.num_args; ++i) {
        if (i > 0) out << ",";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(e.args[i].value));
        out << "\"" << e.args[i].key << "\":" << buf;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::install_global(TraceRecorder* recorder) {
  internal::g_global_recorder.store(recorder, std::memory_order_release);
}

}  // namespace hetnet::obs
