// Metric exposition: serialize a MetricsRegistry snapshot as
// Prometheus text format (scrape-file / node-exporter textfile shape)
// or as one flat JSON object (machine-diffable; tools/obs_diff.py
// consumes it).
//
// Both writers take the same serial snapshot (counter / gauge /
// histogram maps) so one emission is internally consistent; they are
// safe to call while recorders run, with the same torn-but-valid
// guarantee as ShardedHistogram::merged().
//
// Prometheus mapping: dotted metric names sanitize to underscores
// ("cac.tier.screen_admit" -> "cac_tier_screen_admit"); counters emit
// `# TYPE ... counter`, gauges `gauge`, and each ShardedHistogram emits
// cumulative `_bucket{le="..."}` lines for its populated bins plus the
// `+Inf` bucket, `_sum`, and `_count` — the native histogram shape, so
// quantile math stays the consumer's choice.
#ifndef HETNET_OBS_EXPOSITION_H_
#define HETNET_OBS_EXPOSITION_H_

#include <iosfwd>

#include "src/obs/metrics.h"

namespace hetnet::obs {

void write_prometheus(const MetricsRegistry& registry, std::ostream& out);

// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
// max, sum, p50_ns-style quantiles computed conservatively}}}. Keys are
// sorted (std::map order) so equal registries serialize byte-identically.
void write_metrics_json(const MetricsRegistry& registry, std::ostream& out);

}  // namespace hetnet::obs

#endif  // HETNET_OBS_EXPOSITION_H_
