#include "src/obs/slo.h"

#include <algorithm>
#include <ostream>

#include "src/util/check.h"

namespace hetnet::obs {

void SloWindowReport::write_json(std::ostream& out) const {
  out << "{\n"
      << "  \"epochs\": " << epochs << ",\n"
      << "  \"setups\": " << setups << ",\n"
      << "  \"admitted\": " << admitted << ",\n"
      << "  \"p50_ns\": " << p50_ns << ",\n"
      << "  \"p99_ns\": " << p99_ns << ",\n"
      << "  \"p50_lower_ns\": " << p50_lower_ns << ",\n"
      << "  \"latency_samples\": " << latency_samples << ",\n"
      << "  \"admission_probability\": " << admission_probability << ",\n"
      << "  \"breached_epochs\": " << breached_epochs << ",\n"
      << "  \"burn_rate\": " << burn_rate << ",\n"
      << "  \"newest_epoch_breached\": "
      << (newest_epoch_breached ? "true" : "false") << "\n"
      << "}\n";
}

SloMonitor::SloMonitor(const SloSpec& spec) : spec_(spec) {
  HETNET_CHECK(spec_.window_epochs >= 1, "SLO window needs >= 1 epoch");
  HETNET_CHECK(spec_.epoch_budget_fraction > 0.0 &&
                   spec_.epoch_budget_fraction <= 1.0,
               "epoch_budget_fraction must be in (0, 1]");
  reset();
}

void SloMonitor::reset() {
  ring_.clear();
  breach_flags_.clear();
  ring_.push_back(Snapshot{});  // zero baseline: first delta = cumulative
}

bool SloMonitor::epoch_breached(const ShardedHistogram::Merged& delta,
                                std::uint64_t setups,
                                std::uint64_t admitted) const {
  if (delta.count > 0) {
    if (spec_.p50_ns > 0 &&
        std::int64_t(delta.quantile_upper(0.5)) > spec_.p50_ns) {
      return true;
    }
    if (spec_.p99_ns > 0 &&
        std::int64_t(delta.quantile_upper(0.99)) > spec_.p99_ns) {
      return true;
    }
  }
  if (spec_.min_admission_probability > 0.0 && setups > 0) {
    const double prob = double(admitted) / double(setups);
    if (prob < spec_.min_admission_probability) return true;
  }
  return false;
}

bool SloMonitor::advance(const ShardedHistogram::Merged& cumulative_latency,
                         std::uint64_t cumulative_setups,
                         std::uint64_t cumulative_admitted) {
  const Snapshot& prev = ring_.back();
  const ShardedHistogram::Merged delta =
      cumulative_latency.subtract(prev.latency);
  // Cumulative tallies are monotone per reset(); saturate anyway so a
  // misuse (advance across a histogram swap without reset) degrades to a
  // quiet epoch instead of wrapping.
  const std::uint64_t dsetups =
      cumulative_setups > prev.setups ? cumulative_setups - prev.setups : 0;
  const std::uint64_t dadmitted = cumulative_admitted > prev.admitted
                                      ? cumulative_admitted - prev.admitted
                                      : 0;
  const bool breached = epoch_breached(delta, dsetups, dadmitted);

  ring_.push_back(
      Snapshot{cumulative_latency, cumulative_setups, cumulative_admitted});
  breach_flags_.push_back(breached);
  while (int(breach_flags_.size()) > spec_.window_epochs) {
    ring_.pop_front();
    breach_flags_.pop_front();
  }
  ++total_epochs_;
  if (breached) ++total_breaches_;
  return breached;
}

SloWindowReport SloMonitor::window() const {
  SloWindowReport r;
  r.epochs = breach_flags_.size();
  if (r.epochs == 0) return r;
  const Snapshot& oldest = ring_.front();
  const Snapshot& newest = ring_.back();
  const ShardedHistogram::Merged delta = newest.latency.subtract(oldest.latency);
  r.setups = newest.setups - oldest.setups;
  r.admitted = newest.admitted - oldest.admitted;
  r.latency_samples = delta.count;
  if (delta.count > 0) {
    r.p50_ns = std::int64_t(delta.quantile_upper(0.5));
    r.p99_ns = std::int64_t(delta.quantile_upper(0.99));
    r.p50_lower_ns = std::int64_t(delta.quantile_lower(0.5));
  }
  r.admission_probability =
      r.setups > 0 ? double(r.admitted) / double(r.setups) : 0.0;
  r.breached_epochs = std::uint64_t(
      std::count(breach_flags_.begin(), breach_flags_.end(), true));
  const double breach_fraction = double(r.breached_epochs) / double(r.epochs);
  r.burn_rate = breach_fraction / spec_.epoch_budget_fraction;
  r.newest_epoch_breached = breach_flags_.back();
  return r;
}

}  // namespace hetnet::obs
