// Epoch-windowed SLO monitor.
//
// admissiond (src/server) commits requests in rounds; every
// `rounds_per_epoch` rounds it closes an EPOCH by handing the monitor a
// cumulative latency snapshot (ShardedHistogram::merged()) plus the
// cumulative setup/admit tallies. The monitor keeps a ring of the last
// `window_epochs + 1` cumulative snapshots; per-epoch and whole-window
// views are Merged::subtract() deltas, so the storage cost is
// O(window_epochs * kNumBins) regardless of run length and no per-sample
// state is ever retained.
//
// Per epoch the monitor evaluates the configured targets (SloSpec) on
// that epoch's delta: conservative p50/p99 (quantile_upper — a breach
// verdict from an upper bound is never a false *pass*), and admission
// probability. The window view adds the burn rate: the fraction of
// breached epochs in the window over the allowed budget fraction, the
// standard error-budget formulation (burn > 1 means the budget is being
// spent faster than provisioned).
//
// Determinism contract: the monitor is observation-only — it reads
// latency snapshots and tallies, feeds nothing back into admission
// decisions, and is evaluated serially on the commit thread.
#ifndef HETNET_OBS_SLO_H_
#define HETNET_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <iosfwd>

#include "src/obs/metrics.h"

namespace hetnet::obs {

// SLO targets. A field at its zero default is disabled; the monitor is
// inert (enabled() == false) until at least one target is set.
struct SloSpec {
  std::int64_t p50_ns = 0;   // epoch p50 must stay <= this (0: off)
  std::int64_t p99_ns = 0;   // epoch p99 must stay <= this (0: off)
  double min_admission_probability = 0.0;  // epoch admits/setups >= this
  // Error budget: fraction of window epochs allowed to breach before the
  // burn rate hits 1.0.
  double epoch_budget_fraction = 0.25;
  int window_epochs = 8;

  bool enabled() const {
    return p50_ns > 0 || p99_ns > 0 || min_admission_probability > 0.0;
  }
};

// Sliding-window view over the most recent epochs.
struct SloWindowReport {
  std::uint64_t epochs = 0;           // epochs folded into the window
  std::uint64_t setups = 0;
  std::uint64_t admitted = 0;
  std::int64_t p50_ns = 0;            // conservative (upper bin edge)
  std::int64_t p99_ns = 0;
  std::int64_t p50_lower_ns = 0;      // optimistic twin (lower bin edge)
  std::uint64_t latency_samples = 0;
  double admission_probability = 0.0;  // admitted / setups over the window
  std::uint64_t breached_epochs = 0;
  double burn_rate = 0.0;             // breach fraction / budget fraction
  bool newest_epoch_breached = false;

  // One flat JSON object (stable key order) for CI artifacts.
  void write_json(std::ostream& out) const;
};

class SloMonitor {
 public:
  explicit SloMonitor(const SloSpec& spec);

  const SloSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  // Closes one epoch from CUMULATIVE inputs (the latency histogram's
  // merged() and running setup/admit totals since the last reset()).
  // Serial. Returns true when the epoch just closed breached a target.
  bool advance(const ShardedHistogram::Merged& cumulative_latency,
               std::uint64_t cumulative_setups,
               std::uint64_t cumulative_admitted);

  // Drops all window state and re-bases the cumulative baseline at zero.
  // Call when the underlying histogram is swapped (admissiond's
  // begin_measurement starts a fresh epoch-suffixed histogram).
  void reset();

  SloWindowReport window() const;

  std::uint64_t epochs() const { return total_epochs_; }
  std::uint64_t breaches() const { return total_breaches_; }

 private:
  struct Snapshot {
    ShardedHistogram::Merged latency;  // cumulative at epoch close
    std::uint64_t setups = 0;
    std::uint64_t admitted = 0;
  };

  bool epoch_breached(const ShardedHistogram::Merged& delta,
                      std::uint64_t setups, std::uint64_t admitted) const;

  SloSpec spec_;
  // ring_[0] is the window baseline (cumulative state BEFORE the oldest
  // in-window epoch); ring_.back() is the newest close. The zero-valued
  // seed snapshot makes the first epoch's delta the cumulative state
  // itself.
  std::deque<Snapshot> ring_;
  std::deque<bool> breach_flags_;  // one per in-window epoch
  std::uint64_t total_epochs_ = 0;
  std::uint64_t total_breaches_ = 0;
};

}  // namespace hetnet::obs

#endif  // HETNET_OBS_SLO_H_
