// Scoped spans with Chrome trace-event JSON export.
//
// A TraceRecorder collects complete ("ph":"X") events into per-thread
// buffers; write_chrome_trace() emits the JSON object format that
// chrome://tracing and Perfetto load directly. Recording is optional and
// process-global: span sites check one relaxed atomic pointer, so with no
// recorder installed a span costs a load and a branch. Compiling with
// -DHETNET_OBS_DISABLED removes even that (the macros expand to an inert
// object).
//
// Determinism contract: spans only read the clock and append to a
// thread-private buffer. They never synchronize engine threads or feed
// values back into analysis, so installing a recorder cannot change
// admission decisions or analysis results.
//
// Usage (names/categories/arg keys must be string literals or otherwise
// outlive the recorder — they are stored as const char*):
//
//   obs::ScopedRecording rec;                 // install for a region
//   { HETNET_OBS_SPAN("cac.request", "cac"); ... }
//   { HETNET_OBS_SPAN_NAMED(span, "analyzer.wave", "analysis");
//     span.arg("ports", std::int64_t(wave.size())); ... }
//   std::ofstream out("trace.json");
//   rec.recorder().write_chrome_trace(out);
#ifndef HETNET_OBS_SPAN_H_
#define HETNET_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "src/util/units.h"

namespace hetnet::obs {

class TraceRecorder {
 public:
  static constexpr int kMaxArgs = 2;
  // Default per-thread event cap. A long-lived process (admissiond soaks)
  // must not grow trace buffers without bound: once a thread's buffer is
  // full, further events on that thread are counted in dropped_count()
  // instead of recorded. Drain (drain_chrome_trace) or raise the cap for
  // full-fidelity traces.
  static constexpr std::size_t kDefaultMaxEventsPerThread = 1 << 20;

  struct Arg {
    const char* key = nullptr;
    std::int64_t value = 0;
  };

  explicit TraceRecorder(
      std::size_t max_events_per_thread = kDefaultMaxEventsPerThread);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Time since this recorder's construction (the trace timebase; the
  // exporter converts to the Chrome format's native microseconds).
  Seconds now() const;

  // Appends one complete event to the calling thread's buffer. `name`,
  // `category`, and arg keys must outlive the recorder (use literals).
  void record_complete(const char* name, const char* category, Seconds ts,
                       Seconds dur, const Arg* args, int num_args);

  // Serial export (no concurrent record_complete calls). Events are
  // sorted by timestamp; thread ids are small dense integers in
  // first-record order.
  void write_chrome_trace(std::ostream& out) const;
  std::size_t event_count() const;

  // Events rejected by the per-thread cap since construction (NOT reset by
  // drains — it is the soak's data-loss ledger). Serial read, like
  // event_count().
  std::uint64_t dropped_count() const;

  // Drain-on-export: write_chrome_trace(), then clear every buffer so
  // recording can continue into reclaimed capacity. Timestamps keep the
  // recorder's single epoch, so consecutive drained segments concatenate on
  // a common timebase. Serial operation (no concurrent record_complete).
  void drain_chrome_trace(std::ostream& out);

  // Process-global recorder used by the HETNET_OBS_SPAN macros. Install
  // nullptr to stop recording; the recorder must outlive all spans that
  // may observe it (install/uninstall from serial sections only).
  static TraceRecorder* global();
  static void install_global(TraceRecorder* recorder);

 private:
  struct Event {
    const char* name;
    const char* category;
    Seconds ts;
    Seconds dur;
    int num_args;
    Arg args[kMaxArgs];
  };
  struct Buffer {
    std::uint32_t tid = 0;
    std::vector<Event> events;
    // Thread-private overflow tally (only the owning thread writes it;
    // dropped_count() reads serially, like event_count reads events).
    std::uint64_t dropped = 0;
  };

  Buffer& local_buffer();

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::size_t max_events_per_thread_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards buffers_ registration only
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

namespace internal {
extern std::atomic<TraceRecorder*> g_global_recorder;
}  // namespace internal

inline TraceRecorder* TraceRecorder::global() {
  return internal::g_global_recorder.load(std::memory_order_acquire);
}

// RAII span: captures the global recorder once at open so the pair of
// timestamps always lands in the same recorder (or nowhere).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : recorder_(TraceRecorder::global()) {
    if (recorder_ != nullptr) {
      name_ = name;
      category_ = category;
      start_ = recorder_->now();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches up to kMaxArgs integer args (extra calls are dropped).
  ScopedSpan& arg(const char* key, std::int64_t value) {
    if (recorder_ != nullptr && num_args_ < TraceRecorder::kMaxArgs) {
      args_[num_args_].key = key;
      args_[num_args_].value = value;
      ++num_args_;
    }
    return *this;
  }

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->record_complete(name_, category_, start_,
                                 recorder_->now() - start_, args_,
                                 num_args_);
    }
  }

 private:
  TraceRecorder* const recorder_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  Seconds start_;
  TraceRecorder::Arg args_[TraceRecorder::kMaxArgs];
  int num_args_ = 0;
};

// Compile-time kill switch target: same surface as ScopedSpan, no code.
struct NullSpan {
  NullSpan& arg(const char*, std::int64_t) { return *this; }
};

// Installs a recorder for the enclosing scope and uninstalls on exit.
// The single-argument form gates installation on a runtime flag (a CLI's
// --trace-out option): when disabled, the recorder exists but records
// nothing and spans stay on their null-recorder fast path.
class ScopedRecording {
 public:
  ScopedRecording() : ScopedRecording(true) {}
  explicit ScopedRecording(
      bool enabled,
      std::size_t max_events_per_thread =
          TraceRecorder::kDefaultMaxEventsPerThread)
      : enabled_(enabled), recorder_(max_events_per_thread) {
    if (enabled_) TraceRecorder::install_global(&recorder_);
  }
  ~ScopedRecording() {
    if (enabled_) TraceRecorder::install_global(nullptr);
  }

  ScopedRecording(const ScopedRecording&) = delete;
  ScopedRecording& operator=(const ScopedRecording&) = delete;

  TraceRecorder& recorder() { return recorder_; }

 private:
  const bool enabled_;
  TraceRecorder recorder_;
};

}  // namespace hetnet::obs

#define HETNET_OBS_CONCAT_INNER_(a, b) a##b
#define HETNET_OBS_CONCAT_(a, b) HETNET_OBS_CONCAT_INNER_(a, b)

#if defined(HETNET_OBS_DISABLED)
#define HETNET_OBS_SPAN_NAMED(var, name, category) \
  [[maybe_unused]] ::hetnet::obs::NullSpan var {}
#else
#define HETNET_OBS_SPAN_NAMED(var, name, category) \
  ::hetnet::obs::ScopedSpan var((name), (category))
#endif

#define HETNET_OBS_SPAN(name, category)                                     \
  HETNET_OBS_SPAN_NAMED(HETNET_OBS_CONCAT_(hetnet_obs_span_, __LINE__), name, \
                        category)

#endif  // HETNET_OBS_SPAN_H_
