// Always-on flight recorder: the last N decision events, cheap enough to
// leave running in production.
//
// A fixed-capacity ring buffer per recording thread (the ShardedHistogram
// registration pattern: first touch takes a mutex, every later record is
// a plain owner-thread write) holds compact POD FlightEvents. When a ring
// wraps, the oldest event is overwritten and the shard's dropped-event
// ledger advances — the same overflow-is-counted-not-stored discipline as
// the TraceRecorder span cap (DESIGN.md §13). Memory is bounded at
// shards * capacity * sizeof(FlightEvent) forever, independent of run
// length.
//
// Dumps (on SLO breach, on demand, at shutdown) merge the retained
// events of every shard by seq into NDJSON. digest() folds the
// seq-ordered DECISION fields — seq, id, verdict, reason, tier,
// allocation bits, rings, running decision digest — and deliberately
// excludes the latency field, so dumps taken at different thread counts
// of a deterministic service compare equal even though timings differ.
//
// Determinism contract: recording is observation-only; nothing here is
// read back by the admission path.
#ifndef HETNET_OBS_FLIGHT_H_
#define HETNET_OBS_FLIGHT_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace hetnet::obs {

// One committed request outcome, POD-compact (no strings: rings are
// indices resolved to medium labels at dump time).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t conn = 0;
  // Running service decision digest AFTER this commit; anchors a dump
  // line to the digest-verified decision stream.
  std::uint64_t digest = 0;
  bool release = false;   // false: SETUP decision, true: RELEASE
  bool admitted = false;  // for a RELEASE: whether it matched a live conn
  int reason = 0;         // core::RejectReason (int: obs stays core-free)
  // Decision tier: 0 exact/fallback, 1 screen_admit, 2 screen_reject,
  // 3 service-level collision refusal (CAC never consulted).
  int tier = 0;
  std::int64_t latency_ns = 0;  // observation-only; excluded from digest()
  int src_ring = -1;
  int dst_ring = -1;
  Seconds h_s{0.0};  // granted per-cycle budgets
  Seconds h_r{0.0};
  Seconds worst_case_delay{0.0};
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacityPerShard = 1024;

  explicit FlightRecorder(
      std::size_t capacity_per_shard = kDefaultCapacityPerShard);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Lock-free after this thread's first record into this recorder.
  void record(const FlightEvent& event);

  std::size_t capacity_per_shard() const { return capacity_; }
  // Total record() calls across all shards.
  std::uint64_t recorded_count() const;
  // Events overwritten by ring wraparound (recorded - retained).
  std::uint64_t dropped_count() const;

  // Serial (no concurrent record()s): all retained events, seq-ascending.
  std::vector<FlightEvent> snapshot() const;

  // NDJSON over snapshot(), one event per line, plus nothing else — a
  // dump is consumable by tools/obs_diff.py and line-countable in CI.
  // ring_labels[i] names ring i's access medium ("" fields are omitted
  // when no label is known).
  void dump_ndjson(std::ostream& out,
                   const std::vector<std::string>& ring_labels = {}) const;

  // Order-sensitive fold over snapshot()'s decision fields (latency
  // excluded). Equal digests mean the recorders retained bit-identical
  // decision tails.
  std::uint64_t digest() const;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::size_t capacity_;
  mutable std::mutex mu_;  // guards shards_ registration only
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hetnet::obs

#endif  // HETNET_OBS_FLIGHT_H_
