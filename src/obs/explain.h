// Decision-explain records: one structured record per CAC request saying
// WHY the decision came out the way it did — the per-server delay
// breakdown along FDDI_S→ID_S→ATM→ID_R→FDDI_R, which connection's
// deadline binds and with how much slack, the allocation-line endpoints
// (H^min_abs → H^max_avail) with the bisection iteration log, and the
// reject reason.
//
// Records are produced by AdmissionController::request only when a sink
// is installed (CacConfig::explain / set_explain); with no sink the
// explain path costs one null check. Building a record runs one extra
// memo-free breakdown analysis per request — pure observation that never
// feeds back into the decision, so explain output is decision-neutral
// (tests/obs/explain_test.cc pins this).
//
// Export format is NDJSON (one JSON object per line), summarized by
// tools/explain_report.py.
#ifndef HETNET_OBS_EXPLAIN_H_
#define HETNET_OBS_EXPLAIN_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/net/connection.h"
#include "src/util/units.h"

namespace hetnet::obs {

// One midpoint probe of the Section-5 bisections.
struct ExplainBisectionStep {
  // Which search the probe belongs to: "min_need" (step 3, feasibility)
  // or "max_need" (step 4, delay saturation).
  enum class Phase { kMinNeed, kMaxNeed };
  Phase phase = Phase::kMinNeed;
  int iter = 0;
  double lambda = 0.0;  // position along the allocation line, in [0, 1]
  bool accepted = false;  // feasible (min_need) / saturated (max_need)
};

// One server stage of the requester's end-to-end chain at the granted
// (or reference) allocation.
struct ExplainStage {
  std::string server;  // e.g. "FDDI_S.MAC", "ATM.Port[3]", "SAT.Port[0]"
  Seconds delay;
  // Per-hop backlog bound (F in Theorem 1) — what a deployment must buffer
  // at this stage. Matters most on long-delay hops (satellite-ATM), where
  // a stage's buffer requirement can dwarf its share of the delay budget.
  Bits buffer;
};

struct ExplainRecord {
  std::uint64_t seq = 0;  // assigned by the sink, in arrival order
  net::ConnectionId conn = 0;
  net::HostId src;
  net::HostId dst;

  bool admitted = false;
  // "admitted", "no_sync_bandwidth", "infeasible", "signaling_collision",
  // or "source_busy" (trace replay skipped the request; never reached
  // the CAC).
  std::string reason;

  Seconds deadline;
  // The requester's worst-case end-to-end bound at the granted allocation
  // (admitted) or at max_avail (rejected); kUnbounded/infinity when no
  // finite bound exists.
  Seconds bound;
  Seconds slack;  // deadline - bound (negative or -inf when rejected)

  // Allocation-line anchors (eqs. 26–36).
  net::Allocation granted;
  net::Allocation max_avail;
  net::Allocation min_need;
  net::Allocation max_need;

  int probe_evals = 0;  // joint-analysis evaluations this request consumed
  std::vector<ExplainBisectionStep> bisection;

  // Which admission tier resolved the request (src/core/cac.cc):
  // "screen_admit" — every step-3 feasibility probe was certificate-
  // resolved; "screen_reject" — the Tier-A floor certificate refuted
  // Theorem 4 outright; "exact" — the exact engine (or its decision memo)
  // produced the decision. Empty for records that never reached the CAC.
  std::string decision_tier;
  // Wall-clock attribution per tier, nanoseconds (observation-only;
  // captured only while a sink is installed, so explain-off runs read no
  // clocks). screen_ns covers Tier-A upper-screen evaluations, exact_ns
  // the fresh exact joint analyses. Memo/speculation replays cost neither.
  std::int64_t screen_ns = 0;
  std::int64_t exact_ns = 0;

  // Requester's per-server breakdown at the reported bound (empty when
  // the bound is unbounded or the request never reached analysis).
  std::vector<ExplainStage> stages;
  // The stage contributing the largest share of the requester's bound.
  std::string binding_server;
  Seconds binding_stage_delay;
  // Across requester + active set, the connection with the least slack at
  // the evaluated allocation — the deadline that binds the decision.
  net::ConnectionId binding_conn = 0;
  Seconds binding_slack;
};

// Thread-safe collector. add() assigns arrival-order sequence numbers;
// records() / write_ndjson() are serial reads (no concurrent add()s).
class ExplainSink {
 public:
  ExplainSink() = default;
  ExplainSink(const ExplainSink&) = delete;
  ExplainSink& operator=(const ExplainSink&) = delete;

  void add(ExplainRecord record);
  std::size_t size() const;
  std::vector<ExplainRecord> records() const;
  void write_ndjson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<ExplainRecord> records_;
};

// One record per line. Doubles are emitted with 17 significant digits;
// non-finite values become null (JSON has no Infinity).
void write_ndjson_record(std::ostream& out, const ExplainRecord& record);

}  // namespace hetnet::obs

#endif  // HETNET_OBS_EXPLAIN_H_
