// Metrics registry: named counters, gauges, and lock-free per-thread
// histograms with a serial merge, plus callback-backed counters that
// expose existing engine tallies (e.g. AnalysisSession::Stats) through
// one read surface without double bookkeeping.
//
// Concurrency contract
//   * Counter::add / Gauge::set are wait-free (relaxed atomics) and safe
//     from any thread, including inside util::parallel_for bodies.
//   * ShardedHistogram::record is lock-free after a thread's first record
//     into a given histogram (first touch takes a registration mutex).
//     Each thread owns a private shard; there are no contended writes.
//     Shard fields are relaxed atomics written only by the owning thread
//     (plain store-of-load, no RMW cost), so a merge may run CONCURRENTLY
//     with records and stays race-free.
//   * ShardedHistogram::merged taken concurrently with record()s is a
//     TORN but valid snapshot: each field is individually atomic, so
//     count/sum/bins may disagree by the handful of in-flight records.
//     Epoch windowing (Merged::subtract) recomputes the count from the
//     bin deltas, so windows built from torn snapshots stay
//     self-consistent. For an EXACT snapshot, quiesce recorders first —
//     joining a parallel region (util::parallel_for returns) provides
//     the necessary happens-before edge.
//
// Determinism contract: metrics are observation-only. Nothing in this
// header feeds back into admission decisions or analysis results, so
// recording (or not recording) metrics cannot perturb engine output.
#ifndef HETNET_OBS_METRICS_H_
#define HETNET_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hetnet::obs {

// Monotonic event count. Wait-free add; reads are racy-but-atomic (a read
// concurrent with adds sees some valid intermediate total).
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written level (e.g. active connections, queue depth).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Geometric-bin histogram sharded per thread. Bin i covers
// [2^(i/kBinsPerOctave), 2^((i+1)/kBinsPerOctave)), so relative
// resolution is a constant ~9% across ~7 decades — suited to latency
// samples whose scale varies with workload. Values below 1.0 land in
// bin 0; exact min/max/sum are tracked alongside the bins.
class ShardedHistogram {
 public:
  static constexpr int kBinsPerOctave = 8;
  static constexpr int kNumBins = 8 * 60;  // covers [1, 2^60)

  ShardedHistogram();
  ~ShardedHistogram();

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  // Lock-free after this thread's first record into this histogram.
  void record(double value);

  // Snapshot of all shards. Concurrent record()s tear it by at most the
  // in-flight records (see the concurrency contract above).
  struct Merged {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::vector<std::uint64_t> bins;  // kNumBins entries

    double mean() const { return count == 0 ? 0.0 : sum / double(count); }
    // Conservative (upper bin edge) quantile; q in [0, 1]. Exact for min
    // (q=0 clamps to recorded min); within one bin width (~9%) otherwise.
    // CHECK-fails on an empty histogram: a silent 0 reads as "zero
    // latency", the one value a quantile can never legitimately be here.
    // Callers must gate on count > 0.
    double quantile_upper(double q) const;
    // Optimistic twin: lower bin edge, clamped to the recorded extrema.
    // quantile_lower(q) <= true quantile <= quantile_upper(q); the spread
    // is one bin width (~9%). Same empty-histogram contract.
    double quantile_lower(double q) const;
    // Mean of the lowest `q` fraction of samples, from bin midpoints:
    // sheds the heavy tail (e.g. scheduler stalls recorded into a latency
    // histogram), which the exact mean() is hostage to. Sub-bin resolution
    // comes from the mixture across bins, so ratios of trimmed means
    // resolve finer than the ~9% bin width. Same empty-histogram contract
    // as the quantiles.
    double trimmed_mean(double q) const;
    // Epoch delta: this snapshot minus an `older` one of the SAME
    // histogram (or a default-constructed zero baseline). Per-bin
    // saturating subtraction; count is recomputed from the bin deltas
    // (robust to torn snapshots) and min/max are re-derived from the
    // first/last nonempty delta bin's edges — window extrema sharper
    // than one bin are unknowable from cumulative snapshots.
    Merged subtract(const Merged& older) const;
  };
  Merged merged() const;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  mutable std::mutex mu_;   // guards shards_ registration only
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Name -> metric map. Metric objects are owned by the registry and live
// (at stable addresses) until the registry is destroyed, so hot paths
// resolve a name once and keep the pointer. Callback counters are
// read-through views over engine-owned tallies; they are snapshotted
// alongside owned counters and must outlive the registry reads.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Safe to call concurrently; intended for setup paths.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ShardedHistogram& histogram(const std::string& name);

  // Registers a pull-model counter backed by `read`. Replaces any prior
  // callback under the same name. The callable must stay valid for the
  // registry's lifetime and be safe to invoke from snapshot points.
  void register_callback(const std::string& name,
                         std::function<std::uint64_t()> read);

  // Serial snapshots (no concurrent mutation of the metrics being read).
  // Counter snapshot includes both owned and callback-backed counters.
  std::map<std::string, std::uint64_t> counter_snapshot() const;
  std::map<std::string, double> gauge_snapshot() const;
  std::vector<std::pair<std::string, ShardedHistogram::Merged>>
  histogram_snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
  std::map<std::string, std::function<std::uint64_t()>> callbacks_;
};

// Process-wide registry for call sites with no natural owner (e.g. the
// packet sim's event counters when no per-run registry is supplied).
MetricsRegistry& global_metrics();

}  // namespace hetnet::obs

#endif  // HETNET_OBS_METRICS_H_
