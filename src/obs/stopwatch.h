// Monotonic nanosecond stamps for observation-only timing.
//
// Decision code must never branch on wall-clock readings — the
// nondeterminism-source hetlint check bans clock access outside util/rng
// and src/obs for exactly that reason. Code that wants to ATTRIBUTE time
// (per-tier latency in decision-explain records, bench classification)
// takes stamps through this header instead: the readings flow only into
// observation surfaces, and keeping the clock call here keeps the lint
// boundary honest.
#pragma once

#include <chrono>
#include <cstdint>

namespace hetnet::obs {

inline std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace hetnet::obs
