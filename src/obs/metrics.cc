#include "src/obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace hetnet::obs {
namespace {

std::uint64_t next_histogram_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int bin_index(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN
  const double idx =
      std::floor(std::log2(value) * ShardedHistogram::kBinsPerOctave);
  if (idx >= double(ShardedHistogram::kNumBins - 1)) {
    return ShardedHistogram::kNumBins - 1;
  }
  return int(idx);
}

double bin_upper_edge(int bin) {
  return std::exp2(double(bin + 1) / ShardedHistogram::kBinsPerOctave);
}

}  // namespace

struct ShardedHistogram::Shard {
  std::array<std::uint64_t, kNumBins> bins{};
  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
};

ShardedHistogram::ShardedHistogram() : id_(next_histogram_id()) {}
ShardedHistogram::~ShardedHistogram() = default;

ShardedHistogram::Shard& ShardedHistogram::local_shard() {
  // Per-thread cache of (histogram id -> shard). Ids are process-unique
  // and never reused, so a stale entry for a destroyed histogram can
  // never be matched; the cache grows by one entry per histogram a
  // thread ever touches. Linear scan: the hot set is a handful.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == id_) return *shard;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace_back(id_, shard);
  return *shard;
}

void ShardedHistogram::record(double value) {
  Shard& shard = local_shard();
  shard.bins[std::size_t(bin_index(value))] += 1;
  shard.count += 1;
  shard.min = std::min(shard.min, value);
  shard.max = std::max(shard.max, value);
  shard.sum += value;
}

ShardedHistogram::Merged ShardedHistogram::merged() const {
  Merged out;
  out.bins.assign(kNumBins, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (int i = 0; i < kNumBins; ++i) {
      out.bins[std::size_t(i)] += shard->bins[std::size_t(i)];
    }
    out.count += shard->count;
    out.sum += shard->sum;
    min = std::min(min, shard->min);
    max = std::max(max, shard->max);
  }
  if (out.count > 0) {
    out.min = min;
    out.max = max;
  }
  return out;
}

double ShardedHistogram::Merged::quantile_upper(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min;  // exact, as documented
  // Rank of the q-quantile, 1-based; ceil so q=1 is the last sample.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < int(bins.size()); ++i) {
    seen += bins[std::size_t(i)];
    if (seen >= rank) {
      // Clamp the bin edge to the exact extrema so q=0/q=1 are tight.
      return std::clamp(bin_upper_edge(i), min, max);
    }
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

ShardedHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ShardedHistogram>();
  return *slot;
}

void MetricsRegistry::register_callback(const std::string& name,
                                        std::function<std::uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(read);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_snapshot()
    const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, read] : callbacks_) out[name] = read();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_snapshot() const {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::vector<std::pair<std::string, ShardedHistogram::Merged>>
MetricsRegistry::histogram_snapshot() const {
  std::vector<std::pair<std::string, ShardedHistogram::Merged>> out;
  std::unique_lock<std::mutex> lock(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, hist->merged());
  }
  return out;
}

MetricsRegistry& global_metrics() {
  // Leaked singleton: usable during static destruction of client code.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace hetnet::obs
