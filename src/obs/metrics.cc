#include "src/obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace hetnet::obs {
namespace {

std::uint64_t next_histogram_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int bin_index(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN
  const double idx =
      std::floor(std::log2(value) * ShardedHistogram::kBinsPerOctave);
  if (idx >= double(ShardedHistogram::kNumBins - 1)) {
    return ShardedHistogram::kNumBins - 1;
  }
  return int(idx);
}

double bin_upper_edge(int bin) {
  return std::exp2(double(bin + 1) / ShardedHistogram::kBinsPerOctave);
}

double bin_lower_edge(int bin) {
  // Bin 0 absorbs everything below 1.0 (including 0), so its lower edge
  // is 0 rather than 2^0.
  if (bin <= 0) return 0.0;
  return std::exp2(double(bin) / ShardedHistogram::kBinsPerOctave);
}

}  // namespace

// Single-writer relaxed atomics: only the owning thread writes a shard,
// so plain store(load + x) — no lock-prefixed RMW — keeps the hot path
// at plain-field cost while making a concurrent merge race-free.
struct ShardedHistogram::Shard {
  std::array<std::atomic<std::uint64_t>, kNumBins> bins{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  std::atomic<double> sum{0.0};
};

ShardedHistogram::ShardedHistogram() : id_(next_histogram_id()) {}
ShardedHistogram::~ShardedHistogram() = default;

ShardedHistogram::Shard& ShardedHistogram::local_shard() {
  // Per-thread cache of (histogram id -> shard). Ids are process-unique
  // and never reused, so a stale entry for a destroyed histogram can
  // never be matched; the cache grows by one entry per histogram a
  // thread ever touches. Linear scan: the hot set is a handful.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == id_) return *shard;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace_back(id_, shard);
  return *shard;
}

void ShardedHistogram::record(double value) {
  Shard& shard = local_shard();
  auto& bin = shard.bins[std::size_t(bin_index(value))];
  bin.store(bin.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  shard.count.store(shard.count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  if (value < shard.min.load(std::memory_order_relaxed)) {
    shard.min.store(value, std::memory_order_relaxed);
  }
  if (value > shard.max.load(std::memory_order_relaxed)) {
    shard.max.store(value, std::memory_order_relaxed);
  }
  shard.sum.store(shard.sum.load(std::memory_order_relaxed) + value,
                  std::memory_order_relaxed);
}

ShardedHistogram::Merged ShardedHistogram::merged() const {
  Merged out;
  out.bins.assign(kNumBins, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (int i = 0; i < kNumBins; ++i) {
      out.bins[std::size_t(i)] +=
          shard->bins[std::size_t(i)].load(std::memory_order_relaxed);
    }
    out.count += shard->count.load(std::memory_order_relaxed);
    out.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
  }
  if (out.count > 0) {
    out.min = min;
    out.max = max;
  }
  return out;
}

double ShardedHistogram::Merged::quantile_upper(double q) const {
  HETNET_CHECK(count > 0, "quantile of an empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min;  // exact, as documented
  // Rank of the q-quantile, 1-based; ceil so q=1 is the last sample.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < int(bins.size()); ++i) {
    seen += bins[std::size_t(i)];
    if (seen >= rank) {
      // Clamp the bin edge to the exact extrema so q=0/q=1 are tight.
      return std::clamp(bin_upper_edge(i), min, max);
    }
  }
  return max;
}

double ShardedHistogram::Merged::quantile_lower(double q) const {
  HETNET_CHECK(count > 0, "quantile of an empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < int(bins.size()); ++i) {
    seen += bins[std::size_t(i)];
    if (seen >= rank) {
      return std::clamp(bin_lower_edge(i), min, max);
    }
  }
  return max;
}

double ShardedHistogram::Merged::trimmed_mean(double q) const {
  HETNET_CHECK(count > 0, "trimmed mean of an empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t keep =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count))));
  double total = 0.0;
  std::uint64_t used = 0;
  for (int i = 0; i < int(bins.size()) && used < keep; ++i) {
    const std::uint64_t take =
        std::min<std::uint64_t>(bins[std::size_t(i)], keep - used);
    if (take == 0) continue;
    const double mid = std::clamp(
        0.5 * (bin_lower_edge(i) + bin_upper_edge(i)), min, max);
    total += double(take) * mid;
    used += take;
  }
  return used > 0 ? total / double(used) : min;
}

ShardedHistogram::Merged ShardedHistogram::Merged::subtract(
    const Merged& older) const {
  HETNET_CHECK(older.bins.empty() || older.bins.size() == bins.size(),
               "subtracting snapshots of different histogram geometries");
  Merged out;
  out.bins.assign(bins.size(), 0);
  int first = -1;
  int last = -1;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const std::uint64_t old_bin = i < older.bins.size() ? older.bins[i] : 0;
    // Saturating: a torn `older` may momentarily exceed a torn `this` in
    // an individual bin; a window can never hold negative samples.
    const std::uint64_t delta = bins[i] > old_bin ? bins[i] - old_bin : 0;
    out.bins[i] = delta;
    out.count += delta;
    if (delta > 0) {
      if (first < 0) first = int(i);
      last = int(i);
    }
  }
  if (out.count > 0) {
    out.min = bin_lower_edge(first);
    out.max = bin_upper_edge(last);
    const double dsum = sum - older.sum;
    // Keep the mean inside the window's known support; a torn sum that
    // escapes it is replaced by the bin-derived midpoint estimate.
    out.sum = std::clamp(dsum, out.min * double(out.count),
                         out.max * double(out.count));
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

ShardedHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ShardedHistogram>();
  return *slot;
}

void MetricsRegistry::register_callback(const std::string& name,
                                        std::function<std::uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(read);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_snapshot()
    const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, read] : callbacks_) out[name] = read();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_snapshot() const {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::vector<std::pair<std::string, ShardedHistogram::Merged>>
MetricsRegistry::histogram_snapshot() const {
  std::vector<std::pair<std::string, ShardedHistogram::Merged>> out;
  std::unique_lock<std::mutex> lock(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, hist->merged());
  }
  return out;
}

MetricsRegistry& global_metrics() {
  // Leaked singleton: usable during static destruction of client code.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace hetnet::obs
