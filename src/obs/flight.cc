#include "src/obs/flight.h"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "src/traffic/fingerprint.h"
#include "src/util/check.h"

namespace hetnet::obs {
namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* reason_label(int reason) {
  // Mirrors core::RejectReason without depending on src/core: the enum's
  // numeric values are part of the decision digest and therefore stable.
  switch (reason) {
    case 0: return "none";
    case 1: return "no_sync_bandwidth";
    case 2: return "infeasible";
    case 3: return "signaling_collision";
    default: return "unknown";
  }
}

const char* tier_label(int tier) {
  switch (tier) {
    case 0: return "exact";
    case 1: return "screen_admit";
    case 2: return "screen_reject";
    case 3: return "collision";
    default: return "unknown";
  }
}

}  // namespace

struct FlightRecorder::Shard {
  explicit Shard(std::size_t capacity) { ring.resize(capacity); }
  std::vector<FlightEvent> ring;
  std::size_t next = 0;           // slot the next record lands in
  std::uint64_t recorded = 0;     // total records into this shard
};

FlightRecorder::FlightRecorder(std::size_t capacity_per_shard)
    : id_(next_recorder_id()), capacity_(capacity_per_shard) {
  HETNET_CHECK(capacity_ >= 1, "flight recorder needs capacity >= 1");
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Shard& FlightRecorder::local_shard() {
  // Same process-unique-id thread-local cache as ShardedHistogram: stale
  // entries for destroyed recorders can never be matched.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == id_) return *shard;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>(capacity_));
  Shard* shard = shards_.back().get();
  cache.emplace_back(id_, shard);
  return *shard;
}

void FlightRecorder::record(const FlightEvent& event) {
  Shard& shard = local_shard();
  shard.ring[shard.next] = event;
  shard.next = (shard.next + 1) % shard.ring.size();
  ++shard.recorded;
}

std::uint64_t FlightRecorder::recorded_count() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) total += shard->recorded;
  return total;
}

std::uint64_t FlightRecorder::dropped_count() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    const std::uint64_t cap = shard->ring.size();
    if (shard->recorded > cap) dropped += shard->recorded - cap;
  }
  return dropped;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    const std::uint64_t retained =
        std::min<std::uint64_t>(shard->recorded, shard->ring.size());
    out.reserve(out.size() + std::size_t(retained));
    for (std::uint64_t i = 0; i < retained; ++i) {
      out.push_back(shard->ring[std::size_t(i)]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::dump_ndjson(
    std::ostream& out, const std::vector<std::string>& ring_labels) const {
  const auto label = [&ring_labels](int ring) -> const std::string* {
    if (ring < 0 || ring >= int(ring_labels.size())) return nullptr;
    if (ring_labels[std::size_t(ring)].empty()) return nullptr;
    return &ring_labels[std::size_t(ring)];
  };
  for (const FlightEvent& e : snapshot()) {
    out << "{\"seq\": " << e.seq << ", \"conn\": " << e.conn
        << ", \"event\": \"" << (e.release ? "release" : "setup")
        << "\", \"admitted\": " << (e.admitted ? "true" : "false")
        << ", \"reason\": \"" << reason_label(e.reason)
        << "\", \"tier\": \"" << tier_label(e.tier)
        << "\", \"latency_ns\": " << e.latency_ns
        << ", \"src_ring\": " << e.src_ring
        << ", \"dst_ring\": " << e.dst_ring;
    if (const std::string* l = label(e.src_ring)) {
      out << ", \"src_medium\": \"" << *l << "\"";
    }
    if (const std::string* l = label(e.dst_ring)) {
      out << ", \"dst_medium\": \"" << *l << "\"";
    }
    out << ", \"h_s\": " << e.h_s.value() << ", \"h_r\": " << e.h_r.value()
        << ", \"worst_case_delay_s\": " << e.worst_case_delay.value()
        << ", \"digest\": " << e.digest << "}\n";
  }
}

std::uint64_t FlightRecorder::digest() const {
  std::uint64_t d = fp::mix(0xF11C47ull);
  for (const FlightEvent& e : snapshot()) {
    d = fp::combine(d, e.seq);
    d = fp::combine(d, e.conn);
    d = fp::combine(d, e.digest);
    d = fp::combine(d, (e.release ? 2u : 0u) | (e.admitted ? 1u : 0u));
    d = fp::combine(d, std::uint64_t(e.reason));
    d = fp::combine(d, std::uint64_t(e.tier));
    d = fp::combine(d, std::uint64_t(e.src_ring + 1));
    d = fp::combine(d, std::uint64_t(e.dst_ring + 1));
    d = fp::combine(d, fp::of_double(e.h_s.value()));
    d = fp::combine(d, fp::of_double(e.h_r.value()));
    d = fp::combine(d, fp::of_double(e.worst_case_delay.value()));
  }
  return d;
}

}  // namespace hetnet::obs
