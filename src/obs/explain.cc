#include "src/obs/explain.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace hetnet::obs {
namespace {

// JSON number or null for non-finite values. 17 significant digits
// round-trip a double exactly.
void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void write_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_alloc(std::ostream& out, const char* key,
                 const net::Allocation& alloc) {
  out << '"' << key << "\":[";
  write_double(out, alloc.h_s.value());
  out << ',';
  write_double(out, alloc.h_r.value());
  out << ']';
}

}  // namespace

void ExplainSink::add(ExplainRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = std::uint64_t(records_.size());
  records_.push_back(std::move(record));
}

std::size_t ExplainSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<ExplainRecord> ExplainSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void ExplainSink::write_ndjson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ExplainRecord& record : records_) {
    write_ndjson_record(out, record);
  }
}

void write_ndjson_record(std::ostream& out, const ExplainRecord& r) {
  out << "{\"seq\":" << r.seq << ",\"conn\":" << r.conn << ",\"src\":["
      << r.src.ring << ',' << r.src.index << "],\"dst\":[" << r.dst.ring
      << ',' << r.dst.index << "],\"admitted\":"
      << (r.admitted ? "true" : "false") << ",\"reason\":";
  write_string(out, r.reason);

  out << ",\"deadline_s\":";
  write_double(out, r.deadline.value());
  out << ",\"bound_s\":";
  write_double(out, r.bound.value());
  out << ",\"slack_s\":";
  write_double(out, r.slack.value());

  out << ',';
  write_alloc(out, "granted_s", r.granted);
  out << ',';
  write_alloc(out, "max_avail_s", r.max_avail);
  out << ',';
  write_alloc(out, "min_need_s", r.min_need);
  out << ',';
  write_alloc(out, "max_need_s", r.max_need);

  out << ",\"probe_evals\":" << r.probe_evals;

  // Compact iteration log: [phase, iter, lambda, accepted] per probe.
  out << ",\"bisection\":[";
  for (std::size_t i = 0; i < r.bisection.size(); ++i) {
    const ExplainBisectionStep& step = r.bisection[i];
    if (i > 0) out << ',';
    out << "[\""
        << (step.phase == ExplainBisectionStep::Phase::kMinNeed ? "min_need"
                                                                : "max_need")
        << "\"," << step.iter << ',';
    write_double(out, step.lambda);
    out << ',' << (step.accepted ? "true" : "false") << ']';
  }
  out << ']';

  // Compact stage breakdown: [server, delay_s, buffer_bits] per chain
  // stage.
  out << ",\"stages\":[";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    if (i > 0) out << ',';
    out << '[';
    write_string(out, r.stages[i].server);
    out << ',';
    write_double(out, r.stages[i].delay.value());
    out << ',';
    write_double(out, r.stages[i].buffer.value());
    out << ']';
  }
  out << ']';

  out << ",\"binding_server\":";
  write_string(out, r.binding_server);
  out << ",\"binding_stage_delay_s\":";
  write_double(out, r.binding_stage_delay.value());
  out << ",\"binding_conn\":" << r.binding_conn << ",\"binding_slack_s\":";
  write_double(out, r.binding_slack.value());

  out << ",\"decision_tier\":";
  write_string(out, r.decision_tier);
  out << ",\"screen_ns\":" << r.screen_ns << ",\"exact_ns\":" << r.exact_ns;

  out << "}\n";
}

}  // namespace hetnet::obs
