#include "src/server/request_stream.h"

#include <memory>
#include <utility>

#include "src/traffic/sources.h"
#include "src/util/check.h"

namespace hetnet::server {

RequestStream::RequestStream(const net::AbhnTopology* topology,
                             const StreamConfig& config)
    : topology_(topology), config_(config), rng_(config.seed) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
  HETNET_CHECK(config_.lambda > 0.0, "stream lambda must be positive");
  HETNET_CHECK(config_.mean_lifetime > 0, "mean lifetime must be positive");
  HETNET_CHECK(config_.source_variants >= 1, "need at least one variant");
  HETNET_CHECK(config_.intra_ring_fraction >= 0.0 &&
                   config_.intra_ring_fraction <= 1.0,
               "intra_ring_fraction must lie in [0, 1]");
  sources_.reserve(static_cast<std::size_t>(config_.source_variants));
  for (int v = 0; v < config_.source_variants; ++v) {
    // Variant v scales the base burst sizes; periods, peak, and deadline
    // stay shared so every variant lives on the same timescale.
    const double scale = 1.0 + 0.5 * v;
    sources_.push_back(std::make_shared<DualPeriodicEnvelope>(
        config_.c1 * scale, config_.p1, config_.c2 * scale, config_.p2,
        BitsPerSecond::infinity()));
  }
  next_setup_at_ = Seconds{rng_.exponential_mean(1.0 / config_.lambda)};
}

Request RequestStream::make_setup(Seconds at) {
  Request req;
  req.seq = seq_++;
  req.type = RequestType::kSetup;
  req.id = next_id_++;
  req.arrival = at;

  const int rings = topology_->num_rings();
  const int hosts = topology_->params().hosts_per_ring;
  net::ConnectionSpec spec;
  spec.id = req.id;
  spec.src = {static_cast<int>(rng_.uniform_index(std::uint64_t(rings))),
              static_cast<int>(rng_.uniform_index(std::uint64_t(hosts)))};
  const bool intra =
      rings == 1 || rng_.bernoulli(config_.intra_ring_fraction);
  int dst_ring = spec.src.ring;
  if (!intra) {
    // Uniform over the OTHER rings.
    dst_ring = static_cast<int>(rng_.uniform_index(std::uint64_t(rings - 1)));
    if (dst_ring >= spec.src.ring) ++dst_ring;
  }
  int dst_index = static_cast<int>(rng_.uniform_index(std::uint64_t(hosts)));
  if (intra && dst_index == spec.src.index) {
    dst_index = (dst_index + 1) % hosts;  // no self-loops on one ring
  }
  spec.dst = {dst_ring, dst_index};
  spec.source = sources_[rng_.pick(sources_.size())];
  spec.deadline = config_.deadline;
  req.spec = std::move(spec);

  // Open-loop teardown: scheduled now, verdict-blind (see header).
  const Seconds release_at =
      at + Seconds{rng_.exponential_mean(val(config_.mean_lifetime))};
  releases_.push({release_at, req.id});
  return req;
}

bool RequestStream::next(Request* out) {
  HETNET_CHECK(out != nullptr, "null request sink");
  const bool setups_left = setups_emitted_ < config_.num_setups;
  const bool releases_left = !releases_.empty();
  if (!setups_left && !releases_left) return false;
  if (setups_left &&
      (!releases_left || next_setup_at_ <= releases_.top().first)) {
    const Seconds at = next_setup_at_;
    *out = make_setup(at);
    ++setups_emitted_;
    next_setup_at_ = at + Seconds{rng_.exponential_mean(1.0 / config_.lambda)};
    return true;
  }
  const auto [at, id] = releases_.top();
  releases_.pop();
  Request req;
  req.seq = seq_++;
  req.type = RequestType::kRelease;
  req.id = id;
  req.arrival = at;
  *out = req;
  return true;
}

std::vector<Request> RequestStream::drain() {
  std::vector<Request> all;
  Request req;
  while (next(&req)) all.push_back(req);
  return all;
}

}  // namespace hetnet::server
