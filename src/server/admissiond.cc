#include "src/server/admissiond.h"

#include <ostream>
#include <string>
#include <utility>

#include "src/obs/names.h"
#include "src/obs/stopwatch.h"
#include "src/traffic/fingerprint.h"
#include "src/util/check.h"

namespace hetnet::server {

double SloReport::eviction_cliff_ratio() const {
  if (post_eviction_samples == 0 || steady_p50_ns <= 0) return 0.0;
  return double(post_eviction_p99_ns) / double(steady_p50_ns);
}

void SloReport::write_json(std::ostream& out) const {
  out << "{\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"setups\": " << setups << ",\n"
      << "  \"admitted\": " << admitted << ",\n"
      << "  \"wall_ns\": " << wall_ns << ",\n"
      << "  \"sustained_throughput\": " << sustained_throughput << ",\n"
      << "  \"setup_p50_ns\": " << setup_p50_ns << ",\n"
      << "  \"setup_p99_ns\": " << setup_p99_ns << ",\n"
      << "  \"steady_p50_ns\": " << steady_p50_ns << ",\n"
      << "  \"steady_p99_ns\": " << steady_p99_ns << ",\n"
      << "  \"steady_mean_ns\": " << steady_mean_ns << ",\n"
      << "  \"post_eviction_p50_ns\": " << post_eviction_p50_ns << ",\n"
      << "  \"post_eviction_p99_ns\": " << post_eviction_p99_ns << ",\n"
      << "  \"post_eviction_samples\": " << post_eviction_samples << ",\n"
      << "  \"evictions\": " << evictions << ",\n"
      << "  \"invalidations\": " << invalidations << ",\n"
      << "  \"unmatched_releases\": " << unmatched_releases << ",\n"
      << "  \"prewarmed_points\": " << prewarmed_points << ",\n"
      << "  \"eviction_cliff_ratio\": " << eviction_cliff_ratio() << "\n"
      << "}\n";
}

AdmissionService::AdmissionService(const net::AbhnTopology* topology,
                                   const AdmissiondConfig& config)
    : topology_(topology),
      config_(config),
      cac_(topology, config.cac),
      digest_(fp::mix(0xAD3155D1ull)),
      slo_(config.slo) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
  HETNET_CHECK(config_.batch_size >= 1, "batch_size must be >= 1");
  HETNET_CHECK(config_.rounds_per_epoch >= 1, "rounds_per_epoch must be >= 1");
  shards_.resize(std::size_t(topology_->num_rings()));
  h_setup_ = &cac_.metrics().histogram(obs::names::kAdmissiondSetupNs);
  h_steady_ = &cac_.metrics().histogram(obs::names::kAdmissiondSteadyNs);
  h_post_eviction_ =
      &cac_.metrics().histogram(obs::names::kAdmissiondPostEvictionNs);
  m_slo_epochs_ = &cac_.metrics().counter(obs::names::kAdmissiondSloEpochs);
  m_slo_breaches_ =
      &cac_.metrics().counter(obs::names::kAdmissiondSloBreaches);
  if (config_.flight_capacity > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(config_.flight_capacity);
    // Tier attribution reads the same counter objects the CAC increments
    // (find-or-create returns stable addresses).
    t_screen_admit_ =
        &cac_.metrics().counter(obs::names::kCacTierScreenAdmit);
    t_screen_reject_ =
        &cac_.metrics().counter(obs::names::kCacTierScreenReject);
    cac_.metrics().register_callback(
        obs::names::kAdmissiondFlightRecorded,
        [this] { return flight_->recorded_count(); });
    cac_.metrics().register_callback(
        obs::names::kAdmissiondFlightDropped,
        [this] { return flight_->dropped_count(); });
  }
}

void AdmissionService::dump_flight(std::ostream& out) const {
  if (flight_ == nullptr) return;
  std::vector<std::string> labels;
  labels.reserve(std::size_t(topology_->num_rings()));
  for (int r = 0; r < topology_->num_rings(); ++r) {
    labels.push_back(topology_->access_medium(r).label());
  }
  flight_->dump_ndjson(out, labels);
}

void AdmissionService::submit(const Request& req) {
  // SETUPs shard by source ring (the signaling link they arrive on);
  // RELEASEs — and SETUPs with out-of-topology sources, which commit as
  // CAC-validated rejects either way — shard by id so a connection's
  // teardown has a deterministic home without a live-set lookup.
  std::size_t shard;
  if (req.type == RequestType::kSetup && topology_->valid_host(req.spec.src)) {
    shard = std::size_t(req.spec.src.ring);
  } else {
    shard = std::size_t(req.id % std::uint64_t(shards_.size()));
  }
  HETNET_CHECK(shards_[shard].empty() || shards_[shard].back().seq < req.seq,
               "per-shard submissions must be in ascending seq order");
  shards_[shard].push_back(req);
  ++pending_;
}

std::size_t AdmissionService::run_round() {
  round_.clear();
  // K-way merge of the shard heads back into global arrival order. Each
  // shard is FIFO in seq, so the minimum head IS the global minimum.
  while (round_.size() < config_.batch_size) {
    int best = -1;
    for (int s = 0; s < int(shards_.size()); ++s) {
      if (shards_[s].empty()) continue;
      if (best < 0 || shards_[s].front().seq < shards_[best].front().seq) {
        best = s;
      }
    }
    if (best < 0) break;
    round_.push_back(std::move(shards_[best].front()));
    shards_[best].pop_front();
  }
  if (round_.empty()) return 0;
  pending_ -= round_.size();
  ++stats_.rounds;

  if (config_.prewarm) {
    prewarm_specs_.clear();
    for (const Request& r : round_) {
      if (r.type == RequestType::kSetup) prewarm_specs_.push_back(r.spec);
    }
    if (prewarm_specs_.size() > 1) {
      stats_.prewarmed_points +=
          std::uint64_t(cac_.prewarm(prewarm_specs_));
    }
  }

  for (const Request& r : round_) commit(r);

  // SLO epoch cadence: every rounds_per_epoch rounds the monitor closes
  // an epoch over the measured-phase latency histogram and tallies.
  // Serial (commit thread); parallel work inside request() has joined.
  if (slo_.enabled() && ++rounds_in_epoch_ >= config_.rounds_per_epoch) {
    rounds_in_epoch_ = 0;
    close_slo_epoch();
  }
  return round_.size();
}

void AdmissionService::close_slo_epoch() {
  const bool breached = slo_.advance(h_setup_->merged(),
                                     stats_.setups - stats_mark_.setups,
                                     stats_.admitted - stats_mark_.admitted);
  m_slo_epochs_->increment();
  if (breached) {
    m_slo_breaches_->increment();
    if (config_.on_slo_breach) config_.on_slo_breach(slo_.window());
  }
}

std::size_t AdmissionService::run_all() {
  std::size_t total = 0;
  for (std::size_t n = run_round(); n > 0; n = run_round()) total += n;
  return total;
}

void AdmissionService::commit(const Request& req) {
  if (req.type == RequestType::kSetup) {
    commit_setup(req);
  } else {
    commit_release(req);
  }
}

void AdmissionService::commit_setup(const Request& req) {
  const std::int64_t t0 = obs::monotonic_ns();
  // Tier attribution via counter deltas: exactly one of the three
  // cac.tier.* counters increments per CAC request (PR 7 partition), so
  // two relaxed loads around the call classify this decision without
  // touching the decision path.
  const std::uint64_t pre_screen_admit =
      flight_ != nullptr ? t_screen_admit_->value() : 0;
  const std::uint64_t pre_screen_reject =
      flight_ != nullptr ? t_screen_reject_->value() : 0;
  Outcome out;
  out.seq = req.seq;
  out.id = req.id;
  bool collision = false;
  if (live_.contains(req.id)) {
    // Previous instance of this id still live: refuse without consulting
    // the CAC, exactly like the signaling layer's source-host collision.
    ++stats_.collisions;
    ++stats_.rejected;
    out.admitted = false;
    out.reason = core::RejectReason::kSignalingCollision;
    collision = true;
  } else {
    const core::AdmissionDecision d = cac_.request(req.spec);
    out.admitted = d.admitted;
    out.reason = d.reason;
    out.alloc = d.alloc;
    out.worst_case_delay = d.worst_case_delay;
    if (d.admitted) {
      live_.emplace(req.id, true);
      ++stats_.admitted;
    } else {
      ++stats_.rejected;
    }
  }
  ++stats_.setups;

  digest_ = fp::combine(digest_, out.seq);
  digest_ = fp::combine(digest_, out.id);
  digest_ = fp::combine(digest_, out.admitted ? 1u : 0u);
  digest_ = fp::combine(digest_, std::uint64_t(out.reason));
  digest_ = fp::combine(digest_, fp::of_double(val(out.alloc.h_s)));
  digest_ = fp::combine(digest_, fp::of_double(val(out.alloc.h_r)));
  digest_ = fp::combine(digest_, fp::of_double(val(out.worst_case_delay)));
  if (config_.record_outcomes) outcomes_.push_back(out);

  const std::int64_t t1 = obs::monotonic_ns();
  if (flight_ != nullptr) {
    obs::FlightEvent ev;
    ev.seq = out.seq;
    ev.conn = out.id;
    ev.digest = digest_;
    ev.release = false;
    ev.admitted = out.admitted;
    ev.reason = int(out.reason);
    if (collision) {
      ev.tier = 3;
    } else if (t_screen_admit_->value() != pre_screen_admit) {
      ev.tier = 1;
    } else if (t_screen_reject_->value() != pre_screen_reject) {
      ev.tier = 2;
    } else {
      ev.tier = 0;
    }
    ev.latency_ns = t1 - t0;
    if (topology_->valid_host(req.spec.src)) ev.src_ring = req.spec.src.ring;
    if (topology_->valid_host(req.spec.dst)) ev.dst_ring = req.spec.dst.ring;
    ev.h_s = out.alloc.h_s;
    ev.h_r = out.alloc.h_r;
    ev.worst_case_delay = out.worst_case_delay;
    flight_->record(ev);
  }
  if (first_commit_ns_ == 0) first_commit_ns_ = t0;
  last_commit_ns_ = t1;
  const double dt = double(t1 - t0);
  h_setup_->record(dt);
  if (post_window_left_ > 0) {
    h_post_eviction_->record(dt);
    --post_window_left_;
  } else {
    h_steady_->record(dt);
  }
  // Open (or re-arm) the post-eviction window when this request made the
  // session shed a generation. The window starts at the NEXT setup: the
  // triggering request's own cost is intrinsic (it was insert-heavy enough
  // to overflow a generation); the cliff question is whether the requests
  // AFTER the shed lost their warm entries. Under the old wholesale-clear
  // trim they did (stone-cold replays); generational eviction keeps the
  // promoted hot set, so the window should look like steady state.
  const std::uint64_t ev = cac_.eviction_count();
  if (ev != last_evictions_) {
    last_evictions_ = ev;
    post_window_left_ = config_.post_eviction_window;
  }
}

void AdmissionService::commit_release(const Request& req) {
  const std::int64_t t0 = obs::monotonic_ns();
  ++stats_.releases;
  const auto it = live_.find(req.id);
  const bool matched = it != live_.end();
  if (matched) {
    cac_.release(req.id);
    live_.erase(it);
    ++stats_.matched_releases;
  } else {
    // The open-loop stream tears down verdict-blind, so RELEASEs for
    // rejected (or collided) SETUPs are expected: counted no-ops.
    ++stats_.unmatched_releases;
  }
  digest_ = fp::combine(digest_, req.seq);
  digest_ = fp::combine(digest_, req.id);
  digest_ = fp::combine(digest_, matched ? 1u : 0u);
  if (first_commit_ns_ == 0) first_commit_ns_ = t0;
  last_commit_ns_ = obs::monotonic_ns();
  if (flight_ != nullptr) {
    obs::FlightEvent ev;
    ev.seq = req.seq;
    ev.conn = req.id;
    ev.digest = digest_;
    ev.release = true;
    ev.admitted = matched;
    ev.latency_ns = last_commit_ns_ - t0;
    flight_->record(ev);
  }
}

void AdmissionService::begin_measurement() {
  ++epoch_;
  const std::string suffix = ".epoch" + std::to_string(epoch_);
  h_setup_ = &cac_.metrics().histogram(
      std::string(obs::names::kAdmissiondSetupNs) + suffix);
  h_steady_ = &cac_.metrics().histogram(
      std::string(obs::names::kAdmissiondSteadyNs) + suffix);
  h_post_eviction_ = &cac_.metrics().histogram(
      std::string(obs::names::kAdmissiondPostEvictionNs) + suffix);
  first_commit_ns_ = 0;
  last_commit_ns_ = 0;
  post_window_left_ = 0;
  last_evictions_ = cac_.eviction_count();
  evictions_mark_ = last_evictions_;
  stats_mark_ = stats_;
  const auto counters = cac_.metrics().counter_snapshot();
  if (const auto it = counters.find(obs::names::kCacSessionInvalidations);
      it != counters.end()) {
    invalidations_mark_ = it->second;
  }
  // The SLO monitor's cumulative baseline follows the histogram swap.
  slo_.reset();
  rounds_in_epoch_ = 0;
}

SloReport AdmissionService::report() const {
  SloReport r;
  r.setups = stats_.setups - stats_mark_.setups;
  r.requests = r.setups + (stats_.releases - stats_mark_.releases);
  r.admitted = stats_.admitted - stats_mark_.admitted;
  r.wall_ns =
      last_commit_ns_ > first_commit_ns_ ? last_commit_ns_ - first_commit_ns_
                                         : 0;
  r.sustained_throughput =
      r.wall_ns > 0 ? double(r.requests) / (double(r.wall_ns) * 1e-9) : 0.0;

  // Empty histograms leave their quantile fields at 0 (quantiles of an
  // empty histogram CHECK-fail by contract).
  const obs::ShardedHistogram::Merged setup = h_setup_->merged();
  const obs::ShardedHistogram::Merged steady = h_steady_->merged();
  const obs::ShardedHistogram::Merged post = h_post_eviction_->merged();
  if (setup.count > 0) {
    r.setup_p50_ns = std::int64_t(setup.quantile_upper(0.5));
    r.setup_p99_ns = std::int64_t(setup.quantile_upper(0.99));
  }
  if (steady.count > 0) {
    r.steady_p50_ns = std::int64_t(steady.quantile_upper(0.5));
    r.steady_p99_ns = std::int64_t(steady.quantile_upper(0.99));
    r.steady_mean_ns = std::int64_t(steady.trimmed_mean(0.99));
  }
  if (post.count > 0) {
    r.post_eviction_p50_ns = std::int64_t(post.quantile_upper(0.5));
    r.post_eviction_p99_ns = std::int64_t(post.quantile_upper(0.99));
  }
  r.post_eviction_samples = post.count;

  r.evictions = cac_.eviction_count() - evictions_mark_;
  const auto counters = cac_.metrics().counter_snapshot();
  if (const auto it = counters.find(obs::names::kCacSessionInvalidations);
      it != counters.end()) {
    r.invalidations = it->second - invalidations_mark_;
  }
  r.unmatched_releases =
      stats_.unmatched_releases - stats_mark_.unmatched_releases;
  r.prewarmed_points = stats_.prewarmed_points - stats_mark_.prewarmed_points;
  return r;
}

}  // namespace hetnet::server
