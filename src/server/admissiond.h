// admissiond: a long-lived admission service over the CAC engine.
//
// The simulator-facing ConnectionManager (src/signaling) answers "what does
// ONE setup cost end to end?"; admissiond answers the operational question
// the paper's Section 6 efficiency claim implies but never measures — can a
// single controller sustain connection churn at scale, and what does its
// admission-latency distribution look like once the warm caches start
// evicting? The service owns the topology view, one AdmissionController
// (and with it the AnalysisSession memo state), and consumes a seeded
// open-loop SETUP/RELEASE stream (request_stream.h):
//
//   * requests land in per-ring shard queues (SETUPs by source ring,
//     RELEASEs by id) — the ingestion shape of a controller fed by
//     per-ring signaling links;
//   * a ROUND merges the shard heads back into global arrival order and
//     takes up to batch_size requests;
//   * the round's SETUPs are prewarmed as one batch
//     (AdmissionController::prewarm): their step-2 Theorem-4 points are
//     evaluated concurrently against the shared session base with private
//     overlays, then absorbed — pure cache warming;
//   * every request then COMMITS strictly in arrival (seq) order:
//     cac_.request() / cac_.release() plus the service's own bookkeeping.
//
// Determinism contract: decisions are bit-identical to a serial replay
// (batch_size 1, prewarm off, analysis.threads 1) at ANY batch size and
// thread count. Sharding and batching only reorder WORK; commits happen in
// seq order against identical ledger state, and prewarm stores only values
// a serial request() would compute bit-identically at the same state.
// tests/server/admissiond_test.cc and the admissiond_equivalence fuzz
// oracle pin this; `decision_digest()` folds every outcome into one value
// so a 1M-request soak can verify equivalence in O(1) memory.
//
// Latency accounting is observation-only (obs::monotonic_ns): per-setup
// decision times split into a steady-state histogram and a short
// post-eviction window opened whenever the session sheds a generation, so
// the SLO report exposes the eviction p99 the old wholesale-clear trim made
// pathological.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/obs/flight.h"
#include "src/obs/slo.h"
#include "src/server/request_stream.h"

namespace hetnet::server {

struct AdmissiondConfig {
  core::CacConfig cac;
  // Requests per admission round. Larger batches amortize prewarm fan-out;
  // 1 disables batching (with prewarm=false this IS the serial replay).
  std::size_t batch_size = 32;
  // Speculatively evaluate each round's SETUP batch before committing.
  bool prewarm = true;
  // Keep one Outcome per SETUP (equivalence tests; a 1M soak relies on the
  // running digest instead and leaves this off).
  bool record_outcomes = false;
  // Setups attributed to the post-eviction histogram after each session
  // generation shed.
  std::uint64_t post_eviction_window = 64;

  // --- Telemetry plane (DESIGN.md §15). Everything below is
  // observation-only: decisions and their digest are bit-identical with
  // any combination of it on or off, at any thread count. ---
  // Per-shard flight-recorder ring capacity; 0 disables the recorder.
  // Commits are serial, so in practice one shard (the commit thread)
  // exists and the memory bound is capacity * sizeof(obs::FlightEvent).
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacityPerShard;
  // Windowed SLO targets; the monitor is inert until one is set
  // (slo.enabled()).
  obs::SloSpec slo;
  // Admission rounds per SLO epoch (the monitor's evaluation cadence).
  std::size_t rounds_per_epoch = 16;
  // Invoked on the commit thread whenever an epoch closes in breach —
  // the hook tools use to dump the flight recorder at breach time.
  std::function<void(const obs::SloWindowReport&)> on_slo_breach;
};

// One committed SETUP verdict (recorded when record_outcomes).
struct Outcome {
  std::uint64_t seq = 0;
  net::ConnectionId id = 0;
  bool admitted = false;
  core::RejectReason reason = core::RejectReason::kNone;
  net::Allocation alloc;
  Seconds worst_case_delay;
};

struct ServiceStats {
  std::uint64_t setups = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  // SETUPs refused at the service because the id is still live (the CAC
  // never sees them — mirrors signaling's setup_collisions).
  std::uint64_t collisions = 0;
  std::uint64_t releases = 0;
  std::uint64_t matched_releases = 0;
  // RELEASEs naming a connection that is not live: its SETUP was rejected
  // (the open-loop stream tears down verdict-blind) or already released.
  std::uint64_t unmatched_releases = 0;
  std::uint64_t rounds = 0;
  // Step-2 points prewarm actually evaluated (not skipped or already warm).
  std::uint64_t prewarmed_points = 0;
};

// Throughput/latency SLO summary of one service run. All latency fields are
// integer nanoseconds from the obs monotonic clock; quantiles are
// conservative upper bin edges (ShardedHistogram). Populated by
// AdmissionService::report().
struct SloReport {
  std::uint64_t requests = 0;           // committed SETUPs + RELEASEs
  std::uint64_t setups = 0;
  std::uint64_t admitted = 0;
  std::int64_t wall_ns = 0;             // first to last commit
  double sustained_throughput = 0.0;    // requests per wall second
  std::int64_t setup_p50_ns = 0;        // all setups
  std::int64_t setup_p99_ns = 0;
  std::int64_t steady_p50_ns = 0;       // outside post-eviction windows
  std::int64_t steady_p99_ns = 0;
  // 99%-trimmed mean (Merged::trimmed_mean): sheds the scheduler-stall
  // tail an exact mean is hostage to, while the cross-bin mixture still
  // resolves finer than the geometric bins' ~9% steps — so ratio gates
  // tighter than one bin width (the telemetry-overhead ceiling) remain
  // measurable on a noisy host.
  std::int64_t steady_mean_ns = 0;
  std::int64_t post_eviction_p50_ns = 0;
  std::int64_t post_eviction_p99_ns = 0;
  std::uint64_t post_eviction_samples = 0;
  std::uint64_t evictions = 0;          // session generation sheds (entries)
  std::uint64_t invalidations = 0;      // release-keyed cache reclamations
  std::uint64_t unmatched_releases = 0;
  std::uint64_t prewarmed_points = 0;

  // The SLO headline: post-eviction p99 over steady p50 (0 when no
  // eviction window was ever sampled). The acceptance bar is <= 3.
  double eviction_cliff_ratio() const;

  // One flat JSON object (stable key order) for CI artifacts and
  // bench_compare.
  void write_json(std::ostream& out) const;
};

class AdmissionService {
 public:
  AdmissionService(const net::AbhnTopology* topology,
                   const AdmissiondConfig& config);

  // Enqueues one request. Requests must be submitted in ascending seq
  // order per shard; feeding a RequestStream in stream order satisfies
  // this globally.
  void submit(const Request& req);

  // Runs one admission round over up to batch_size pending requests in
  // global seq order. Returns the number of requests committed (0 when
  // idle).
  std::size_t run_round();

  // Drains every pending request through successive rounds.
  std::size_t run_all();

  std::size_t pending() const { return pending_; }

  // Order-sensitive fold over every committed outcome (setup verdicts,
  // allocations, delay bits, release matching). Equal digests across runs
  // mean bit-identical decision streams.
  std::uint64_t decision_digest() const { return digest_; }

  const ServiceStats& stats() const { return stats_; }
  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  const core::AdmissionController& cac() const { return cac_; }
  core::AdmissionController& cac() { return cac_; }

  SloReport report() const;

  // Marks the start of the measured phase: latency samples, wall clock,
  // stats, and eviction baselines recorded so far become warm-up and are
  // excluded from subsequent report()s. Benches call this after a
  // saturation fill whose admits are intrinsically expensive (bisection
  // probes), so the SLO histograms — and the cliff metric defined over
  // them — only see the cost-homogeneous steady workload. Also re-bases
  // the SLO monitor (its cumulative baseline follows the histogram swap).
  void begin_measurement();

  // --- Telemetry plane ---
  // Null when flight_capacity == 0.
  const obs::FlightRecorder* flight() const { return flight_.get(); }
  const obs::SloMonitor& slo() const { return slo_; }
  // Sliding-window SLO view as of the last closed epoch.
  obs::SloWindowReport slo_window() const { return slo_.window(); }
  // NDJSON dump of the flight recorder with ring indices resolved to
  // medium labels. No-op when the recorder is disabled.
  void dump_flight(std::ostream& out) const;

 private:
  void commit(const Request& req);
  void commit_setup(const Request& req);
  void commit_release(const Request& req);
  void close_slo_epoch();

  const net::AbhnTopology* topology_;
  AdmissiondConfig config_;
  core::AdmissionController cac_;
  // Shard queues, one per ring. Each is FIFO in seq order, so merging the
  // heads by minimum seq reconstructs global arrival order.
  std::vector<std::deque<Request>> shards_;
  std::size_t pending_ = 0;
  // Live connections (admitted, not yet released) as the service sees them.
  std::map<net::ConnectionId, bool> live_;
  ServiceStats stats_;
  std::vector<Outcome> outcomes_;
  std::uint64_t digest_;
  // Latency accounting (observation-only).
  obs::ShardedHistogram* h_setup_ = nullptr;
  obs::ShardedHistogram* h_steady_ = nullptr;
  obs::ShardedHistogram* h_post_eviction_ = nullptr;
  // Telemetry plane (observation-only).
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::SloMonitor slo_;
  std::size_t rounds_in_epoch_ = 0;
  obs::Counter* m_slo_epochs_ = nullptr;
  obs::Counter* m_slo_breaches_ = nullptr;
  // Tier counters, resolved once; per-request deltas attribute a flight
  // event's decision tier (exactly one of the three increments per CAC
  // request — the PR 7 partition invariant).
  const obs::Counter* t_screen_admit_ = nullptr;
  const obs::Counter* t_screen_reject_ = nullptr;
  std::uint64_t last_evictions_ = 0;
  std::uint64_t post_window_left_ = 0;
  std::int64_t first_commit_ns_ = 0;
  std::int64_t last_commit_ns_ = 0;
  // Measurement-phase baselines (begin_measurement); zero = whole run.
  int epoch_ = 0;
  ServiceStats stats_mark_;
  std::uint64_t evictions_mark_ = 0;
  std::uint64_t invalidations_mark_ = 0;
  // Scratch reused across rounds.
  std::vector<Request> round_;
  std::vector<net::ConnectionSpec> prewarm_specs_;
};

}  // namespace hetnet::server
