// Seeded open-loop SETUP/RELEASE request generation for admissiond.
//
// The stream models the paper's connection-oriented service interface at
// scale: applications issue SETUPs as a Poisson process at rate λ (virtual
// time), hold an admitted contract for an exponentially distributed
// lifetime, and issue the matching RELEASE when the lifetime expires. The
// generator is OPEN-LOOP — it schedules every connection's RELEASE at
// setup-time + lifetime without knowing the admission verdict, exactly like
// an application that tears down regardless of whether its contract was
// granted. RELEASEs for rejected SETUPs therefore reach the service as
// unmatched no-ops, which is deliberate coverage of the same interleaving
// class the signaling layer hardens against (SignalingStats).
//
// Determinism: all randomness flows through util::Rng from the configured
// seed; the same (topology, config) yields the same request sequence bit
// for bit on every platform and at every consumer batch size. Virtual
// arrival time orders the stream; the emitted `seq` numbers (0,1,2,...)
// are the service's deterministic commit order.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/net/connection.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace hetnet::server {

enum class RequestType { kSetup, kRelease };

// One request on the wire. `seq` is the global arrival index — the
// deterministic commit order the service must honor regardless of
// sharding, batching, or thread count.
struct Request {
  std::uint64_t seq = 0;
  RequestType type = RequestType::kSetup;
  net::ConnectionId id = 0;     // the connection this request names
  net::ConnectionSpec spec;     // populated for kSetup (spec.id == id)
  Seconds arrival;              // virtual arrival time (diagnostics only)
};

struct StreamConfig {
  // SETUPs to generate; the stream then drains the outstanding RELEASEs,
  // so the total request count approaches 2 × num_setups.
  std::uint64_t num_setups = 100000;
  // Poisson SETUP arrival rate per virtual second. With lifetimes far
  // shorter than the drain rate of the rings, λ × mean_lifetime is the
  // OFFERED number of concurrent connections; the rings cap the carried
  // number, so a high λ runs the service saturated — sustained
  // admit/release churn with a heavy step-1/Tier-A reject tail.
  double lambda = 2000.0;
  Seconds mean_lifetime = units::ms(500);
  std::uint64_t seed = 1;

  // Dual-periodic source shape (base variant; see source_variants).
  Bits c1 = units::kbits(50);
  Seconds p1 = units::ms(100);
  Bits c2 = units::kbits(5);
  Seconds p2 = units::ms(10);
  Seconds deadline = units::ms(150);
  // Distinct source shapes in the mix (scaled multiples of the base).
  // Variants exercise the flat/prefix caches across several fingerprints
  // instead of one; 1 makes every source identical.
  int source_variants = 4;
  // Fraction of connections whose destination stays on the source ring.
  double intra_ring_fraction = 0.125;
};

class RequestStream {
 public:
  RequestStream(const net::AbhnTopology* topology, const StreamConfig& config);

  // Pulls the next request in arrival order. Returns false when the stream
  // is exhausted (num_setups emitted and every scheduled RELEASE drained).
  bool next(Request* out);

  // Convenience: materializes the whole remaining stream (tests and the
  // serial-replay verifier; a 1M-request soak streams via next() instead).
  std::vector<Request> drain();

  std::uint64_t emitted() const { return seq_; }

 private:
  Request make_setup(Seconds at);

  const net::AbhnTopology* topology_;
  StreamConfig config_;
  Rng rng_;
  // Shared source envelopes, one per variant: structural fingerprints make
  // equal shapes hit the same cache entries either way, but sharing the
  // objects keeps generation allocation-cheap at millions of requests.
  std::vector<EnvelopePtr> sources_;
  std::uint64_t seq_ = 0;
  std::uint64_t setups_emitted_ = 0;
  net::ConnectionId next_id_ = 1;
  Seconds next_setup_at_;
  // Scheduled teardowns: (release time, connection id), earliest first; id
  // breaks time ties deterministically.
  using Pending = std::pair<Seconds, net::ConnectionId>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      releases_;
};

}  // namespace hetnet::server
