// FDDI ring model: timed-token protocol parameters and frame-format
// accounting (ANSI X3T9.5).
//
// A station holding synchronous allocation H transmits for up to H seconds
// per token visit; the protocol admits allocations while ΣH + Δ <= TTRT
// (Δ covers token/protocol overhead per rotation). Payload accounting: all
// envelopes in this library count PAYLOAD bits, so the ring's service rate
// during a synchronous window is the raw 100 Mb/s discounted by the
// per-frame overhead fraction (preamble, SD/ED, FC, addresses, FCS).
#pragma once

#include "src/util/units.h"

namespace hetnet::fddi {

struct RingParams {
  // Target token rotation time (negotiated at ring initialization).
  Seconds ttrt = units::ms(8);
  // Raw signalling rate of FDDI.
  BitsPerSecond raw_rate = units::mbps(100);
  // Protocol-dependent per-rotation overhead Δ (token time, ring latency,
  // claim overhead) that the summed allocations must leave free.
  Seconds protocol_overhead = units::ms(1);
  // Per-frame overhead: preamble(8) + SD(1) + FC(1) + DA(6) + SA(6) +
  // FCS(4) + ED/FS(2) = 28 bytes.
  Bits frame_overhead = units::bytes(28);
  // Maximum frame size on the wire is 4500 bytes; payload capacity is the
  // remainder after the frame overhead.
  Bits max_frame_payload = units::bytes(4500) - units::bytes(28);
  // One-way bit propagation latency around the ring path between a station
  // and the interface device (Delay_Line server constant; eq. 14).
  Seconds propagation = units::us(40);
};

// Payload bits transferred per second during a synchronous transmission
// window, i.e. raw_rate discounted by the frame-overhead fraction at the
// given frame payload size.
BitsPerSecond effective_payload_rate(const RingParams& ring,
                                     Bits frame_payload);

// The frame payload a station uses for a connection holding allocation H:
// the paper's F_S = H·BW, clamped to the FDDI maximum frame size (a larger
// allocation is then spent on multiple maximum-size frames per visit).
Bits frame_payload_for_allocation(const RingParams& ring, Seconds h);

// Convenience: effective payload rate for the frame size implied by H.
BitsPerSecond effective_rate_for_allocation(const RingParams& ring,
                                            Seconds h);

}  // namespace hetnet::fddi
