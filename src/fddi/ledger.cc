#include "src/fddi/ledger.h"

#include <algorithm>

#include "src/util/check.h"

namespace hetnet::fddi {

SyncBandwidthLedger::SyncBandwidthLedger(const RingParams& ring)
    : ring_(ring) {
  HETNET_CHECK(ring_.ttrt > ring_.protocol_overhead,
               "TTRT must exceed the protocol overhead Δ");
}

Seconds SyncBandwidthLedger::capacity() const {
  return ring_.ttrt - ring_.protocol_overhead;
}

Seconds SyncBandwidthLedger::available() const {
  return std::max(Seconds{}, capacity() - allocated_);
}

bool SyncBandwidthLedger::reserve(std::uint64_t key, Seconds h) {
  if (h <= 0.0) return false;
  if (grants_.contains(key)) return false;
  if (!approx_le(h, available())) return false;
  grants_.emplace(key, h);
  allocated_ += h;
  return true;
}

void SyncBandwidthLedger::release(std::uint64_t key) {
  const auto it = grants_.find(key);
  HETNET_CHECK(it != grants_.end(), "releasing a key that holds nothing");
  allocated_ -= it->second;
  if (allocated_ < 0.0) allocated_ = Seconds{};  // absorb FP residue
  grants_.erase(it);
}

Seconds SyncBandwidthLedger::held(std::uint64_t key) const {
  const auto it = grants_.find(key);
  HETNET_CHECK(it != grants_.end(), "key holds no reservation");
  return it->second;
}

}  // namespace hetnet::fddi
