// Synchronous-bandwidth ledger of one FDDI ring.
//
// The timed-token protocol requires Σ(allocated H) + Δ <= TTRT across every
// station of the ring (Section 3.1). A ring's ledger tracks the outstanding
// allocations — both the H_S of connections originating at local hosts and
// the H_R the interface device holds for inbound connections — and answers
// the "available" queries of eqs. (26)–(27):
//
//     H^max_avai = TTRT − (Ω + Δ).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/fddi/ring.h"

namespace hetnet::fddi {

class SyncBandwidthLedger {
 public:
  explicit SyncBandwidthLedger(const RingParams& ring);

  // Total synchronous time per rotation the protocol can hand out.
  Seconds capacity() const;
  // Ω: the sum of outstanding allocations.
  Seconds allocated() const { return allocated_; }
  // H^max_avai = capacity() − Ω (never negative).
  Seconds available() const;

  // Reserves `h` seconds per rotation under `key`. Returns false (and
  // changes nothing) if `h` exceeds the available bandwidth or is not
  // positive, or if `key` already holds a reservation.
  bool reserve(std::uint64_t key, Seconds h);

  // Releases the reservation held by `key`. It is an error to release a key
  // that holds nothing.
  void release(std::uint64_t key);

  bool holds(std::uint64_t key) const { return grants_.contains(key); }
  Seconds held(std::uint64_t key) const;
  std::size_t reservations() const { return grants_.size(); }

 private:
  RingParams ring_;
  Seconds allocated_;
  std::unordered_map<std::uint64_t, Seconds> grants_;
};

}  // namespace hetnet::fddi
