#include "src/fddi/ring.h"

#include <algorithm>

#include "src/util/check.h"

namespace hetnet::fddi {

BitsPerSecond effective_payload_rate(const RingParams& ring,
                                     Bits frame_payload) {
  HETNET_CHECK(frame_payload > 0, "frame payload must be positive");
  HETNET_CHECK(ring.raw_rate > 0, "ring rate must be positive");
  const double payload_fraction =
      frame_payload / (frame_payload + ring.frame_overhead);
  return ring.raw_rate * payload_fraction;
}

Bits frame_payload_for_allocation(const RingParams& ring, Seconds h) {
  HETNET_CHECK(h > 0, "allocation must be positive");
  return std::min(h * ring.raw_rate, ring.max_frame_payload);
}

BitsPerSecond effective_rate_for_allocation(const RingParams& ring,
                                            Seconds h) {
  return effective_payload_rate(ring, frame_payload_for_allocation(ring, h));
}

}  // namespace hetnet::fddi
