// Deterministic fork/join parallelism for the admission-analysis engine.
//
// parallel_for(n, threads, body) runs body(i) for every i in [0, n) on up
// to `threads` OS threads (the caller participates; helper threads come
// from a lazily-grown process-wide pool that is reused across calls, so a
// bench issuing thousands of small parallel regions never churns threads).
//
// The determinism contract — the reason this exists instead of a generic
// task system — is that parallelism must never change a RESULT:
//
//   * indexes are distributed dynamically, so the caller must not depend on
//     execution order. Each body(i) writes only state owned by index i
//     (e.g. slot i of a pre-sized output vector); any reduction is done by
//     the caller afterwards, in index order. Under that discipline the
//     outcome is bit-identical to the serial loop for any thread count.
//   * nested parallel_for calls (body itself calling parallel_for, on any
//     pool) run inline on the calling worker — no deadlock, no thread
//     explosion, same results.
//   * an exception thrown by body(i) stops the distribution of NEW indexes
//     and is rethrown in the caller once all workers drain; when several
//     indexes throw concurrently, the smallest index's exception wins, so
//     the propagated error does not depend on scheduling. (Unlike the
//     serial loop, indexes after the failing one may already have run —
//     callers that throw must tolerate partially-filled sibling slots.)
//
// threads <= 1, n <= 1, or a nested call all degrade to the plain serial
// loop with zero synchronization.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hetnet::util {

// Number of concurrent hardware threads (always >= 1).
int hardware_threads();

// See the file comment. `threads` may exceed hardware_threads(); the pool
// oversubscribes, which keeps thread-count sweeps (1/2/8) meaningful on
// small machines and is how the TSan suite exercises real interleavings.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body);

// Deterministic map: out[i] = fn(i), computed via parallel_for. The output
// vector is ordered by index regardless of scheduling.
template <typename T>
std::vector<T> parallel_map(std::size_t n, int threads,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  parallel_for(n, threads, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace hetnet::util
