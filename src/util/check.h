// Precondition / invariant checking.
//
// HETNET_CHECK fires on programmer errors (violated preconditions, broken
// invariants). Recoverable conditions -- an inadmissible connection, an
// unstable server, an overflowing buffer -- are *values* in this codebase
// (e.g. DelayBound::infinite(), AdmissionResult::rejected()), never checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hetnet::internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace hetnet::internal

#define HETNET_CHECK(cond, ...)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::hetnet::internal::check_failed(#cond, __FILE__, __LINE__,    \
                                       ::std::string(__VA_ARGS__)); \
    }                                                                \
  } while (false)
