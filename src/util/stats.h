// Online statistics used by the simulators and benchmark harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace hetnet {

// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  // Pools another accumulator into this one via the parallel-axis Welford
  // combine (Chan et al.), mirroring ProportionStats::merge. Mean/variance
  // agree with single-pass accumulation over the concatenated samples up
  // to floating-point rounding (not bit-exactly); min/max/count are exact.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Half-width of the ~95% normal-approximation confidence interval on the
  // mean; 0 for fewer than 2 samples.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Accumulator for a binomial proportion (e.g. admission probability):
// successes / trials, with a Wald 95% confidence interval.
class ProportionStats {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  // Pools another accumulator's trials into this one (e.g. merging
  // independent simulation seeds).
  void merge(const ProportionStats& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  std::size_t trials() const { return trials_; }
  std::size_t successes() const { return successes_; }
  double proportion() const;
  double ci95_halfwidth() const;

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

// Fixed-bin histogram over [lo, hi); values outside the range are clamped to
// the first/last bin. Used for packet-delay distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::size_t>& bins() const { return counts_; }

  // Smallest x such that at least `q` (0..1] of the mass is at or below x,
  // computed from bin upper edges (conservative). Returns lo() when empty.
  double quantile_upper(double q) const;

  // Multi-line ASCII rendering (one row per non-empty bin).
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hetnet
