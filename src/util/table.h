// Aligned ASCII / CSV table emission for benchmark harnesses.
//
// Every bench binary regenerating a paper table or figure prints its data
// through TableWriter so the output rows are uniform, aligned for reading,
// and optionally machine-readable (CSV) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetnet {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  // Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);

  std::size_t rows() const { return rows_.size(); }

  // Renders with column alignment and a header separator.
  std::string to_ascii() const;
  // Renders as RFC-4180-ish CSV (no quoting of embedded commas expected in
  // our numeric outputs; cells containing a comma are quoted anyway).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetnet
