#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hetnet {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" + arg + "'");
    }
    values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

double Flags::get(const std::string& key, double fallback) {
  known_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag '" + key + "' is not a number: '" +
                                it->second + "'");
  }
  if (consumed != it->second.size()) {
    throw std::invalid_argument("flag '" + key + "' has trailing junk: '" +
                                it->second + "'");
  }
  return value;
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) {
  known_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::set<std::string> Flags::unknown_keys() const {
  std::set<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (!known_.contains(key)) unknown.insert(key);
  }
  return unknown;
}

void Flags::check_unknown() const {
  const auto unknown = unknown_keys();
  if (unknown.empty()) return;
  for (const auto& key : unknown) {
    std::fprintf(stderr, "unknown flag '%s'\n", key.c_str());
  }
  std::fprintf(stderr, "accepted flags:");
  for (const auto& key : known_) std::fprintf(stderr, " %s", key.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace hetnet
