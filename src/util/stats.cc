#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  n_ += other.n_;
  const double n = static_cast<double>(n_);
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double ProportionStats::proportion() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double ProportionStats::ci95_halfwidth() const {
  if (trials_ == 0) return 0.0;
  const double p = proportion();
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(trials_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  HETNET_CHECK(hi > lo, "histogram range must be non-empty");
  HETNET_CHECK(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else {
    const double offset = (x - lo_) / bin_width_;
    idx = std::min(counts_.size() - 1, static_cast<std::size_t>(offset));
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::quantile_upper(double q) const {
  HETNET_CHECK(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return lo_ + bin_width_ * static_cast<double>(i + 1);
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream os;
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double left = lo_ + bin_width_ * static_cast<double>(i);
    const double right = left + bin_width_;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    os << "[" << left << ", " << right << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace hetnet
