// ASCII line charts for benchmark output.
//
// The figure-reproduction benches print their data as tables (and CSV); a
// small plot alongside makes the paper's curve shapes — the β hump of
// Figure 7, the monotone decline of Figure 8 — visible straight in the
// terminal. Multiple series share the canvas, each drawn with its own
// glyph; collisions show the later series' glyph.
#pragma once

#include <string>
#include <vector>

#include "src/util/units.h"

namespace hetnet {

class AsciiChart {
 public:
  // Canvas size in character cells (excluding axis labels).
  AsciiChart(int width, int height);

  // Adds a series of (x, y) points drawn with `glyph`. Points need not be
  // sorted; at least one point is required when render() is called.
  void add_series(std::string label, char glyph,
                  std::vector<std::pair<double, double>> points);

  // Fixes the y-range (otherwise auto-scaled to the data with margin).
  void set_y_range(double lo, double hi);

  // Renders the canvas with y-axis labels, an x-axis line with min/max
  // labels, and a legend.
  std::string render() const;

 private:
  int width_;
  int height_;
  bool fixed_y_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;

  struct Series {
    std::string label;
    char glyph;
    std::vector<std::pair<double, double>> points;
  };
  std::vector<Series> series_;
};

}  // namespace hetnet
