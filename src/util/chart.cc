#include "src/util/chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  HETNET_CHECK(width_ >= 8 && height_ >= 3, "canvas too small to plot");
}

void AsciiChart::add_series(std::string label, char glyph,
                            std::vector<std::pair<double, double>> points) {
  HETNET_CHECK(!points.empty(), "series must have at least one point");
  series_.push_back({std::move(label), glyph, std::move(points)});
}

void AsciiChart::set_y_range(double lo, double hi) {
  HETNET_CHECK(hi > lo, "y-range must be non-empty");
  fixed_y_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiChart::render() const {
  HETNET_CHECK(!series_.empty(), "nothing to plot");
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = y_lo_;
  double y_hi = y_hi_;
  if (!fixed_y_) {
    y_lo = std::numeric_limits<double>::infinity();
    y_hi = -y_lo;
  }
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      if (!fixed_y_) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;
  if (!fixed_y_) {
    const double margin = std::max(1e-12, (y_hi - y_lo) * 0.05);
    y_lo -= margin;
    y_hi += margin;
  }

  std::vector<std::string> canvas(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      const int col = static_cast<int>(
          std::lround((x - x_lo) / (x_hi - x_lo) * (width_ - 1)));
      const int row = static_cast<int>(
          std::lround((y - y_lo) / (y_hi - y_lo) * (height_ - 1)));
      if (col < 0 || col >= width_ || row < 0 || row >= height_) continue;
      canvas[static_cast<std::size_t>(height_ - 1 - row)]
            [static_cast<std::size_t>(col)] = s.glyph;
    }
  }

  std::ostringstream os;
  for (int r = 0; r < height_; ++r) {
    const double y_here =
        y_hi - (y_hi - y_lo) * r / std::max(1, height_ - 1);
    os << std::setw(8) << std::setprecision(3) << std::fixed << y_here
       << " |" << canvas[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(9, ' ') << '+' << std::string(
            static_cast<std::size_t>(width_), '-')
     << "\n";
  std::ostringstream xlabel;
  xlabel << std::setprecision(3) << x_lo;
  std::ostringstream xhilabel;
  xhilabel << std::setprecision(3) << x_hi;
  os << std::string(10, ' ') << xlabel.str()
     << std::string(
            std::max<std::size_t>(
                1, static_cast<std::size_t>(width_) - xlabel.str().size() -
                       xhilabel.str().size()),
            ' ')
     << xhilabel.str() << "\n";
  for (const auto& s : series_) {
    os << "          " << s.glyph << " = " << s.label << "\n";
  }
  return os.str();
}

}  // namespace hetnet
