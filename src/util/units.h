// Units and numeric conventions used throughout hetnet-rt.
//
// The delay-analysis engine is dense numeric code, so quantities are plain
// `double`s with *documented* units rather than wrapped strong types:
//
//   - time:       seconds        (alias `Seconds`)
//   - data:       bits           (alias `Bits`)
//   - bandwidth:  bits/second    (alias `BitsPerSecond`)
//
// Every interface states the unit of every parameter; the helpers below make
// call sites self-describing (e.g. `units::mbps(155)`, `units::ms(8)`).
#pragma once

namespace hetnet {

using Seconds = double;
using Bits = double;
using BitsPerSecond = double;

namespace units {

// --- time ---
constexpr Seconds sec(double v) { return v; }
constexpr Seconds ms(double v) { return v * 1e-3; }
constexpr Seconds us(double v) { return v * 1e-6; }
constexpr Seconds ns(double v) { return v * 1e-9; }

// --- data ---
constexpr Bits bits(double v) { return v; }
constexpr Bits bytes(double v) { return v * 8.0; }
constexpr Bits kbits(double v) { return v * 1e3; }
constexpr Bits mbits(double v) { return v * 1e6; }

// --- bandwidth ---
constexpr BitsPerSecond bps(double v) { return v; }
constexpr BitsPerSecond kbps(double v) { return v * 1e3; }
constexpr BitsPerSecond mbps(double v) { return v * 1e6; }
constexpr BitsPerSecond gbps(double v) { return v * 1e9; }

}  // namespace units

// A tolerance used when comparing times/bit-counts that went through floating
// point arithmetic. All analysis code treats |a-b| <= kEps * max(1,|a|,|b|)
// as equality.
inline constexpr double kEps = 1e-9;

// Returns true if a <= b up to the relative/absolute tolerance above.
inline bool approx_le(double a, double b) {
  double scale = 1.0;
  double abs_a = a < 0 ? -a : a;
  double abs_b = b < 0 ? -b : b;
  if (abs_a > scale) scale = abs_a;
  if (abs_b > scale) scale = abs_b;
  return a <= b + kEps * scale;
}

inline bool approx_eq(double a, double b) {
  return approx_le(a, b) && approx_le(b, a);
}

}  // namespace hetnet
