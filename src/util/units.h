// Units and numeric conventions used throughout hetnet-rt.
//
// The delay-analysis engine is dense floating-point code, so physical
// quantities are *compile-time checked* strong types rather than documented
// `double` aliases. Every quantity is a `Quantity<TimeDim, DataDim>` — a
// zero-overhead wrapper around one `double` whose template parameters record
// the exponent of each base dimension:
//
//   - time:       seconds        `Seconds        = Quantity< 1, 0>`
//   - data:       bits           `Bits           = Quantity< 0, 1>`
//   - bandwidth:  bits/second    `BitsPerSecond  = Quantity<-1, 1>`
//
// The arithmetic operators implement dimensional analysis:
//
//   Seconds + Seconds            -> Seconds        (same-dimension add/sub)
//   Bits / Seconds               -> BitsPerSecond  (exponents subtract)
//   BitsPerSecond * Seconds      -> Bits           (exponents add)
//   Bits / Bits                  -> double         (dimensionless collapses)
//   Seconds * double             -> Seconds        (scalar scaling)
//   Seconds + Bits               -> COMPILE ERROR
//   Seconds s = 0.25;            -> COMPILE ERROR  (construction is explicit)
//   f(Seconds); f(units::mbps(1))-> COMPILE ERROR  (no cross-unit conversion)
//
// Conventions:
//   * Construct from raw doubles explicitly — prefer the `units::` helpers
//     (`units::mbps(155)`, `units::ms(8)`) which make the unit visible at the
//     call site, or `Seconds{x}` when wrapping an already-converted value.
//   * Unwrap with `.value()` only at true boundaries: printf/format strings,
//     generic numeric utilities (stats, charts, tables), and serialization.
//   * Ordering comparisons against a raw double (`delay > 0`,
//     `rate < kEps`) are allowed — bounds and sentinels read naturally —
//     but arithmetic with raw doubles other than scalar * and / is not.
//   * `Quantity` is trivially copyable and exactly the size of a double;
//     pass it by value.
//
// Enforcement: `tests/negative/` holds a negative-compilation suite (wired
// into ctest) proving the COMPILE ERROR lines above really do not compile,
// and `tools/lint.py` rejects raw `double` parameters with quantity-like
// names in public headers. See DESIGN.md, "Static analysis & invariants".
#pragma once

#include <cmath>
#include <limits>
#include <ostream>

namespace hetnet {

namespace internal {

// Maps a dimension vector to the result type of * and /: a Quantity in
// general, collapsing to a raw double when all exponents cancel.
template <int TimeDim, int DataDim>
struct QuantityResult;

}  // namespace internal

template <int TimeDim, int DataDim>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  // The raw magnitude in base units (seconds / bits / bits-per-second).
  constexpr double value() const { return v_; }

  static constexpr Quantity infinity() {
    return Quantity(std::numeric_limits<double>::infinity());
  }

  // --- same-dimension arithmetic ---
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.v_); }
  friend constexpr Quantity operator+(Quantity a) { return a; }

  // --- scalar scaling ---
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }

  // --- comparisons (same dimension, or against a raw double bound) ---
  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) {
    return a.v_ <=> b.v_;
  }
  friend constexpr bool operator==(Quantity a, double b) { return a.v_ == b; }
  friend constexpr auto operator<=>(Quantity a, double b) {
    return a.v_ <=> b;
  }

 private:
  double v_ = 0.0;
};

namespace internal {

template <int TimeDim, int DataDim>
struct QuantityResult {
  using type = Quantity<TimeDim, DataDim>;
  static constexpr type make(double v) { return type(v); }
};

template <>
struct QuantityResult<0, 0> {
  using type = double;
  static constexpr double make(double v) { return v; }
};

}  // namespace internal

// --- dimensional multiply / divide: exponents add / subtract ---
template <int T1, int D1, int T2, int D2>
constexpr auto operator*(Quantity<T1, D1> a, Quantity<T2, D2> b) {
  return internal::QuantityResult<T1 + T2, D1 + D2>::make(a.value() *
                                                          b.value());
}

template <int T1, int D1, int T2, int D2>
constexpr auto operator/(Quantity<T1, D1> a, Quantity<T2, D2> b) {
  return internal::QuantityResult<T1 - T2, D1 - D2>::make(a.value() /
                                                          b.value());
}

template <int T, int D>
constexpr auto operator/(double s, Quantity<T, D> q) {
  return internal::QuantityResult<-T, -D>::make(s / q.value());
}

using Seconds = Quantity<1, 0>;
using Bits = Quantity<0, 1>;
using BitsPerSecond = Quantity<-1, 1>;

// --- math helpers (found by ADL; mirror <cmath> names) ---
template <int T, int D>
inline bool isfinite(Quantity<T, D> q) {
  return std::isfinite(q.value());
}

template <int T, int D>
inline bool isnan(Quantity<T, D> q) {
  return std::isnan(q.value());
}

template <int T, int D>
inline bool isinf(Quantity<T, D> q) {
  return std::isinf(q.value());
}

template <int T, int D>
constexpr Quantity<T, D> abs(Quantity<T, D> q) {
  return q.value() < 0 ? Quantity<T, D>(-q.value()) : q;
}

// Unwraps a quantity (or passes a double through) at genuinely unitless
// boundaries: printf-style formatting, generic numeric utilities (stats,
// charts, tables) and test assertions that compare raw magnitudes.
constexpr double val(double v) { return v; }
template <int T, int D>
constexpr double val(Quantity<T, D> q) {
  return q.value();
}

// Streams the raw magnitude, exactly like the pre-strong-type doubles did
// (traces, tables and golden files stay byte-identical).
template <int T, int D>
std::ostream& operator<<(std::ostream& os, Quantity<T, D> q) {
  return os << q.value();
}

namespace units {

// --- time ---
constexpr Seconds sec(double v) { return Seconds(v); }
constexpr Seconds ms(double v) { return Seconds(v * 1e-3); }
constexpr Seconds us(double v) { return Seconds(v * 1e-6); }
constexpr Seconds ns(double v) { return Seconds(v * 1e-9); }

// --- data ---
constexpr Bits bits(double v) { return Bits(v); }
constexpr Bits bytes(double v) { return Bits(v * 8.0); }
constexpr Bits kbits(double v) { return Bits(v * 1e3); }
constexpr Bits mbits(double v) { return Bits(v * 1e6); }

// --- bandwidth ---
constexpr BitsPerSecond bps(double v) { return BitsPerSecond(v); }
constexpr BitsPerSecond kbps(double v) { return BitsPerSecond(v * 1e3); }
constexpr BitsPerSecond mbps(double v) { return BitsPerSecond(v * 1e6); }
constexpr BitsPerSecond gbps(double v) { return BitsPerSecond(v * 1e9); }

}  // namespace units

// A tolerance used when comparing times/bit-counts that went through floating
// point arithmetic. All analysis code treats |a-b| <= kEps * max(1,|a|,|b|)
// as equality.
inline constexpr double kEps = 1e-9;

// Returns true if a <= b up to the relative/absolute tolerance above.
inline bool approx_le(double a, double b) {
  double scale = 1.0;
  double abs_a = a < 0 ? -a : a;
  double abs_b = b < 0 ? -b : b;
  if (abs_a > scale) scale = abs_a;
  if (abs_b > scale) scale = abs_b;
  return a <= b + kEps * scale;
}

inline bool approx_eq(double a, double b) {
  return approx_le(a, b) && approx_le(b, a);
}

// Tolerant comparisons lift to same-dimension quantities (and to a raw
// double bound, matching the ordering-comparison policy above).
template <int T, int D>
inline bool approx_le(Quantity<T, D> a, Quantity<T, D> b) {
  return approx_le(a.value(), b.value());
}
template <int T, int D>
inline bool approx_le(Quantity<T, D> a, double b) {
  return approx_le(a.value(), b);
}
template <int T, int D>
inline bool approx_le(double a, Quantity<T, D> b) {
  return approx_le(a, b.value());
}
template <int T, int D>
inline bool approx_eq(Quantity<T, D> a, Quantity<T, D> b) {
  return approx_eq(a.value(), b.value());
}
template <int T, int D>
inline bool approx_eq(Quantity<T, D> a, double b) {
  return approx_eq(a.value(), b);
}
template <int T, int D>
inline bool approx_eq(double a, Quantity<T, D> b) {
  return approx_eq(a, b.value());
}

static_assert(sizeof(Seconds) == sizeof(double),
              "Quantity must stay a zero-overhead double wrapper");

}  // namespace hetnet
