#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HETNET_CHECK(!headers_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  HETNET_CHECK(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TableWriter::to_csv() const {
  std::ostringstream os;
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find(',') != std::string::npos) {
      os << '"' << cell << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_cell(row[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TableWriter::print(std::ostream& os) const { os << to_ascii(); }

}  // namespace hetnet
