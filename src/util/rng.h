// Deterministic random number generation.
//
// All stochastic behaviour in the library (workload generation, source start
// phases, host selection) flows from a seeded `Rng`, so every simulation and
// benchmark run is reproducible bit-for-bit. The generator is xoshiro256**,
// seeded through SplitMix64 — fast, high quality, and independent of the
// platform's <random> engine implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace hetnet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  // Re-initializes the state from `seed` via SplitMix64.
  void reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Exponentially distributed value with the given mean (mean = 1/rate).
  // Requires mean > 0.
  double exponential_mean(double mean);

  // Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  // Picks a uniformly random element index from a non-empty container size.
  // (Convenience wrapper over uniform_index with a clearer call-site name.)
  std::size_t pick(std::size_t size) {
    return static_cast<std::size_t>(uniform_index(size));
  }

  // Forks an independently-seeded generator; the fork's stream does not
  // overlap this one's for any practical run length. Used to give each
  // simulation component its own stream so adding a component does not
  // perturb the draws seen by the others.
  Rng fork();

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace hetnet
