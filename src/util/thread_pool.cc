#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/span.h"
#include "src/util/check.h"

namespace hetnet::util {
namespace {

// Workers (and callers while they participate in a batch) set this so that
// nested parallel_for calls degrade to the serial loop instead of
// deadlocking on the pool they are already running inside.
thread_local bool tls_in_parallel_region = false;

// Backstop for absurd `threads` requests; real callers pass either a config
// value validated upstream or hardware_threads().
constexpr int kMaxHelpers = 255;

// One fork/join region. Helpers and the caller all pull indexes from the
// shared atomic counter until it runs past `n` (or a body threw).
struct Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;  // guards the error slot and the helper countdown
  std::condition_variable done;
  int helpers_pending = 0;
  std::size_t error_index = 0;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (error == nullptr || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool;  // leaked: workers may outlive main's statics
    return *pool;
  }

  void run(std::size_t n, int threads,
           const std::function<void(std::size_t)>& body) {
    // Caller-side view of the fork/join region (queue + own drain + join).
    HETNET_OBS_SPAN_NAMED(region_span, "pool.region", "pool");
    region_span.arg("n", std::int64_t(n)).arg("threads",
                                              std::int64_t(threads));
    const auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->body = &body;
    const int helpers = static_cast<int>(std::min<std::size_t>(
        {static_cast<std::size_t>(threads - 1), n - 1,
         static_cast<std::size_t>(kMaxHelpers)}));
    ensure_workers(helpers);
    batch->helpers_pending = helpers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int h = 0; h < helpers; ++h) {
        queue_.push_back([batch] {
          {
            // Worker-side drain: in a trace this shows which pool thread
            // actually carried the region's work.
            HETNET_OBS_SPAN("pool.drain", "pool");
            batch->drain();
          }
          std::lock_guard<std::mutex> batch_lock(batch->mu);
          if (--batch->helpers_pending == 0) batch->done.notify_one();
        });
      }
    }
    wake_.notify_all();

    // The caller is worker zero.
    tls_in_parallel_region = true;
    batch->drain();
    tls_in_parallel_region = false;

    {
      std::unique_lock<std::mutex> lock(batch->mu);
      batch->done.wait(lock, [&] { return batch->helpers_pending == 0; });
    }
    if (batch->error) std::rethrow_exception(batch->error);
  }

 private:
  void ensure_workers(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    tls_in_parallel_region = true;  // everything a worker runs is nested
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return !queue_.empty(); });
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;  // detached-by-leak; never joined
};

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads <= 1 || n == 1 || tls_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Pool::instance().run(n, threads, body);
}

}  // namespace hetnet::util
