// Minimal `key=value` command-line flags for the bench and example
// binaries: no registration, no global state — parse argv, read values with
// defaults, then `check_unknown()` to catch typos.
#pragma once

#include <map>
#include <set>
#include <string>

namespace hetnet {

class Flags {
 public:
  // Parses `key=value` arguments. Throws std::invalid_argument on a
  // malformed argument (no '=' or empty key).
  Flags(int argc, const char* const* argv);

  // Returns the double value of `key`, or `fallback` if absent. Throws
  // std::invalid_argument if the value does not parse as a double. Marks
  // the key as known for check_unknown().
  double get(const std::string& key, double fallback);

  // String-valued variant.
  std::string get_string(const std::string& key, const std::string& fallback);

  bool has(const std::string& key) const { return values_.contains(key); }

  // Returns the list of present-but-never-read keys (typos). Call after all
  // get()s.
  std::set<std::string> unknown_keys() const;

  // Convenience used by binaries: print unknown keys (with the accepted
  // set) to stderr and exit(2) if any exist.
  void check_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> known_;
};

}  // namespace hetnet
