#include "src/util/rng.h"

#include <cmath>

namespace hetnet {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HETNET_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HETNET_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::exponential_mean(double mean) {
  HETNET_CHECK(mean > 0, "exponential_mean requires mean > 0");
  double u = uniform();
  // uniform() can return 0; 1-u is in (0, 1].
  return -mean * std::log(1.0 - u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace hetnet
