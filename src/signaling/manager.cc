#include "src/signaling/manager.h"

#include <utility>

#include "src/util/check.h"

namespace hetnet::signaling {

ConnectionManager::ConnectionManager(const net::AbhnTopology* topology,
                                     const core::CacConfig& cac_config,
                                     const SignalingParams& params)
    : topology_(topology), cac_(topology, cac_config), params_(params) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
  HETNET_CHECK(params_.node_processing >= 0 &&
                   params_.host_processing >= 0 &&
                   params_.cac_processing >= 0,
               "signaling latencies must be >= 0");
}

Seconds ConnectionManager::path_latency(
    const net::ConnectionSpec& spec) const {
  const auto hops = topology_->backbone_route(spec.src, spec.dst);
  Seconds latency = params_.host_processing;           // source host stack
  latency += topology_->params().ring.propagation;     // source ring
  for (const auto& hop : hops) {
    latency += params_.node_processing + hop.propagation + hop.fabric;
  }
  if (!hops.empty()) {
    latency += topology_->params().ring.propagation;   // destination ring
  }
  latency += params_.host_processing;                  // terminating stack
  return latency;
}

void ConnectionManager::request_setup(
    const net::ConnectionSpec& spec, Seconds when,
    std::function<void(const SetupRecord&)> on_complete) {
  queue_.schedule_at(when, [this, spec, on_complete = std::move(
                                            on_complete)] {
    if (states_.contains(spec.id)) {
      // The id's previous instance is still establishing, established, or
      // releasing (its RELEASE has not reached the controller yet). The
      // source host refuses locally — no SETUP enters the network.
      ++stats_.setup_collisions;
      SetupRecord record;
      record.id = spec.id;
      record.admitted = false;
      record.reason = core::RejectReason::kSignalingCollision;
      record.requested_at = queue_.now();
      record.setup_latency = Seconds{};
      records_.push_back(record);
      if (on_complete) on_complete(record);
      return;
    }
    states_.emplace(spec.id, ConnectionState::kSetupInProgress);
    const Seconds requested_at = queue_.now();
    const Seconds forward = path_latency(spec);
    // The SETUP reaches the controller, which decides after its processing
    // time; the verdict travels back the same path.
    queue_.schedule_in(
        forward + params_.cac_processing,
        [this, spec, requested_at, on_complete = std::move(on_complete)] {
          const core::AdmissionDecision decision = cac_.request(spec);
          const Seconds back = path_latency(spec);
          queue_.schedule_in(back, [this, spec, requested_at, decision,
                                    on_complete =
                                        std::move(on_complete)] {
            SetupRecord record;
            record.id = spec.id;
            record.admitted = decision.admitted;
            record.reason = decision.reason;
            record.requested_at = requested_at;
            record.setup_latency = queue_.now() - requested_at;
            record.granted = decision.alloc;
            if (decision.admitted) {
              states_[spec.id] = ConnectionState::kEstablished;
            } else {
              states_.erase(spec.id);
              pending_release_.erase(spec.id);
            }
            records_.push_back(record);
            if (on_complete) on_complete(record);
            // A RELEASE that raced this SETUP applies the moment the
            // CONNECT lands.
            if (decision.admitted && pending_release_.erase(spec.id) > 0) {
              begin_release(spec.id);
            }
          });
        });
  });
}

void ConnectionManager::request_release(net::ConnectionId id, Seconds when) {
  queue_.schedule_at(when, [this, id] {
    const auto it = states_.find(id);
    if (it == states_.end()) {
      // No instance in the table: the previous instance finished its
      // teardown — or its SETUP was rejected — before this RELEASE fired.
      // Sustained same-id churn produces this interleaving legitimately;
      // there is nothing to release and no bandwidth at stake.
      ++stats_.unmatched_releases;
      return;
    }
    switch (it->second) {
      case ConnectionState::kSetupInProgress:
        // The SETUP's verdict is still in flight; apply the RELEASE when it
        // lands (or drop it with the REJECT). A release already queued for
        // this id makes a second one a duplicate, not a second deferral:
        // the verdict consumes exactly one pending release, so counting
        // both as deferred would overstate the pile-up (and a leaked count
        // is exactly what the deferred-release audit is after).
        if (pending_release_.insert(id).second) {
          ++stats_.deferred_releases;
        } else {
          ++stats_.duplicate_releases;
        }
        return;
      case ConnectionState::kReleasing:
        ++stats_.duplicate_releases;  // teardown already under way
        return;
      case ConnectionState::kEstablished:
        break;
    }
    begin_release(id);
  });
}

void ConnectionManager::begin_release(net::ConnectionId id) {
  states_[id] = ConnectionState::kReleasing;
  // The RELEASE must reach the controller before the bandwidth returns.
  const auto& conn = cac_.active().at(id);
  const Seconds forward = path_latency(conn.spec);
  queue_.schedule_in(forward + params_.host_processing, [this, id] {
    cac_.release(id);
    states_.erase(id);
  });
}

std::vector<SetupRecord> ConnectionManager::run() {
  queue_.run();
  return records_;
}

ConnectionState ConnectionManager::state(net::ConnectionId id) const {
  const auto it = states_.find(id);
  HETNET_CHECK(it != states_.end(), "unknown connection");
  return it->second;
}

}  // namespace hetnet::signaling
