// Connection management: the signaling face of connection-oriented service.
//
// Applications do not call the CAC directly — they exchange signaling
// messages: a SETUP travels from the source host across the interface
// devices and switches to wherever admission control runs, the CAC decides,
// and a CONNECT or REJECT travels back; a RELEASE tears the connection
// down. The ConnectionManager drives those exchanges over the
// discrete-event queue, tracks each connection's state machine
//
//     IDLE → SETUP_IN_PROGRESS → ESTABLISHED → RELEASING → (gone)
//                       ↘ (rejected) ↗
//
// and records per-request setup latency = signaling round-trip + CAC
// decision time. Setup latency is what an application actually waits
// before its contract starts — the end-to-end counterpart of the paper's
// Step-1 efficiency claim (bench/cac_microbench measures the decision in
// isolation; this measures it in context).
//
// Resources are charged pessimistically: bandwidth is reserved when the CAC
// decides (before the CONNECT reaches the caller) and released only when
// the RELEASE reaches the controller — the window where a contract exists
// but the application does not know yet is never double-sold.
//
// Signaling races are resolved, not crashed on: a SETUP reusing an id whose
// previous instance is still in the table is refused at the source host
// (RejectReason::kSignalingCollision); a RELEASE racing an in-flight SETUP
// is deferred until the verdict arrives (applied on CONNECT, dropped on
// REJECT); a duplicate RELEASE during teardown is a counted no-op. See
// SignalingStats.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/core/cac.h"
#include "src/sim/event_queue.h"

namespace hetnet::signaling {

enum class ConnectionState {
  kSetupInProgress,
  kEstablished,
  kReleasing,
};

struct SignalingParams {
  // Per-node SETUP/CONNECT processing latency (interface devices,
  // switches).
  Seconds node_processing = units::us(100);
  // Endpoint (host / controller) processing latency.
  Seconds host_processing = units::us(50);
  // Time charged for the CAC decision itself. The default models the
  // Section-6-era controller CPU; set 0 to isolate pure signaling latency.
  Seconds cac_processing = units::ms(2);
};

struct SetupRecord {
  net::ConnectionId id = 0;
  bool admitted = false;
  core::RejectReason reason = core::RejectReason::kNone;
  Seconds requested_at;
  // Total time the application waited for CONNECT/REJECT.
  Seconds setup_latency;
  net::Allocation granted;
};

// Race-handling tallies: how often signaling resolved an interleaving that
// would otherwise be an invalid state-machine transition.
struct SignalingStats {
  // SETUPs refused at the source host because the id was still in the state
  // table (previous instance establishing, established, or releasing).
  std::size_t setup_collisions = 0;
  // RELEASEs that arrived while the SETUP was still in flight and were
  // applied right after the CONNECT (or dropped with the REJECT).
  std::size_t deferred_releases = 0;
  // RELEASEs for a connection already releasing (duplicate teardown), or
  // re-RELEASEs of a connection that already has a deferred release queued
  // behind its in-flight SETUP (counted here, NOT as a second deferral —
  // one verdict consumes exactly one deferred release).
  std::size_t duplicate_releases = 0;
  // RELEASEs that reached the controller for an id with no instance in the
  // state table at all: the instance was torn down (or its SETUP rejected)
  // before this RELEASE fired. Under sustained same-id churn this is a
  // legitimate interleaving, so it is a counted no-op rather than a crash.
  std::size_t unmatched_releases = 0;
};

class ConnectionManager {
 public:
  ConnectionManager(const net::AbhnTopology* topology,
                    const core::CacConfig& cac_config,
                    const SignalingParams& params = {});

  // Schedules a SETUP to leave the source host at `when` (simulated time).
  // `on_complete` (optional) fires when the CONNECT/REJECT arrives back.
  void request_setup(const net::ConnectionSpec& spec, Seconds when,
                     std::function<void(const SetupRecord&)> on_complete =
                         nullptr);

  // Schedules a RELEASE for an established (or establishing) connection.
  // A RELEASE reaching a connection whose SETUP is still in flight is
  // deferred until the verdict arrives (a SECOND release in that window is
  // a counted duplicate — the verdict consumes one deferral); one reaching
  // a connection already releasing is a counted no-op; one reaching an id
  // with no instance in the table (already torn down, or its SETUP was
  // rejected) is a counted unmatched no-op.
  void request_release(net::ConnectionId id, Seconds when);

  // Runs the signaling calendar to completion and returns every setup's
  // record in request order.
  std::vector<SetupRecord> run();

  // State inspection (valid during callbacks and after run()).
  bool known(net::ConnectionId id) const { return states_.contains(id); }
  ConnectionState state(net::ConnectionId id) const;
  const core::AdmissionController& cac() const { return cac_; }
  const SignalingStats& stats() const { return stats_; }
  sim::EventQueue& queue() { return queue_; }

 private:
  // One-way signaling latency between a host and the controller: per-node
  // processing along the route plus link/ring propagation.
  Seconds path_latency(const net::ConnectionSpec& spec) const;

  // Starts the teardown of an established connection at the current
  // simulated time: marks kReleasing and schedules the bandwidth return
  // after the RELEASE propagates to the controller.
  void begin_release(net::ConnectionId id);

  const net::AbhnTopology* topology_;
  core::AdmissionController cac_;
  SignalingParams params_;
  sim::EventQueue queue_;
  std::map<net::ConnectionId, ConnectionState> states_;
  // Connections whose RELEASE arrived while their SETUP was in flight.
  std::set<net::ConnectionId> pending_release_;
  SignalingStats stats_;
  std::vector<SetupRecord> records_;
};

}  // namespace hetnet::signaling
