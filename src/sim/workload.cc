#include "src/sim/workload.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace hetnet::sim {

BitsPerSecond source_rate(const WorkloadParams& w) { return w.c1 / w.p1; }

double offered_utilization(const WorkloadParams& w,
                           const net::AbhnTopology& topo) {
  HETNET_CHECK(topo.num_backbone_links() > 0,
               "offered utilization needs a backbone link to load");
  const BitsPerSecond capacity = topo.params().link.wire_rate;
  const double links = topo.num_backbone_links();
  return w.lambda * val(w.mean_lifetime * source_rate(w) / capacity) / links;
}

double lambda_for_utilization(double u, const WorkloadParams& w,
                              const net::AbhnTopology& topo) {
  HETNET_CHECK(u > 0, "utilization must be positive");
  HETNET_CHECK(topo.num_backbone_links() > 0,
               "offered utilization needs a backbone link to load");
  const BitsPerSecond capacity = topo.params().link.wire_rate;
  const double links = topo.num_backbone_links();
  return u * links * val(capacity / source_rate(w)) / val(w.mean_lifetime);
}

void SimulationResult::merge(const SimulationResult& other) {
  admission.merge(other.admission);
  total_requests += other.total_requests;
  admitted += other.admitted;
  rejected_no_bandwidth += other.rejected_no_bandwidth;
  rejected_infeasible += other.rejected_infeasible;
  skipped_no_source += other.skipped_no_source;
  skipped_no_destination += other.skipped_no_destination;
  active_at_arrival.merge(other.active_at_arrival);
  granted_h_s.merge(other.granted_h_s);
  granted_h_r.merge(other.granted_h_r);
  admitted_delay.merge(other.admitted_delay);
}

SimulationResult run_admission_simulation(const net::AbhnTopology& topo,
                                          const core::CacConfig& cac_config,
                                          const WorkloadParams& workload) {
  HETNET_CHECK(workload.lambda > 0, "λ must be positive");
  HETNET_CHECK(workload.mean_lifetime > 0, "1/μ must be positive");
  HETNET_CHECK(workload.num_requests > 0, "need at least one request");
  HETNET_CHECK(workload.warmup_requests >= 0, "warm-up cannot be negative");

  core::AdmissionController cac(&topo, cac_config);
  Rng rng(workload.seed);
  SimulationResult result;

  // Host occupancy: a host may originate at most one connection.
  std::vector<bool> busy(static_cast<std::size_t>(topo.num_hosts()), false);
  // Pending departures: (time, connection id, source host flat index).
  struct Departure {
    Seconds when;
    net::ConnectionId id;
    int host;
    bool operator>(const Departure& o) const { return when > o.when; }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;

  const int total =
      workload.warmup_requests + workload.num_requests;
  Seconds now;
  net::ConnectionId next_id = 1;

  for (int req = 0; req < total; ++req) {
    now += Seconds{rng.exponential_mean(1.0 / workload.lambda)};
    while (!departures.empty() && departures.top().when <= now) {
      const Departure d = departures.top();
      departures.pop();
      cac.release(d.id);
      busy[static_cast<std::size_t>(d.host)] = false;
    }
    const bool measured = req >= workload.warmup_requests;
    if (measured) {
      result.active_at_arrival.add(static_cast<double>(cac.active_count()));
    }

    // Uniform source among idle hosts (Section 6).
    std::vector<int> idle;
    for (int h = 0; h < topo.num_hosts(); ++h) {
      if (!busy[static_cast<std::size_t>(h)]) idle.push_back(h);
    }
    if (idle.empty()) {
      // Every host already originates a connection: the request is refused.
      if (measured) {
        ++result.skipped_no_source;
        ++result.total_requests;
        result.admission.add(false);
      }
      continue;
    }
    const int src_flat = idle[rng.pick(idle.size())];
    const net::HostId src = topo.host_at(src_flat);
    // Uniform destination on another ring (the route always crosses the
    // backbone).
    std::vector<int> remote;
    for (int h = 0; h < topo.num_hosts(); ++h) {
      if (topo.host_at(h).ring != src.ring) remote.push_back(h);
    }
    if (remote.empty()) {
      // Single-ring topology (or no hosts elsewhere): there is no backbone-
      // crossing destination, so the request is refused like any other.
      if (measured) {
        ++result.skipped_no_destination;
        ++result.total_requests;
        result.admission.add(false);
      }
      continue;
    }
    const net::HostId dst = topo.host_at(remote[rng.pick(remote.size())]);

    net::ConnectionSpec spec;
    spec.id = next_id++;
    spec.src = src;
    spec.dst = dst;
    spec.source = std::make_shared<DualPeriodicEnvelope>(
        workload.c1, workload.p1, workload.c2, workload.p2, workload.peak);
    spec.deadline = workload.deadline;

    const core::AdmissionDecision decision = cac.request(spec);
    if (measured) {
      ++result.total_requests;
      result.admission.add(decision.admitted);
    }
    if (decision.admitted) {
      if (measured) {
        ++result.admitted;
        result.granted_h_s.add(decision.alloc.h_s.value());
        result.granted_h_r.add(decision.alloc.h_r.value());
        result.admitted_delay.add(decision.worst_case_delay.value());
      }
      busy[static_cast<std::size_t>(src_flat)] = true;
      departures.push(
          {now + Seconds{rng.exponential_mean(val(workload.mean_lifetime))},
           spec.id, src_flat});
    } else if (measured) {
      if (decision.reason == core::RejectReason::kNoSyncBandwidth) {
        ++result.rejected_no_bandwidth;
      } else {
        ++result.rejected_infeasible;
      }
    }
  }
  return result;
}

}  // namespace hetnet::sim
