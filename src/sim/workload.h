// The admission-level simulation of Section 6.
//
// Connection requests arrive as a Poisson process of rate λ; the source host
// is drawn uniformly from the hosts that have no outgoing connection (at
// most one connection per host, Section 3.2); the destination is a uniform
// host on another ring, so the route always crosses the ATM backbone.
// Admitted connections live Exp(1/μ) and then release their bandwidth.
// Sources follow the dual-periodic model of eq. (37).
//
// The measured metric is the paper's admission probability
//
//     AP = admitted requests / total requests,
//
// counted after a warm-up prefix. An arrival that finds every host busy is
// a refused request like any other — it counts against AP (and is also
// tallied separately as `skipped_no_source`); excluding it would condition
// AP on host availability and make it non-monotone in the offered load.
//
// The paper's load knob is the average backbone-link utilization
//
//     U = (λ / (Lμ)) · ρ / C_link          (Section 6)
//
// with ρ = C1/P1 and L the number of backbone links (3 for the paper's
// triangle mesh — its "3μ"); helpers convert between U and λ for the
// topology in use, taking L from the topology rather than assuming the
// mesh shape.
#pragma once

#include <cstdint>
#include <limits>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/util/stats.h"

namespace hetnet::sim {

struct WorkloadParams {
  // Poisson arrival rate λ of connection requests (1/s).
  double lambda = 1.0;
  // Mean connection lifetime 1/μ.
  Seconds mean_lifetime = units::sec(20);

  // Dual-periodic source (eq. 37): C1 bits per P1, in C2-bit sub-bursts
  // every P2, with optional in-burst peak rate. Defaults give ρ = 5 Mb/s
  // per connection with 50-kbit bursts — bursty enough that the FIFO-port
  // disturbance of a new connection is felt by tightly-allocated existing
  // ones (the β = 0 failure mode), small enough that a dozen connections
  // fit the rings (the β = 1 failure mode needs headroom to waste).
  Bits c1 = units::kbits(500);
  Seconds p1 = units::ms(100);
  Bits c2 = units::kbits(50);
  Seconds p2 = units::ms(10);
  BitsPerSecond peak = BitsPerSecond::infinity();

  // End-to-end deadline D of every connection. The solo delay floor at
  // maximal allocation is ≈ 2·(2·TTRT) + conversions ≈ 33 ms; 80 ms leaves
  // room for the CAC to trade allocation against disturbance headroom.
  Seconds deadline = units::ms(80);

  // Number of measured requests per run, after the warm-up prefix.
  int num_requests = 400;
  int warmup_requests = 50;

  std::uint64_t seed = 1;
};

// ρ = C1/P1 (eq. 38).
BitsPerSecond source_rate(const WorkloadParams& w);

// The offered average utilization of one backbone link (the paper's U).
double offered_utilization(const WorkloadParams& w,
                           const net::AbhnTopology& topo);

// The λ that produces offered utilization `u` with the other workload
// parameters unchanged.
double lambda_for_utilization(double u, const WorkloadParams& w,
                              const net::AbhnTopology& topo);

struct SimulationResult {
  ProportionStats admission;        // AP (measured requests only)
  std::size_t total_requests = 0;   // measured requests
  std::size_t admitted = 0;
  std::size_t rejected_no_bandwidth = 0;   // RejectReason::kNoSyncBandwidth
  std::size_t rejected_infeasible = 0;     // RejectReason::kInfeasible
  std::size_t skipped_no_source = 0;       // arrivals with every host busy
  std::size_t skipped_no_destination = 0;  // no host on any other ring
  RunningStats active_at_arrival;   // active connections seen by arrivals
  RunningStats granted_h_s;         // granted H_S of admitted connections (s)
  RunningStats granted_h_r;
  RunningStats admitted_delay;      // worst-case bound granted at admission

  // Pools another replica (e.g. an independent seed's shard) into this
  // one: counters add, proportion/running stats merge. Used by the figure
  // benches to fold per-(point, seed) shards into one result.
  void merge(const SimulationResult& other);
};

// Runs one admission-level simulation replica.
SimulationResult run_admission_simulation(const net::AbhnTopology& topo,
                                          const core::CacConfig& cac_config,
                                          const WorkloadParams& workload);

}  // namespace hetnet::sim
