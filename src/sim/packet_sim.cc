#include "src/sim/packet_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/names.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace hetnet::sim {
namespace {

// Concrete generator parameters extracted from the connection's envelope.
struct SourceModel {
  Bits c1;
  Seconds p1;
  Bits c2;
  Seconds p2;
};

SourceModel extract_source(const EnvelopePtr& env) {
  HETNET_CHECK(env != nullptr, "null source envelope");
  if (const auto* dual =
          dynamic_cast<const DualPeriodicEnvelope*>(env.get())) {
    return {dual->c1(), dual->p1(), dual->c2(), dual->p2()};
  }
  if (const auto* periodic =
          dynamic_cast<const PeriodicEnvelope*>(env.get())) {
    return {periodic->bits_per_period(), periodic->period(),
            periodic->bits_per_period(), periodic->period()};
  }
  HETNET_CHECK(false,
               "packet simulation needs a periodic or dual-periodic source");
  return {};
}

struct Message {
  Seconds born;
  Bits size;
  Bits delivered;
};

// A chunk of one message queued at a MAC (source host or interface device).
struct MacChunk {
  std::uint64_t msg = 0;
  Bits remaining;
  bool end_of_message = false;
};

struct Cell {
  std::size_t conn = 0;
  std::uint64_t msg = 0;
  Bits payload;       // actual message bits carried (<= cell payload)
  bool end_of_message = false;
  std::size_t hop = 0;      // index into the connection's port path
};

class Simulation {
 public:
  Simulation(const net::AbhnTopology& topo,
             const std::vector<core::ConnectionInstance>& set,
             const PacketSimConfig& config)
      : topo_(topo), set_(set), config_(config), rng_(config.seed) {}

  PacketSimResult run();

 private:
  struct ConnState {
    SourceModel src;
    net::HostId src_host;
    net::HostId dst_host;
    Seconds h_s;
    Seconds h_r;
    // Transmittable budget per cycle on each side — the medium's
    // quantization of the allocation (equal to H on FDDI, whole slots on
    // TDMA). This is what a token/schedule visit actually spends.
    Seconds budget_s;
    Seconds budget_r;
    Bits frame_s;
    Bits frame_r;
    BitsPerSecond rate_s;  // effective payload rate during a window
    BitsPerSecond rate_r;
    std::vector<atm::Hop> hops;
    std::uint64_t next_msg = 0;
    std::unordered_map<std::uint64_t, Message> messages;
    std::deque<MacChunk> mac_s_queue;   // at the source host
    std::deque<MacChunk> mac_r_queue;   // at the destination's ID
    // Reassembly state at ID_R.
    Bits assembling;
    std::uint64_t assembling_msg = 0;
    ConnectionTrace trace;
  };

  struct Port {
    Seconds cell_time;
    Seconds propagation;
    std::deque<Cell> queue;
    Bits backlog;
    bool busy = false;
  };

  void generate_bursts(std::size_t ci, Seconds phase);
  void wake_ring(int ring);
  void rotate_ring(int ring);
  Seconds serve_station(std::size_t ci, std::deque<MacChunk>& queue,
                        Seconds budget, Bits frame_size, BitsPerSecond rate,
                        Seconds now, Seconds ring_propagation, bool toward_id);
  void frame_at_id_s(std::size_t ci, Bits payload, std::uint64_t msg,
                     bool end_of_message);
  void port_enqueue(std::size_t port_index, Cell cell);
  void port_start(std::size_t port_index);
  void cell_delivered(std::size_t port_index, Cell cell);
  void cell_at_id_r(Cell cell);
  void flush_frame_at_id_r(std::size_t ci, Bits payload, std::uint64_t msg);
  void frame_at_destination(std::size_t ci, Bits payload, std::uint64_t msg);

  const net::AbhnTopology& topo_;
  const std::vector<core::ConnectionInstance>& set_;
  PacketSimConfig config_;
  Rng rng_;
  EventQueue q_;
  std::vector<ConnState> conns_;
  std::vector<bool> ring_rotating_;
  std::unordered_map<int, Port> ports_;  // backbone PortId → state
  Bits max_port_backlog_;
  Seconds max_rotation_;
};

void Simulation::generate_bursts(std::size_t ci, Seconds phase) {
  ConnState& c = conns_[ci];
  const int sub_bursts =
      static_cast<int>(std::ceil(c.src.c1 / c.src.c2 - 1e-12));
  for (Seconds window = phase; window < config_.duration;
       window += c.src.p1) {
    for (int j = 0; j < sub_bursts; ++j) {
      const Seconds when = window + j * c.src.p2;
      if (when >= config_.duration) break;
      const Bits size = std::min(c.src.c2, c.src.c1 - j * c.src.c2);
      q_.schedule_at(when, [this, ci, size] {
        ConnState& conn = conns_[ci];
        const std::uint64_t id = conn.next_msg++;
        conn.messages[id] = {q_.now(), size, Bits{}};
        conn.mac_s_queue.push_back({id, size, true});
        ++conn.trace.messages_generated;
        // A burst near the end of the run can land after its ring parked.
        wake_ring(conn.src_host.ring);
      });
    }
  }
}

// Serves one station's per-connection synchronous window: transmits up to
// `budget` seconds of frames (the last frame of a window may be partial, so
// the full H·rate payload budget is usable — exactly the analysis' avail()
// model). Returns the time spent transmitting.
Seconds Simulation::serve_station(std::size_t ci, std::deque<MacChunk>& queue,
                                  Seconds budget, Bits frame_size,
                                  BitsPerSecond rate, Seconds now,
                                  Seconds ring_propagation, bool toward_id) {
  Seconds used;
  while (!queue.empty() && budget - used > 1e-12) {
    MacChunk& chunk = queue.front();
    const Bits budget_bits = (budget - used) * rate;
    const Bits payload =
        std::min({frame_size, chunk.remaining, budget_bits});
    if (payload <= 0.0) break;
    const Seconds tx = payload / rate;
    const Seconds arrival = now + used + tx + ring_propagation;
    chunk.remaining -= payload;
    const bool last = chunk.remaining <= 1e-9 && chunk.end_of_message;
    const std::uint64_t msg = chunk.msg;
    if (chunk.remaining <= 1e-9) queue.pop_front();
    if (toward_id) {
      q_.schedule_at(arrival, [this, ci, payload, msg, last] {
        frame_at_id_s(ci, payload, msg, last);
      });
    } else {
      q_.schedule_at(arrival, [this, ci, payload, msg] {
        frame_at_destination(ci, payload, msg);
      });
    }
    used += tx;
  }
  return used;
}

void Simulation::rotate_ring(int ring) {
  // One full access cycle handled in a single event: the internal cursor
  // advances across stations (hosts, then the interface device), spending
  // walk latency plus each station's transmission time. On a timed-token
  // ring the cursor models one token rotation; on a TDMA segment it models
  // one pass over the slot schedule.
  const servers::AccessMedium& medium = topo_.access_medium(ring);
  const Seconds start = q_.now();
  Seconds cursor = start;
  const int stations = topo_.params().hosts_per_ring + 1;
  const Seconds walk = medium.propagation() / stations;
  for (int st = 0; st < stations; ++st) {
    cursor += walk;
    if (st < topo_.params().hosts_per_ring) {
      // Host station: serve the (single) connection originating here.
      // Intra-ring connections (no backbone hops) deliver directly to the
      // destination host over the ring.
      for (std::size_t ci = 0; ci < conns_.size(); ++ci) {
        ConnState& c = conns_[ci];
        if (c.src_host.ring == ring && c.src_host.index == st) {
          cursor += serve_station(ci, c.mac_s_queue, c.budget_s, c.frame_s,
                                  c.rate_s, cursor, medium.propagation(),
                                  /*toward_id=*/!c.hops.empty());
        }
      }
    } else {
      // Interface device: serve every inbound connection's window.
      for (std::size_t ci = 0; ci < conns_.size(); ++ci) {
        ConnState& c = conns_[ci];
        if (c.dst_host.ring == ring) {
          cursor += serve_station(ci, c.mac_r_queue, c.budget_r, c.frame_r,
                                  c.rate_r, cursor, medium.propagation(),
                                  /*toward_id=*/false);
        }
      }
    }
  }
  if (medium.fixed_cycle()) {
    // A slotted schedule repeats at its fixed cycle regardless of load;
    // stations that had nothing to send leave their slots idle.
    cursor = std::max(cursor, start + medium.cycle().ttrt);
  } else {
    // Asynchronous background traffic stretches the rotation (never past
    // the point where synchronous service already filled it).
    cursor = std::max(cursor,
                      start + config_.async_fill * medium.cycle().ttrt);
  }
  if (cursor <= start) cursor = start + Seconds{1e-9};
  max_rotation_ = std::max(max_rotation_, cursor - start);
  // Keep rotating while sources still generate, and afterwards until this
  // ring's queues drain (bounded by a hard stop so an accidentally
  // unstable set cannot spin forever).
  bool ring_busy = false;
  for (const ConnState& c : conns_) {
    if ((c.src_host.ring == ring && !c.mac_s_queue.empty()) ||
        (c.dst_host.ring == ring && !c.mac_r_queue.empty())) {
      ring_busy = true;
      break;
    }
  }
  const Seconds hard_stop = 2.0 * config_.duration + Seconds{1.0};
  if (cursor < config_.duration || (ring_busy && cursor < hard_stop)) {
    q_.schedule_at(cursor, [this, ring] { rotate_ring(ring); });
  } else {
    // Parked; a late frame arrival restarts the rotation (see
    // flush_frame_at_id_r).
    ring_rotating_[static_cast<std::size_t>(ring)] = false;
  }
}

void Simulation::frame_at_id_s(std::size_t ci, Bits payload,
                               std::uint64_t msg, bool end_of_message) {
  const auto& id_params = topo_.params().interface_device;
  const Seconds ready = q_.now() + id_params.input_port_delay +
                        id_params.frame_switch_delay +
                        id_params.frame_cell_conversion;
  q_.schedule_at(ready, [this, ci, payload, msg, end_of_message] {
    // Segment the frame into cells (the last cell of a frame may be
    // partially filled; padding travels on the wire but carries no payload).
    const Bits cell_payload = topo_.params().cells.payload;
    Bits remaining = payload;
    while (remaining > 1e-9) {
      Cell cell;
      cell.conn = ci;
      cell.msg = msg;
      cell.payload = std::min(cell_payload, remaining);
      remaining -= cell.payload;
      cell.end_of_message = end_of_message && remaining <= 1e-9;
      cell.hop = 0;
      port_enqueue(static_cast<std::size_t>(conns_[ci].hops[0].port),
                   std::move(cell));
    }
  });
}

void Simulation::port_enqueue(std::size_t port_index, Cell cell) {
  Port& port = ports_[static_cast<int>(port_index)];
  port.backlog += cell.payload;
  max_port_backlog_ = std::max(max_port_backlog_, port.backlog);
  port.queue.push_back(std::move(cell));
  if (!port.busy) port_start(port_index);
}

void Simulation::port_start(std::size_t port_index) {
  Port& port = ports_[static_cast<int>(port_index)];
  if (port.queue.empty()) {
    port.busy = false;
    return;
  }
  port.busy = true;
  Cell cell = std::move(port.queue.front());
  port.queue.pop_front();
  port.backlog -= cell.payload;
  q_.schedule_in(port.cell_time, [this, port_index, cell = std::move(cell)] {
    cell_delivered(port_index, cell);
    port_start(port_index);
  });
}

void Simulation::cell_delivered(std::size_t port_index, Cell cell) {
  const Port& port = ports_.at(static_cast<int>(port_index));
  const ConnState& c = conns_[cell.conn];
  const Seconds arrive = q_.now() + port.propagation;
  if (cell.hop + 1 < c.hops.size()) {
    const atm::Hop next = c.hops[cell.hop + 1];
    cell.hop += 1;
    q_.schedule_at(arrive + next.fabric,
                   [this, next, cell = std::move(cell)]() mutable {
                     port_enqueue(static_cast<std::size_t>(next.port),
                                  std::move(cell));
                   });
  } else {
    q_.schedule_at(arrive, [this, cell = std::move(cell)] {
      cell_at_id_r(cell);
    });
  }
}

void Simulation::cell_at_id_r(Cell cell) {
  ConnState& c = conns_[cell.conn];
  // Cells of one connection arrive in FIFO order (every stage preserves
  // order), so sequential accumulation into the current frame is exact.
  if (c.assembling <= 0.0) c.assembling_msg = cell.msg;
  c.assembling += cell.payload;
  const bool frame_full = c.assembling >= c.frame_r - Bits{1e-9};
  if (frame_full || cell.end_of_message) {
    const Bits payload = c.assembling;
    const std::uint64_t msg = c.assembling_msg;
    c.assembling = Bits{};
    const auto& id_params = topo_.params().interface_device;
    const Seconds ready = q_.now() + id_params.input_port_delay +
                          id_params.cell_frame_conversion +
                          id_params.frame_switch_delay;
    const std::size_t ci = cell.conn;
    q_.schedule_at(ready, [this, ci, payload, msg] {
      flush_frame_at_id_r(ci, payload, msg);
    });
  }
}

void Simulation::wake_ring(int ring) {
  // Restarts a parked token (post-duration drain) so late frames/bursts are
  // still delivered.
  const auto idx = static_cast<std::size_t>(ring);
  if (!ring_rotating_[idx]) {
    ring_rotating_[idx] = true;
    q_.schedule_in(Seconds{}, [this, ring] { rotate_ring(ring); });
  }
}

void Simulation::flush_frame_at_id_r(std::size_t ci, Bits payload,
                                     std::uint64_t msg) {
  ConnState& c = conns_[ci];
  // The reassembled frame queues at the interface device's MAC for the
  // destination ring; end_of_message is recomputed at delivery from the
  // message's byte count, so it is not tracked per chunk here.
  c.mac_r_queue.push_back({msg, payload, false});
  wake_ring(c.dst_host.ring);
}

void Simulation::frame_at_destination(std::size_t ci, Bits payload,
                                      std::uint64_t msg) {
  ConnState& c = conns_[ci];
  const auto it = c.messages.find(msg);
  HETNET_CHECK(it != c.messages.end(), "frame for unknown message");
  Message& m = it->second;
  m.delivered += payload;
  if (m.delivered >= m.size - Bits{1e-6}) {
    c.trace.delay.add((q_.now() - m.born).value());
    ++c.trace.messages_delivered;
    c.messages.erase(it);
  }
}

PacketSimResult Simulation::run() {
  const net::TopologyParams& p = topo_.params();
  conns_.resize(set_.size());
  for (std::size_t i = 0; i < set_.size(); ++i) {
    const core::ConnectionInstance& inst = set_[i];
    ConnState& c = conns_[i];
    c.src = extract_source(inst.spec.source);
    c.src_host = inst.spec.src;
    c.dst_host = inst.spec.dst;
    c.h_s = inst.alloc.h_s;
    c.h_r = inst.alloc.h_r;
    const bool intra = inst.spec.src.ring == inst.spec.dst.ring;
    HETNET_CHECK(c.h_s > 0 && (intra || c.h_r > 0),
                 "simulating an unallocated conn");
    const servers::AccessMedium& src_medium =
        topo_.access_medium(c.src_host.ring);
    c.budget_s = src_medium.usable_budget(c.h_s);
    HETNET_CHECK(c.budget_s > 0,
                 "allocation too small for the source medium's quantum");
    c.frame_s = src_medium.frame_payload(c.h_s);
    c.rate_s = src_medium.payload_rate(c.frame_s);
    if (!intra) {
      const servers::AccessMedium& dst_medium =
          topo_.access_medium(c.dst_host.ring);
      c.budget_r = dst_medium.usable_budget(c.h_r);
      HETNET_CHECK(c.budget_r > 0,
                   "allocation too small for the receive medium's quantum");
      c.frame_r = dst_medium.frame_payload(c.h_r);
      c.rate_r = dst_medium.payload_rate(c.frame_r);
    }
    c.hops = topo_.backbone_route(c.src_host, c.dst_host);
    if (c.hops.empty()) {
      // Intra-ring: the receive-side allocation plays no role.
      c.h_r = c.h_s;
      c.budget_r = c.budget_s;
      c.frame_r = c.frame_s;
      c.rate_r = c.rate_s;
    }
    c.trace.id = inst.spec.id;
    for (const atm::Hop& hop : c.hops) {
      Port& port = ports_[hop.port];
      port.cell_time = topo_.backbone().port_cell_time(hop.port);
      port.propagation = hop.propagation;
    }
    const Seconds phase =
        config_.randomize_phases ? Seconds{rng_.uniform(0.0, c.src.p1.value())}
                                 : Seconds{};
    generate_bursts(i, phase);
  }
  ring_rotating_.assign(static_cast<std::size_t>(p.num_rings), true);
  for (int ring = 0; ring < p.num_rings; ++ring) {
    // Stagger token/schedule starts so rings do not rotate in lockstep.
    const Seconds cycle = topo_.access_medium(ring).cycle().ttrt;
    q_.schedule_at(Seconds{rng_.uniform(0.0, cycle.value() * 0.1)},
                   [this, ring] { rotate_ring(ring); });
  }
  // Let in-flight traffic drain: rings stop rotating at `duration` but the
  // calendar finishes transmissions already scheduled.
  const std::size_t events = q_.run();

  PacketSimResult result;
  result.events_executed = events;
  result.max_port_backlog = max_port_backlog_;
  result.max_token_rotation = max_rotation_;
  result.connections.reserve(conns_.size());
  for (auto& c : conns_) {
    result.connections.push_back(std::move(c.trace));
  }
  return result;
}

}  // namespace

PacketSimResult run_packet_simulation(
    const net::AbhnTopology& topology,
    const std::vector<core::ConnectionInstance>& connections,
    const PacketSimConfig& config) {
  HETNET_CHECK(config.duration > 0, "duration must be positive");
  HETNET_OBS_SPAN_NAMED(span, "sim.packet_run", "sim");
  span.arg("connections", std::int64_t(connections.size()));
  Simulation sim(topology, connections, config);
  PacketSimResult result = sim.run();
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.counter(obs::names::kSimPacketEventsExecuted)
        .add(std::uint64_t(result.events_executed));
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    for (const ConnectionTrace& c : result.connections) {
      generated += std::uint64_t(c.messages_generated);
      delivered += std::uint64_t(c.messages_delivered);
    }
    m.counter(obs::names::kSimPacketMessagesGenerated).add(generated);
    m.counter(obs::names::kSimPacketMessagesDelivered).add(delivered);
    m.gauge(obs::names::kSimPacketMaxPortBacklogBits)
        .set(result.max_port_backlog.value());
    m.gauge(obs::names::kSimPacketMaxTokenRotationS)
        .set(result.max_token_rotation.value());
  }
  return result;
}

}  // namespace hetnet::sim
