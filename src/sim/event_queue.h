// Discrete-event simulation core.
//
// A minimal, deterministic event calendar: events are (time, callback)
// pairs; ties are broken by insertion order so runs are reproducible. Used
// by the admission-level workload simulator and the packet-level network
// simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/units.h"

namespace hetnet::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `when` (must not precede the current
  // simulation time).
  void schedule_at(Seconds when, Callback fn);
  // Schedules `fn` after `delay` seconds of simulated time.
  void schedule_in(Seconds delay, Callback fn);

  // Runs events in time order until the calendar is empty or the optional
  // time limit is passed. Returns the number of events executed.
  std::size_t run(Seconds until = Seconds{-1.0});

  Seconds now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Seconds now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace hetnet::sim
