#include "src/sim/trace.h"

#include <istream>
#include <memory>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/obs/explain.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace hetnet::sim {
namespace {

bool blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::vector<TraceRequest> parse_trace(std::istream& in) {
  std::vector<TraceRequest> trace;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (blank_or_comment(line)) continue;
    // Optional header: starts with a non-numeric field.
    if (line.find("arrival") != std::string::npos) continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<double> fields;
    while (std::getline(row, cell, ',')) {
      try {
        fields.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                    ": bad field '" + cell + "'");
      }
    }
    if (fields.size() != 9) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": expected 9 fields, got " +
                                  std::to_string(fields.size()));
    }
    TraceRequest r;
    r.arrival = Seconds{fields[0]};
    r.src_host = static_cast<int>(fields[1]);
    r.dst_host = static_cast<int>(fields[2]);
    r.c1 = Bits{fields[3]};
    r.p1 = Seconds{fields[4]};
    r.c2 = Bits{fields[5]};
    r.p2 = Seconds{fields[6]};
    r.deadline = Seconds{fields[7]};
    r.lifetime = Seconds{fields[8]};
    if (!trace.empty() && r.arrival < trace.back().arrival) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": arrivals must be nondecreasing");
    }
    trace.push_back(r);
  }
  return trace;
}

void write_trace(std::ostream& out, const std::vector<TraceRequest>& trace) {
  // 17 significant digits round-trip any double exactly, so
  // write_trace → parse_trace reproduces the trace bit-for-bit
  // (tests/sim/trace_test.cc pins this).
  const std::streamsize saved_precision = out.precision(17);
  out << "arrival_s,src_host,dst_host,c1_bits,p1_s,c2_bits,p2_s,"
         "deadline_s,lifetime_s\n";
  for (const auto& r : trace) {
    out << r.arrival << ',' << r.src_host << ',' << r.dst_host << ','
        << r.c1 << ',' << r.p1 << ',' << r.c2 << ',' << r.p2 << ','
        << r.deadline << ',' << r.lifetime << '\n';
  }
  out.precision(saved_precision);
}

std::vector<TraceRequest> synthesize_trace(const WorkloadParams& workload,
                                           const net::AbhnTopology& topo) {
  HETNET_CHECK(workload.lambda > 0, "λ must be positive");
  Rng rng(workload.seed);
  std::vector<TraceRequest> trace;
  Seconds now;
  const int total = workload.warmup_requests + workload.num_requests;
  for (int i = 0; i < total; ++i) {
    now += Seconds{rng.exponential_mean(1.0 / workload.lambda)};
    TraceRequest r;
    r.arrival = now;
    r.src_host = static_cast<int>(rng.pick(
        static_cast<std::size_t>(topo.num_hosts())));
    const net::HostId src = topo.host_at(r.src_host);
    std::vector<int> remote;
    for (int h = 0; h < topo.num_hosts(); ++h) {
      if (topo.host_at(h).ring != src.ring) remote.push_back(h);
    }
    r.dst_host = remote[rng.pick(remote.size())];
    r.c1 = workload.c1;
    r.p1 = workload.p1;
    r.c2 = workload.c2;
    r.p2 = workload.p2;
    r.deadline = workload.deadline;
    r.lifetime = Seconds{rng.exponential_mean(val(workload.mean_lifetime))};
    trace.push_back(r);
  }
  return trace;
}

SimulationResult run_trace_simulation(const net::AbhnTopology& topo,
                                      const core::CacConfig& cac_config,
                                      const std::vector<TraceRequest>& trace,
                                      int measure_from) {
  HETNET_CHECK(measure_from >= 0, "measure_from cannot be negative");
  core::AdmissionController cac(&topo, cac_config);
  SimulationResult result;

  std::vector<bool> busy(static_cast<std::size_t>(topo.num_hosts()), false);
  struct Departure {
    Seconds when;
    net::ConnectionId id;
    int host;
    bool operator>(const Departure& o) const { return when > o.when; }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;

  net::ConnectionId next_id = 1;
  int index = 0;
  for (const TraceRequest& req : trace) {
    while (!departures.empty() && departures.top().when <= req.arrival) {
      const Departure d = departures.top();
      departures.pop();
      cac.release(d.id);
      busy[static_cast<std::size_t>(d.host)] = false;
    }
    const bool measured = index++ >= measure_from;
    if (measured) {
      result.active_at_arrival.add(static_cast<double>(cac.active_count()));
      ++result.total_requests;
    }
    HETNET_CHECK(req.src_host >= 0 && req.src_host < topo.num_hosts(),
                 "trace source host out of range");
    HETNET_CHECK(req.dst_host >= 0 && req.dst_host < topo.num_hosts(),
                 "trace destination host out of range");
    if (busy[static_cast<std::size_t>(req.src_host)]) {
      if (measured) {
        ++result.skipped_no_source;
        result.admission.add(false);
      }
      // Skipped requests never reach the controller, so the replay emits
      // their explain records itself — the NDJSON stream then accounts for
      // every trace row.
      if (cac_config.explain != nullptr) {
        obs::ExplainRecord rec;
        rec.src = topo.host_at(req.src_host);
        rec.dst = topo.host_at(req.dst_host);
        rec.deadline = req.deadline;
        rec.reason = "source_busy";
        rec.bound = core::kUnbounded;
        rec.slack = req.deadline - core::kUnbounded;
        cac_config.explain->add(std::move(rec));
      }
      continue;
    }
    net::ConnectionSpec spec;
    spec.id = next_id++;
    spec.src = topo.host_at(req.src_host);
    spec.dst = topo.host_at(req.dst_host);
    spec.source = std::make_shared<DualPeriodicEnvelope>(req.c1, req.p1,
                                                         req.c2, req.p2);
    spec.deadline = req.deadline;
    const auto decision = cac.request(spec);
    if (measured) result.admission.add(decision.admitted);
    if (decision.admitted) {
      if (measured) {
        ++result.admitted;
        result.granted_h_s.add(decision.alloc.h_s.value());
        result.granted_h_r.add(decision.alloc.h_r.value());
        result.admitted_delay.add(decision.worst_case_delay.value());
      }
      busy[static_cast<std::size_t>(req.src_host)] = true;
      departures.push({req.arrival + req.lifetime, spec.id, req.src_host});
    } else if (measured) {
      if (decision.reason == core::RejectReason::kNoSyncBandwidth) {
        ++result.rejected_no_bandwidth;
      } else {
        ++result.rejected_infeasible;
      }
    }
  }
  return result;
}

}  // namespace hetnet::sim
