// Packet-level discrete-event simulation of the heterogeneous network
// (access segments — cell backbone — access segments).
//
// Simulates the actual mechanisms the delay analysis bounds: cyclic access
// MACs (token circulation or TDMA slot schedules, per-connection
// synchronous windows, frame transmission), interface devices (constant
// port/switch stages, frame→cell segmentation, cell→frame reassembly), and
// cell switches (store-and-forward FIFO output ports at wire rate, fabric
// latency, link propagation — including long-delay satellite links). Every
// message's end-to-end last-bit delay is traced, giving the empirical
// distribution the analytic worst case must dominate
// (bench/validation_bounds runs exactly that comparison).
//
// Faithfulness notes (see DESIGN.md):
//  * Only synchronous traffic is simulated; a station transmits during a
//    cycle visit until its per-connection transmittable budget — the
//    medium's quantization of the allocation H (H itself on FDDI, whole
//    slots on TDMA) — is spent, in frames of the analysis' frame size.
//    Frame overhead is accounted through the effective payload rate,
//    exactly as in the analysis. Each ring's medium comes from the
//    topology's resolved hop sequence (src/servers/registry.h).
//  * Walk latency is the segment's propagation constant spread over the
//    stations; with ΣH + Δ <= TTRT the rotation time never exceeds TTRT,
//    matching the protocol property the analysis relies on. Fixed-cycle
//    media (TDMA) repeat their schedule at exactly the cycle time.
//  * Sources are the dual-periodic (or periodic) generators of Section 6;
//    their phases can be randomized per connection or aligned (aligned
//    phases are the adversarial case that stresses the FIFO ports).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/analyzer.h"
#include "src/util/stats.h"

namespace hetnet::obs {
class MetricsRegistry;
}  // namespace hetnet::obs

namespace hetnet::sim {

struct PacketSimConfig {
  // Simulated duration (seconds).
  Seconds duration{5.0};
  std::uint64_t seed = 1;
  // true: each source starts at a uniform random phase of its outer period.
  // false: all sources burst at t = 0 together (adversarial alignment).
  bool randomize_phases = true;
  // Fraction of TTRT each token rotation is stretched to by asynchronous
  // background traffic (stations may hold the token for asynchronous
  // transmission as long as the rotation stays within TTRT — the timed-token
  // protocol's worst case). 0 = no async traffic (rotations as fast as the
  // synchronous load allows); 0.9 approaches the adversarial rotations the
  // Theorem-1 avail() bound is built for.
  double async_fill = 0.0;
  // Optional metrics registry (src/obs/metrics.h), not owned. When set,
  // run_packet_simulation adds its run totals to the "sim.packet.*"
  // counters there (events executed, messages generated/delivered) —
  // the registry is the read surface, PacketSimResult stays the owner.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ConnectionTrace {
  net::ConnectionId id = 0;
  std::size_t messages_generated = 0;
  std::size_t messages_delivered = 0;
  // Per-message last-bit end-to-end delay (seconds).
  RunningStats delay;
};

struct PacketSimResult {
  // Aligned with the input connection set.
  std::vector<ConnectionTrace> connections;
  std::size_t events_executed = 0;
  // Largest backlog observed at any ATM output port (payload bits).
  Bits max_port_backlog;
  // Longest token rotation observed on any ring. The timed-token protocol
  // property the whole analysis rests on is max_token_rotation <= TTRT
  // whenever ΣH + Δ <= TTRT; the simulator exposes it so tests can assert
  // the invariant actually held during the run.
  Seconds max_token_rotation;
};

// Simulates the given admitted connections (each with its allocation) on
// `topology`. Sources must be PeriodicEnvelope or DualPeriodicEnvelope
// instances (the concrete generators of the paper's evaluation); other
// envelope types cannot be turned into a packet process and are rejected
// with a check failure.
PacketSimResult run_packet_simulation(
    const net::AbhnTopology& topology,
    const std::vector<core::ConnectionInstance>& connections,
    const PacketSimConfig& config);

}  // namespace hetnet::sim
