#include "src/sim/event_queue.h"

#include <utility>

#include "src/util/check.h"

namespace hetnet::sim {

void EventQueue::schedule_at(Seconds when, Callback fn) {
  HETNET_CHECK(when >= now_ - Seconds{kEps}, "cannot schedule into the past");
  HETNET_CHECK(fn != nullptr, "null event callback");
  heap_.push({when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Seconds delay, Callback fn) {
  HETNET_CHECK(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

std::size_t EventQueue::run(Seconds until) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    if (until >= 0.0 && heap_.top().when > until) break;
    // Entry must be moved out before the callback runs: the callback may
    // schedule new events and reshuffle the heap.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    entry.fn();
    ++executed;
  }
  if (until >= 0.0 && now_ < until) now_ = until;
  return executed;
}

}  // namespace hetnet::sim
