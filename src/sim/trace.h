// Trace-driven admission workloads.
//
// A trace is an explicit list of connection requests — arrival time,
// endpoints, dual-periodic source parameters, deadline, and lifetime — in a
// plain CSV format. Traces make admission experiments exactly repeatable
// across machines and library versions, let external tools generate
// scenarios, and pin regression cases ("this exact sequence used to admit
// 17 of 20").
//
// CSV columns (header optional, `#` comments ignored):
//   arrival_s, src_host, dst_host, c1_bits, p1_s, c2_bits, p2_s,
//   deadline_s, lifetime_s
// Hosts use the topology's flat ring-major numbering.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/sim/workload.h"

namespace hetnet::sim {

struct TraceRequest {
  Seconds arrival;
  int src_host = 0;
  int dst_host = 0;
  Bits c1;
  Seconds p1;
  Bits c2;
  Seconds p2;
  Seconds deadline;
  Seconds lifetime;
};

// Parses a trace; throws std::invalid_argument on malformed rows.
std::vector<TraceRequest> parse_trace(std::istream& in);

// Writes a trace in the same format (with a header line).
void write_trace(std::ostream& out, const std::vector<TraceRequest>& trace);

// Draws a trace from the Section-6 stochastic model: Poisson arrivals,
// uniform random endpoints across rings, exponential lifetimes. The trace
// has `workload.warmup_requests + workload.num_requests` entries; sources
// pick any host (occupancy is resolved at replay time).
std::vector<TraceRequest> synthesize_trace(const WorkloadParams& workload,
                                           const net::AbhnTopology& topo);

// Replays a trace against a fresh controller. Requests whose source host
// still has a live connection are refused (counted in skipped_no_source),
// mirroring the one-connection-per-host model. The first
// `measure_from` requests are treated as warm-up.
SimulationResult run_trace_simulation(const net::AbhnTopology& topo,
                                      const core::CacConfig& cac_config,
                                      const std::vector<TraceRequest>& trace,
                                      int measure_from = 0);

}  // namespace hetnet::sim
