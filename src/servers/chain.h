// Server chains: the decomposition of a connection's path (eq. 7).
//
// A chain runs the per-server analyses in path order, feeding each server's
// output descriptor into the next server's input, and sums the worst-case
// delays. The result keeps the per-stage breakdown so callers can print a
// delay budget (see examples/quickstart.cpp) and provision buffers.
#pragma once

#include <vector>

#include "src/servers/server.h"

namespace hetnet {

struct ChainStage {
  std::string server_name;
  ServerAnalysis analysis;
};

struct ChainAnalysis {
  // Σ of per-server worst-case delays: the end-to-end bound of eq. (7).
  Seconds total_delay;
  // Traffic descriptor at the chain exit.
  EnvelopePtr final_output;
  // Per-server breakdown in path order.
  std::vector<ChainStage> stages;
};

class ServerChain {
 public:
  ServerChain() = default;
  explicit ServerChain(std::vector<ServerPtr> servers);

  void append(ServerPtr server);

  // Analyzes the whole chain for a connection entering with `input`.
  // Returns nullopt as soon as any server reports no finite bound.
  std::optional<ChainAnalysis> analyze(const EnvelopePtr& input) const;

  std::size_t size() const { return servers_.size(); }
  const std::vector<ServerPtr>& servers() const { return servers_; }

 private:
  std::vector<ServerPtr> servers_;
};

}  // namespace hetnet
