// Static-priority output port: an alternative to the FIFO discipline of the
// paper's interface devices and switches (the related-work families of
// Section 2 — priority and deadline scheduling in point-to-point networks).
//
// Real-time cells are served ahead of best-effort cells; among real-time
// cells the order is FIFO. For the real-time class the classic
// non-preemptive static-priority bound applies:
//
//   busy-style delay  d_RT = sup_t [ A_RT(t)/C − t ]⁺ + T_np
//
// — identical in form to the FIFO bound but with ONLY the real-time
// aggregate in A_RT: best-effort traffic contributes just the one-cell
// non-preemption term T_np, no matter how much of it there is. This is why
// a priority port admits the same real-time set with far smaller bounds
// when heavy best-effort traffic shares the link
// (bench/ablation_scheduling).
//
// The implementation composes the FIFO machinery: the real-time class is a
// FIFO among itself, so a FifoMuxServer over the real-time flows with the
// non-preemption term gives exactly the bound above.
#pragma once

#include "src/servers/fifo_mux.h"

namespace hetnet {

class PriorityMuxServer final : public Server {
 public:
  // `params.capacity`/`cell_bits`/`non_preemption` as for FifoMuxServer;
  // `rt_cross_traffic` is the aggregate envelope of the OTHER real-time
  // flows at this port. Best-effort traffic needs no envelope at all — its
  // entire effect on the real-time class is the non-preemption term.
  PriorityMuxServer(std::string name, FifoMuxParams params,
                    EnvelopePtr rt_cross_traffic,
                    const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return inner_.name(); }

  std::optional<Seconds> queueing_delay(const EnvelopePtr& input) const {
    return inner_.queueing_delay(input);
  }

 private:
  FifoMuxServer inner_;
};

}  // namespace hetnet
