#include "src/servers/fddi_mac.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/traffic/algebra.h"
#include "src/traffic/cached.h"
#include "src/traffic/staircase.h"
#include "src/util/check.h"

namespace hetnet {
namespace {

// Number of whole token rotations completed in an interval of length t, with
// an absolute epsilon on the quotient so that t == k·TTRT computed through
// floating point still counts k rotations.
double rotations(Seconds t, Seconds ttrt) {
  return std::floor(t / ttrt + 1e-9);
}

double rotations_left(Seconds t, Seconds ttrt) {
  return std::floor(t / ttrt - 1e-9);
}

// Theorem 1's output descriptor Υ before rasterization:
//
//   A'(I) = min( BW·I, max_{0<=t<=T} ( A(t+I) − avail(t) ) ).
//
// Because A is nondecreasing and avail() is constant between token-rotation
// boundaries, the inner max over t is attained at t = 0 or just before a
// boundary t = k·TTRT (where avail still has its previous-rotation value);
// scanning k = 2..K with avail's left limit is therefore exact:
// for t in ((k-1)·TTRT, k·TTRT):  A(t+I) − avail(t) <= A(k·TTRT + I) −
// avail_left(k·TTRT), which is exactly the k-th scanned candidate.
class MacOutputEnvelope final : public ArrivalEnvelope {
 public:
  MacOutputEnvelope(EnvelopePtr input, FddiMacParams params, int rotations_k)
      : input_(std::move(input)), params_(params), k_max_(rotations_k) {}

  Bits bits(Seconds interval) const override {
    HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
    const Bits per_visit = params_.sync_allocation * params_.ring_rate;
    const Bits cap = params_.ring_rate * interval;
    Bits best = input_->bits(interval);  // t = 0 (avail(0) = 0)
    for (int k = 2; k <= k_max_ && best < cap; ++k) {
      // Once `best` reaches the BW·I cap the min() below is decided; the
      // remaining candidates could only raise `best` further.
      const Seconds t = static_cast<double>(k) * params_.ttrt;
      const Bits credit = static_cast<double>(k - 2) * per_visit;
      best = std::max(best, input_->bits(t + interval) - credit);
    }
    return std::max(Bits{}, std::min(cap, best));
  }

  BitsPerSecond long_term_rate() const override {
    return std::min(params_.ring_rate, input_->long_term_rate());
  }

  // With b the input's burst bound and pv = H·BW the per-visit quantum:
  //   A'(I) <= max_t [ b + ρ(t+I) − max(0, (t/TTRT − 2))·pv ]
  //         <= b + 2·pv + ρ·I,
  // because the bracket is maximized at t <= 2·TTRT (stability gives
  // ρ·TTRT <= pv, so the t-terms decay beyond that) and ρ·2·TTRT <= 2·pv.
  Bits burst_bound() const override {
    const Bits per_visit = params_.sync_allocation * params_.ring_rate;
    return input_->burst_bound() + 2.0 * per_visit;
  }

  // Sampling HINTS only (input structure plus rotation boundaries) — this
  // envelope does not expose its complete breakpoint set and must be
  // rasterized (see AnalysisConfig::rasterize_mac_output) before it is fed
  // to scans that rely on exact piecewise-affinity.
  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    return add_grid(input_->breakpoints(horizon), params_.ttrt, horizon);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "fddi-mac-output(" << input_->describe() << ")";
    return os.str();
  }

 private:
  EnvelopePtr input_;
  FddiMacParams params_;
  int k_max_;  // K = scan range / TTRT
};

}  // namespace

FddiMacServer::FddiMacServer(std::string name, const FddiMacParams& params,
                             const AnalysisConfig& config)
    : name_(std::move(name)), params_(params), config_(config) {
  HETNET_CHECK(params_.ttrt > 0, "TTRT must be positive");
  HETNET_CHECK(params_.sync_allocation > 0,
               "synchronous allocation H must be positive");
  HETNET_CHECK(params_.sync_allocation <= params_.ttrt,
               "H cannot exceed TTRT");
  HETNET_CHECK(params_.ring_rate > 0, "ring rate must be positive");
  HETNET_CHECK(params_.buffer_limit > 0, "buffer limit must be positive");
}

Bits FddiMacServer::avail(Seconds t) const {
  const double visits = rotations(t, params_.ttrt) - 1.0;
  return std::max(Bits{}, visits * params_.sync_allocation * params_.ring_rate);
}

Bits FddiMacServer::avail_left(Seconds t) const {
  const double visits = rotations_left(t, params_.ttrt) - 1.0;
  return std::max(Bits{}, visits * params_.sync_allocation * params_.ring_rate);
}

std::optional<Seconds> FddiMacServer::busy_interval(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  const BitsPerSecond guaranteed_rate =
      params_.sync_allocation * params_.ring_rate / params_.ttrt;
  if (input->long_term_rate() > guaranteed_rate * (1.0 + 1e-9)) {
    return std::nullopt;  // arrival rate exceeds guaranteed service: unstable
  }
  // The minimizer of {t : A(t) <= avail(t)} is a rotation boundary: avail is
  // constant on [k·TTRT, (k+1)·TTRT) and A is nondecreasing, so if the
  // condition holds anywhere in that window it holds at its left end.
  for (int k = 1; k <= config_.max_busy_rotations; ++k) {
    const Seconds t = static_cast<double>(k) * params_.ttrt;
    if (approx_le(input->bits(t), avail(t))) return t;
  }
  return std::nullopt;  // budget exceeded: treat as unbounded
}

std::optional<ServerAnalysis> FddiMacServer::analyze(
    const EnvelopePtr& raw_input) const {
  // The busy-interval scan, the buffer/delay maxima and the χ bisections
  // revisit overlapping interval values; memoize the (possibly deeply
  // composed) input once for the whole analysis.
  const EnvelopePtr input = cache_envelope(raw_input);
  const std::optional<Seconds> busy = busy_interval(input);
  if (!busy.has_value()) return std::nullopt;
  const Bits per_visit = params_.sync_allocation * params_.ring_rate;
  const BitsPerSecond service_rate = per_visit / params_.ttrt;
  const BitsPerSecond rho = input->long_term_rate();
  const Bits burst = input->burst_bound();
  if (!isfinite(burst)) return std::nullopt;

  // Theorem 1 restricts its maxima to the busy interval (0, B], which is
  // exact for subadditive envelopes (all source models are). Deep computed
  // envelopes reaching the receive-side MAC need not be subadditive, so the
  // scan is extended to a guard horizon past which the leaky-bucket
  // majorization A(t) <= burst + ρ·t provably drives every supremand
  // negative:
  //   delay:    s(A(t)) − t <= TTRT·(A(t)/pv + 2) − t
  //                         <= (TTRT·burst/pv + 2·TTRT) − t·(1 − TTRT·ρ/pv)
  //   backlog:  A(t) − avail(t) <= (burst + 2·pv) − t·(pv/TTRT − ρ)
  // Scanning to the larger zero of the two majorants makes the suprema
  // global without any subadditivity assumption.
  const double slack = 1.0 - params_.ttrt * rho / per_visit;
  if (slack <= 1e-12) return std::nullopt;  // exactly saturated: no guard
  const Seconds guard_delay =
      (params_.ttrt * burst / per_visit + 2.0 * params_.ttrt) / slack;
  const Seconds guard_backlog =
      (burst + 2.0 * per_visit) / (service_rate - rho);
  const Seconds scan_end =
      std::max({*busy, guard_delay, guard_backlog});
  const int k_max = static_cast<int>(std::ceil(scan_end / params_.ttrt - 1e-9));
  if (k_max > 4 * config_.max_busy_rotations) return std::nullopt;
  const Seconds t_scan = static_cast<double>(k_max) * params_.ttrt;

  // --- Theorem 1.2: buffer bound F = max_t (A(t) − avail(t)). ---
  // avail is constant on each rotation window and A is nondecreasing, so the
  // per-window supremum is at the window's right end (right-continuous A
  // value there is >= the open-interval supremum: conservative and tight up
  // to a jump that the next window accounts with its own credit).
  Bits buffer = input->bits(Seconds{});
  for (int k = 0; k < k_max; ++k) {
    const Seconds right = static_cast<double>(k + 1) * params_.ttrt;
    const Bits credit = std::max(0.0, static_cast<double>(k - 1)) * per_visit;
    buffer = std::max(buffer, input->bits(right) - credit);
  }
  if (buffer > params_.buffer_limit * (1.0 + 1e-12)) {
    return std::nullopt;  // Theorem 1.3: F > S ⟹ overflow ⟹ delay = ∞
  }

  // --- Theorem 1.3: delay bound χ = max_t min{d : avail(t+d) >= A(t)}. ---
  // For backlog v > 0 the earliest s with avail(s) >= v is
  //     s(v) = TTRT · (⌈v/(H·BW)⌉ + 1).
  // χ = sup_t [ s(A(t)) − t ]; between the times where ⌈A(t)/(H·BW)⌉ steps
  // to a new level n, s∘A is constant and the supremand decreases in t, so
  // the sup is attained at the EARLIEST time u_n each level is exceeded:
  //     χ = max_n ( TTRT·(n + 1) − u_n ),
  //     u_n = inf{ t : A(t) > (n−1)·H·BW },   n = 1..⌈A(T)/(H·BW)⌉.
  // A is piecewise affine with complete breakpoints (the envelope
  // contract), so one ordered sweep over its segments yields every u_n
  // exactly: a jump at a segment's left edge crosses a batch of levels at
  // once (only the highest matters — same u, larger n), and an affine span
  // crosses each level at a directly computable time.
  const Bits a_end = input->bits(t_scan);
  if (std::ceil(a_end / per_visit) > config_.max_candidates) {
    return std::nullopt;
  }
  std::vector<Seconds> ends = input->breakpoints(t_scan);
  if (ends.size() > static_cast<std::size_t>(config_.max_candidates)) {
    return std::nullopt;
  }
  if (ends.empty() || !approx_eq(ends.back(), t_scan)) {
    ends.push_back(t_scan);
  }
  Seconds delay;
  const auto consider = [&](Seconds u, double level) {
    delay = std::max(delay,
                     params_.ttrt * (level + 1.0) - u);
  };
  // Level reached so far: n−1 thresholds below current value are crossed.
  double reached = 0.0;  // ⌈A/pv⌉ of everything seen so far
  const auto cross_up_to = [&](Seconds u, Bits value) {
    // All levels with (n−1)·pv < value are exceeded by time u; only the
    // highest new one matters at this u.
    const double n_here = std::ceil(value / per_visit - 1e-12);
    if (n_here > reached) {
      consider(u, n_here);
      reached = n_here;
    }
  };
  cross_up_to(Seconds{}, input->bits(Seconds{}));
  Seconds a;
  for (Seconds b : ends) {
    if (b <= a) continue;
    const Seconds da = (b - a) * 1e-9;
    const Bits va = input->bits(a + da);   // post-jump value at left edge
    cross_up_to(a, va);                    // jump at `a` crosses in a batch
    const Bits vb = input->bits(b - da);   // pre-jump value at right edge
    if (vb > va + Bits{kEps}) {
      const BitsPerSecond slope = (vb - va) / (b - a - 2 * da);
      // Affine span: each level threshold in (va, vb) crossed one by one.
      for (double n = reached + 1.0;
           (n - 1.0) * per_visit < vb - Bits{kEps}; ++n) {
        const Seconds u = a + da + ((n - 1.0) * per_visit - va) / slope;
        consider(u, n);
        reached = n;
      }
    }
    a = b;
  }
  cross_up_to(t_scan, a_end);  // right-continuous value at the scan end
  delay = std::max(delay, Seconds{});

  // --- Theorem 1.4: output descriptor Υ. ---
  EnvelopePtr output =
      std::make_shared<MacOutputEnvelope>(input, params_, k_max);
  if (config_.rasterize_mac_output) {
    const Seconds horizon =
        std::max(t_scan, static_cast<double>(config_.output_horizon_rotations) *
                             params_.ttrt);
    output = rasterize(cache_envelope(std::move(output)), horizon,
                       static_cast<std::size_t>(config_.rasterize_max_points));
    // Rasterization raises segment values to their right-end samples, which
    // forfeits the BW·I physical cap; re-apply it (still a sound upper
    // bound: the true output satisfies both operands).
    output = rate_cap(std::move(output), params_.ring_rate, Bits{});
  }

  ServerAnalysis result;
  result.worst_case_delay = delay;
  result.buffer_required = buffer;
  result.output = std::move(output);
  return result;
}

}  // namespace hetnet
