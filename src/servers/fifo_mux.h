// The FIFO output-port multiplexer: the Output_Port server of an interface
// device and the output ports of ATM switches (Sections 4.3.2/4.3.3; the
// analysis method of Cruz [5,6] and Raha-Kamat-Zhao [2,14]).
//
// Cells from several connections share a link of capacity C (FIFO order).
// With aggregate arrival envelope A_tot(t) = Σ_j A_j(t):
//
//   busy period   B  = min{ t>0 : A_tot(t) <= C·t }
//   delay bound   d  = max_{0<t<=B} ( A_tot(t)/C − t ) + T_np
//   backlog bound Q  = max_{0<t<=B} ( A_tot(t) − C·t )
//   output        A'_j(I) = min( A_j(I + d),  C·I + L_cell )
//
// T_np is the non-preemption term (a cell already in transmission finishes),
// and the per-flow output bound is the standard FIFO result: whatever leaves
// in a window of length I entered within I + d, and a single flow cannot
// occupy more than the full link plus one cell.
//
// The server is constructed per-connection with the *cross traffic* — the
// aggregate envelope of all other connections at this port, computed by the
// network analyzer in topological order. The delay and backlog bounds are
// properties of the shared port (identical for every flow through it); the
// output descriptor is per-flow.
//
// Exactness: all envelopes reaching a mux are piecewise affine with complete
// breakpoint sets (sources, staircases, shifts/mins/quantizations thereof),
// so B, d and Q are found by exact segment-wise search, not grid sampling.
#pragma once

#include <limits>

#include "src/servers/server.h"

namespace hetnet {

struct FifoMuxParams {
  // Link capacity in the same accounting as the input envelopes (payload
  // bits/second if cells are payload-accounted; wire bits/second if
  // wire-accounted).
  BitsPerSecond capacity;
  // Non-preemption term: worst-case residual transmission time of the unit
  // in service when a cell arrives (one cell time on ATM links).
  Seconds non_preemption;
  // Burst term for the per-flow output cap (one cell, in the envelope
  // accounting).
  Bits cell_bits;
  // Port buffer; the analysis reports no bound (rejection) if the worst-case
  // backlog exceeds it. Infinite by default.
  Bits buffer_limit = Bits::infinity();
  // Scan horizon cap: if the busy period has not closed by this many seconds
  // the analysis conservatively gives up. The closed-form tail crossing
  // normally ends the search long before this.
  Seconds max_busy_period{60.0};
};

class FifoMuxServer final : public Server {
 public:
  // `cross_traffic` is the aggregate envelope of the OTHER connections
  // multiplexed at this port (ZeroEnvelope if none).
  FifoMuxServer(std::string name, FifoMuxParams params,
                EnvelopePtr cross_traffic, const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  const FifoMuxParams& params() const { return params_; }

  // Port-wide bounds for `input` plus the cross traffic, without deriving a
  // per-flow output descriptor. The delay includes the non-preemption term;
  // nullopt when no finite bound exists or the backlog overflows the port
  // buffer. The network analyzer calls this once per shared port and derives
  // each flow's output itself (see flow_output()).
  struct PortAnalysis {
    Seconds worst_case_delay;
    Bits buffer_required;
  };
  std::optional<PortAnalysis> analyze_port(const EnvelopePtr& input) const;

  // The standard FIFO per-flow output bound for a flow that entered the port
  // as `input` when the port's delay bound is `delay`: departures in a
  // window of length I arrived within I + delay, and a single flow cannot
  // beat the link rate plus one cell of slack.
  EnvelopePtr flow_output(const EnvelopePtr& input, Seconds delay) const;

  // The port-wide worst-case queueing delay (before adding T_np) for the
  // aggregate of `input` plus the cross traffic; exposed for tests.
  std::optional<Seconds> queueing_delay(const EnvelopePtr& input) const;

 private:
  struct PortBounds {
    Seconds busy_period;
    Seconds queueing_delay;
    Bits backlog;
  };
  std::optional<PortBounds> bound_port(const EnvelopePtr& input) const;

  std::string name_;
  FifoMuxParams params_;
  EnvelopePtr cross_;
  AnalysisConfig config_;
};

}  // namespace hetnet
