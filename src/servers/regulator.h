// Leaky-bucket traffic regulator (shaper) — the companion mechanism of
// Raha-Kamat-Zhao, "Using Traffic Regulation to Meet End-to-End Deadlines
// in ATM LANs" (reference [15] of the paper).
//
// A (σ, ρ) regulator delays traffic just enough that its output conforms to
// the envelope σ + ρ·I. Inserted at an interface device it trades a local,
// known shaping delay for much smaller disturbance at every downstream FIFO
// port (bench/ablation_regulation quantifies the trade).
//
// Analysis (service-curve σ + ρ·t, FIFO):
//   delay bound    d = sup_t [ (A(t) − σ)/ρ − t ]⁺
//   backlog bound  Q = sup_t [ A(t) − σ − ρ·t ]⁺
//   output         A'(I) = min( A(I + d),  σ + ρ·I )
// The suprema are computed exactly by the same segment-walk the FIFO mux
// uses, with the scan horizon derived from the input's leaky-bucket
// majorization (sound for non-subadditive composed envelopes).
#pragma once

#include <limits>

#include "src/servers/server.h"

namespace hetnet {

struct RegulatorParams {
  // Bucket depth σ (bits) and token rate ρ (bits/second).
  Bits sigma;
  BitsPerSecond rho;
  // Shaper buffer; nullopt-analysis if the backlog bound exceeds it.
  Bits buffer_limit = Bits::infinity();
  // Conservative cap on the scan horizon.
  Seconds max_busy_period{60.0};
};

class RegulatorServer final : public Server {
 public:
  RegulatorServer(std::string name, const RegulatorParams& params,
                  const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  const RegulatorParams& params() const { return params_; }

 private:
  std::string name_;
  RegulatorParams params_;
  AnalysisConfig config_;
};

}  // namespace hetnet
