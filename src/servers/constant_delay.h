// Constant-delay servers (Section 4.3): the Delay_Line on a ring, the
// Input_Port and Frame_Switch stages of an interface device, link
// propagation, and switch fabric latency. A constant-delay server delays
// every bit by the same amount and therefore does not change the traffic
// descriptor (eqs. 13, 17, 19).
#pragma once

#include "src/servers/server.h"

namespace hetnet {

class ConstantDelayServer final : public Server {
 public:
  // `delay` >= 0 seconds; `name` identifies the stage in breakdowns.
  ConstantDelayServer(std::string name, Seconds delay);

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  Seconds delay() const { return delay_; }

 private:
  std::string name_;
  Seconds delay_;
};

}  // namespace hetnet
