// TDMA Ethernet MAC server (RTmac-style slotted medium access).
//
// In an RTnet/RTmac time-division schedule the stations of an Ethernet
// segment share a fixed cycle of length T_cycle divided into slots of
// length T_slot; a station owning k slots per cycle may transmit for
// k·T_slot seconds each cycle, always — collisions are designed out, so
// unlike CSMA/CD the guaranteed service is exact. A reservation of H
// seconds per cycle is honored as
//
//     budget(H) = ⌊H / T_slot⌋ · T_slot        (whole slots only)
//
// and the guaranteed cumulative payload service in any interval of length t
// is
//
//     avail(t) = max(0, (⌊t/T_cycle⌋ − 1) · budget · BW_eff ,
//
// the same step-function structure as the FDDI timed-token bound (Theorem 1
// with TTRT → T_cycle and H → budget): an interval may open just after the
// station's slot group, paying one full cycle of latency, and every further
// complete cycle contributes the full slot-group's service. In the
// rate-latency service-curve view this is
//
//     β(t) = rate() · max(0, t − latency()) ,
//     rate()    = budget · BW_eff / T_cycle ,
//     latency() = 2 · T_cycle
//
// (the avail() staircase dominates this line, so the staircase — which the
// shared Theorem-1 machinery analyzes exactly — is the tighter bound; the
// accessors exist for the property tests that pin the derivation).
//
// BW_eff discounts the raw Ethernet rate by the per-frame overhead at the
// schedule's frame payload, exactly like fddi::effective_payload_rate does
// for FDDI framing.
#pragma once

#include "src/servers/fddi_mac.h"
#include "src/servers/server.h"
#include "src/util/units.h"

namespace hetnet {

struct TdmaMacParams {
  // Fixed schedule cycle length T_cycle (every station's slots recur once
  // per cycle).
  Seconds cycle;
  // Slot quantum T_slot; reservations are rounded DOWN to whole slots.
  Seconds slot_time;
  // The requested reservation H in seconds per cycle (pre-quantization).
  Seconds allocation;
  // Effective payload rate while the station transmits (raw rate discounted
  // by Ethernet framing overhead at the schedule's frame size).
  BitsPerSecond payload_rate;
  // MAC transmit buffer (Theorem 1's S).
  Bits buffer_limit = Bits::infinity();
};

// Rounds `h` down to whole slots of `slot` (with a kEps-relative nudge so a
// reservation computed as an exact slot multiple in floating point does not
// lose its last slot). Never negative; 0 when h < one slot.
Seconds tdma_quantize_budget(Seconds h, Seconds slot);

class TdmaMacServer final : public Server {
 public:
  // Requires cycle > 0, 0 < slot_time <= cycle, and a positive quantized
  // budget (callers gate zero-budget reservations before constructing —
  // the medium's usable_budget() is the screen).
  TdmaMacServer(std::string name, const TdmaMacParams& params,
                const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return inner_.name(); }

  const TdmaMacParams& params() const { return params_; }
  // The whole-slot budget actually scheduled per cycle.
  Seconds quantized_budget() const { return inner_.params().sync_allocation; }

  // The rate-latency service-curve view of the slot schedule (see file
  // comment). The staircase bound avail() dominates this line everywhere.
  BitsPerSecond rate() const;
  Seconds latency() const { return params_.cycle * 2.0; }
  // The staircase itself, for domination checks.
  Bits avail(Seconds t) const { return inner_.avail(t); }

 private:
  TdmaMacParams params_;
  FddiMacServer inner_;
};

}  // namespace hetnet
