#include "src/servers/edf_mux.h"

#include <algorithm>
#include <cmath>

#include "src/traffic/algebra.h"
#include "src/util/check.h"

namespace hetnet {

EdfMuxServer::EdfMuxServer(std::string name, BitsPerSecond capacity,
                           Seconds non_preemption, Bits cell_bits,
                           EdfFlow own, std::vector<EdfFlow> others,
                           const AnalysisConfig& config)
    : name_(std::move(name)),
      capacity_(capacity),
      non_preemption_(non_preemption),
      cell_bits_(cell_bits),
      own_(std::move(own)),
      others_(std::move(others)),
      config_(config) {
  HETNET_CHECK(capacity_ > 0, "capacity must be positive");
  HETNET_CHECK(non_preemption_ >= 0, "non-preemption must be >= 0");
  HETNET_CHECK(cell_bits_ >= 0, "cell size must be >= 0");
  HETNET_CHECK(own_.envelope != nullptr, "own flow needs an envelope");
  HETNET_CHECK(own_.local_deadline > 0, "local deadline must be positive");
  for (const auto& flow : others_) {
    HETNET_CHECK(flow.envelope != nullptr, "flow needs an envelope");
    HETNET_CHECK(flow.local_deadline > 0, "local deadline must be positive");
  }
}

bool EdfMuxServer::schedulable() const {
  std::vector<EdfFlow> flows = others_;
  flows.push_back(own_);

  BitsPerSecond total_rate;
  Bits total_burst;
  Bits weighted_deadline;
  for (const auto& flow : flows) {
    total_rate += flow.envelope->long_term_rate();
    total_burst += flow.envelope->burst_bound();
    weighted_deadline += flow.envelope->long_term_rate() *
                         flow.local_deadline;
  }
  if (total_rate > capacity_ * (1.0 - 1e-9)) return false;

  // Demand(t) = np·C + Σ A_i((t − d_i)⁺) is majorized by
  //   np·C + Σ (b_i + ρ_i·(t − d_i)) ,
  // which falls below C·t for every
  //   t >= guard = (Σb_i + np·C − Σρ_i·d_i) / (C − Σρ).
  const Seconds guard =
      (total_burst + non_preemption_ * capacity_ - weighted_deadline) /
      (capacity_ - total_rate);
  if (guard > 60.0) return false;  // conservative analysis budget
  if (guard <= 0.0) return true;   // condition holds from t = 0⁺ onward

  // Exact kink set: each flow's envelope breakpoints shifted by +d_i, plus
  // the activation points t = d_i.
  std::vector<std::vector<Seconds>> lists;
  for (const auto& flow : flows) {
    std::vector<Seconds> pts;
    pts.push_back(flow.local_deadline);
    if (guard > flow.local_deadline) {
      for (Seconds b :
           flow.envelope->breakpoints(guard - flow.local_deadline)) {
        pts.push_back(b + flow.local_deadline);
      }
    }
    lists.push_back(std::move(pts));
  }
  std::vector<Seconds> ends = merge_breakpoints(std::move(lists));
  if (ends.size() > static_cast<std::size_t>(config_.max_candidates)) {
    return false;
  }
  if (ends.empty() || !approx_le(guard, ends.back())) {
    ends.push_back(guard);
  }

  const auto demand = [&](Seconds t) {
    Bits total = non_preemption_ * capacity_;
    for (const auto& flow : flows) {
      if (t > flow.local_deadline) {
        total += flow.envelope->bits(t - flow.local_deadline);
      }
    }
    return total;
  };

  // The condition only binds from the earliest local deadline onward — for
  // t < min d_i nothing is due yet, so the blocking term alone cannot
  // violate anything.
  Seconds d_min = flows.front().local_deadline;
  for (const auto& flow : flows) {
    d_min = std::min(d_min, flow.local_deadline);
  }

  // Between kinks the demand is affine, so a violation anywhere in a
  // segment implies one at an endpoint; jumps are caught just after the
  // left edge. d_min itself is in the kink set, so segments below it are
  // skipped whole.
  Seconds a;
  for (Seconds b : ends) {
    if (b <= a) continue;
    if (a >= d_min - Seconds{kEps}) {
      const Seconds left = a + (b - a) * 1e-9;
      if (!approx_le(demand(left), capacity_ * a)) return false;
    }
    if (b >= d_min - Seconds{kEps}) {
      if (!approx_le(demand(b), capacity_ * b)) return false;
    }
    a = b;
  }
  return true;
}

std::optional<ServerAnalysis> EdfMuxServer::analyze(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  EdfMuxServer probe(*this);
  probe.own_.envelope = input;
  if (!probe.schedulable()) return std::nullopt;

  // Backlog bound: the work-conserving aggregate backlog (as for FIFO).
  std::vector<EnvelopePtr> parts{input};
  for (const auto& flow : others_) parts.push_back(flow.envelope);
  const EnvelopePtr total = sum_envelopes(parts);
  const Bits burst = total->burst_bound();
  const BitsPerSecond rho = total->long_term_rate();
  Bits backlog = total->bits(Seconds{});
  if (rho < capacity_ && isfinite(burst)) {
    const Seconds horizon = burst / (capacity_ - rho) + Seconds{kEps};
    std::vector<Seconds> ends = total->breakpoints(horizon);
    ends.push_back(horizon);
    Seconds a;
    for (Seconds b : ends) {
      if (b <= a) continue;
      backlog = std::max(backlog,
                         total->bits(a + (b - a) * 1e-9) - capacity_ * a);
      backlog = std::max(backlog, total->bits(b) - capacity_ * b);
      a = b;
    }
  }

  ServerAnalysis result;
  result.worst_case_delay = own_.local_deadline;
  result.buffer_required = std::max(Bits{}, backlog);
  result.output =
      rate_cap(shift_envelope(input, own_.local_deadline), capacity_,
               cell_bits_);
  return result;
}

}  // namespace hetnet
