#include "src/servers/conversion.h"

#include <cmath>

#include "src/traffic/algebra.h"
#include "src/util/check.h"

namespace hetnet {

ConversionServer::ConversionServer(std::string name, Bits in_unit,
                                   Bits out_unit, Seconds processing_delay)
    : name_(std::move(name)),
      in_unit_(in_unit),
      out_unit_(out_unit),
      delay_(processing_delay) {
  HETNET_CHECK(in_unit_ > 0 && out_unit_ > 0,
               "conversion units must be positive");
  HETNET_CHECK(delay_ >= 0, "processing delay must be >= 0");
}

std::optional<ServerAnalysis> ConversionServer::analyze(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  ServerAnalysis result;
  result.worst_case_delay = delay_;
  // One input unit is resident while being converted, plus whatever arrives
  // during the processing window.
  result.buffer_required = in_unit_ + input->bits(delay_);
  result.output = quantize_envelope(input, in_unit_, out_unit_);
  return result;
}

std::shared_ptr<ConversionServer> make_frame_to_cell_server(
    std::string name, Bits frame_payload, Bits cell_payload,
    Bits cell_accounted, Seconds processing_delay) {
  HETNET_CHECK(cell_payload > 0 && cell_accounted >= cell_payload,
               "cell accounting cannot be smaller than the cell payload");
  const double cells_per_frame = std::ceil(frame_payload / cell_payload);
  return std::make_shared<ConversionServer>(
      std::move(name), frame_payload, cells_per_frame * cell_accounted,
      processing_delay);
}

std::shared_ptr<ConversionServer> make_cell_to_frame_server(
    std::string name, Bits frame_payload, Bits cell_payload,
    Bits cell_accounted, Seconds processing_delay) {
  HETNET_CHECK(cell_payload > 0 && cell_accounted >= cell_payload,
               "cell accounting cannot be smaller than the cell payload");
  const double cells_per_frame = std::ceil(frame_payload / cell_payload);
  return std::make_shared<ConversionServer>(
      std::move(name), cells_per_frame * cell_accounted, frame_payload,
      processing_delay);
}

}  // namespace hetnet
