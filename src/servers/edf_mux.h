// Earliest-Deadline-First output port — the wide-area-network scheduling
// family of Section 2 (Ferrari-Verma channel establishment [7], Zheng-Shin
// real-time channels [25]).
//
// Each flow i is assigned a LOCAL deadline d_i at this port; cells are
// served in order of arrival time + d_i. The classic schedulability
// condition for non-preemptive EDF over arrival envelopes is
//
//     ∀t > 0 :   T_np  +  Σ_i A_i( (t − d_i)⁺ )   <=   C · t ,
//
// i.e. by any time t the link can have produced every cell whose local
// deadline falls within t (plus one non-preemptible cell). If the condition
// holds, every flow i's port delay is bounded by its OWN d_i — unlike FIFO,
// where one shared bound covers everyone. A port can therefore give a
// 2-ms bound to a control flow and a 20-ms bound to a video flow while
// FIFO would force both to the aggregate bound.
//
// The check walks the aggregate's breakpoints exactly (the shifted
// envelopes stay piecewise affine) out to the guard horizon where the
// leaky-bucket majorizations drive the condition's slack positive for all
// larger t.
#pragma once

#include <vector>

#include "src/servers/server.h"

namespace hetnet {

struct EdfFlow {
  EnvelopePtr envelope;   // arrival envelope at the port entrance
  Seconds local_deadline; // d_i: the port delay this flow is promised
};

class EdfMuxServer final : public Server {
 public:
  // `own` describes the flow this server instance analyzes; `others` the
  // remaining flows scheduled at the port. Capacity/cell/non-preemption as
  // for FifoMuxServer.
  EdfMuxServer(std::string name, BitsPerSecond capacity,
               Seconds non_preemption, Bits cell_bits, EdfFlow own,
               std::vector<EdfFlow> others,
               const AnalysisConfig& config = {});

  // Returns the own flow's bound (= its local deadline) if the WHOLE flow
  // set is EDF-schedulable; nullopt otherwise.
  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  // The schedulability test alone (exposed for tests and planning tools).
  bool schedulable() const;

 private:
  std::string name_;
  BitsPerSecond capacity_;
  Seconds non_preemption_;
  Bits cell_bits_;
  EdfFlow own_;
  std::vector<EdfFlow> others_;
  AnalysisConfig config_;
};

}  // namespace hetnet
