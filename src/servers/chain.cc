#include "src/servers/chain.h"

#include <utility>

#include "src/util/check.h"

namespace hetnet {

ServerChain::ServerChain(std::vector<ServerPtr> servers)
    : servers_(std::move(servers)) {
  for (const auto& s : servers_) HETNET_CHECK(s != nullptr, "null server");
}

void ServerChain::append(ServerPtr server) {
  HETNET_CHECK(server != nullptr, "null server");
  servers_.push_back(std::move(server));
}

std::optional<ChainAnalysis> ServerChain::analyze(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  ChainAnalysis result;
  EnvelopePtr current = input;
  result.stages.reserve(servers_.size());
  for (const auto& server : servers_) {
    auto stage = server->analyze(current);
    if (!stage.has_value()) return std::nullopt;
    result.total_delay += stage->worst_case_delay;
    current = stage->output;
    result.stages.push_back({server->name(), std::move(*stage)});
  }
  result.final_output = std::move(current);
  return result;
}

}  // namespace hetnet
