#include "src/servers/fifo_mux.h"

#include <algorithm>
#include <cmath>

#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"

namespace hetnet {

FifoMuxServer::FifoMuxServer(std::string name, FifoMuxParams params,
                             EnvelopePtr cross_traffic,
                             const AnalysisConfig& config)
    : name_(std::move(name)),
      params_(params),
      cross_(std::move(cross_traffic)),
      config_(config) {
  HETNET_CHECK(params_.capacity > 0, "mux capacity must be positive");
  HETNET_CHECK(params_.non_preemption >= 0, "non-preemption must be >= 0");
  HETNET_CHECK(params_.cell_bits >= 0, "cell size must be >= 0");
  HETNET_CHECK(params_.buffer_limit > 0, "buffer limit must be positive");
  HETNET_CHECK(params_.max_busy_period > 0, "busy-period cap must be > 0");
  HETNET_CHECK(cross_ != nullptr, "null cross traffic (use ZeroEnvelope)");
}

std::optional<FifoMuxServer::PortBounds> FifoMuxServer::bound_port(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  const EnvelopePtr total = sum_envelopes({input, cross_});
  const BitsPerSecond c = params_.capacity;
  const BitsPerSecond rho = total->long_term_rate();
  if (rho > c * (1.0 - 1e-9)) {
    return std::nullopt;  // (over)booked to capacity: no finite bound
  }

  // Scan horizon. The delay supremand A_tot(t)/C − t and the backlog
  // supremand A_tot(t) − C·t are both dominated by the leaky-bucket
  // majorization A_tot(t) <= b + ρ·t, which drives them below zero for
  //     t  >=  T* = b / (C − ρ).
  // Scanning (0, T*] therefore captures the GLOBAL suprema — no
  // subadditivity or busy-period argument needed, which matters because
  // composed envelopes here (quantized staircases etc.) need not be
  // subadditive.
  const Bits burst = total->burst_bound();
  if (!isfinite(burst)) return std::nullopt;
  const Seconds horizon = burst / (c - rho) + Seconds{kEps};
  if (horizon > params_.max_busy_period) {
    return std::nullopt;  // analysis budget exceeded: give up conservatively
  }

  std::vector<Seconds> ends = total->breakpoints(horizon);
  if (ends.size() > static_cast<std::size_t>(config_.max_candidates)) {
    return std::nullopt;
  }
  if (ends.empty() || !approx_eq(ends.back(), horizon)) {
    ends.push_back(horizon);
  }

  // The aggregate is affine on each open segment, so both supremands take
  // their extremes at segment ends. Envelopes may JUMP at a segment's left
  // edge (e.g. an instantaneous burst at t = 0 has A(0) = 0 but A(0⁺) = σ),
  // so each segment is evaluated at both ends: just inside the left edge
  // (capturing the post-jump value, paired with the edge time — exact for
  // the supremum from the right) and at the right end.
  // The busy-period end B (first crossing of A_tot below C·t) is also
  // recorded — it is the Theorem-style bound reported for tests/diagnostics.
  Seconds busy_end = horizon;
  bool busy_closed = false;
  Bits v0 = total->bits(Seconds{});
  Seconds max_delay = v0 / c;
  Bits max_backlog = v0;
  Seconds a;
  Bits v_a = v0;
  for (Seconds b : ends) {
    if (b <= a) continue;
    const Bits v_left = total->bits(a + (b - a) * 1e-9);
    max_delay = std::max(max_delay, v_left / c - a);
    max_backlog = std::max(max_backlog, v_left - c * a);
    const Bits v_b = total->bits(b);
    max_delay = std::max(max_delay, v_b / c - b);
    max_backlog = std::max(max_backlog, v_b - c * b);
    if (!busy_closed && approx_le(v_b, c * b)) {
      // First downward crossing of A_tot against C·t. A jump at b only
      // inflates the chord slope, which can only push the computed crossing
      // later (a conservative, i.e. larger, busy period).
      const BitsPerSecond slope = (v_b - v_a) / (b - a);
      Seconds cross = b;
      if (slope < c && v_a > c * a) {
        cross = std::clamp((v_a - slope * a) / (c - slope), a, b);
      } else if (approx_le(v_a, c * a)) {
        cross = a;
      }
      busy_end = cross;
      busy_closed = true;
    }
    a = b;
    v_a = v_b;
  }

  PortBounds bounds;
  bounds.busy_period = busy_end;
  bounds.queueing_delay = std::max(Seconds{}, max_delay);
  bounds.backlog = std::max(Bits{}, max_backlog);
  return bounds;
}

std::optional<Seconds> FifoMuxServer::queueing_delay(
    const EnvelopePtr& input) const {
  const auto bounds = bound_port(input);
  if (!bounds.has_value()) return std::nullopt;
  return bounds->queueing_delay;
}

std::optional<FifoMuxServer::PortAnalysis> FifoMuxServer::analyze_port(
    const EnvelopePtr& input) const {
  const auto bounds = bound_port(input);
  if (!bounds.has_value()) return std::nullopt;
  if (bounds->backlog > params_.buffer_limit * (1.0 + 1e-12)) {
    return std::nullopt;  // port buffer overflow ⟹ loss ⟹ no delay bound
  }
  return PortAnalysis{bounds->queueing_delay + params_.non_preemption,
                      bounds->backlog};
}

EnvelopePtr FifoMuxServer::flow_output(const EnvelopePtr& input,
                                       Seconds delay) const {
  return rate_cap(shift_envelope(input, delay), params_.capacity,
                  params_.cell_bits);
}

std::optional<ServerAnalysis> FifoMuxServer::analyze(
    const EnvelopePtr& input) const {
  const auto port = analyze_port(input);
  if (!port.has_value()) return std::nullopt;

  ServerAnalysis result;
  result.worst_case_delay = port->worst_case_delay;
  result.buffer_required = port->buffer_required;
  result.output = flow_output(input, port->worst_case_delay);
  return result;
}

}  // namespace hetnet
