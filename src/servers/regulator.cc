#include "src/servers/regulator.h"

#include <algorithm>
#include <cmath>

#include "src/traffic/algebra.h"
#include "src/util/check.h"

namespace hetnet {

RegulatorServer::RegulatorServer(std::string name,
                                 const RegulatorParams& params,
                                 const AnalysisConfig& config)
    : name_(std::move(name)), params_(params), config_(config) {
  HETNET_CHECK(params_.sigma >= 0, "bucket depth must be >= 0");
  HETNET_CHECK(params_.rho > 0, "token rate must be positive");
  HETNET_CHECK(params_.buffer_limit > 0, "buffer limit must be positive");
}

std::optional<ServerAnalysis> RegulatorServer::analyze(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  const Bits sigma = params_.sigma;
  const BitsPerSecond rho = params_.rho;
  const BitsPerSecond in_rate = input->long_term_rate();
  if (in_rate > rho * (1.0 + 1e-9)) {
    return std::nullopt;  // shaping an over-rate flow backlogs forever
  }
  const Bits burst = input->burst_bound();
  if (!isfinite(burst)) return std::nullopt;

  // Both supremands fall below zero once the input majorization
  // b + in_rate·t dips under σ + ρ·t; scan only that far (global suprema
  // without subadditivity, as in fifo_mux.cc).
  Seconds horizon;
  if (burst <= sigma) {
    // The input already conforms at every scale the majorization sees;
    // a short scan still catches sub-burst structure.
    horizon = Seconds{1e-3};
  } else if (rho - in_rate < 1e-12 * rho) {
    return std::nullopt;  // exactly saturated: no finite guard
  } else {
    horizon = (burst - sigma) / (rho - in_rate) + Seconds{kEps};
  }
  if (horizon > params_.max_busy_period) return std::nullopt;

  std::vector<Seconds> ends = input->breakpoints(horizon);
  if (ends.size() > static_cast<std::size_t>(config_.max_candidates)) {
    return std::nullopt;
  }
  if (ends.empty() || !approx_eq(ends.back(), horizon)) {
    ends.push_back(horizon);
  }

  Seconds max_delay = std::max(Seconds{}, (input->bits(Seconds{}) - sigma) / rho);
  Bits max_backlog = std::max(Bits{}, input->bits(Seconds{}) - sigma);
  Seconds a;
  for (Seconds b : ends) {
    if (b <= a) continue;
    const Bits v_left = input->bits(a + (b - a) * 1e-9);
    max_delay = std::max(max_delay, (v_left - sigma) / rho - a);
    max_backlog = std::max(max_backlog, v_left - sigma - rho * a);
    const Bits v_b = input->bits(b);
    max_delay = std::max(max_delay, (v_b - sigma) / rho - b);
    max_backlog = std::max(max_backlog, v_b - sigma - rho * b);
    a = b;
  }
  max_delay = std::max(Seconds{}, max_delay);
  max_backlog = std::max(Bits{}, max_backlog);
  if (max_backlog > params_.buffer_limit * (1.0 + 1e-12)) {
    return std::nullopt;
  }

  ServerAnalysis result;
  result.worst_case_delay = max_delay;
  result.buffer_required = max_backlog;
  // The output both left the FIFO shaper within `max_delay` and conforms to
  // the bucket by construction.
  result.output =
      rate_cap(shift_envelope(input, max_delay), rho, sigma);
  return result;
}

}  // namespace hetnet
