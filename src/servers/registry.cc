#include "src/servers/registry.h"

#include <utility>

#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fddi_mac.h"
#include "src/servers/tdma_mac.h"
#include "src/traffic/fingerprint.h"
#include "src/util/check.h"

namespace hetnet::servers {
namespace {

std::uint64_t fold_label(std::uint64_t d, const std::string& label) {
  d = fp::combine(d, label.size());
  for (const char c : label) {
    d = fp::combine(d, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return d;
}

// ---------------------------------------------------------------------------
// Access media. Both stock access media are cycle-scheduled — a station gets
// a transmission budget once per cycle — so one base class builds the stage
// chains; subclasses decide the cycle parameters, the budget quantization,
// the frame format, and the MAC server type.

class CycleAccessMedium : public AccessMedium {
 public:
  CycleAccessMedium(std::string label, fddi::RingParams cycle,
                    const MediumDefaults& defaults)
      : label_(std::move(label)), cycle_(cycle), defaults_(defaults) {}

  std::string label() const final { return label_; }
  const fddi::RingParams& cycle() const final { return cycle_; }
  Seconds propagation() const final { return cycle_.propagation; }

  std::uint64_t config_digest() const final {
    std::uint64_t d = fold_label(fp::mix(0x4ACCE55ull), label_);
    for (const double v :
         {cycle_.ttrt.value(), cycle_.raw_rate.value(),
          cycle_.protocol_overhead.value(), cycle_.frame_overhead.value(),
          cycle_.max_frame_payload.value(), cycle_.propagation.value(),
          slot_quantum().value(), defaults_.cell_payload.value(),
          defaults_.input_port_delay.value(),
          defaults_.frame_switch_delay.value(),
          defaults_.frame_cell_conversion.value(),
          defaults_.cell_frame_conversion.value(),
          defaults_.id_mac_buffer.value(), defaults_.host_mac_buffer.value()}) {
      d = fp::combine(d, fp::of_double(v));
    }
    return d;
  }

  BitsPerSecond payload_rate(Bits frame_payload) const final {
    return fddi::effective_payload_rate(cycle_, frame_payload);
  }

  // The exact stage sequence (names, parameters, order) the pre-registry
  // DelayAnalyzer hard-coded, with the medium's label spliced into the MAC
  // and delay-line names. For label "FDDI" at FDDI defaults this reproduces
  // the original chain bit for bit.
  std::vector<ServerPtr> send_stages(Seconds h, bool intra_ring,
                                     const AnalysisConfig& config)
      const final {
    const Bits frame = frame_payload(h);
    std::vector<ServerPtr> path;
    path.push_back(
        make_mac(label_ + "_S.MAC", h, defaults_.host_mac_buffer, config));
    path.push_back(std::make_shared<ConstantDelayServer>(
        label_ + "_S.Delay_Line", cycle_.propagation));
    if (!intra_ring) {
      path.push_back(std::make_shared<ConstantDelayServer>(
          "ID_S.Input_Port", defaults_.input_port_delay));
      path.push_back(std::make_shared<ConstantDelayServer>(
          "ID_S.Frame_Switch", defaults_.frame_switch_delay));
      path.push_back(make_frame_to_cell_server(
          "ID_S.Frame_Cell_Conversion", frame, defaults_.cell_payload,
          defaults_.cell_payload, defaults_.frame_cell_conversion));
    }
    return path;
  }

  std::vector<ServerPtr> receive_stages(Seconds h,
                                        const AnalysisConfig& config)
      const final {
    const Bits frame = frame_payload(h);
    std::vector<ServerPtr> path;
    path.push_back(std::make_shared<ConstantDelayServer>(
        "ID_R.Input_Port", defaults_.input_port_delay));
    path.push_back(make_cell_to_frame_server(
        "ID_R.Cell_Frame_Conversion", frame, defaults_.cell_payload,
        defaults_.cell_payload, defaults_.cell_frame_conversion));
    path.push_back(std::make_shared<ConstantDelayServer>(
        "ID_R.Frame_Switch", defaults_.frame_switch_delay));
    // The receive MAC is the last queueing server on the path — its output
    // feeds only the constant delay line to the host, so the (expensive)
    // conservative rasterization of Υ buys nothing here.
    AnalysisConfig rx_config = config;
    rx_config.rasterize_mac_output = false;
    path.push_back(
        make_mac(label_ + "_R.MAC", h, defaults_.id_mac_buffer, rx_config));
    path.push_back(std::make_shared<ConstantDelayServer>(
        label_ + "_R.Delay_Line", cycle_.propagation));
    return path;
  }

 protected:
  // The slot quantum the digest covers (zero when the medium is not
  // slotted).
  virtual Seconds slot_quantum() const { return Seconds{}; }
  virtual ServerPtr make_mac(std::string name, Seconds h, Bits buffer_limit,
                             const AnalysisConfig& config) const = 0;

  std::string label_;
  fddi::RingParams cycle_;
  MediumDefaults defaults_;
};

class FddiMedium final : public CycleAccessMedium {
 public:
  FddiMedium(const HopSpec& hop, const MediumDefaults& defaults)
      : CycleAccessMedium("FDDI", with_overrides(defaults.ring, hop),
                          defaults) {}

  Seconds usable_budget(Seconds h) const override {
    // The timed-token protocol honors the allocation exactly (Theorem 1).
    return h > 0 ? h : Seconds{};
  }
  Bits frame_payload(Seconds h) const override {
    return fddi::frame_payload_for_allocation(cycle_, h);
  }
  bool fixed_cycle() const override { return false; }

 private:
  static fddi::RingParams with_overrides(fddi::RingParams ring,
                                         const HopSpec& hop) {
    if (hop.propagation > 0) ring.propagation = hop.propagation;
    if (hop.rate > 0) ring.raw_rate = hop.rate;
    return ring;
  }

  ServerPtr make_mac(std::string name, Seconds h, Bits buffer_limit,
                     const AnalysisConfig& config) const override {
    FddiMacParams mac;
    mac.ttrt = cycle_.ttrt;
    mac.sync_allocation = h;
    mac.ring_rate = payload_rate(frame_payload(h));
    mac.buffer_limit = buffer_limit;
    return std::make_shared<FddiMacServer>(std::move(name), mac, config);
  }
};

// RTmac-style slotted Ethernet (see src/servers/tdma_mac.h). The "ring"
// parameter set doubles as the schedule description: ttrt is the TDMA
// cycle, raw_rate the Ethernet signalling rate, frame_overhead the
// preamble(8) + header(14) + FCS(4) + IFG(12) = 38 bytes per frame, and
// max_frame_payload the 1500-byte MTU. protocol_overhead is the schedule's
// guard/arbitration share of the cycle, which the per-ring ledger keeps
// free exactly like FDDI's Δ.
class TdmaEthernetMedium final : public CycleAccessMedium {
 public:
  static constexpr double kDefaultSlotUs = 64.0;

  TdmaEthernetMedium(const HopSpec& hop, const MediumDefaults& defaults)
      : CycleAccessMedium("TDMA", schedule(defaults.ring, hop), defaults),
        slot_(hop.slot_time > 0 ? hop.slot_time : units::us(kDefaultSlotUs)) {
    HETNET_CHECK(slot_ <= cycle_.ttrt,
                 "TDMA slot must fit inside the schedule cycle");
  }

  Seconds usable_budget(Seconds h) const override {
    return tdma_quantize_budget(h, slot_);
  }
  Bits frame_payload(Seconds h) const override {
    const Seconds budget = usable_budget(h);
    HETNET_CHECK(budget > 0, "no TDMA budget for this allocation");
    Bits frame = cycle_.raw_rate * budget;
    if (frame > cycle_.max_frame_payload) frame = cycle_.max_frame_payload;
    if (frame < kMinPayload) frame = kMinPayload;  // Ethernet pads to 46 B
    return frame;
  }
  bool fixed_cycle() const override { return true; }

 private:
  static constexpr Bits kMinPayload = units::bytes(46);

  static fddi::RingParams schedule(fddi::RingParams ring, const HopSpec& hop) {
    ring.raw_rate = hop.rate > 0 ? hop.rate : units::mbps(100);
    ring.frame_overhead = units::bytes(38);
    ring.max_frame_payload = units::bytes(1500);
    if (hop.propagation > 0) ring.propagation = hop.propagation;
    return ring;  // ttrt / protocol_overhead stay the topology's cycle
  }

  ServerPtr make_mac(std::string name, Seconds h, Bits buffer_limit,
                     const AnalysisConfig& config) const override {
    TdmaMacParams mac;
    mac.cycle = cycle_.ttrt;
    mac.slot_time = slot_;
    mac.allocation = h;
    mac.payload_rate = payload_rate(frame_payload(h));
    mac.buffer_limit = buffer_limit;
    return std::make_shared<TdmaMacServer>(std::move(name), mac, config);
  }

  Seconds slot_quantum() const override { return slot_; }

  Seconds slot_;
};

// ---------------------------------------------------------------------------
// Backbone media. Cell switching is medium-independent (the generic FIFO
// mux analyzes every port), so a backbone medium is its link parameters
// plus a label. The satellite variant is the same ATM cell relay with the
// propagation term swapped for an orbit: for GEO bent-pipe service the
// one-way figure is ~250–280 ms, which turns every inter-ring path
// delay-dominated and makes the per-hop buffer bound (delay × arrival
// envelope at the port) the quantity worth reporting.

class AtmBackboneMedium final : public BackboneMedium {
 public:
  AtmBackboneMedium(std::string label, const HopSpec& hop,
                    const MediumDefaults& defaults, Seconds default_propagation)
      : label_(std::move(label)), link_(defaults.link) {
    if (hop.rate > 0) link_.wire_rate = hop.rate;
    link_.propagation =
        hop.propagation > 0 ? hop.propagation : default_propagation;
    HETNET_CHECK(link_.propagation >= 0, "negative link propagation");
    cell_payload_ = defaults.cell_payload;
  }

  std::string label() const override { return label_; }
  const atm::LinkParams& link() const override { return link_; }
  std::string port_label(atm::PortId port) const override {
    return label_ + ".Port[" + std::to_string(port) + "]";
  }

  std::uint64_t config_digest() const override {
    std::uint64_t d = fold_label(fp::mix(0xBACB0Eull), label_);
    for (const double v : {link_.wire_rate.value(), link_.propagation.value(),
                           link_.port_buffer.value(), cell_payload_.value()}) {
      d = fp::combine(d, fp::of_double(v));
    }
    return d;
  }

 private:
  std::string label_;
  atm::LinkParams link_;
  Bits cell_payload_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry.

void MediumRegistry::register_access(const std::string& name,
                                     AccessFactory factory) {
  HETNET_CHECK(!name.empty(), "medium name must not be empty");
  HETNET_CHECK(factory != nullptr, "null medium factory");
  const bool inserted = access_.emplace(name, std::move(factory)).second;
  HETNET_CHECK(inserted, "duplicate access medium: " + name);
}

void MediumRegistry::register_backbone(const std::string& name,
                                       BackboneFactory factory) {
  HETNET_CHECK(!name.empty(), "medium name must not be empty");
  HETNET_CHECK(factory != nullptr, "null medium factory");
  const bool inserted = backbone_.emplace(name, std::move(factory)).second;
  HETNET_CHECK(inserted, "duplicate backbone medium: " + name);
}

bool MediumRegistry::has_access(const std::string& name) const {
  return access_.contains(name);
}

bool MediumRegistry::has_backbone(const std::string& name) const {
  return backbone_.contains(name);
}

AccessMediumPtr MediumRegistry::resolve_access(
    const HopSpec& hop, const MediumDefaults& defaults) const {
  const auto it = access_.find(hop.medium);
  HETNET_CHECK(it != access_.end(), "unknown access medium: " + hop.medium);
  AccessMediumPtr medium = it->second(hop, defaults);
  HETNET_CHECK(medium != nullptr, "medium factory returned null");
  return medium;
}

BackboneMediumPtr MediumRegistry::resolve_backbone(
    const HopSpec& hop, const MediumDefaults& defaults) const {
  const auto it = backbone_.find(hop.medium);
  HETNET_CHECK(it != backbone_.end(),
               "unknown backbone medium: " + hop.medium);
  BackboneMediumPtr medium = it->second(hop, defaults);
  HETNET_CHECK(medium != nullptr, "medium factory returned null");
  return medium;
}

std::vector<std::string> MediumRegistry::access_names() const {
  std::vector<std::string> names;
  names.reserve(access_.size());
  for (const auto& [name, factory] : access_) names.push_back(name);
  return names;
}

std::vector<std::string> MediumRegistry::backbone_names() const {
  std::vector<std::string> names;
  names.reserve(backbone_.size());
  for (const auto& [name, factory] : backbone_) names.push_back(name);
  return names;
}

const MediumRegistry& MediumRegistry::builtin() {
  static const MediumRegistry* registry = [] {
    auto* r = new MediumRegistry();
    r->register_access("fddi",
                       [](const HopSpec& hop, const MediumDefaults& d) {
                         return std::make_shared<const FddiMedium>(hop, d);
                       });
    r->register_access(
        "tdma-ethernet", [](const HopSpec& hop, const MediumDefaults& d) {
          return std::make_shared<const TdmaEthernetMedium>(hop, d);
        });
    r->register_backbone(
        "atm", [](const HopSpec& hop, const MediumDefaults& d) {
          return std::make_shared<const AtmBackboneMedium>("ATM", hop, d,
                                                           d.link.propagation);
        });
    r->register_backbone(
        "satellite-atm", [](const HopSpec& hop, const MediumDefaults& d) {
          // GEO bent-pipe one-way propagation default; a HopSpec override
          // models LEO/MEO constellations or added ground-segment delay.
          return std::make_shared<const AtmBackboneMedium>("SAT", hop, d,
                                                           units::ms(250));
        });
    return r;
  }();
  return *registry;
}

}  // namespace hetnet::servers
