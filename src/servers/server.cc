#include "src/servers/server.h"

// Currently header-only; this translation unit anchors the vtable of Server
// implementations that are defined inline in headers (none today) and keeps
// the build layout uniform (every module contributes objects to libhetnet).
