#include "src/servers/constant_delay.h"

#include "src/util/check.h"

namespace hetnet {

ConstantDelayServer::ConstantDelayServer(std::string name, Seconds delay)
    : name_(std::move(name)), delay_(delay) {
  HETNET_CHECK(delay_ >= 0, "constant delay must be >= 0");
}

std::optional<ServerAnalysis> ConstantDelayServer::analyze(
    const EnvelopePtr& input) const {
  HETNET_CHECK(input != nullptr, "null envelope");
  ServerAnalysis result;
  result.worst_case_delay = delay_;
  // Bits resident in the element while being delayed ("in flight").
  result.buffer_required = input->bits(delay_);
  result.output = input;
  return result;
}

}  // namespace hetnet
