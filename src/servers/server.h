// The decomposition approach of Section 4: a connection's path is a chain of
// servers, each of which is analyzed for (a) the worst-case delay it adds and
// (b) the traffic descriptor of the connection at its exit.
//
// `analyze()` returns std::nullopt when NO finite worst-case bound exists —
// the server is unstable (arrival rate exceeds guaranteed service rate), a
// finite buffer would overflow (the paper's Theorem 1 returns delay = ∞ in
// that case, because overflow loses data), or the analysis budget in
// `AnalysisConfig` was exceeded (treated conservatively as unbounded). A
// nullopt anywhere along a chain means the connection must be rejected.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/traffic/envelope.h"
#include "src/util/units.h"

namespace hetnet {

// Budgets and knobs for the exact worst-case scans. The Theorem-1/2 and
// FIFO-multiplexer computations are exact (they enumerate every candidate
// extremum); these limits only bound how long the analysis is allowed to
// search before conservatively giving up.
struct AnalysisConfig {
  // Maximum token rotations (TTRT multiples) scanned for the FDDI-MAC busy
  // interval B (Theorem 1). A busy interval longer than this is treated as
  // unbounded.
  int max_busy_rotations = 4096;

  // Maximum candidate extremum points examined in any single scan.
  int max_candidates = 200000;

  // FDDI-MAC output envelopes (Theorem 1's Υ) are rasterized into explicit
  // conservative staircases so that downstream servers scan a bounded,
  // exactly-affine envelope (see src/traffic/staircase.h). The staircase
  // covers `output_horizon_rotations` token rotations and then grows at the
  // ring rate (a valid Lipschitz bound for traffic that crossed the ring).
  bool rasterize_mac_output = true;
  int output_horizon_rotations = 64;
  int rasterize_max_points = 128;

  // Worker threads for the joint analysis (src/util/thread_pool.h). The
  // per-connection send prefixes and receive suffixes, and the port bounds
  // within one topological wave, are independent computations; with
  // threads > 1 they run concurrently and are merged in index order, so
  // every result — and every AdmissionDecision built on them — is
  // bit-identical to the serial run (pinned by
  // tests/core/parallel_equivalence_test.cc). 1 = fully serial.
  int threads = 1;
};

// Result of analyzing one server for one connection.
struct ServerAnalysis {
  // Upper bound on the delay any bit of this connection suffers in the
  // server (d^wc in the paper).
  Seconds worst_case_delay;
  // Upper bound on the connection's backlog inside the server (F in
  // Theorem 1); what a deployment must provision to honor the "no buffer
  // overflow" part of the QoS contract.
  Bits buffer_required;
  // Traffic descriptor of the connection at the server exit, input to the
  // next server in the chain.
  EnvelopePtr output;
};

class Server {
 public:
  virtual ~Server() = default;

  // Analyzes the server for a connection whose traffic at the server
  // entrance is described by `input`. Returns nullopt if no finite
  // worst-case bound exists (see file comment).
  virtual std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const = 0;

  // Short identifier used in chain breakdowns ("FDDI_MAC", "Output_Port"...).
  virtual std::string name() const = 0;
};

using ServerPtr = std::shared_ptr<const Server>;

}  // namespace hetnet
