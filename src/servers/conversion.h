// Format-conversion servers inside interface devices.
//
// Frame_Cell_Conversion (Theorem 2): a LAN frame of payload F_S bits becomes
// F_C = ⌈F_S / C_S⌉ ATM cells (the last cell padded), so the traffic
// descriptor inflates to
//
//     A'(I) = ⌈ A(I) / F_S ⌉ · F_C · C_acc ,
//
// where C_acc is the bits accounted per cell (the paper's eq. 21 uses the
// cell payload C_S; pass the 53-byte wire size to do wire-bit accounting —
// just keep the downstream link capacity in the same accounting). The frame
// is converted before the next frame arrives (the backbone is faster than
// the ring), so the conversion adds only a constant processing delay.
//
// Cell_Frame_Conversion (the ID_R mirror, Section 4.3.3): F_C cells are
// reassembled into one frame of F_S bits; the envelope transform is the
// inverse quantization and the last bit of a frame is delayed only by the
// constant processing time (the frame departs when its last cell has
// arrived).
//
// Both directions are the same computation — a quantizing envelope transform
// plus a constant delay — expressed by ConversionServer; use the two factory
// functions for readable construction.
#pragma once

#include "src/servers/server.h"

namespace hetnet {

class ConversionServer final : public Server {
 public:
  // Converts traffic counted in units of `in_unit` bits to units of
  // `out_unit` bits (partial input units rounded up), adding the constant
  // `processing_delay`. Both units must be positive.
  ConversionServer(std::string name, Bits in_unit, Bits out_unit,
                   Seconds processing_delay);

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  Bits in_unit() const { return in_unit_; }
  Bits out_unit() const { return out_unit_; }
  Seconds processing_delay() const { return delay_; }

 private:
  std::string name_;
  Bits in_unit_;
  Bits out_unit_;
  Seconds delay_;
};

// Theorem 2: frames of `frame_payload` bits → ⌈frame_payload/cell_payload⌉
// cells, each accounted as `cell_accounted` bits on the ATM side.
std::shared_ptr<ConversionServer> make_frame_to_cell_server(
    std::string name, Bits frame_payload, Bits cell_payload,
    Bits cell_accounted, Seconds processing_delay);

// ID_R mirror: ⌈frame_payload/cell_payload⌉ cells (accounted as
// `cell_accounted` bits each on the ATM side) → one frame of `frame_payload`
// bits on the destination ring.
std::shared_ptr<ConversionServer> make_cell_to_frame_server(
    std::string name, Bits frame_payload, Bits cell_payload,
    Bits cell_accounted, Seconds processing_delay);

}  // namespace hetnet
