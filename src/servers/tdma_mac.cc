#include "src/servers/tdma_mac.h"

#include <cmath>
#include <utility>

#include "src/util/check.h"

namespace hetnet {
namespace {

FddiMacParams as_timed_token(const TdmaMacParams& p) {
  FddiMacParams inner;
  inner.ttrt = p.cycle;
  inner.sync_allocation = tdma_quantize_budget(p.allocation, p.slot_time);
  inner.ring_rate = p.payload_rate;
  inner.buffer_limit = p.buffer_limit;
  return inner;
}

}  // namespace

Seconds tdma_quantize_budget(Seconds h, Seconds slot) {
  if (!(slot > 0) || !(h > 0)) return Seconds{};
  // The nudge forgives the float error of an h computed AS k·slot, without
  // ever granting a slot the reservation is a whole kEps·h short of.
  const double slots = std::floor(h.value() / slot.value() * (1.0 + kEps));
  return slots <= 0.0 ? Seconds{} : slot * slots;
}

TdmaMacServer::TdmaMacServer(std::string name, const TdmaMacParams& params,
                             const AnalysisConfig& config)
    : params_(params),
      inner_(std::move(name), as_timed_token(params), config) {
  HETNET_CHECK(params_.cycle > 0, "TDMA cycle must be positive");
  HETNET_CHECK(params_.slot_time > 0 && params_.slot_time <= params_.cycle,
               "TDMA slot must be positive and fit the cycle");
  HETNET_CHECK(inner_.params().sync_allocation > 0,
               "TDMA reservation below one slot has no guaranteed service");
  HETNET_CHECK(params_.payload_rate > 0, "TDMA payload rate must be positive");
}

std::optional<ServerAnalysis> TdmaMacServer::analyze(
    const EnvelopePtr& input) const {
  return inner_.analyze(input);
}

BitsPerSecond TdmaMacServer::rate() const {
  return params_.payload_rate *
         (quantized_budget().value() / params_.cycle.value());
}

}  // namespace hetnet
