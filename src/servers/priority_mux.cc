#include "src/servers/priority_mux.h"

namespace hetnet {

PriorityMuxServer::PriorityMuxServer(std::string name, FifoMuxParams params,
                                     EnvelopePtr rt_cross_traffic,
                                     const AnalysisConfig& config)
    : inner_(std::move(name), params, std::move(rt_cross_traffic), config) {}

std::optional<ServerAnalysis> PriorityMuxServer::analyze(
    const EnvelopePtr& input) const {
  // The real-time class forms a FIFO of its own; lower-priority traffic is
  // already accounted by the non-preemption term inside `params`.
  return inner_.analyze(input);
}

}  // namespace hetnet
