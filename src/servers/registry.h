// The medium/server-model registry: a connection's path as data.
//
// The paper analyzes one fixed chain — FDDI_S → ID_S → ATM → ID_R → FDDI_R —
// but the decomposition of Section 4 never depends on WHICH MAC discipline
// guards a ring or WHICH link technology carries the backbone; it only needs
// each hop to contribute stage servers with exact worst-case bounds and an
// output descriptor. This module makes that genericity explicit:
//
//   * a `HopSpec` names a medium and its per-hop knobs (strong-typed, so an
//     ill-typed propagation or rate is a compile error, and an unknown
//     medium name is a CHECK failure at resolution time);
//   * an `AccessMedium` models the LAN segment of a ring — its cycle
//     structure (what the synchronous-bandwidth ledger constrains), the
//     per-allocation transmission budget, frame format, and the ordered
//     stage servers of the private send prefix and receive suffix;
//   * a `BackboneMedium` models the switched backbone — the link parameters
//     its FIFO output ports run at and the explain-stage label of a port;
//   * a `MediumRegistry` maps names to factories. Registration and
//     resolution are deterministic and order-independent (storage is keyed
//     by name), and `builtin()` carries the four stock media:
//
//       "fddi"           — the paper's timed-token ring (Theorem 1)
//       "tdma-ethernet"  — an RTmac-style slotted Ethernet MAC: a station
//                          owns ⌊H/slot⌋ slots per fixed cycle, giving the
//                          rate-latency service curve derived in
//                          src/servers/tdma_mac.h
//       "atm"            — the paper's 155 Mb/s ATM backbone
//       "satellite-atm"  — ATM over a geostationary hop: identical cell
//                          switching with propagation in the hundreds of
//                          milliseconds (Goyal/Jain, arXiv cs/9809052) —
//                          delay-dominated paths whose per-hop buffer
//                          bounds the explain record must surface
//
// The default FDDI/ID/ATM chain is JUST the default registration: resolving
// the default `HopSpec`s reproduces today's servers bit for bit (stage
// names, parameters, construction order), which the per-medium golden pins
// in tests/bench/golden_figures_test.cc enforce.
//
// Dependency direction: net/ resolves media while building a topology and
// hands the resolved models to core/ and sim/; this header must therefore
// not include net/ (it gets ring/link/interface-device defaults through
// `MediumDefaults`, a plain value bag net/ fills in).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/atm/backbone.h"
#include "src/fddi/ring.h"
#include "src/servers/server.h"
#include "src/util/units.h"

namespace hetnet::servers {

// One hop of a connection path, as data. `medium` is a registry name; the
// remaining knobs override the medium's defaults when positive and are
// strong-typed so dimensional mixups (a propagation given as a raw double,
// a rate given in seconds) fail to compile (tests/negative/hopspec_*).
struct HopSpec {
  std::string medium = "fddi";
  // Link/ring propagation override. Satellite hops set this to the orbit's
  // one-way delay (hundreds of milliseconds).
  Seconds propagation{};
  // Signalling-rate override (ring raw rate / backbone wire rate).
  BitsPerSecond rate{};
  // TDMA slot quantum override (access media with slotted schedules).
  Seconds slot_time{};
};

// Defaults a medium derives its parameters from, filled by the topology:
// the base ring and link parameter sets plus the interface-device stage
// constants shared by every access medium's ID_S/ID_R servers.
struct MediumDefaults {
  fddi::RingParams ring;
  atm::LinkParams link;
  Bits cell_payload;
  Seconds input_port_delay;
  Seconds frame_switch_delay;
  Seconds frame_cell_conversion;
  Seconds cell_frame_conversion;
  Bits id_mac_buffer;
  Bits host_mac_buffer;
};

enum class MediumRole { kAccess, kBackbone };

class MediumModel {
 public:
  virtual ~MediumModel() = default;

  // Stage-label prefix ("FDDI", "TDMA", "ATM", "SAT"): explain NDJSON
  // records and chain breakdowns name servers "<label>_S.MAC",
  // "<label>.Port[k]", ..., so tools/explain_report.py can aggregate by
  // medium.
  virtual std::string label() const = 0;
  virtual MediumRole role() const = 0;
  // Structural digest of everything analysis results depend on (label plus
  // every derived parameter). Folded into session memo keys and the Tier-B
  // decision digest so fingerprints cover the hop sequence: two hops agree
  // on config_digest() only if their servers analyze identically.
  virtual std::uint64_t config_digest() const = 0;
};

// The LAN segment of a ring. The synchronous-bandwidth ledger, the delay
// analyzer, and the packet simulator all speak to the ring exclusively
// through this interface.
class AccessMedium : public MediumModel {
 public:
  MediumRole role() const final { return MediumRole::kAccess; }

  // The cycle structure the per-ring admission ledger constrains
  // (Σ H + Δ <= cycle.ttrt) and the sim's token/schedule engine runs on.
  // FDDI: the ring's TTRT/Δ verbatim; TDMA: the slot schedule's cycle with
  // Ethernet framing constants.
  virtual const fddi::RingParams& cycle() const = 0;
  // Largest single allocation worth probing (the validation ceiling H may
  // not exceed).
  Seconds max_allocation() const { return cycle().ttrt; }
  // Transmission budget actually honored per cycle for allocation h. FDDI
  // honors h exactly; TDMA rounds down to whole slots. Monotone
  // non-decreasing in h and <= h — both load-bearing: monotonicity keeps
  // the Section-5 allocation line searchable, and budget <= h keeps the
  // ledger's Σ h + Δ <= cycle test sound for the schedule actually served.
  virtual Seconds usable_budget(Seconds h) const = 0;
  // Frame payload used for allocation h (the paper's F_S), and the
  // effective payload rate while transmitting such frames.
  virtual Bits frame_payload(Seconds h) const = 0;
  virtual BitsPerSecond payload_rate(Bits frame_payload) const = 0;
  // One-way propagation of the segment (the Delay_Line stage constant).
  virtual Seconds propagation() const = 0;
  // True when the schedule advances in fixed-length cycles regardless of
  // load (TDMA); false when a cycle ends as soon as its service does
  // (timed-token). Consumed by the packet simulator only.
  virtual bool fixed_cycle() const = 0;

  // The ordered private send-prefix servers for allocation h: the MAC and
  // segment delay line, plus — when the path continues into the backbone —
  // the interface device's ingress through frame→cell conversion. The
  // caller owns validation (0 < h <= max_allocation(), usable_budget > 0).
  virtual std::vector<ServerPtr> send_stages(
      Seconds h, bool intra_ring, const AnalysisConfig& config) const = 0;
  // The ordered private receive-suffix servers for allocation h: ID_R
  // ingress, cell→frame conversion, frame switch, the device's MAC on the
  // destination segment, and the final delay line.
  virtual std::vector<ServerPtr> receive_stages(
      Seconds h, const AnalysisConfig& config) const = 0;
};

// The switched backbone interconnecting the interface devices. Port-level
// analysis stays in the generic FIFO-mux server; the medium only decides
// the link parameters and the explain label.
class BackboneMedium : public MediumModel {
 public:
  MediumRole role() const final { return MediumRole::kBackbone; }

  // Link parameters every backbone port runs at (wire rate, propagation,
  // port buffer) after applying the hop's overrides.
  virtual const atm::LinkParams& link() const = 0;
  // Explain/breakdown label of port `port` ("ATM.Port[3]", "SAT.Port[3]").
  virtual std::string port_label(atm::PortId port) const = 0;
};

using AccessMediumPtr = std::shared_ptr<const AccessMedium>;
using BackboneMediumPtr = std::shared_ptr<const BackboneMedium>;

// Name → factory map. Resolution CHECKs on unknown names; registration
// CHECKs on duplicates and empty names. Iteration surfaces (names()) are
// sorted, so a registry built by any registration order behaves
// identically.
class MediumRegistry {
 public:
  using AccessFactory =
      std::function<AccessMediumPtr(const HopSpec&, const MediumDefaults&)>;
  using BackboneFactory =
      std::function<BackboneMediumPtr(const HopSpec&, const MediumDefaults&)>;

  void register_access(const std::string& name, AccessFactory factory);
  void register_backbone(const std::string& name, BackboneFactory factory);

  bool has_access(const std::string& name) const;
  bool has_backbone(const std::string& name) const;

  AccessMediumPtr resolve_access(const HopSpec& hop,
                                 const MediumDefaults& defaults) const;
  BackboneMediumPtr resolve_backbone(const HopSpec& hop,
                                     const MediumDefaults& defaults) const;

  // Registered names in sorted order.
  std::vector<std::string> access_names() const;
  std::vector<std::string> backbone_names() const;

  // The stock registrations (see file comment). Built once, immutable.
  static const MediumRegistry& builtin();

 private:
  std::map<std::string, AccessFactory> access_;
  std::map<std::string, BackboneFactory> backbone_;
};

}  // namespace hetnet::servers
