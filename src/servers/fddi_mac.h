// The FDDI_MAC server: Theorem 1 of the paper.
//
// An FDDI station holding a synchronous allocation H may transmit real-time
// traffic for at most H seconds on every token visit, and the timed-token
// protocol guarantees a token visit at least once per TTRT once steady state
// is reached. The guaranteed cumulative service in any interval of length t
// is therefore
//
//     avail(t) = max(0, (⌊t/TTRT⌋ − 1) · H · BW)          [bits]
//
// (the "−1" pays for the worst-case token position when the interval opens).
// From avail() and the connection's arrival envelope A(I) = I·Γ(I), Theorem 1
// gives:
//
//   1. busy interval     B = min{ t>0 : A(t) <= avail(t) }
//   2. buffer bound      F = max_{0<t<=B} ( A(t) − avail(t) )
//   3. delay bound       χ = max_{0<t<=B} min{ d : avail(t+d) >= A(t) },
//                        or ∞ when F exceeds the MAC buffer S
//   4. output descriptor Υ(I) = min( BW·I,
//                        max_{0<=t<=B} ( A(t+I) − avail(t) ) )
//
// All four are computed EXACTLY here (see the .cc for the argument that the
// candidate sets scanned contain every extremum); the only approximations are
// conservative: the analysis gives up (returns nullopt) when the busy
// interval exceeds the AnalysisConfig budget, and the output envelope is by
// default rasterized into a conservative staircase so downstream servers
// stay cheap and exact.
//
// The same server models the receive side (FDDI_R): there the station is the
// interface device, holding allocation H_R for the connection, and the
// "host" is the destination (Section 4.3.3 — the analysis is the mirror
// image and uses the identical theorem).
#pragma once

#include <limits>

#include "src/servers/server.h"

namespace hetnet {

struct FddiMacParams {
  // Target token rotation time of the ring (seconds).
  Seconds ttrt;
  // Synchronous allocation H of this connection at this station: seconds of
  // transmission per token visit. Must satisfy 0 < H and the ring-level
  // constraint ΣH + Δ <= TTRT (enforced by fddi::SyncBandwidthLedger, not
  // here).
  Seconds sync_allocation;
  // Effective transmission rate while the station holds the token
  // (bits/second of *payload*; FDDI frame overhead is accounted by using
  // the effective rate — see fddi/ring.h).
  BitsPerSecond ring_rate;
  // MAC transmit buffer S in bits; delay is unbounded if the worst-case
  // backlog F exceeds it (Theorem 1 case 3). Infinite by default.
  Bits buffer_limit = Bits::infinity();
};

class FddiMacServer final : public Server {
 public:
  FddiMacServer(std::string name, const FddiMacParams& params,
                const AnalysisConfig& config = {});

  std::optional<ServerAnalysis> analyze(
      const EnvelopePtr& input) const override;
  std::string name() const override { return name_; }

  // avail(t): guaranteed service (bits) in any interval of length t.
  Bits avail(Seconds t) const;
  // Left limit of avail at t (service guaranteed strictly before the token
  // visit at a TTRT boundary).
  Bits avail_left(Seconds t) const;

  // The busy-interval bound B (Theorem 1.1), or nullopt if it exceeds the
  // analysis budget / the input is unstable. Exposed for tests and for the
  // feasible-region geometry checks.
  std::optional<Seconds> busy_interval(const EnvelopePtr& input) const;

  const FddiMacParams& params() const { return params_; }

 private:
  std::string name_;
  FddiMacParams params_;
  AnalysisConfig config_;
};

}  // namespace hetnet
