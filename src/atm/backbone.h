// The ATM backbone: switches, links, access points, and VC routing.
//
// The backbone is a graph whose nodes are ATM switches plus "access points"
// (the ATM side of each interface device). Every directed link has a sending
// FIFO output port; a virtual circuit's route is the sequence of directed
// ports it traverses:
//
//     [ ID_i → switch, switch → switch ..., switch → ID_j ]
//
// The first entry IS the interface device's Output_Port server (Section
// 4.3.2); the rest are ATM switch output ports — all analyzed by
// servers/fifo_mux. Cells also pay a constant switch-fabric latency per
// traversed switch and the propagation delay of each link.
//
// Envelope accounting on the backbone is PAYLOAD bits (the paper's eq. 21
// uses the 48-byte cell payload C_S), so the usable capacity of a link is
// the wire rate discounted by the 48/53 cell efficiency.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/units.h"

namespace hetnet::atm {

struct CellFormat {
  Bits payload = units::bytes(48);
  Bits wire = units::bytes(53);
};

// Payload-accounted capacity of a link whose wire signalling rate is given.
inline BitsPerSecond payload_capacity(BitsPerSecond wire_rate,
                                      const CellFormat& cells) {
  return wire_rate * cells.payload / cells.wire;
}

// Transmission time of one full cell on the wire (the FIFO non-preemption
// term).
inline Seconds cell_time(BitsPerSecond wire_rate, const CellFormat& cells) {
  return cells.wire / wire_rate;
}

struct LinkParams {
  BitsPerSecond wire_rate = units::mbps(155);
  Seconds propagation = units::us(5);
  // Output-port buffer on the sending side (payload bits).
  Bits port_buffer{1e18};
};

using SwitchId = int;
using AccessId = int;
using PortId = int;

// One hop of a resolved route.
struct Hop {
  PortId port = -1;          // sending FIFO port of this hop's link
  Seconds propagation; // link propagation after the port
  Seconds fabric;      // switch-fabric latency before the port
                             // (zero for the access uplink)
};

class Backbone {
 public:
  // `switch_fabric_delay` is the constant cell latency through a switch.
  Backbone(int num_switches, CellFormat cells,
           Seconds switch_fabric_delay = units::us(10));

  // Adds a bidirectional link between two switches (two directed ports).
  void connect_switches(SwitchId a, SwitchId b, const LinkParams& link);

  // Attaches an interface device's access link to a switch; returns the new
  // access id. Creates the ID→switch port (the ID's Output_Port) and the
  // switch→ID port.
  AccessId attach_access(SwitchId s, const LinkParams& link);

  // Minimum-hop route between two distinct access points (deterministic
  // tie-breaking), as the ordered list of traversed sending ports. Returns
  // nullopt if the accesses are not connected.
  std::optional<std::vector<Hop>> route(AccessId from, AccessId to) const;

  int num_switches() const { return num_switches_; }
  int num_accesses() const { return static_cast<int>(access_nodes_.size()); }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  // Bidirectional switch-to-switch links (access uplinks excluded): the
  // paper's backbone-link count (3 for the Section-6 triangle).
  int num_switch_links() const { return num_switch_links_; }
  const CellFormat& cells() const { return cells_; }
  Seconds switch_fabric_delay() const { return fabric_delay_; }

  const LinkParams& port_link(PortId p) const;
  // Payload-accounted capacity of the link this port sends into.
  BitsPerSecond port_capacity(PortId p) const;
  // One-cell non-preemption time at this port.
  Seconds port_cell_time(PortId p) const;

 private:
  struct PortRecord {
    int from_node;
    int to_node;
    LinkParams link;
  };

  int node_count() const {
    return num_switches_ + static_cast<int>(access_nodes_.size());
  }
  PortId add_port(int from, int to, const LinkParams& link);

  int num_switches_;
  int num_switch_links_ = 0;
  CellFormat cells_;
  Seconds fabric_delay_;
  std::vector<PortRecord> ports_;
  // adjacency: node → list of outgoing port ids
  std::vector<std::vector<PortId>> adjacency_;
  // access id → node index (node indices >= num_switches_ are accesses)
  std::vector<int> access_nodes_;
};

// The paper's evaluation backbone: `n` switches in a full mesh (a triangle
// for n = 3), one access (interface device) per switch, all links sharing
// `link`.
Backbone make_mesh_backbone(int n, const LinkParams& link,
                            CellFormat cells = {},
                            Seconds switch_fabric_delay = units::us(10));

// A linear backbone: switches chained 0—1—…—n−1, one access per switch.
// Routes between distant accesses traverse many switch ports — the long-
// chain case for the decomposition analysis.
Backbone make_line_backbone(int n, const LinkParams& link,
                            CellFormat cells = {},
                            Seconds switch_fabric_delay = units::us(10));

}  // namespace hetnet::atm
