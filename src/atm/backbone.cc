#include "src/atm/backbone.h"

#include <algorithm>
#include <queue>

#include "src/util/check.h"

namespace hetnet::atm {

Backbone::Backbone(int num_switches, CellFormat cells,
                   Seconds switch_fabric_delay)
    : num_switches_(num_switches),
      cells_(cells),
      fabric_delay_(switch_fabric_delay) {
  HETNET_CHECK(num_switches_ > 0, "backbone needs at least one switch");
  HETNET_CHECK(cells_.payload > 0 && cells_.wire >= cells_.payload,
               "cell wire size must cover the payload");
  HETNET_CHECK(fabric_delay_ >= 0, "fabric delay must be >= 0");
  adjacency_.resize(static_cast<std::size_t>(num_switches_));
}

PortId Backbone::add_port(int from, int to, const LinkParams& link) {
  HETNET_CHECK(link.wire_rate > 0, "link rate must be positive");
  HETNET_CHECK(link.propagation >= 0, "propagation must be >= 0");
  const PortId id = static_cast<PortId>(ports_.size());
  ports_.push_back({from, to, link});
  adjacency_[static_cast<std::size_t>(from)].push_back(id);
  return id;
}

void Backbone::connect_switches(SwitchId a, SwitchId b,
                                const LinkParams& link) {
  HETNET_CHECK(a >= 0 && a < num_switches_, "switch id out of range");
  HETNET_CHECK(b >= 0 && b < num_switches_, "switch id out of range");
  HETNET_CHECK(a != b, "cannot link a switch to itself");
  add_port(a, b, link);
  add_port(b, a, link);
  ++num_switch_links_;
}

AccessId Backbone::attach_access(SwitchId s, const LinkParams& link) {
  HETNET_CHECK(s >= 0 && s < num_switches_, "switch id out of range");
  const int node = node_count();
  adjacency_.emplace_back();
  access_nodes_.push_back(node);
  add_port(node, s, link);  // the interface device's Output_Port
  add_port(s, node, link);
  return static_cast<AccessId>(access_nodes_.size() - 1);
}

const LinkParams& Backbone::port_link(PortId p) const {
  HETNET_CHECK(p >= 0 && p < num_ports(), "port id out of range");
  return ports_[static_cast<std::size_t>(p)].link;
}

BitsPerSecond Backbone::port_capacity(PortId p) const {
  return payload_capacity(port_link(p).wire_rate, cells_);
}

Seconds Backbone::port_cell_time(PortId p) const {
  return cell_time(port_link(p).wire_rate, cells_);
}

std::optional<std::vector<Hop>> Backbone::route(AccessId from,
                                                AccessId to) const {
  HETNET_CHECK(from >= 0 && from < num_accesses(), "access id out of range");
  HETNET_CHECK(to >= 0 && to < num_accesses(), "access id out of range");
  HETNET_CHECK(from != to, "route requires distinct access points");
  const int src = access_nodes_[static_cast<std::size_t>(from)];
  const int dst = access_nodes_[static_cast<std::size_t>(to)];

  // BFS for a minimum-hop path; neighbors are explored in port-id order so
  // routing is deterministic.
  std::vector<PortId> via(static_cast<std::size_t>(node_count()), -1);
  std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
  std::queue<int> frontier;
  seen[static_cast<std::size_t>(src)] = true;
  frontier.push(src);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    if (node == dst) break;
    for (PortId p : adjacency_[static_cast<std::size_t>(node)]) {
      const auto& rec = ports_[static_cast<std::size_t>(p)];
      // Do not route through other access points.
      if (rec.to_node >= num_switches_ && rec.to_node != dst) continue;
      if (seen[static_cast<std::size_t>(rec.to_node)]) continue;
      seen[static_cast<std::size_t>(rec.to_node)] = true;
      via[static_cast<std::size_t>(rec.to_node)] = p;
      frontier.push(rec.to_node);
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return std::nullopt;

  std::vector<Hop> hops;
  for (int node = dst; node != src;) {
    const PortId p = via[static_cast<std::size_t>(node)];
    const auto& rec = ports_[static_cast<std::size_t>(p)];
    Hop hop;
    hop.port = p;
    hop.propagation = rec.link.propagation;
    // Cells pay the fabric latency when crossing a switch to reach this
    // port; the first hop leaves directly from the interface device.
    hop.fabric = rec.from_node < num_switches_ ? fabric_delay_ : Seconds{};
    hops.push_back(hop);
    node = rec.from_node;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

Backbone make_line_backbone(int n, const LinkParams& link, CellFormat cells,
                            Seconds switch_fabric_delay) {
  Backbone bb(n, cells, switch_fabric_delay);
  for (int a = 0; a + 1 < n; ++a) {
    bb.connect_switches(a, a + 1, link);
  }
  for (int s = 0; s < n; ++s) {
    bb.attach_access(s, link);
  }
  return bb;
}

Backbone make_mesh_backbone(int n, const LinkParams& link, CellFormat cells,
                            Seconds switch_fabric_delay) {
  Backbone bb(n, cells, switch_fabric_delay);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      bb.connect_switches(a, b, link);
    }
  }
  for (int s = 0; s < n; ++s) {
    bb.attach_access(s, link);
  }
  return bb;
}

}  // namespace hetnet::atm
