// Structural fingerprints for envelope memoization.
//
// A fingerprint is a 64-bit hash that identifies an envelope *structurally*:
// two envelopes with equal fingerprints evaluate identically at every
// interval (modulo the astronomically unlikely 64-bit collision). Source
// models hash their parameters; algebra operators (sum/shift/min/...) hash
// an operator tag plus their operands' fingerprints; everything else falls
// back to a unique per-instance id (sound: an instance is trivially
// structurally equal to itself, and computed envelopes are immutable and
// shared by pointer).
//
// The incremental admission engine (src/core/session.h) keys its per-port
// and per-suffix memo tables on these fingerprints, so the soundness
// contract is: equal fingerprint ⇒ bit-identical bits(I) for all I. Every
// override must preserve it.
#pragma once

#include <cstdint>
#include <cstring>

namespace hetnet::fp {

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-dependent combiner (boost-style with a mix on top).
inline std::uint64_t combine(std::uint64_t seed, std::uint64_t v) {
  return mix(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

// The exact bit pattern of a double; distinguishes -0.0 from 0.0, which is
// fine for memo keys (stricter than ==, never unsound).
inline std::uint64_t of_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace hetnet::fp
