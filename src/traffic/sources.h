// Source traffic models.
//
// These are the envelopes applications attach to a connection request:
//
//  * PeriodicEnvelope      — the classic "C bits every P seconds" model.
//  * DualPeriodicEnvelope  — the paper's evaluation workload (eq. 37):
//                            C1 bits per P1 window, delivered as bursts of
//                            C2 bits every P2 within the window. Generalizes
//                            the periodic model with controlled burstiness.
//  * LeakyBucketEnvelope   — (σ, ρ) token-bucket constrained traffic
//                            (Cruz's model), A(I) = σ + ρ·I.
//  * ZeroEnvelope          — no traffic (useful as an identity for sums).
//
// Bursts are peak-rate limited: within a burst, bits arrive at `peak_rate`
// (the speed of the source's link). `peak_rate = +infinity` gives the
// idealized instantaneous-burst reading of eq. (37). See DESIGN.md §2 for
// why this parameter exists.
#pragma once

#include <limits>

#include "src/traffic/envelope.h"

namespace hetnet {

class PeriodicEnvelope final : public ArrivalEnvelope {
 public:
  // `bits_per_period` = C, `period` = P, `peak_rate` = in-burst arrival rate.
  // Requires C > 0, P > 0, peak_rate >= C/P.
  PeriodicEnvelope(Bits bits_per_period, Seconds period,
                   BitsPerSecond peak_rate =
                       BitsPerSecond::infinity());

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override { return c_ / p_; }
  Bits burst_bound() const override { return c_; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;
  std::uint64_t fingerprint() const override;

  Bits bits_per_period() const { return c_; }
  Seconds period() const { return p_; }
  BitsPerSecond peak_rate() const { return peak_; }

 private:
  Bits c_;
  Seconds p_;
  BitsPerSecond peak_;
};

// The dual-periodic model of Section 6 / eq. (37). The maximum traffic in a
// window of length I is
//
//   A(I) = ⌊I/P1⌋·C1 + min(C1, inner(I mod P1))
//   inner(r) = ⌊r/P2⌋·C2 + min(C2, peak·(r mod P2))
//
// i.e. C1 bits per outer period P1, arriving as sub-bursts of C2 bits every
// P2. Long-term rate ρ = C1/P1 (eq. 38).
class DualPeriodicEnvelope final : public ArrivalEnvelope {
 public:
  // Requires 0 < C2 <= C1, 0 < P2 <= P1, peak_rate >= C2/P2.
  DualPeriodicEnvelope(Bits c1, Seconds p1, Bits c2, Seconds p2,
                       BitsPerSecond peak_rate =
                           BitsPerSecond::infinity());

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override { return c1_ / p1_; }
  Bits burst_bound() const override { return c1_; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;
  std::uint64_t fingerprint() const override;

  Bits c1() const { return c1_; }
  Seconds p1() const { return p1_; }
  Bits c2() const { return c2_; }
  Seconds p2() const { return p2_; }
  BitsPerSecond peak_rate() const { return peak_; }

 private:
  // inner(r) for r in [0, P1).
  Bits inner(Seconds r) const;

  Bits c1_;
  Seconds p1_;
  Bits c2_;
  Seconds p2_;
  BitsPerSecond peak_;
};

// Cruz-style (σ, ρ) envelope: A(I) = σ + ρ·I. σ is the burst tolerance, ρ
// the sustained rate. Requires σ >= 0, ρ >= 0, σ + ρ > 0.
class LeakyBucketEnvelope final : public ArrivalEnvelope {
 public:
  LeakyBucketEnvelope(Bits sigma, BitsPerSecond rho);

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override { return rho_; }
  Bits burst_bound() const override { return sigma_; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;
  std::uint64_t fingerprint() const override;

  Bits sigma() const { return sigma_; }
  BitsPerSecond rho() const { return rho_; }

 private:
  Bits sigma_;
  BitsPerSecond rho_;
};

class ZeroEnvelope final : public ArrivalEnvelope {
 public:
  Bits bits(Seconds) const override { return Bits{}; }
  BitsPerSecond long_term_rate() const override { return BitsPerSecond{}; }
  Bits burst_bound() const override { return Bits{}; }
  std::vector<Seconds> breakpoints(Seconds) const override { return {}; }
  std::string describe() const override { return "zero"; }
  std::uint64_t fingerprint() const override { return fp::mix(0x5a); }
};

}  // namespace hetnet
