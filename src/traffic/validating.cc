#include "src/traffic/validating.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace hetnet {
namespace {

// Interpolation comparisons accumulate rounding from multiple envelope
// evaluations; allow slack well above one ulp but far below any real
// contract violation.
constexpr double kRelTol = 1e-6;

Bits tol_for(Bits scale) { return Bits{kRelTol} + kRelTol * abs(scale); }

bool close_enough(Bits a, Bits b, Bits scale) {
  return abs(a - b) <= tol_for(scale);
}

bool leq_with_tol(Bits a, Bits b, Bits scale) {
  return a <= b + tol_for(scale);
}

}  // namespace

ValidatingEnvelope::ValidatingEnvelope(EnvelopePtr inner)
    : inner_(std::move(inner)) {
  HETNET_CHECK(inner_ != nullptr, "ValidatingEnvelope needs an envelope");
}

Bits ValidatingEnvelope::bits(Seconds interval) const {
  const Bits value = inner_->bits(interval);
  HETNET_CHECK(value >= 0.0,
               "envelope contract: A(I) must be nonnegative for " +
                   inner_->describe());
  check_monotone(interval, value);
  check_majorized(interval, value);
  check_affine_between_breakpoints(interval);
  return value;
}

BitsPerSecond ValidatingEnvelope::long_term_rate() const {
  const BitsPerSecond rho = inner_->long_term_rate();
  HETNET_CHECK(rho >= 0.0,
               "envelope contract: long_term_rate must be nonnegative for " +
                   inner_->describe());
  return rho;
}

Bits ValidatingEnvelope::burst_bound() const {
  const Bits b = inner_->burst_bound();
  HETNET_CHECK(b >= 0.0,
               "envelope contract: burst_bound must be nonnegative for " +
                   inner_->describe());
  return b;
}

std::vector<Seconds> ValidatingEnvelope::breakpoints(Seconds horizon) const {
  std::vector<Seconds> points = inner_->breakpoints(horizon);
  Seconds prev;
  for (const Seconds p : points) {
    HETNET_CHECK(p > 0.0 && approx_le(p, horizon),
                 "envelope contract: breakpoints must lie in (0, horizon] "
                 "for " +
                     inner_->describe());
    HETNET_CHECK(p > prev,
                 "envelope contract: breakpoints must be strictly "
                 "increasing for " +
                     inner_->describe());
    prev = p;
  }
  return points;
}

std::string ValidatingEnvelope::describe() const {
  return inner_->describe();
}

void ValidatingEnvelope::check_monotone(Seconds interval, Bits value) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = seen_.emplace(interval, value);
  if (!inserted) {
    HETNET_CHECK(close_enough(value, it->second, value),
                 "envelope contract: A(I) changed between evaluations of " +
                     inner_->describe());
    return;
  }
  if (it != seen_.begin()) {
    const auto& [t_lo, a_lo] = *std::prev(it);
    HETNET_CHECK(leq_with_tol(a_lo, value, value),
                 "envelope contract: A nondecreasing violated by " +
                     inner_->describe());
  }
  if (const auto next = std::next(it); next != seen_.end()) {
    const auto& [t_hi, a_hi] = *next;
    HETNET_CHECK(leq_with_tol(value, a_hi, a_hi),
                 "envelope contract: A nondecreasing violated by " +
                     inner_->describe());
  }
}

void ValidatingEnvelope::check_majorized(Seconds interval, Bits value) const {
  const Bits cap = inner_->burst_bound() + inner_->long_term_rate() * interval;
  HETNET_CHECK(leq_with_tol(value, cap, cap),
               "envelope contract: burst_bound majorization violated by " +
                   inner_->describe());
}

void ValidatingEnvelope::check_affine_between_breakpoints(
    Seconds interval) const {
  if (interval <= 0.0) return;
  // Find the breakpoint segment [lo, hi] containing `interval`. Envelopes
  // may JUMP at a breakpoint, so affinity is only promised on the open
  // segment: sample at 1/4, 1/2 and 3/4 strictly inside it and require the
  // middle sample to interpolate the outer two.
  const std::vector<Seconds> points = inner_->breakpoints(2.0 * interval);
  Seconds lo;
  Seconds hi = 2.0 * interval;
  for (const Seconds p : points) {
    if (approx_le(p, interval)) {
      lo = p;
    } else {
      hi = p;
      break;
    }
  }
  const Seconds width = hi - lo;
  if (width <= Seconds{16 * kEps}) return;
  const Bits a_q1 = inner_->bits(lo + 0.25 * width);
  const Bits a_mid = inner_->bits(lo + 0.5 * width);
  const Bits a_q3 = inner_->bits(lo + 0.75 * width);
  const Bits expect = a_q1 + 0.5 * (a_q3 - a_q1);
  HETNET_CHECK(close_enough(a_mid, expect, a_q3),
               "envelope contract: A not affine between breakpoints of " +
                   inner_->describe());
}

}  // namespace hetnet
