// Traffic description by maximum-rate functions (Section 4.2 of the paper).
//
// The paper describes a connection's traffic at any point in the network by
// the *maximum rate function* Γ(I): the maximum arrival rate over any time
// interval of length I. We represent the equivalent *arrival envelope*
//
//     A(I) = I · Γ(I)  =  maximum number of bits arriving in ANY window of
//                         length I,
//
// because A composes more naturally through servers (sums, shifts and
// quantizations act on bits, not rates). Γ(I) is recovered as A(I)/I.
//
// Required properties of every implementation:
//   * A(I) >= 0 and A is nondecreasing in I.  A(0) may be positive — it is
//     the maximum instantaneous burst (e.g. a whole packet arriving "at
//     once" at the source interface).
//   * long_term_rate() == lim_{I→∞} A(I)/I  (eq. 38), used by stability
//     checks (a server whose guaranteed rate is below this limit has an
//     unbounded backlog and the analysis reports "no bound").
//   * breakpoints(horizon) returns every interval length in (0, horizon]
//     at which the envelope's growth changes character (slope change or
//     jump). Between consecutive breakpoints A must be affine (linear).
//     The exact worst-case scans in src/servers rely on this: they evaluate
//     candidate extrema only at breakpoints (plus server-specific points),
//     which makes the Theorem-1/Theorem-2 computations exact rather than
//     grid-approximate.
//
// Envelopes are immutable and shared (`EnvelopePtr`); transformed envelopes
// (server outputs) hold their inputs by shared pointer and evaluate lazily.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/traffic/fingerprint.h"
#include "src/util/units.h"

namespace hetnet {

class ArrivalEnvelope;
using EnvelopePtr = std::shared_ptr<const ArrivalEnvelope>;

class ArrivalEnvelope {
 public:
  ArrivalEnvelope();
  virtual ~ArrivalEnvelope() = default;

  // Structural identity for memoization: equal fingerprints imply
  // bit-identical bits(I) at every interval (see fingerprint.h for the
  // contract). The default is a unique per-instance id — always sound, never
  // shared between distinct objects. Source models and algebra operators
  // override it with a structural hash so that recreating the same
  // composition (e.g. the same rate cap on the same flow in a later
  // admission probe) yields the same key.
  virtual std::uint64_t fingerprint() const { return instance_fp_; }

  // A(I): maximum bits arriving in any window of length `interval` seconds.
  // Requires interval >= 0. Implementations must be nondecreasing.
  virtual Bits bits(Seconds interval) const = 0;

  // Γ(I) = A(I)/I for I > 0 (bits/second).
  BitsPerSecond rate(Seconds interval) const;

  // lim_{I→∞} Γ(I): the long-term average rate ρ of the flow.
  virtual BitsPerSecond long_term_rate() const = 0;

  // A finite burst constant b such that A(I) <= b + long_term_rate()·I for
  // ALL I >= 0 — the leaky-bucket majorization of the envelope. Used to
  // construct sound linear tails when rasterizing computed envelopes and to
  // reason about stability. Every traffic model in this library admits a
  // finite bound (a periodic source of C bits per P satisfies A(I) <=
  // C + ρ·I, etc.).
  virtual Bits burst_bound() const = 0;

  // Sorted, de-duplicated interval lengths in (0, horizon] at which the
  // envelope changes slope or jumps; A must be affine between consecutive
  // returned points (and between 0 and the first point).
  virtual std::vector<Seconds> breakpoints(Seconds horizon) const = 0;

  // One-line human-readable description (used in traces and error text).
  virtual std::string describe() const = 0;

 private:
  std::uint64_t instance_fp_;
};

// Merges several sorted breakpoint lists into one sorted, de-duplicated list
// (duplicates within `kEps` of each other are collapsed).
std::vector<Seconds> merge_breakpoints(
    std::vector<std::vector<Seconds>> lists);

// Inserts multiples of `step` up to `horizon` into `points` (sorted, deduped).
std::vector<Seconds> add_grid(std::vector<Seconds> points, Seconds step,
                              Seconds horizon);

}  // namespace hetnet
