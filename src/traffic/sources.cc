#include "src/traffic/sources.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {
namespace {

// min(limit, peak * elapsed) that is well-defined for peak = +infinity
// (an instantaneous burst delivers `limit` bits for any elapsed > 0).
Bits burst_progress(Bits limit, BitsPerSecond peak, Seconds elapsed) {
  if (elapsed <= 0) return Bits{};
  if (isinf(peak)) return limit;
  return std::min(limit, peak * elapsed);
}

}  // namespace

PeriodicEnvelope::PeriodicEnvelope(Bits bits_per_period, Seconds period,
                                   BitsPerSecond peak_rate)
    : c_(bits_per_period), p_(period), peak_(peak_rate) {
  HETNET_CHECK(c_ > 0, "periodic source needs positive bits per period");
  HETNET_CHECK(p_ > 0, "periodic source needs positive period");
  HETNET_CHECK(peak_ * p_ >= c_ || isinf(peak_),
               "peak rate too low to deliver C bits within one period");
}

Bits PeriodicEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  const double k = std::floor(interval / p_);
  const Seconds r = interval - k * p_;
  return k * c_ + burst_progress(c_, peak_, r);
}

std::vector<Seconds> PeriodicEnvelope::breakpoints(Seconds horizon) const {
  std::vector<Seconds> pts;
  const Seconds burst_len = isinf(peak_) ? Seconds{} : c_ / peak_;
  for (double k = 0;; ++k) {
    const Seconds start = k * p_;
    if (start > horizon) break;
    if (start > 0) pts.push_back(start);
    const Seconds end = start + burst_len;
    if (burst_len > 0 && end > 0 && approx_le(end, horizon)) {
      pts.push_back(end);
    }
  }
  return merge_breakpoints({std::move(pts)});
}

std::string PeriodicEnvelope::describe() const {
  std::ostringstream os;
  os << "periodic(C=" << c_ << "b, P=" << p_ << "s)";
  return os.str();
}

std::uint64_t PeriodicEnvelope::fingerprint() const {
  std::uint64_t h = fp::mix(0x70);  // 'p'eriodic
  h = fp::combine(h, fp::of_double(c_.value()));
  h = fp::combine(h, fp::of_double(p_.value()));
  return fp::combine(h, fp::of_double(peak_.value()));
}

DualPeriodicEnvelope::DualPeriodicEnvelope(Bits c1, Seconds p1, Bits c2,
                                           Seconds p2,
                                           BitsPerSecond peak_rate)
    : c1_(c1), p1_(p1), c2_(c2), p2_(p2), peak_(peak_rate) {
  HETNET_CHECK(c2_ > 0 && c1_ >= c2_, "dual-periodic needs 0 < C2 <= C1");
  HETNET_CHECK(p2_ > 0 && p1_ >= p2_, "dual-periodic needs 0 < P2 <= P1");
  HETNET_CHECK(peak_ * p2_ >= c2_ || isinf(peak_),
               "peak rate too low to deliver C2 bits within one sub-period");
}

Bits DualPeriodicEnvelope::inner(Seconds r) const {
  const double k2 = std::floor(r / p2_);
  const Seconds rr = r - k2 * p2_;
  return k2 * c2_ + burst_progress(c2_, peak_, rr);
}

Bits DualPeriodicEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  const double k1 = std::floor(interval / p1_);
  const Seconds r = interval - k1 * p1_;
  return k1 * c1_ + std::min(c1_, inner(r));
}

std::vector<Seconds> DualPeriodicEnvelope::breakpoints(Seconds horizon) const {
  std::vector<Seconds> pts;
  // Sub-bursts per outer window needed to exhaust C1.
  const double n_sub = std::ceil(c1_ / c2_);
  for (double k1 = 0;; ++k1) {
    const Seconds start = k1 * p1_;
    if (start > horizon) break;
    if (start > 0) pts.push_back(start);
    for (double k2 = 0; k2 < n_sub; ++k2) {
      const Seconds sub = start + k2 * p2_;
      if (sub > horizon) break;
      if (sub > start) pts.push_back(sub);
      if (!isinf(peak_)) {
        const Bits remaining = std::min(c2_, c1_ - k2 * c2_);
        const Seconds end = sub + remaining / peak_;
        if (approx_le(end, horizon) && end > start) pts.push_back(end);
      }
    }
  }
  return merge_breakpoints({std::move(pts)});
}

std::string DualPeriodicEnvelope::describe() const {
  std::ostringstream os;
  os << "dual-periodic(C1=" << c1_ << "b, P1=" << p1_ << "s, C2=" << c2_
     << "b, P2=" << p2_ << "s)";
  return os.str();
}

std::uint64_t DualPeriodicEnvelope::fingerprint() const {
  std::uint64_t h = fp::mix(0x64);  // 'd'ual
  h = fp::combine(h, fp::of_double(c1_.value()));
  h = fp::combine(h, fp::of_double(p1_.value()));
  h = fp::combine(h, fp::of_double(c2_.value()));
  h = fp::combine(h, fp::of_double(p2_.value()));
  return fp::combine(h, fp::of_double(peak_.value()));
}

LeakyBucketEnvelope::LeakyBucketEnvelope(Bits sigma, BitsPerSecond rho)
    : sigma_(sigma), rho_(rho) {
  HETNET_CHECK(sigma_ >= 0 && rho_ >= 0, "leaky bucket needs σ, ρ >= 0");
  HETNET_CHECK(sigma_ > 0 || rho_ > 0, "leaky bucket must carry some traffic");
}

Bits LeakyBucketEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  return sigma_ + rho_ * interval;
}

std::vector<Seconds> LeakyBucketEnvelope::breakpoints(Seconds) const {
  return {};
}

std::string LeakyBucketEnvelope::describe() const {
  std::ostringstream os;
  os << "leaky-bucket(σ=" << sigma_ << "b, ρ=" << rho_ << "b/s)";
  return os.str();
}

std::uint64_t LeakyBucketEnvelope::fingerprint() const {
  std::uint64_t h = fp::mix(0x6c);  // 'l'eaky
  h = fp::combine(h, fp::of_double(sigma_.value()));
  return fp::combine(h, fp::of_double(rho_.value()));
}

}  // namespace hetnet
