// Runtime contract checking for ArrivalEnvelope implementations.
//
// ValidatingEnvelope wraps any envelope and spot-checks the interface
// contract documented in envelope.h on every query:
//   * bits() is nonnegative and nondecreasing (checked against the queries
//     already observed),
//   * bits() is affine between consecutive breakpoints (checked by midpoint
//     interpolation on the segment containing the query),
//   * burst_bound() majorizes the envelope: A(I) <= b + ρ·I at every query.
//
// The wrapper is for test builds: wrap_validating() is a pass-through unless
// the build defines HETNET_VALIDATE (CMake option -DHETNET_VALIDATE=ON), so
// production call sites can wrap unconditionally at no cost. Checks fire
// through HETNET_CHECK (std::logic_error) to fail the offending test.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/traffic/envelope.h"
#include "src/util/units.h"

namespace hetnet {

class ValidatingEnvelope final : public ArrivalEnvelope {
 public:
  explicit ValidatingEnvelope(EnvelopePtr inner);

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override;
  Bits burst_bound() const override;
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;
  // Transparent for memoization: validation never changes values.
  std::uint64_t fingerprint() const override { return inner_->fingerprint(); }

  const EnvelopePtr& inner() const { return inner_; }

 private:
  void check_monotone(Seconds interval, Bits value) const;
  void check_majorized(Seconds interval, Bits value) const;
  void check_affine_between_breakpoints(Seconds interval) const;

  EnvelopePtr inner_;
  // Queries observed so far, for the nondecreasing check. Mutable: the
  // envelope interface is logically const, the validation memo is not
  // state. Guarded by mu_ — validated envelopes can be shared across the
  // parallel engine's workers like any other envelope.
  mutable std::mutex mu_;
  mutable std::map<Seconds, Bits> seen_;
};

// Wraps `env` in a ValidatingEnvelope when the translation unit enables
// validation (HETNET_VALIDATE), otherwise returns it unchanged. Inline so
// each target's compile definitions decide — the test suites turn it on
// without rebuilding the library.
inline EnvelopePtr wrap_validating(EnvelopePtr env) {
#ifdef HETNET_VALIDATE
  if (env && !std::dynamic_pointer_cast<const ValidatingEnvelope>(env)) {
    return std::make_shared<ValidatingEnvelope>(std::move(env));
  }
  return env;
#else
  return env;
#endif
}

}  // namespace hetnet
