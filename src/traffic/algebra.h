// Envelope algebra: the composition operators the server analyses are built
// from. All operators return new immutable envelopes holding their operands
// by shared pointer; evaluation is lazy.
//
//   sum_envelopes({A1..An})      (Σ Ai)(I) = A1(I)+...+An(I)
//       Aggregate traffic of flows multiplexed at a server input.
//   shift_envelope(A, d)         A'(I) = A(I + d)
//       Output bound of a FIFO element with worst-case delay d (Cruz):
//       whatever leaves in a window of length I entered within I + d.
//   min_envelope(A, B)           A'(I) = min(A(I), B(I))
//       Combine independently-valid bounds.
//   rate_cap(A, r, b)            A'(I) = min(A(I), b + r·I)
//       A flow that traversed a link of rate r cannot exceed r·I plus a
//       one-packet burst b in any window.
//   quantize_envelope(A, u, v)   A'(I) = ⌈A(I)/u⌉ · v
//       Unit conversion with last-unit padding: u input bits become v output
//       bits, partial units rounded up. This is exactly the Theorem-2
//       frame→cell transform (u = frame payload F_S, v = F_C·C_S) and its
//       ID_R mirror (cells→frames).
//   scale_envelope(A, f)         A'(I) = f · A(I)
//       Proportional accounting changes (e.g. payload ↔ wire bits when
//       per-unit padding is negligible or already applied).
//
// Every operator preserves the ArrivalEnvelope contract: monotonicity, a
// correct long_term_rate(), and breakpoints between which the result is
// affine (min/quantize insert the crossing points they create).
#pragma once

#include "src/traffic/envelope.h"

namespace hetnet {

EnvelopePtr sum_envelopes(std::vector<EnvelopePtr> parts);
EnvelopePtr shift_envelope(EnvelopePtr input, Seconds delay);
EnvelopePtr min_envelope(EnvelopePtr a, EnvelopePtr b);
EnvelopePtr rate_cap(EnvelopePtr input, BitsPerSecond rate, Bits burst = Bits{});
EnvelopePtr quantize_envelope(EnvelopePtr input, Bits in_unit, Bits out_unit);
EnvelopePtr scale_envelope(EnvelopePtr input, double factor);

}  // namespace hetnet
