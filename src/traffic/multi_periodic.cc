#include "src/traffic/multi_periodic.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {

MultiPeriodicEnvelope::MultiPeriodicEnvelope(
    std::vector<PeriodicLevel> levels, BitsPerSecond peak_rate)
    : levels_(std::move(levels)), peak_(peak_rate) {
  HETNET_CHECK(!levels_.empty(), "multi-periodic needs at least one level");
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    HETNET_CHECK(levels_[k].bits > 0 && levels_[k].period > 0,
                 "levels must have positive bits and period");
    if (k > 0) {
      HETNET_CHECK(levels_[k].bits <= levels_[k - 1].bits,
                   "level bit counts must be nonincreasing");
      HETNET_CHECK(levels_[k].period <= levels_[k - 1].period,
                   "level periods must be nonincreasing");
    }
  }
  const PeriodicLevel& inner = levels_.back();
  HETNET_CHECK(peak_ * inner.period >= inner.bits || isinf(peak_),
               "peak rate too low for the innermost burst");
}

Bits MultiPeriodicEnvelope::level_bits(std::size_t k, Seconds r) const {
  if (k == levels_.size()) {
    if (r <= 0) return Bits{};
    if (isinf(peak_)) return levels_.back().bits;  // clamped by caller
    return peak_ * r;
  }
  const PeriodicLevel& level = levels_[k];
  const double whole = std::floor(r / level.period);
  const Seconds rest = r - whole * level.period;
  return whole * level.bits +
         std::min(level.bits, level_bits(k + 1, rest));
}

Bits MultiPeriodicEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  return level_bits(0, interval);
}

BitsPerSecond MultiPeriodicEnvelope::long_term_rate() const {
  return levels_.front().bits / levels_.front().period;
}

// Emits the slope-change points of level k's burst train inside the window
// [offset, end): sub-burst starts (j > 0; j = 0 coincides with a point the
// parent already emitted) and, at the innermost level, burst ends when the
// peak rate is finite. `budget` is the bits the parent allows this window.
void MultiPeriodicEnvelope::level_breakpoints(
    std::size_t k, Seconds offset, Bits budget, Seconds end, Seconds horizon,
    std::vector<Seconds>& out) const {
  const PeriodicLevel& level = levels_[k];
  for (double j = 0;; ++j) {
    if (j * level.bits >= budget - Bits{kEps}) break;  // window budget exhausted
    const Seconds start = offset + j * level.period;
    if (start >= end || start > horizon) break;
    if (j > 0) out.push_back(start);
    const Bits quota = std::min(level.bits, budget - j * level.bits);
    if (k + 1 == levels_.size()) {
      if (!isinf(peak_)) {
        const Seconds burst_end = start + quota / peak_;
        if (burst_end > start &&
            approx_le(burst_end, std::min(end, horizon))) {
          out.push_back(burst_end);
        }
      }
    } else {
      level_breakpoints(k + 1, start, quota,
                        std::min(start + level.period, end), horizon, out);
    }
  }
}

std::vector<Seconds> MultiPeriodicEnvelope::breakpoints(
    Seconds horizon) const {
  std::vector<Seconds> pts;
  const PeriodicLevel& outer = levels_.front();
  for (double w = 0;; ++w) {
    const Seconds start = w * outer.period;
    if (start > horizon) break;
    if (start > 0) pts.push_back(start);
    if (levels_.size() == 1) {
      if (!isinf(peak_)) {
        const Seconds burst_end = start + outer.bits / peak_;
        if (approx_le(burst_end, horizon) && burst_end > start) {
          pts.push_back(burst_end);
        }
      }
    } else {
      level_breakpoints(1, start, outer.bits,
                        start + outer.period, horizon, pts);
    }
  }
  return merge_breakpoints({std::move(pts)});
}

std::string MultiPeriodicEnvelope::describe() const {
  std::ostringstream os;
  os << "multi-periodic(" << levels_.size() << " levels, C1="
     << levels_.front().bits << "b/P1=" << levels_.front().period << "s)";
  return os.str();
}

std::uint64_t MultiPeriodicEnvelope::fingerprint() const {
  std::uint64_t h = fp::mix(0x6d);  // 'm'ulti
  for (const PeriodicLevel& level : levels_) {
    h = fp::combine(h, fp::of_double(level.bits.value()));
    h = fp::combine(h, fp::of_double(level.period.value()));
  }
  return fp::combine(h, fp::of_double(peak_.value()));
}

}  // namespace hetnet
