// Flattened piecewise-linear envelopes: the Tier-A screening representation.
//
// Deeply composed expression-tree envelopes evaluate bits(I) by walking the
// whole tower on every call. A FlatEnvelope collapses such an envelope into
// one compact sorted array of affine segments,
//
//     for I in [starts[k], starts[k+1]):
//         A(I) = values[k] + slopes[k] * (I - starts[k]),
//
// with the last segment extending to infinity (slopes.back() is the
// long-term rate). Evaluation is a binary search over a cache-resident
// array; with the segment budget the screening tier uses (a few dozen
// entries) that is effectively O(1) per call, and the kernels below
// (sum / min / shift / rate-cap / min-plus convolution) are single linear
// merges over the arrays instead of lazy operator-tree growth.
//
// Admit-safe simplification: `flat_from_envelope` compresses a source
// envelope to a bounded segment count with a DIRECTED rounding mode —
//
//   * Rounding::kUp   never rounds below the source (arrival curves:
//     a screen bound computed from the flattened arrival dominates the
//     exact bound, so "screen says feasible" is trustworthy);
//   * Rounding::kDown never rounds above the source (service-style /
//     optimistic lower screens: "even the optimistic bound violates the
//     deadline" is trustworthy).
//
// Every rounded construction additionally pads by kFlatPadRel relative so
// floating-point rounding inside the chord arithmetic can never flip the
// direction of the bound. Domination is pinned by the property tests in
// tests/traffic/flat_test.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/traffic/envelope.h"

namespace hetnet {

class FlatEnvelope;
using FlatPtr = std::shared_ptr<const FlatEnvelope>;

// Directed rounding for admit-safe simplification (see file comment).
enum class Rounding {
  kUp,    // result >= source everywhere (conservative arrival curve)
  kDown,  // result <= source everywhere (optimistic lower bound)
};

// Relative pad applied by the directed constructions: large enough to absorb
// floating-point rounding in the chord arithmetic, small enough (1e-9 of the
// magnitude) to be irrelevant next to the deliberate coarseness of a screen.
inline constexpr double kFlatPadRel = 1e-9;

class FlatEnvelope final : public ArrivalEnvelope {
 public:
  // `starts` must be sorted strictly increasing with starts[0] == 0;
  // `values`/`slopes` (same size) give each segment's value at its start and
  // its rate. Slopes must be >= 0. Upward jumps between segments are allowed
  // (values[k+1] above segment k's end value); a value below the previous
  // segment's end is clamped up to it, keeping the envelope nondecreasing —
  // callers that need a lower bound must leave enough pad that the clamp
  // never exceeds their target (flat_from_envelope does).
  FlatEnvelope(std::vector<Seconds> starts, std::vector<Bits> values,
               std::vector<BitsPerSecond> slopes);

  std::uint64_t fingerprint() const override { return fp_; }
  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override { return slopes_.back(); }
  Bits burst_bound() const override { return burst_bound_; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;

  std::size_t size() const { return starts_.size(); }
  const std::vector<Seconds>& starts() const { return starts_; }
  const std::vector<Bits>& values() const { return values_; }
  const std::vector<BitsPerSecond>& slopes() const { return slopes_; }

  // The rate of the segment containing `interval` (the last segment for
  // intervals past starts().back()). Used by the merge kernels.
  BitsPerSecond slope_at(Seconds interval) const;

 private:
  std::size_t segment_index(Seconds interval) const;

  std::vector<Seconds> starts_;
  std::vector<Bits> values_;
  std::vector<BitsPerSecond> slopes_;
  Bits burst_bound_;
  std::uint64_t fp_ = 0;
};

// Flattens `src` into at most `max_segments` affine segments with the given
// directed rounding: samples the source at its own breakpoints in
// (0, horizon] (stride-thinned if pathological), compacts adjacent samples
// into dominating (kUp) or dominated (kDown) chords by greedy smallest-area
// merging, and closes with a sound linear tail — the leaky-bucket
// majorization burst_bound + rate*I for kUp (valid for every I), a flat
// continuation for kDown (A is nondecreasing, so A(I) >= A(horizon) is the
// strongest interface-derivable lower tail; kDown results are therefore
// mainly useful on [0, horizon]). Requires max_segments >= 4.
FlatPtr flat_from_envelope(const EnvelopePtr& src, Seconds horizon,
                           std::size_t max_segments, Rounding rounding);

// (Σ parts)(I): exact pointwise sum, segments merged on the union of the
// operands' breakpoints.
FlatPtr flat_sum(const std::vector<FlatPtr>& parts);

// min(a, b)(I): exact pointwise minimum; crossing points inside shared
// segments are inserted so the result is affine between its breakpoints.
FlatPtr flat_min(const FlatPtr& a, const FlatPtr& b);

// a(I + delay): the Cruz output-bound shift, delay >= 0.
FlatPtr flat_shift(const FlatPtr& a, Seconds delay);

// min(a(I), burst + rate*I): link/rate policing, exact.
FlatPtr flat_rate_cap(const FlatPtr& a, BitsPerSecond rate, Bits burst = Bits{});

// Min-plus convolution (a ⊗ b)(I) = min over t in [0, I] of a(t) + b(I-t).
// For piecewise-linear operands the minimum is attained with one operand at
// a breakpoint, so the result is evaluated exactly on the candidate set
// {x_i + y_j} of pairwise breakpoint sums (cache-friendly O(n*m) merge, no
// operator-tree recursion). The tail rate is min of the operands' rates.
FlatPtr flat_convolve(const FlatPtr& a, const FlatPtr& b);

}  // namespace hetnet
