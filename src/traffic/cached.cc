#include "src/traffic/cached.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"

namespace hetnet {
namespace {

class CachedEnvelope final : public ArrivalEnvelope {
 public:
  CachedEnvelope(EnvelopePtr input, std::size_t max_entries)
      : input_(std::move(input)), max_entries_(max_entries) {
    HETNET_CHECK(input_ != nullptr, "null envelope");
    HETNET_CHECK(max_entries_ > 0, "cache must hold at least one entry");
    cache_.reserve(std::min<std::size_t>(max_entries_, 512));
  }

  Bits bits(Seconds interval) const override {
    std::uint64_t key;
    static_assert(sizeof(key) == sizeof(interval));
    std::memcpy(&key, &interval, sizeof(key));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto it = cache_.find(key); it != cache_.end()) {
        return it->second;
      }
    }
    // Computed outside the lock: concurrent misses on the same interval
    // both evaluate the (pure, deterministic) input and store the identical
    // value, so the cache contents never depend on scheduling.
    const Bits value = input_->bits(interval);
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= max_entries_) cache_.clear();
    cache_.emplace(key, value);
    return value;
  }

  BitsPerSecond long_term_rate() const override {
    return input_->long_term_rate();
  }

  Bits burst_bound() const override { return input_->burst_bound(); }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    return input_->breakpoints(horizon);
  }

  std::string describe() const override {
    return "cached(" + input_->describe() + ")";
  }

  // Transparent for memoization: the cache never changes values.
  std::uint64_t fingerprint() const override { return input_->fingerprint(); }

  bool is_cache() const { return true; }

 private:
  EnvelopePtr input_;
  std::size_t max_entries_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t, Bits> cache_;
};

}  // namespace

EnvelopePtr cache_envelope(EnvelopePtr input, std::size_t max_entries) {
  HETNET_CHECK(input != nullptr, "null envelope");
  if (dynamic_cast<const CachedEnvelope*>(input.get()) != nullptr) {
    return input;
  }
  return std::make_shared<CachedEnvelope>(std::move(input), max_entries);
}

}  // namespace hetnet
