#include "src/traffic/flat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "src/util/check.h"

namespace hetnet {
namespace {

// Directed pad: moves a chord value strictly past the source by enough to
// absorb the floating-point rounding of the chord arithmetic (see kFlatPadRel
// in flat.h). Only rounded constructions pad; the exact kernels do not.
// kDown clamps at zero: a steep merged chord can start below zero while
// still lower-bounding the (nonnegative) source, and raising it to zero
// keeps it a lower bound while satisfying the envelope contract.
Bits directed_pad(Bits v, Rounding rounding) {
  const double margin = kFlatPadRel * std::max(1.0, std::abs(v.value()));
  return rounding == Rounding::kUp ? Bits(v.value() + margin)
                                   : Bits(std::max(0.0, v.value() - margin));
}

// One compacted run of step samples, as an affine segment.
struct Chord {
  Seconds start;
  Bits value;
  BitsPerSecond slope;
};

// The chord covering steps i..j (inclusive), where step k holds the constant
// value u[k] on [x[k], x[k+1]). kUp chords dominate every covered step
// (minimum of an increasing chord over a step is at the step's left edge);
// kDown chords stay below every covered step (maximum is at the right edge).
Chord chord_for(const std::vector<Seconds>& x, const std::vector<Bits>& u,
                std::size_t i, std::size_t j, Rounding rounding) {
  Chord c;
  c.start = x[i];
  if (i == j) {
    // A single step is reproduced exactly — no arithmetic, no pad needed.
    c.value = u[i];
    c.slope = BitsPerSecond{};
    return c;
  }
  const BitsPerSecond s = std::max(
      BitsPerSecond{}, (u[j] - u[i]) / (x[j] - x[i]));
  c.slope = s;
  if (rounding == Rounding::kUp) {
    Bits v = u[i];
    for (std::size_t k = i; k <= j; ++k) {
      v = std::max(v, u[k] - s * (x[k] - x[i]));
    }
    c.value = directed_pad(v, Rounding::kUp);
  } else {
    Bits v = u[i];
    for (std::size_t k = i; k <= j; ++k) {
      v = std::min(v, u[k] - s * (x[k + 1] - x[i]));
    }
    c.value = directed_pad(v, Rounding::kDown);
  }
  return c;
}

// Absolute area between the chord over steps i..j and the steps themselves:
// the tightness lost by merging, used as the greedy merge cost.
double chord_cost(const std::vector<Seconds>& x, const std::vector<Bits>& u,
                  std::size_t i, std::size_t j, Rounding rounding) {
  const Chord c = chord_for(x, u, i, j, rounding);
  double cost = 0.0;
  for (std::size_t k = i; k <= j; ++k) {
    const Bits at_left = c.value + c.slope * (x[k] - c.start);
    const Bits at_right = c.value + c.slope * (x[k + 1] - c.start);
    const double mid = 0.5 * (at_left.value() + at_right.value());
    cost += std::abs(mid - u[k].value()) * (x[k + 1] - x[k]).value();
  }
  return cost;
}

}  // namespace

FlatEnvelope::FlatEnvelope(std::vector<Seconds> starts,
                           std::vector<Bits> values,
                           std::vector<BitsPerSecond> slopes)
    : starts_(std::move(starts)),
      values_(std::move(values)),
      slopes_(std::move(slopes)) {
  HETNET_CHECK(!starts_.empty(), "flat envelope needs at least one segment");
  HETNET_CHECK(
      starts_.size() == values_.size() && starts_.size() == slopes_.size(),
      "flat envelope segment arrays must have equal size");
  HETNET_CHECK(starts_.front() == 0.0, "flat envelope must start at I = 0");
  HETNET_CHECK(values_.front() >= 0, "flat envelope values must be >= 0");
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    HETNET_CHECK(slopes_[i] >= 0, "flat envelope slopes must be >= 0");
    if (i == 0) continue;
    HETNET_CHECK(starts_[i] > starts_[i - 1],
                 "flat envelope starts must be strictly increasing");
    // Keep the envelope nondecreasing across segment boundaries: upward
    // jumps are fine, an ulp-level dip from chord arithmetic is clamped up.
    const Bits prev_end =
        values_[i - 1] + slopes_[i - 1] * (starts_[i] - starts_[i - 1]);
    if (values_[i] < prev_end) values_[i] = prev_end;
  }

  // Leaky-bucket majorization A(I) <= burst_bound + tail*I: value - tail*I
  // is affine within each segment, so its maximum is at a segment endpoint.
  const BitsPerSecond tail = slopes_.back();
  Bits b = values_.front();
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    b = std::max(b, values_[i] - tail * starts_[i]);
    if (i + 1 < starts_.size()) {
      const Bits end =
          values_[i] + slopes_[i] * (starts_[i + 1] - starts_[i]);
      b = std::max(b, end - tail * starts_[i + 1]);
    }
  }
  burst_bound_ = b;

  std::uint64_t f = fp::mix(0xF1A7E57ull);  // "FLATEST": structural tag
  f = fp::combine(f, starts_.size());
  for (const Seconds s : starts_) f = fp::combine(f, fp::of_double(s.value()));
  for (const Bits v : values_) f = fp::combine(f, fp::of_double(v.value()));
  for (const BitsPerSecond s : slopes_) {
    f = fp::combine(f, fp::of_double(s.value()));
  }
  fp_ = f;
}

std::size_t FlatEnvelope::segment_index(Seconds interval) const {
  if (interval >= starts_.back()) return starts_.size() - 1;
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), interval);
  return static_cast<std::size_t>(it - starts_.begin()) - 1;
}

Bits FlatEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  const std::size_t k = segment_index(interval);
  return values_[k] + slopes_[k] * (interval - starts_[k]);
}

BitsPerSecond FlatEnvelope::slope_at(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "slope_at(I) requires I >= 0");
  return slopes_[segment_index(interval)];
}

std::vector<Seconds> FlatEnvelope::breakpoints(Seconds horizon) const {
  std::vector<Seconds> pts;
  for (std::size_t i = 1; i < starts_.size(); ++i) {
    if (starts_[i] > horizon) break;
    pts.push_back(starts_[i]);
  }
  return pts;
}

std::string FlatEnvelope::describe() const {
  std::ostringstream os;
  os << "flat(" << starts_.size() << " segs, tail=" << slopes_.back()
     << "b/s)";
  return os.str();
}

FlatPtr flat_from_envelope(const EnvelopePtr& src, Seconds horizon,
                           std::size_t max_segments, Rounding rounding) {
  HETNET_CHECK(src != nullptr, "null envelope");
  HETNET_CHECK(horizon > 0, "flatten horizon must be positive");
  HETNET_CHECK(max_segments >= 4, "flatten needs at least four segments");
  const Bits burst = src->burst_bound();
  HETNET_CHECK(isfinite(burst),
               "cannot flatten an envelope without a finite burst bound");
  const BitsPerSecond rate = src->long_term_rate();

  std::vector<Seconds> xs{Seconds{}};
  for (const Seconds b : src->breakpoints(horizon)) {
    if (b > xs.back() && b <= horizon) xs.push_back(b);
  }
  if (xs.back() < horizon) xs.push_back(horizon);
  // Stride-thin pathological breakpoint sets before sampling. Keeping only
  // group-boundary points is sound for both roundings: kUp steps take the
  // value at the surviving right end (>= everything dropped inside the
  // group), kDown steps keep the surviving left end (<= everything inside).
  constexpr std::size_t kMaxRawSamples = 512;
  if (xs.size() > kMaxRawSamples) {
    std::vector<Seconds> thin;
    thin.reserve(kMaxRawSamples + 1);
    const std::size_t stride =
        (xs.size() + kMaxRawSamples - 1) / kMaxRawSamples;
    for (std::size_t i = 0; i < xs.size(); i += stride) thin.push_back(xs[i]);
    if (thin.back() < xs.back()) thin.push_back(xs.back());
    xs = std::move(thin);
  }

  std::vector<Bits> sample(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) sample[i] = src->bits(xs[i]);

  // Step view: step k covers [xs[k], xs[k+1]). kUp takes the right-end value
  // (>= A on the step by monotonicity — exact, no arithmetic), kDown the
  // left-end value (<= A on the step).
  const std::size_t n_steps = xs.size() - 1;
  std::vector<Bits> u(n_steps);
  for (std::size_t k = 0; k < n_steps; ++k) {
    u[k] = rounding == Rounding::kUp ? sample[k + 1] : sample[k];
  }

  // Greedy compaction to the budget (one slot reserved for the tail):
  // repeatedly merge the adjacent run pair whose chord loses the least area.
  const std::size_t budget = std::max<std::size_t>(max_segments - 1, 1);
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  runs.reserve(n_steps);
  for (std::size_t k = 0; k < n_steps; ++k) runs.push_back({k, k});
  std::vector<double> pair_cost;
  if (runs.size() > budget) {
    pair_cost.resize(runs.size() - 1);
    for (std::size_t r = 0; r + 1 < runs.size(); ++r) {
      pair_cost[r] =
          chord_cost(xs, u, runs[r].first, runs[r + 1].second, rounding);
    }
  }
  while (runs.size() > budget) {
    std::size_t best = 0;
    for (std::size_t r = 1; r + 1 < runs.size(); ++r) {
      if (pair_cost[r] < pair_cost[best]) best = r;
    }
    runs[best].second = runs[best + 1].second;
    runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    pair_cost.erase(pair_cost.begin() + static_cast<std::ptrdiff_t>(best));
    if (best > 0) {
      pair_cost[best - 1] = chord_cost(xs, u, runs[best - 1].first,
                                       runs[best].second, rounding);
    }
    if (best + 1 < runs.size()) {
      pair_cost[best] = chord_cost(xs, u, runs[best].first,
                                   runs[best + 1].second, rounding);
    }
  }

  std::vector<Seconds> starts;
  std::vector<Bits> values;
  std::vector<BitsPerSecond> slopes;
  starts.reserve(runs.size() + 1);
  values.reserve(runs.size() + 1);
  slopes.reserve(runs.size() + 1);
  for (const auto& [i, j] : runs) {
    const Chord c = chord_for(xs, u, i, j, rounding);
    starts.push_back(c.start);
    values.push_back(c.value);
    slopes.push_back(c.slope);
  }
  // Tail from the horizon on. kUp: the source's leaky-bucket majorization
  // burst + rate*I holds for every I, so a segment at that line (or the
  // horizon sample, whichever is higher) with slope `rate` stays an upper
  // bound forever. kDown: monotonicity only gives A(I) >= A(horizon); the
  // flat continuation is the strongest lower tail derivable from the
  // interface (see flat.h).
  starts.push_back(xs.back());
  if (rounding == Rounding::kUp) {
    values.push_back(directed_pad(
        std::max(sample.back(), burst + rate * xs.back()), Rounding::kUp));
    slopes.push_back(rate);
  } else {
    values.push_back(directed_pad(sample.back(), Rounding::kDown));
    slopes.push_back(BitsPerSecond{});
  }
  if (rounding == Rounding::kDown) {
    // The constructor clamps a segment value UP to the previous segment's
    // floating-point end when it dips below — sound for kUp, but for kDown
    // the cascade can erase the directed pads and push the envelope a few
    // ulps above the source at jump breakpoints. Restore monotonicity the
    // safe direction instead: lower the previous slope until its evaluated
    // end (the exact expression the constructor checks) stops exceeding the
    // next padded value. Lowering never breaks a lower bound, and any
    // residual clamp target is then values[i-1] <= A(x[i-1]) <= A(x[i]).
    for (std::size_t i = 1; i < starts.size(); ++i) {
      const Seconds span = starts[i] - starts[i - 1];
      if (values[i - 1] + slopes[i - 1] * span <= values[i]) continue;
      BitsPerSecond s = std::max(
          BitsPerSecond{}, (values[i] - values[i - 1]) / span);
      while (s > 0 && values[i - 1] + s * span > values[i]) {
        s = BitsPerSecond{std::nextafter(s.value(), 0.0)};
      }
      slopes[i - 1] = s;
    }
  }
  return std::make_shared<FlatEnvelope>(std::move(starts), std::move(values),
                                        std::move(slopes));
}

namespace {

// Union of the operands' segment starts (exact double identity — all starts
// are exact stored values, so duplicates collapse bit-for-bit).
std::vector<Seconds> merged_starts(
    const std::vector<const FlatEnvelope*>& parts) {
  std::vector<Seconds> all;
  for (const FlatEnvelope* p : parts) {
    all.insert(all.end(), p->starts().begin(), p->starts().end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace

FlatPtr flat_sum(const std::vector<FlatPtr>& parts) {
  HETNET_CHECK(!parts.empty(), "flat_sum needs at least one part");
  std::vector<const FlatEnvelope*> raw;
  raw.reserve(parts.size());
  for (const FlatPtr& p : parts) {
    HETNET_CHECK(p != nullptr, "null envelope");
    raw.push_back(p.get());
  }
  const std::vector<Seconds> xs = merged_starts(raw);
  std::vector<Bits> values(xs.size());
  std::vector<BitsPerSecond> slopes(xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) {
    Bits v{};
    BitsPerSecond s{};
    for (const FlatEnvelope* p : raw) {
      v += p->bits(xs[k]);
      s += p->slope_at(xs[k]);
    }
    values[k] = v;
    slopes[k] = s;
  }
  return std::make_shared<FlatEnvelope>(xs, std::move(values),
                                        std::move(slopes));
}

FlatPtr flat_min(const FlatPtr& a, const FlatPtr& b) {
  HETNET_CHECK(a != nullptr && b != nullptr, "null envelope");
  const std::vector<Seconds> xs = merged_starts({a.get(), b.get()});
  std::vector<Seconds> starts;
  std::vector<Bits> values;
  std::vector<BitsPerSecond> slopes;
  starts.reserve(xs.size() + 4);
  values.reserve(xs.size() + 4);
  slopes.reserve(xs.size() + 4);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const Seconds x = xs[k];
    const Seconds x_next =
        k + 1 < xs.size() ? xs[k + 1] : Seconds::infinity();
    const Bits va = a->bits(x);
    const Bits vb = b->bits(x);
    const BitsPerSecond sa = a->slope_at(x);
    const BitsPerSecond sb = b->slope_at(x);
    const bool a_low = va < vb || (va == vb && sa <= sb);
    starts.push_back(x);
    values.push_back(a_low ? va : vb);
    slopes.push_back(a_low ? sa : sb);
    // Both operands are affine until x_next; insert the crossing if the
    // currently-higher line dips below before then.
    const Bits gap = a_low ? vb - va : va - vb;          // >= 0
    const BitsPerSecond closing = a_low ? sa - sb : sb - sa;
    if (closing > 0 && gap > 0) {
      const Seconds dt = gap / closing;
      if (x + dt > x && x + dt < x_next) {
        const Bits vc =
            (a_low ? vb : va) + (a_low ? sb : sa) * dt;  // the lower line now
        starts.push_back(x + dt);
        values.push_back(vc);
        slopes.push_back(a_low ? sb : sa);
      }
    }
  }
  return std::make_shared<FlatEnvelope>(std::move(starts), std::move(values),
                                        std::move(slopes));
}

FlatPtr flat_shift(const FlatPtr& a, Seconds delay) {
  HETNET_CHECK(a != nullptr, "null envelope");
  HETNET_CHECK(delay >= 0, "shift delay must be >= 0");
  std::vector<Seconds> starts{Seconds{}};
  std::vector<Bits> values{a->bits(delay)};
  std::vector<BitsPerSecond> slopes{a->slope_at(delay)};
  for (std::size_t k = 0; k < a->size(); ++k) {
    if (a->starts()[k] <= delay) continue;
    starts.push_back(a->starts()[k] - delay);
    values.push_back(a->values()[k]);
    slopes.push_back(a->slopes()[k]);
  }
  return std::make_shared<FlatEnvelope>(std::move(starts), std::move(values),
                                        std::move(slopes));
}

FlatPtr flat_rate_cap(const FlatPtr& a, BitsPerSecond rate, Bits burst) {
  HETNET_CHECK(a != nullptr, "null envelope");
  HETNET_CHECK(rate >= 0, "rate cap must be >= 0");
  const auto line = std::make_shared<FlatEnvelope>(
      std::vector<Seconds>{Seconds{}}, std::vector<Bits>{burst},
      std::vector<BitsPerSecond>{rate});
  return flat_min(a, line);
}

FlatPtr flat_convolve(const FlatPtr& a, const FlatPtr& b) {
  HETNET_CHECK(a != nullptr && b != nullptr, "null envelope");
  HETNET_CHECK(a->size() * b->size() <= 4096,
               "flat_convolve operands too large — compact them first");
  // For piecewise-linear operands the infimum over the split point is
  // attained with one operand at a breakpoint, so the result is affine
  // between pairwise breakpoint sums.
  std::vector<Seconds> ts;
  ts.reserve(a->size() * b->size());
  for (const Seconds x : a->starts()) {
    for (const Seconds y : b->starts()) ts.push_back(x + y);
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

  const auto conv_at = [&](Seconds t) {
    Bits best = Bits(std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < a->size(); ++i) {
      const Seconds x = a->starts()[i];
      if (x > t) break;
      best = std::min(best, a->values()[i] + b->bits(t - x));
    }
    for (std::size_t j = 0; j < b->size(); ++j) {
      const Seconds y = b->starts()[j];
      if (y > t) break;
      best = std::min(best, a->bits(t - y) + b->values()[j]);
    }
    return best;
  };

  std::vector<Bits> vals(ts.size());
  for (std::size_t k = 0; k < ts.size(); ++k) vals[k] = conv_at(ts[k]);
  std::vector<BitsPerSecond> slopes(ts.size());
  for (std::size_t k = 0; k + 1 < ts.size(); ++k) {
    slopes[k] = std::max(BitsPerSecond{},
                         (vals[k + 1] - vals[k]) / (ts[k + 1] - ts[k]));
  }
  slopes.back() = std::min(a->long_term_rate(), b->long_term_rate());
  return std::make_shared<FlatEnvelope>(std::move(ts), std::move(vals),
                                        std::move(slopes));
}

}  // namespace hetnet
