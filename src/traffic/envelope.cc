#include "src/traffic/envelope.h"

#include <algorithm>
#include <atomic>

#include "src/util/check.h"

namespace hetnet {

ArrivalEnvelope::ArrivalEnvelope() {
  static std::atomic<std::uint64_t> counter{1};
  instance_fp_ = fp::mix(counter.fetch_add(1, std::memory_order_relaxed));
}

BitsPerSecond ArrivalEnvelope::rate(Seconds interval) const {
  HETNET_CHECK(interval > 0, "rate(I) requires I > 0");
  return bits(interval) / interval;
}

std::vector<Seconds> merge_breakpoints(
    std::vector<std::vector<Seconds>> lists) {
  std::vector<Seconds> merged;
  std::size_t total = 0;
  for (const auto& list : lists) total += list.size();
  merged.reserve(total);
  for (auto& list : lists) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end());
  std::vector<Seconds> out;
  out.reserve(merged.size());
  for (Seconds p : merged) {
    if (out.empty() || !approx_eq(out.back(), p)) out.push_back(p);
  }
  return out;
}

std::vector<Seconds> add_grid(std::vector<Seconds> points, Seconds step,
                              Seconds horizon) {
  HETNET_CHECK(step > 0, "grid step must be positive");
  std::vector<Seconds> grid;
  for (Seconds t = step; approx_le(t, horizon); t += step) grid.push_back(t);
  return merge_breakpoints({std::move(points), std::move(grid)});
}

}  // namespace hetnet
