// Memoizing envelope wrapper.
//
// The worst-case scans in src/servers evaluate the same envelope at the same
// interval lengths many times (e.g. every candidate t of an outer scan
// re-evaluates A(t + I) over the inner scan's grid). Wrapping a computed
// envelope in `cache_envelope` makes repeated evaluation O(1).
//
// Thread-safe: the memo mutates on read under an internal per-envelope
// mutex, because cached envelopes are shared across the parallel admission
// engine's workers (src/util/thread_pool.h). Values are pure, so the cache
// contents never depend on scheduling.
#pragma once

#include "src/traffic/envelope.h"

namespace hetnet {

// Wraps `input` with a bounded memoization cache (`max_entries` distinct
// interval values; the cache resets when full). Returns `input` itself if it
// is already cached.
EnvelopePtr cache_envelope(EnvelopePtr input, std::size_t max_entries = 16384);

}  // namespace hetnet
