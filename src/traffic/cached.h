// Memoizing envelope wrapper.
//
// The worst-case scans in src/servers evaluate the same envelope at the same
// interval lengths many times (e.g. every candidate t of an outer scan
// re-evaluates A(t + I) over the inner scan's grid). Wrapping a computed
// envelope in `cache_envelope` makes repeated evaluation O(1).
//
// NOT thread-safe: the cache mutates on read. The analysis engine is
// single-threaded by design (each simulation replica owns its own state).
#pragma once

#include "src/traffic/envelope.h"

namespace hetnet {

// Wraps `input` with a bounded memoization cache (`max_entries` distinct
// interval values; the cache resets when full). Returns `input` itself if it
// is already cached.
EnvelopePtr cache_envelope(EnvelopePtr input, std::size_t max_entries = 16384);

}  // namespace hetnet
