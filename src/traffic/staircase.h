// Explicit staircase envelopes and conservative rasterization.
//
// Deeply composed envelopes (a FDDI-MAC output feeding a mux feeding another
// mux ...) can get expensive to evaluate because each layer's bits(I) scans
// candidates of the layer below, and their exact breakpoint sets can grow
// combinatorially. `rasterize()` collapses such a tower into an explicit
// staircase WITHOUT losing soundness:
//
//   * on (x_{k-1}, x_k] the staircase takes the source's value at the RIGHT
//     end x_k — an upper bound because envelopes are nondecreasing;
//   * beyond the horizon it follows the source's leaky-bucket majorization
//     A(I) <= burst_bound() + long_term_rate()·I (see ArrivalEnvelope), so
//     the tail is sound for every I and the staircase's long-term rate is
//     the true ρ (keeping downstream stability checks exact).
//
// The result is an upper bound of the source envelope everywhere, so delay
// and buffer bounds computed from it remain valid worst-case bounds.
#pragma once

#include "src/traffic/envelope.h"

namespace hetnet {

class StaircaseEnvelope final : public ArrivalEnvelope {
 public:
  // `intervals` must be sorted strictly increasing with intervals[0] == 0;
  // `values` (same size) must be nondecreasing. For I in (intervals[k-1],
  // intervals[k]] the envelope equals values[k]; beyond the last interval it
  // equals values.back() + tail_rate * (I - intervals.back()).
  StaircaseEnvelope(std::vector<Seconds> intervals, std::vector<Bits> values,
                    BitsPerSecond tail_rate);

  // Structural: two staircases built from the same intervals/values/tail are
  // the same function, so they share a fingerprint. This is what lets the
  // session memo (src/core/session.h) recognize a re-rasterized port input
  // across admission requests instead of treating every rasterize() product
  // as a fresh per-instance key.
  std::uint64_t fingerprint() const override { return fp_; }

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override { return tail_rate_; }
  Bits burst_bound() const override { return burst_bound_; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;

  std::size_t size() const { return intervals_.size(); }

 private:
  std::vector<Seconds> intervals_;
  std::vector<Bits> values_;
  BitsPerSecond tail_rate_;
  Bits burst_bound_;  // max_k (values_[k] - tail_rate_·intervals_[k])
  std::uint64_t fp_ = 0;
};

// Samples `src` at its own breakpoints within (0, horizon] (thinned evenly to
// at most `max_points` samples, plus a uniform backbone grid) and returns a
// conservative staircase upper bound of `src`. Beyond the horizon the result
// follows src's leaky-bucket majorization (burst_bound + ρ·I), which must be
// finite.
EnvelopePtr rasterize(const EnvelopePtr& src, Seconds horizon,
                      std::size_t max_points);

}  // namespace hetnet
