// N-level nested periodic sources: the natural generalization of the
// paper's dual-periodic model (eq. 37) to arbitrarily many burst scales.
//
// Level 1 delivers C1 bits per P1; those bits arrive as level-2 bursts of
// C2 every P2; those as level-3 bursts of C3 every P3; ...; the innermost
// bursts arrive at `peak_rate`. MPEG-style traffic (GOP / frame / slice
// periodicities) is the textbook instance. With two levels this reproduces
// DualPeriodicEnvelope bit for bit.
//
//     A(I) = L_1(I)
//     L_k(r) = ⌊r/P_k⌋·C_k + min(C_k, L_{k+1}(r mod P_k)),  k = 1..n
//     L_{n+1}(r) = peak_rate · r   (∞ ⇒ instantaneous bursts)
#pragma once

#include <limits>
#include <vector>

#include "src/traffic/envelope.h"

namespace hetnet {

struct PeriodicLevel {
  Bits bits;     // C_k
  Seconds period;  // P_k
};

class MultiPeriodicEnvelope final : public ArrivalEnvelope {
 public:
  // Levels ordered outermost → innermost. Requires at least one level,
  // nonincreasing C_k and P_k, positive everything, and peak_rate able to
  // deliver the innermost burst within its period.
  explicit MultiPeriodicEnvelope(
      std::vector<PeriodicLevel> levels,
      BitsPerSecond peak_rate = BitsPerSecond::infinity());

  Bits bits(Seconds interval) const override;
  BitsPerSecond long_term_rate() const override;
  Bits burst_bound() const override { return levels_.front().bits; }
  std::vector<Seconds> breakpoints(Seconds horizon) const override;
  std::string describe() const override;
  std::uint64_t fingerprint() const override;

  const std::vector<PeriodicLevel>& levels() const { return levels_; }
  BitsPerSecond peak_rate() const { return peak_; }

 private:
  Bits level_bits(std::size_t k, Seconds r) const;
  void level_breakpoints(std::size_t k, Seconds offset, Bits budget,
                         Seconds end, Seconds horizon,
                         std::vector<Seconds>& out) const;

  std::vector<PeriodicLevel> levels_;
  BitsPerSecond peak_;
};

}  // namespace hetnet
