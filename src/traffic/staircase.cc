#include "src/traffic/staircase.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet {

StaircaseEnvelope::StaircaseEnvelope(std::vector<Seconds> intervals,
                                     std::vector<Bits> values,
                                     BitsPerSecond tail_rate)
    : intervals_(std::move(intervals)),
      values_(std::move(values)),
      tail_rate_(tail_rate) {
  HETNET_CHECK(!intervals_.empty(), "staircase needs at least one point");
  HETNET_CHECK(intervals_.size() == values_.size(),
               "staircase intervals/values size mismatch");
  HETNET_CHECK(intervals_.front() == 0.0, "staircase must start at I = 0");
  HETNET_CHECK(tail_rate_ >= 0, "tail rate must be >= 0");
  for (std::size_t i = 1; i < intervals_.size(); ++i) {
    HETNET_CHECK(intervals_[i] > intervals_[i - 1],
                 "staircase intervals must be strictly increasing");
    HETNET_CHECK(values_[i] >= values_[i - 1],
                 "staircase values must be nondecreasing");
  }
  // The value values_[i] is already taken just past the LEFT edge of its
  // segment (intervals_[i-1], intervals_[i]], so the majorization
  // A(I) <= burst + tail·I must hold with I = the left edge.
  burst_bound_ = values_.front();
  for (std::size_t i = 1; i < intervals_.size(); ++i) {
    burst_bound_ =
        std::max(burst_bound_, values_[i] - tail_rate_ * intervals_[i - 1]);
  }
  // Structural fingerprint over the defining arrays: equal arrays ⇒ the
  // same staircase function ⇒ bit-identical bits(I), satisfying the memo
  // contract of src/traffic/fingerprint.h. Rasterizing the same envelope
  // tower at the same points therefore reproduces the same key across
  // admission requests (the per-instance default never did).
  std::uint64_t f = fp::mix(0x57A1Eull);  // staircase tag
  f = fp::combine(f, intervals_.size());
  for (const Seconds i : intervals_) f = fp::combine(f, fp::of_double(i.value()));
  for (const Bits v : values_) f = fp::combine(f, fp::of_double(v.value()));
  fp_ = fp::combine(f, fp::of_double(tail_rate_.value()));
}

Bits StaircaseEnvelope::bits(Seconds interval) const {
  HETNET_CHECK(interval >= 0, "bits(I) requires I >= 0");
  if (interval >= intervals_.back()) {
    return values_.back() + tail_rate_ * (interval - intervals_.back());
  }
  // First index k with intervals_[k] >= interval (value held on the segment
  // (intervals_[k-1], intervals_[k]]).
  const auto it =
      std::lower_bound(intervals_.begin(), intervals_.end(), interval);
  return values_[static_cast<std::size_t>(it - intervals_.begin())];
}

std::vector<Seconds> StaircaseEnvelope::breakpoints(Seconds horizon) const {
  std::vector<Seconds> pts;
  for (std::size_t i = 1; i < intervals_.size(); ++i) {
    if (intervals_[i] > horizon) break;
    pts.push_back(intervals_[i]);
  }
  return pts;
}

std::string StaircaseEnvelope::describe() const {
  std::ostringstream os;
  os << "staircase(" << intervals_.size() << " pts, tail=" << tail_rate_
     << "b/s)";
  return os.str();
}

EnvelopePtr rasterize(const EnvelopePtr& src, Seconds horizon,
                      std::size_t max_points) {
  HETNET_CHECK(src != nullptr, "null envelope");
  HETNET_CHECK(horizon > 0, "rasterize horizon must be positive");
  HETNET_CHECK(max_points >= 2, "rasterize needs at least two points");
  const BitsPerSecond tail_rate = src->long_term_rate();
  const Bits tail_burst = src->burst_bound();
  HETNET_CHECK(isfinite(tail_burst),
               "cannot rasterize an envelope without a finite burst bound");

  // Candidate sample points: the source's own breakpoints plus a uniform
  // backbone (so pathological sources with no breakpoints still get
  // resolution), thinned to the point budget. Thinning only *raises* the
  // staircase (each segment takes the value at its right end), so the result
  // stays an upper bound.
  std::vector<Seconds> candidates = src->breakpoints(horizon);
  std::vector<Seconds> backbone;
  const std::size_t backbone_n = std::min<std::size_t>(max_points / 4 + 1, 64);
  for (std::size_t i = 1; i <= backbone_n; ++i) {
    backbone.push_back(horizon * static_cast<double>(i) /
                       static_cast<double>(backbone_n));
  }
  candidates = merge_breakpoints({std::move(candidates), std::move(backbone)});
  if (candidates.empty() || !approx_eq(candidates.back(), horizon)) {
    candidates.push_back(horizon);
  }

  std::vector<Seconds> xs{Seconds{}};
  std::vector<Bits> vs{src->bits(Seconds{})};
  const std::size_t stride =
      candidates.size() <= max_points - 1
          ? 1
          : (candidates.size() + max_points - 2) / (max_points - 1);
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    // Land on the last point of each stride group so no candidate "peeks
    // over" the recorded right-end value; always include the final one.
    const std::size_t idx = std::min(i + stride - 1, candidates.size() - 1);
    const Seconds x = candidates[idx];
    if (x <= xs.back()) continue;
    xs.push_back(x);
    vs.push_back(std::max(vs.back(), src->bits(x)));
  }
  // Sound linear tail: for I >= horizon, src(I) <= tail_burst + tail_rate·I.
  // Raise the final sample so the staircase dominates that majorization from
  // the horizon onward.
  vs.back() = std::max(vs.back(), tail_burst + tail_rate * xs.back());
  // Re-establish monotonicity from the raise (it can only be the last entry
  // that changed, so nothing to do; kept as an invariant check).
  return std::make_shared<StaircaseEnvelope>(std::move(xs), std::move(vs),
                                             tail_rate);
}

}  // namespace hetnet
