#include "src/traffic/algebra.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "src/traffic/sources.h"
#include "src/util/check.h"

namespace hetnet {
namespace {

class SumEnvelope final : public ArrivalEnvelope {
 public:
  explicit SumEnvelope(std::vector<EnvelopePtr> parts)
      : parts_(std::move(parts)) {
    HETNET_CHECK(!parts_.empty(), "sum of zero envelopes");
    for (const auto& p : parts_) HETNET_CHECK(p != nullptr, "null envelope");
  }

  Bits bits(Seconds interval) const override {
    Bits total;
    for (const auto& p : parts_) total += p->bits(interval);
    return total;
  }

  BitsPerSecond long_term_rate() const override {
    BitsPerSecond total;
    for (const auto& p : parts_) total += p->long_term_rate();
    return total;
  }

  Bits burst_bound() const override {
    Bits total;
    for (const auto& p : parts_) total += p->burst_bound();
    return total;
  }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    std::vector<std::vector<Seconds>> lists;
    lists.reserve(parts_.size());
    for (const auto& p : parts_) lists.push_back(p->breakpoints(horizon));
    return merge_breakpoints(std::move(lists));
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "sum(" << parts_.size() << " flows)";
    return os.str();
  }

  // Order-dependent on purpose: floating-point addition is not associative,
  // so only an identically-ordered sum is bit-identical.
  std::uint64_t fingerprint() const override {
    std::uint64_t h = fp::mix(0x2b);  // '+'
    for (const auto& p : parts_) h = fp::combine(h, p->fingerprint());
    return h;
  }

 private:
  std::vector<EnvelopePtr> parts_;
};

class ShiftEnvelope final : public ArrivalEnvelope {
 public:
  ShiftEnvelope(EnvelopePtr input, Seconds delay)
      : input_(std::move(input)), delay_(delay) {
    HETNET_CHECK(input_ != nullptr, "null envelope");
    HETNET_CHECK(delay_ >= 0, "shift delay must be >= 0");
  }

  Bits bits(Seconds interval) const override {
    return input_->bits(interval + delay_);
  }

  BitsPerSecond long_term_rate() const override {
    return input_->long_term_rate();
  }

  // A(I + d) <= b + ρ·(I + d) = (b + ρ·d) + ρ·I.
  Bits burst_bound() const override {
    return input_->burst_bound() + input_->long_term_rate() * delay_;
  }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    std::vector<Seconds> pts;
    for (Seconds b : input_->breakpoints(horizon + delay_)) {
      if (b > delay_ && !approx_eq(b, delay_)) pts.push_back(b - delay_);
    }
    return pts;
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "shift(" << input_->describe() << ", d=" << delay_ << "s)";
    return os.str();
  }

  std::uint64_t fingerprint() const override {
    const std::uint64_t h = fp::combine(fp::mix(0x3e), input_->fingerprint());
    return fp::combine(h, fp::of_double(delay_.value()));
  }

  const EnvelopePtr& input() const { return input_; }
  Seconds delay() const { return delay_; }

 private:
  EnvelopePtr input_;
  Seconds delay_;
};

// Breakpoints of min(a, b): the union of both operand breakpoint sets plus
// the points where the two (piecewise-affine) curves cross inside a segment.
std::vector<Seconds> min_breakpoints(const ArrivalEnvelope& a,
                                     const ArrivalEnvelope& b,
                                     Seconds horizon) {
  std::vector<Seconds> base =
      merge_breakpoints({a.breakpoints(horizon), b.breakpoints(horizon)});
  std::vector<Seconds> crossings;
  Seconds prev;
  auto diff = [&](Seconds t) { return a.bits(t) - b.bits(t); };
  std::vector<Seconds> ends = base;
  ends.push_back(horizon);
  for (Seconds end : ends) {
    if (end <= prev) continue;
    // Evaluate strictly inside the segment to dodge jumps at its endpoints.
    const Seconds lo = prev + (end - prev) * 1e-6;
    const Seconds hi = end - (end - prev) * 1e-6;
    const Bits d_lo = diff(lo);
    const Bits d_hi = diff(hi);
    if ((d_lo < 0) != (d_hi < 0) && hi > lo) {
      // Both curves are affine on (prev, end); solve for the crossing.
      const Bits denom = d_hi - d_lo;
      if (abs(denom) > 0) {
        const Seconds cross = lo + (hi - lo) * (-(d_lo / denom));
        if (cross > 0 && approx_le(cross, horizon)) {
          crossings.push_back(cross);
        }
      }
    }
    prev = end;
  }
  return merge_breakpoints({std::move(base), std::move(crossings)});
}

class MinEnvelope final : public ArrivalEnvelope {
 public:
  MinEnvelope(EnvelopePtr a, EnvelopePtr b)
      : a_(std::move(a)), b_(std::move(b)) {
    HETNET_CHECK(a_ != nullptr && b_ != nullptr, "null envelope");
  }

  Bits bits(Seconds interval) const override {
    return std::min(a_->bits(interval), b_->bits(interval));
  }

  BitsPerSecond long_term_rate() const override {
    return std::min(a_->long_term_rate(), b_->long_term_rate());
  }

  // min(A, B) <= whichever operand has the smaller long-term rate, so that
  // operand's majorization is a valid bound at the min's long-term rate.
  Bits burst_bound() const override {
    const BitsPerSecond ra = a_->long_term_rate();
    const BitsPerSecond rb = b_->long_term_rate();
    if (ra < rb) return a_->burst_bound();
    if (rb < ra) return b_->burst_bound();
    return std::min(a_->burst_bound(), b_->burst_bound());
  }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    return min_breakpoints(*a_, *b_, horizon);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "min(" << a_->describe() << ", " << b_->describe() << ")";
    return os.str();
  }

  std::uint64_t fingerprint() const override {
    const std::uint64_t h = fp::combine(fp::mix(0x5e), a_->fingerprint());
    return fp::combine(h, b_->fingerprint());
  }

  const EnvelopePtr& a() const { return a_; }
  const EnvelopePtr& b() const { return b_; }

 private:
  EnvelopePtr a_;
  EnvelopePtr b_;
};

class QuantizeEnvelope final : public ArrivalEnvelope {
 public:
  QuantizeEnvelope(EnvelopePtr input, Bits in_unit, Bits out_unit)
      : input_(std::move(input)), in_unit_(in_unit), out_unit_(out_unit) {
    HETNET_CHECK(input_ != nullptr, "null envelope");
    HETNET_CHECK(in_unit_ > 0 && out_unit_ > 0,
                 "quantize units must be positive");
  }

  Bits bits(Seconds interval) const override {
    const Bits in = input_->bits(interval);
    // Tolerate FP noise: 3.0000000001 units is 3 units, not 4.
    const double units = std::ceil(in / in_unit_ - kEps);
    return units * out_unit_;
  }

  BitsPerSecond long_term_rate() const override {
    return input_->long_term_rate() / in_unit_ * out_unit_;
  }

  // ⌈A/u⌉·v <= (A/u + 1)·v = (v/u)·A + v <= (v/u)·b + v + ltr'·I.
  Bits burst_bound() const override {
    return input_->burst_bound() / in_unit_ * out_unit_ + out_unit_;
  }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    std::vector<Seconds> base = input_->breakpoints(horizon);
    std::vector<Seconds> steps;
    // Between input breakpoints the input is affine; the quantized output
    // steps exactly where the input crosses a multiple of in_unit_.
    Seconds prev;
    std::vector<Seconds> ends = base;
    ends.push_back(horizon);
    for (Seconds end : ends) {
      if (end <= prev) continue;
      const Seconds lo = prev + (end - prev) * 1e-9;
      const Seconds hi = end - (end - prev) * 1e-9;
      const Bits v_lo = input_->bits(lo);
      const Bits v_hi = input_->bits(hi);
      if (v_hi > v_lo && hi > lo) {
        const double k_first = std::ceil(v_lo / in_unit_ + kEps);
        const double k_last = std::floor(v_hi / in_unit_ - kEps);
        const BitsPerSecond slope = (v_hi - v_lo) / (hi - lo);
        for (double k = k_first; k <= k_last; ++k) {
          const Seconds cross = lo + (k * in_unit_ - v_lo) / slope;
          if (cross > 0 && approx_le(cross, horizon)) steps.push_back(cross);
        }
      }
      prev = end;
    }
    return merge_breakpoints({std::move(base), std::move(steps)});
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "quantize(" << input_->describe() << ", " << in_unit_ << "b → "
       << out_unit_ << "b)";
    return os.str();
  }

  std::uint64_t fingerprint() const override {
    std::uint64_t h = fp::combine(fp::mix(0x71), input_->fingerprint());
    h = fp::combine(h, fp::of_double(in_unit_.value()));
    return fp::combine(h, fp::of_double(out_unit_.value()));
  }

 private:
  EnvelopePtr input_;
  Bits in_unit_;
  Bits out_unit_;
};

class ScaleEnvelope final : public ArrivalEnvelope {
 public:
  ScaleEnvelope(EnvelopePtr input, double factor)
      : input_(std::move(input)), factor_(factor) {
    HETNET_CHECK(input_ != nullptr, "null envelope");
    HETNET_CHECK(factor_ > 0, "scale factor must be positive");
  }

  Bits bits(Seconds interval) const override {
    return factor_ * input_->bits(interval);
  }

  BitsPerSecond long_term_rate() const override {
    return factor_ * input_->long_term_rate();
  }

  Bits burst_bound() const override {
    return factor_ * input_->burst_bound();
  }

  std::vector<Seconds> breakpoints(Seconds horizon) const override {
    return input_->breakpoints(horizon);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "scale(" << input_->describe() << ", ×" << factor_ << ")";
    return os.str();
  }

  std::uint64_t fingerprint() const override {
    const std::uint64_t h = fp::combine(fp::mix(0x2a), input_->fingerprint());
    return fp::combine(h, fp::of_double(factor_));
  }

 private:
  EnvelopePtr input_;
  double factor_;
};

}  // namespace

EnvelopePtr sum_envelopes(std::vector<EnvelopePtr> parts) {
  if (parts.empty()) return std::make_shared<ZeroEnvelope>();
  if (parts.size() == 1) return parts.front();
  return std::make_shared<SumEnvelope>(std::move(parts));
}

EnvelopePtr shift_envelope(EnvelopePtr input, Seconds delay) {
  if (delay == 0.0) return input;
  // Compaction: shift(shift(A, d1), d2) = shift(A, d1 + d2). Keeps chains of
  // per-hop output bounds from deepening one node per re-derivation.
  if (const auto* inner = dynamic_cast<const ShiftEnvelope*>(input.get())) {
    return std::make_shared<ShiftEnvelope>(inner->input(),
                                           inner->delay() + delay);
  }
  return std::make_shared<ShiftEnvelope>(std::move(input), delay);
}

EnvelopePtr min_envelope(EnvelopePtr a, EnvelopePtr b) {
  return std::make_shared<MinEnvelope>(std::move(a), std::move(b));
}

namespace {

// True when `env` is already bounded by b + r·I everywhere, i.e. a further
// rate_cap(r, b) is pointwise redundant: min(env, cap) == env EXACTLY. Looks
// through the shapes the analyzer produces (a leaky bucket, or a min whose
// right operand is one).
bool cap_is_redundant(const ArrivalEnvelope& env, BitsPerSecond rate,
                      Bits burst) {
  if (const auto* lb = dynamic_cast<const LeakyBucketEnvelope*>(&env)) {
    return lb->sigma() <= burst && lb->rho() <= rate;
  }
  if (const auto* m = dynamic_cast<const MinEnvelope*>(&env)) {
    return cap_is_redundant(*m->a(), rate, burst) ||
           cap_is_redundant(*m->b(), rate, burst);
  }
  return false;
}

}  // namespace

EnvelopePtr rate_cap(EnvelopePtr input, BitsPerSecond rate, Bits burst) {
  // Compaction: if the input already carries a cap at least as tight, the
  // new one changes nothing (min with a pointwise-larger function is the
  // identity — exact, not approximate). Repeated probes re-capping the same
  // flow at the same port therefore reuse the input unchanged.
  if (cap_is_redundant(*input, rate, burst)) return input;
  auto cap = std::make_shared<LeakyBucketEnvelope>(burst, rate);
  return min_envelope(std::move(input), std::move(cap));
}

EnvelopePtr quantize_envelope(EnvelopePtr input, Bits in_unit, Bits out_unit) {
  return std::make_shared<QuantizeEnvelope>(std::move(input), in_unit,
                                            out_unit);
}

EnvelopePtr scale_envelope(EnvelopePtr input, double factor) {
  if (factor == 1.0) return input;
  return std::make_shared<ScaleEnvelope>(std::move(input), factor);
}

}  // namespace hetnet
