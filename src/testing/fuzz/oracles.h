// The seven soundness oracles of the differential fuzzer.
//
// Each oracle takes a scenario, rebuilds the system from scratch, and
// checks one property the reproduction's claims rest on:
//
//   bound_soundness        — eq. 7 / Theorems 1–2: the analytic worst-case
//                            bound of every connection in the final admitted
//                            set dominates every message delay the packet
//                            simulator produces under adversarially aligned
//                            phases and async_fill-stretched rotations; the
//                            token-rotation invariant (<= TTRT) holds; and
//                            every surviving contract still meets its
//                            deadline under the joint analysis.
//   incremental_equivalence— PR-2 contract: replaying the admit/release
//                            sequence with the incremental engine yields
//                            bit-identical decisions, allocations, delay
//                            bounds, and anchor points to the cold path.
//   line_monotonicity      — the Section-5 allocation line, checked for
//                            what admission soundness actually rests on:
//                            the Theorem-1 send prefix is monotone in H_S,
//                            the probe surface (feasible_at / delay_at) is
//                            pure, warm/cold-identical, and consistent with
//                            deadlines, and the request path agrees
//                            bit-for-bit with the probe path at its own
//                            decision points. (End-to-end delay is NOT
//                            strictly monotone here — the H-dependent frame
//                            size couples into the Theorem-2 quantization;
//                            see the note in oracles.cc.)
//   parallel_equivalence   — PR-4 contract: replaying the admit/release
//                            sequence with the parallel engine
//                            (analysis.threads ∈ {2, 8}: wave-parallel
//                            joint analysis + speculative bisection
//                            batching) yields bit-identical decisions,
//                            allocations, delay bounds, anchors, and
//                            ledgers to the serial engine.
//   tiered_equivalence     — PR-7 contract: replaying the admit/release
//                            sequence with the tiered admission path
//                            (Tier-A floor / kUp-screen certificates +
//                            Tier-B decision memo) at 1 and 8 threads
//                            yields bit-identical decisions, allocations,
//                            delay bounds, anchors, and ledgers to the
//                            untiered incremental engine — the adversarial
//                            audit of CacConfig::screen_margin.
//   admissiond_equivalence — PR-8 contract: feeding the scenario's op
//                            sequence through the admissiond service
//                            (sharded queues, batched rounds, prewarm,
//                            parallel analysis) yields outcome-by-outcome
//                            and digest-identical decisions to the serial
//                            service replay (batch 1, prewarm off, one
//                            analysis thread) at every batch size and
//                            thread count tried.
//   algebra_invariants     — traffic algebra: every source envelope is
//                            monotone, subadditive (Γ's defining property),
//                            and leaky-bucket majorized by
//                            burst_bound() + ρ·I; the Theorem-2 frame→cell
//                            conversion envelope never drops below its
//                            input.
//
// Oracles never throw on a property violation — they return ok = false
// with a human-readable detail string (exceptions are reserved for broken
// preconditions, which the fuzzer reports as violations of a seventh kind,
// "crash").
#pragma once

#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/testing/fuzz/scenario.h"

namespace hetnet::fuzz {

struct OracleResult {
  std::string oracle;
  bool ok = true;
  std::string detail;  // empty when ok
};

struct OracleOptions {
  // Multiplies the scenario's simulated duration (CI smoke turns this down;
  // the nightly soak leaves it at 1).
  double sim_scale = 1.0;
  // Skip the packet simulation inside bound_soundness (the analytic checks
  // still run). Used by the shrinker's cheap pre-pass, never by the fuzzer
  // verdict itself.
  bool run_packet_sim = true;
};

OracleResult check_bound_soundness(const FuzzScenario& scenario,
                                   const OracleOptions& options = {});
OracleResult check_incremental_equivalence(const FuzzScenario& scenario);
OracleResult check_line_monotonicity(const FuzzScenario& scenario);
OracleResult check_parallel_equivalence(const FuzzScenario& scenario);
OracleResult check_tiered_equivalence(const FuzzScenario& scenario);
OracleResult check_admissiond_equivalence(const FuzzScenario& scenario);
OracleResult check_algebra_invariants(const FuzzScenario& scenario);

// Runs all seven; a thrown std::exception inside an oracle is converted
// into a failing result whose detail carries the what() text.
std::vector<OracleResult> run_all_oracles(const FuzzScenario& scenario,
                                          const OracleOptions& options = {});

// Runs one oracle by name ("bound_soundness", "incremental_equivalence",
// "line_monotonicity", "parallel_equivalence", "tiered_equivalence",
// "admissiond_equivalence", "algebra_invariants"), with the same exception
// conversion. Used by the shrinker to re-check the failure it is chasing.
OracleResult run_oracle(const std::string& name, const FuzzScenario& scenario,
                        const OracleOptions& options = {});

// Replays the scenario's admit/release op sequence against `cac` — the
// exact op semantics every oracle uses (releases of connections that are
// not live are ignored). Returns one decision per op; release ops carry a
// default-constructed decision. Exposed so callers can drive a scenario
// through an instrumented controller (e.g. one with an explain sink
// installed) without duplicating the op semantics.
std::vector<core::AdmissionDecision> replay_scenario(
    const FuzzScenario& scenario, core::AdmissionController* cac);

}  // namespace hetnet::fuzz
