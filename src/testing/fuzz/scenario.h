// Random scenarios for the differential soundness fuzzer.
//
// A FuzzScenario is a complete, self-contained description of one test
// case: the ABHN topology (ring count, hosts, TTRT, Δ, backbone shape),
// the CAC configuration (β, bisection resolution), a set of dual-periodic
// connection requests, an interleaved admit/release sequence, and the
// packet-simulation parameters for the empirical oracle. Scenarios are
//
//   * generated deterministically from a 64-bit seed (same seed, same
//     scenario, bit for bit),
//   * serializable to JSON and back losslessly (repro files), and
//   * structurally shrinkable (drop connections/ops, move parameters
//     toward defaults) while staying valid.
//
// Validity invariants maintained by the generator and by normalize():
// dual-periodic sources satisfy 0 < C2 <= C1, 0 < P2 <= P1,
// peak >= C2/P2, and (C1/C2)·P2 <= P1 (the sub-bursts fit the outer
// window, so C1/P1 really is the long-term rate); hosts are valid for the
// topology; every release names a previously admitted connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/net/connection.h"
#include "src/net/topology.h"
#include "src/testing/fuzz/json.h"
#include "src/util/units.h"

namespace hetnet::fuzz {

struct FuzzConnection {
  int src_ring = 0;
  int src_index = 0;
  int dst_ring = 0;
  int dst_index = 0;
  Bits c1;
  Seconds p1;
  Bits c2;
  Seconds p2;
  BitsPerSecond peak = BitsPerSecond::infinity();
  Seconds deadline;
};

// One step of the churn sequence. `conn` indexes FuzzScenario::connections;
// connection ids on the wire are conn + 1.
struct FuzzOp {
  bool release = false;
  int conn = 0;
};

struct FuzzScenario {
  std::uint64_t seed = 0;  // generator provenance (0 = hand-written)

  // Topology.
  int num_rings = 3;
  int hosts_per_ring = 4;
  bool line_backbone = false;
  Seconds ttrt = units::ms(8);
  Seconds protocol_overhead = units::ms(1);

  // CAC.
  double beta = 0.5;
  int bisection_iters = 12;

  std::vector<FuzzConnection> connections;
  std::vector<FuzzOp> ops;

  // Packet-simulation oracle parameters. Phases are always adversarially
  // aligned; async_fill stretches token rotations toward the Theorem-1
  // worst case.
  Seconds sim_duration = units::sec(1);
  double async_fill = 0.0;
  std::uint64_t sim_seed = 1;

  // Media mix: per-ring access media (ring i ← ring_media[i % size()];
  // empty = every ring "fddi") and the backbone medium, resolved through
  // servers::MediumRegistry::builtin(). Satellite backbones carry the
  // sampled per-link propagation, TDMA rings the sampled slot quantum.
  // Absent from pre-media repro files — scenario_from_json defaults them.
  std::vector<std::string> ring_media;
  std::string backbone_medium = "atm";
  Seconds sat_propagation = units::ms(250);
  Seconds tdma_slot = units::us(64);
};

// Deterministic scenario generation: the same seed yields the same scenario
// on every platform (all randomness flows through util/rng).
FuzzScenario generate_scenario(std::uint64_t seed);

// Clamps a scenario into the validity envelope documented above (used after
// shrinking transformations). Ops whose connection index is out of range
// are dropped; releases with no preceding admit are dropped.
void normalize_scenario(FuzzScenario* scenario);

// Builders for the scenario's network objects.
net::TopologyParams topology_params(const FuzzScenario& scenario);
core::CacConfig cac_config(const FuzzScenario& scenario, bool incremental);
net::ConnectionSpec connection_spec(const FuzzScenario& scenario, int conn);

// Lossless JSON round trip (strong-typed fields serialized in base units).
json::Value scenario_to_json(const FuzzScenario& scenario);
FuzzScenario scenario_from_json(const json::Value& value);

// Compact one-line summary for logs: ring/host counts, #connections, #ops.
std::string describe_scenario(const FuzzScenario& scenario);

}  // namespace hetnet::fuzz
